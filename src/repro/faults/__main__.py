"""``python -m repro.faults`` — the fault-injection robustness matrix.

Examples::

    # Quick serial smoke: LLC channel across the default intensity grid.
    python -m repro.faults --channel llc --bits 12 --seeds 1

    # Both channels, 4 workers, cached (second run is all cache hits):
    python -m repro.faults --channel both --workers 4 --cache-dir .faults-cache

The exit code is 0 when every swept channel degraded gracefully (no
crash/timeout, no collapsed intensity point, BER under the ceiling and
monotone-ish in intensity) and 1 when any graceful-degradation check
failed.  Given the same root seed the matrix is fully deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
import typing

from repro.faults.matrix import DEFAULT_INTENSITIES, DEFAULT_N_BITS, run_matrix


def _parse_intensities(text: str) -> typing.List[float]:
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad intensity list {text!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError("at least one intensity is required")
    if any(v < 0 for v in values):
        raise argparse.ArgumentTypeError("intensities must be >= 0")
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Sweep fault intensity over the covert channels and "
        "assert graceful BER degradation.",
    )
    parser.add_argument(
        "--channel",
        choices=("llc", "contention", "contention-sweep", "both"),
        default="llc",
        help="which covert channel to stress (default: llc); "
        "contention-sweep runs the raw batchable trial family",
    )
    parser.add_argument(
        "--intensities", type=_parse_intensities,
        default=list(DEFAULT_INTENSITIES), metavar="I0,I1,...",
        help="comma-separated fault-intensity multipliers "
        f"(default: {','.join(str(i) for i in DEFAULT_INTENSITIES)})",
    )
    parser.add_argument(
        "--bits", type=int, default=DEFAULT_N_BITS, metavar="N",
        help=f"payload bits per trial (default: {DEFAULT_N_BITS})",
    )
    parser.add_argument(
        "--seeds", type=int, default=2, metavar="N",
        help="seeded repetitions per intensity (default: 2)",
    )
    parser.add_argument(
        "--root-seed", type=int, default=1, metavar="SEED",
        help="root of the deterministic seed fan-out (default: 1)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes; 0 = serial in-process (default)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache directory (default: cache off)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-trial timeout when workers >= 1 (default: 600)",
    )
    parser.add_argument(
        "--max-ber", type=float, default=45.0, metavar="PERCENT",
        help="graceful ceiling on mean BER per point (default: 45)",
    )
    parser.add_argument(
        "--slack", type=float, default=8.0, metavar="PERCENT",
        help="noise slack for the monotone-ish BER check (default: 8)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write a machine-readable summary to PATH",
    )
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    channels = ("llc", "contention") if args.channel == "both" else (args.channel,)

    results = []
    all_violations: typing.List[str] = []
    for channel in channels:
        result = run_matrix(
            channel=channel,
            intensities=args.intensities,
            n_bits=args.bits,
            n_seeds=args.seeds,
            root_seed=args.root_seed,
            workers=args.workers,
            cache_dir=args.cache_dir,
            trial_timeout_s=args.timeout,
        )
        results.append(result)
        print(result.table())
        print(result.report.summary())
        print()
        all_violations.extend(
            result.violations(max_ber_percent=args.max_ber,
                              slack_percent=args.slack)
        )

    if args.json:
        doc = {
            "root_seed": args.root_seed,
            "matrices": [r.as_dict() for r in results],
            "violations": all_violations,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if all_violations:
        print("graceful-degradation violations:", file=sys.stderr)
        for violation in all_violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print("graceful degradation: every check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
