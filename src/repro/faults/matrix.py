"""The robustness matrix: BER vs fault intensity, asserted graceful.

``python -m repro.faults`` sweeps a grid of fault intensities over one
(or both) covert channels through :class:`repro.exec.TrialExecutor`, so
points run in parallel, cache across invocations and — crucially — a
wedged or crashed point degrades to one recorded failure instead of
killing the sweep.  The sweep then *asserts* graceful degradation:

* no point crashed or timed out (hardened protocols must fail softly);
* every intensity kept at least one live trial (no collapse);
* mean BER stays under a ceiling (degraded, not random);
* BER is monotone-ish in intensity: more faults may not *help* beyond a
  noise slack.

Intensity scales every configured fault rate/probability through
:meth:`repro.config.FaultsConfig.scaled`; intensity 0 runs the identical
hardened code path with every injector a no-op, anchoring the baseline.
Determinism: trial seeds come from :func:`repro.exec.fan_out_seeds`, so
the whole matrix is a pure function of the root seed.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import FaultsConfig, kaby_lake_model
from repro.core.contention_channel.channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.llc_channel.channel import LLCChannel, LLCChannelConfig
from repro.exec.executor import ExecutionReport, TrialExecutor, TrialSpec
from repro.exec.seeds import fan_out_seeds

DEFAULT_INTENSITIES: typing.Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)

#: Default per-point trial payload; small enough that the full matrix is
#: a smoke test, large enough that BER has resolution.
DEFAULT_N_BITS = 16


def _result_record(result: object) -> typing.Dict[str, object]:
    """Flatten a ChannelResult into the small picklable record we keep."""
    return {
        "error_rate": result.error_rate,  # type: ignore[attr-defined]
        "bandwidth_kbps": result.bandwidth_kbps,  # type: ignore[attr-defined]
        "n_sent": len(result.sent),  # type: ignore[attr-defined]
        "n_received": len(result.received),  # type: ignore[attr-defined]
        "frame_attempts": result.meta.get(  # type: ignore[attr-defined]
            "frame_attempts", 1
        ),
    }


def faulted_llc_trial(params: typing.Dict[str, object], seed: int) -> typing.Dict[str, object]:
    """One LLC-channel transmission under scaled fault injection."""
    intensity = float(typing.cast(float, params.get("intensity", 1.0)))
    n_bits = int(typing.cast(int, params.get("n_bits", DEFAULT_N_BITS)))
    soc_config = kaby_lake_model(scale=16).replace(
        faults=FaultsConfig().scaled(intensity)
    )
    channel = LLCChannel(LLCChannelConfig(), soc_config=soc_config)
    return _result_record(channel.transmit(n_bits=n_bits, seed=seed))


def faulted_contention_trial(
    params: typing.Dict[str, object], seed: int
) -> typing.Dict[str, object]:
    """One contention-channel transmission under scaled fault injection.

    Calibration runs on a *healthy* machine (the attacker calibrates
    offline, before the environment turns hostile); only the recorded
    transmission sees the faults.
    """
    intensity = float(typing.cast(float, params.get("intensity", 1.0)))
    n_bits = int(typing.cast(int, params.get("n_bits", DEFAULT_N_BITS)))
    healthy = kaby_lake_model(scale=16)
    faulted = healthy.replace(faults=FaultsConfig().scaled(intensity))
    config = ContentionChannelConfig()
    calibration = ContentionChannel(config, soc_config=healthy).calibrate(seed=seed)
    channel = ContentionChannel(config, soc_config=faulted)
    return _result_record(
        channel.transmit(n_bits=n_bits, seed=seed, calibration=calibration)
    )


def _contention_sweep_params(
    intensity: float, n_bits: int
) -> typing.Dict[str, object]:
    """Matrix grid point -> contention-family trial params.

    The family models faults natively (``fault_intensity`` scales the
    seeded ring-burst schedule), so intensity maps straight through; one
    slot carries one bit, so the payload size maps to ``n_slots``.
    """
    return {"fault_intensity": intensity, "n_slots": n_bits}


def _contention_sweep_record(
    outcome: typing.Dict[str, object]
) -> typing.Dict[str, object]:
    """Flatten a contention-family outcome into the matrix record shape."""
    sent = typing.cast(typing.List[int], outcome["bits"])
    received = typing.cast(typing.List[int], outcome["rx_bits"])
    errors = sum(1 for s, r in zip(sent, received) if s != r)
    duration_s = float(typing.cast(int, outcome["final_now_fs"])) * 1e-15
    return {
        "error_rate": errors / len(sent) if sent else 0.0,
        "bandwidth_kbps": (
            len(received) / duration_s / 1000.0 if duration_s > 0 else 0.0
        ),
        "n_sent": len(sent),
        "n_received": len(received),
        "frame_attempts": 1,
    }


#: ``contention-sweep`` runs the raw trial family (not the framed
#: channel protocol) precisely so its specs hit the lockstep batch tier:
#: kernel lookup is by trial-function identity, and
#: ``repro.analysis.contention_sweep.contention_trial`` has a registered
#: kernel while the protocol wrappers do not.
TRIAL_FNS: typing.Dict[str, typing.Callable] = {
    "llc": faulted_llc_trial,
    "contention": faulted_contention_trial,
    "contention-sweep": None,  # resolved lazily below (import cycle safety)
}

#: Per-channel grid-point -> params adapters (default: intensity/n_bits).
PARAM_ADAPTERS: typing.Dict[
    str, typing.Callable[[float, int], typing.Dict[str, object]]
] = {"contention-sweep": _contention_sweep_params}

#: Per-channel outcome -> record adapters (default: identity — the trial
#: already returns the record shape).
RESULT_ADAPTERS: typing.Dict[
    str, typing.Callable[[typing.Dict[str, object]], typing.Dict[str, object]]
] = {"contention-sweep": _contention_sweep_record}


def _resolve_trial_fn(channel: str) -> typing.Callable:
    fn = TRIAL_FNS.get(channel)
    if fn is not None:
        return fn
    from repro.analysis.contention_sweep import contention_trial

    TRIAL_FNS["contention-sweep"] = contention_trial
    return contention_trial


@dataclasses.dataclass
class MatrixPoint:
    """Aggregate of every trial at one fault intensity."""

    intensity: float
    ber_percent: float
    bandwidth_kbps: float
    frame_attempts: float
    n_ok: int
    n_dead: int
    n_failed: int  # crashes + timeouts

    @property
    def alive(self) -> bool:
        return self.n_ok > 0

    def row(self) -> str:
        return (
            f"{self.intensity:9.2f} {self.ber_percent:8.2f} "
            f"{self.bandwidth_kbps:10.1f} {self.frame_attempts:9.2f} "
            f"{self.n_ok:4d} {self.n_dead:5d} {self.n_failed:7d}"
        )


@dataclasses.dataclass
class MatrixResult:
    """One channel's full intensity sweep plus the executor report."""

    channel: str
    points: typing.List[MatrixPoint]
    report: ExecutionReport

    def violations(
        self, max_ber_percent: float = 45.0, slack_percent: float = 8.0
    ) -> typing.List[str]:
        """Graceful-degradation violations; empty means the sweep passed."""
        found: typing.List[str] = []
        for point in self.points:
            where = f"{self.channel} @ intensity {point.intensity:g}"
            if point.n_failed:
                found.append(
                    f"{where}: {point.n_failed} trial(s) crashed or timed out"
                )
            if not point.alive:
                found.append(f"{where}: collapsed (no trial delivered a frame)")
            elif point.ber_percent > max_ber_percent:
                found.append(
                    f"{where}: BER {point.ber_percent:.1f}% exceeds the "
                    f"{max_ber_percent:.0f}% graceful ceiling"
                )
        alive = [p for p in self.points if p.alive]
        for previous, current in zip(alive, alive[1:]):
            if current.ber_percent < previous.ber_percent - slack_percent:
                found.append(
                    f"{self.channel}: BER fell {previous.ber_percent:.1f}% -> "
                    f"{current.ber_percent:.1f}% from intensity "
                    f"{previous.intensity:g} to {current.intensity:g} "
                    f"(more faults should not help beyond {slack_percent:g}% slack)"
                )
        return found

    def table(self) -> str:
        header = (
            f"{'intensity':>9} {'ber_%':>8} {'kbps':>10} {'attempts':>9} "
            f"{'ok':>4} {'dead':>5} {'failed':>7}"
        )
        return "\n".join([f"[{self.channel}]", header]
                         + [p.row() for p in self.points])

    def as_dict(self) -> typing.Dict[str, object]:
        return {
            "channel": self.channel,
            "points": [dataclasses.asdict(p) for p in self.points],
            "violations": self.violations(),
        }


def _mean(values: typing.Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_matrix(
    channel: str = "llc",
    intensities: typing.Sequence[float] = DEFAULT_INTENSITIES,
    n_bits: int = DEFAULT_N_BITS,
    n_seeds: int = 2,
    root_seed: int = 1,
    workers: int = 0,
    cache_dir: typing.Optional[str] = None,
    trial_timeout_s: float = 600.0,
) -> MatrixResult:
    """Sweep ``channel`` over ``intensities`` and aggregate per point."""
    if channel not in TRIAL_FNS:
        raise ValueError(f"unknown channel {channel!r}; pick from {sorted(TRIAL_FNS)}")
    fn = _resolve_trial_fn(channel)
    make_params = PARAM_ADAPTERS.get(
        channel, lambda intensity, n: {"intensity": intensity, "n_bits": n}
    )
    specs: typing.List[TrialSpec] = []
    for intensity in intensities:
        seeds = fan_out_seeds(root_seed, n_seeds, label=f"faults-{channel}-{intensity!r}")
        specs.extend(
            TrialSpec(fn, make_params(float(intensity), n_bits), seed,
                      tag=intensity)
            for seed in seeds
        )
    executor = TrialExecutor(
        workers=workers, cache=cache_dir, trial_timeout_s=trial_timeout_s
    )
    report = executor.run(specs)

    adapt = RESULT_ADAPTERS.get(channel, lambda record: record)
    points: typing.List[MatrixPoint] = []
    for intensity in intensities:
        outcomes = [o for o in report.outcomes if o.tag == intensity]
        ok = [adapt(typing.cast(typing.Dict[str, object], o.result))
              for o in outcomes if o.ok]
        points.append(
            MatrixPoint(
                intensity=float(intensity),
                ber_percent=100.0 * _mean(
                    [typing.cast(float, r["error_rate"]) for r in ok]
                ),
                bandwidth_kbps=_mean(
                    [typing.cast(float, r["bandwidth_kbps"]) for r in ok]
                ),
                frame_attempts=_mean(
                    [float(typing.cast(int, r["frame_attempts"])) for r in ok]
                ),
                n_ok=len(ok),
                n_dead=sum(1 for o in outcomes if o.kind == "dead"),
                n_failed=sum(1 for o in outcomes if o.kind in ("crash", "timeout")),
            )
        )
    return MatrixResult(channel=channel, points=points, report=report)
