"""Composable, deterministic fault injectors for one simulated SoC.

Each injector models one hostile condition the paper's channels must
survive on real silicon:

* :class:`DramLatencySpikeInjector` — sporadic DRAM latency spikes
  (refresh storms, scheduler hiccups) stretched onto the miss path.
* :class:`RingBackpressureInjector` — Poisson bursts of third-party ring
  traffic that queue ahead of both attack agents.
* :class:`PreemptionInjector` — adversarial OS preemption windows on
  random CPU cores, beyond the benign timer-tick model.
* :class:`ClockDriftInjector` — the GPU clock domain drifting against
  the rest of the machine, warping every SLM counter's tick rate.
* :class:`ProbeFaultInjector` — handshake light-polls whose observation
  is lost (drop) or which execute twice (duplicate).

Determinism contract: every injector owns a named RNG stream
(``fault-<kind>``) created at construction, so for a fixed root seed the
injected fault sequence is a pure function of simulated time — repeated
runs fault identically, and enabling one injector never perturbs the
draws of another or of the simulation proper (DESIGN.md §9).  Every
injection emits a ``fault.inject`` trace event when observability is on.
"""

from __future__ import annotations

import typing

from repro.obs.recorder import recorder as _recorder
from repro.sim import FS_PER_NS, FS_PER_S, FS_PER_US

if typing.TYPE_CHECKING:
    from repro.soc.machine import SoC


class FaultInjector:
    """Base class: one fault source bound to one machine.

    Subclasses set :attr:`kind` (which names the RNG stream and shows up
    in trace events) and implement :meth:`start`; hook-based injectors
    also override :meth:`stop` to unhook themselves.
    """

    kind: str = "fault"

    def __init__(self, soc: "SoC") -> None:
        self.soc = soc
        self.cfg = soc.config.faults
        self._rng = soc.rng.stream(f"fault-{self.kind}")
        self._trace = _recorder.sink_for("fault.inject")
        #: Number of faults injected so far (monotone; never reset).
        self.injected = 0
        # Created on first emit: a never-firing injector must not change
        # the registry's shape (metric snapshots are part of checkpoint
        # state and of traced-run result meta).
        self._metric: typing.Optional[typing.Any] = None
        self._process: typing.Optional[typing.Any] = None

    @property
    def active(self) -> bool:
        """Whether the injector is currently armed."""
        return self._process is not None and self._process.alive

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        if self._process is not None:
            if self._process.alive:
                self._process.interrupt("stop")
            self._process = None

    def _emit(self, **details: object) -> None:
        self.injected += 1
        if self._metric is None:
            self._metric = self.soc.metrics.counter(
                f"faults.{self.kind}.injected"
            )
        self._metric.inc()
        if self._trace is not None:
            payload: typing.Dict[str, object] = {"kind": self.kind}
            payload.update(details)
            self._trace.emit(
                "fault.inject", self.soc.now_fs, f"fault.{self.kind}", payload
            )


class DramLatencySpikeInjector(FaultInjector):
    """Stretch a fraction of DRAM accesses by an extra latency spike.

    Installed as :attr:`repro.soc.dram.Dram.fault_hook`; the spike
    magnitude is uniform in ``[0.5, 1.5] x dram_spike_extra_ns`` so
    spikes are not trivially filterable as a constant offset.
    """

    kind = "dram"

    def start(self) -> None:
        if self.cfg.dram_spike_probability <= 0 or self.cfg.dram_spike_extra_ns <= 0:
            return
        self.soc.dram.fault_hook = self._extra_latency_fs

    def stop(self) -> None:
        # == not `is`: bound-method objects are re-created per access.
        if self.soc.dram.fault_hook == self._extra_latency_fs:
            self.soc.dram.fault_hook = None
        super().stop()

    def _extra_latency_fs(self) -> int:
        if self._rng.random() >= self.cfg.dram_spike_probability:
            return 0
        extra_ns = self.cfg.dram_spike_extra_ns * (0.5 + self._rng.random())
        self._emit(extra_ns=extra_ns)
        return int(extra_ns * FS_PER_NS)


class RingBackpressureInjector(FaultInjector):
    """Poisson bursts of third-party traffic saturating the ring.

    During a burst the injector issues back-to-back cache-line transfers
    under the auxiliary ``"fault"`` domain, so both attack agents queue
    behind it — the T_OV they measure inflates without any LLC state
    changing.
    """

    kind = "ring"

    def start(self) -> None:
        if self.cfg.ring_burst_rate_per_s <= 0 or self.cfg.ring_burst_duration_us <= 0:
            return
        self._process = self.soc.engine.process(self._loop())

    def _loop(self) -> typing.Generator[object, object, None]:
        soc = self.soc
        slots = soc.ring.slots_for_line(soc.config.llc.line_bytes)
        rate = self.cfg.ring_burst_rate_per_s
        while True:
            gap_fs = max(1, int(self._rng.exponential(1.0 / rate) * FS_PER_S))
            yield gap_fs
            duration_fs = int(self.cfg.ring_burst_duration_us * FS_PER_US)
            self._emit(duration_us=duration_fs / FS_PER_US)
            burst_end = soc.now_fs + duration_fs
            while soc.now_fs < burst_end:
                yield from soc.ring.transfer(slots, "fault")


class PreemptionInjector(FaultInjector):
    """Adversarial preemption: stall random cores for long windows."""

    kind = "preempt"

    def start(self) -> None:
        if self.cfg.preempt_rate_per_s <= 0 or self.cfg.preempt_duration_us <= 0:
            return
        self._process = self.soc.engine.process(self._loop())

    def _loop(self) -> typing.Generator[object, object, None]:
        soc = self.soc
        rate = self.cfg.preempt_rate_per_s
        while True:
            gap_fs = max(1, int(self._rng.exponential(1.0 / rate) * FS_PER_S))
            yield gap_fs
            core = int(self._rng.integers(0, soc.config.cpu_cores))
            duration_fs = int(
                self.cfg.preempt_duration_us * FS_PER_US * (0.5 + self._rng.random())
            )
            soc.preempt_core(core, duration_fs)
            self._emit(core=core, duration_us=duration_fs / FS_PER_US)


class ClockDriftInjector(FaultInjector):
    """Random-walk drift of the GPU clock feeding the SLM counters.

    Every period the drift level takes a uniform step of up to
    ``clock_drift_step`` and is clamped to ``±clock_drift_max``; the
    resulting rate multiplier is pushed to every registered SLM timer via
    :meth:`~repro.gpu.timer.SlmTimer.set_drift` (piecewise integration,
    so already-elapsed ticks are untouched).
    """

    kind = "clock"

    def __init__(self, soc: "SoC") -> None:
        super().__init__(soc)
        self._level = 0.0

    def start(self) -> None:
        if self.cfg.clock_drift_step <= 0 or self.cfg.clock_drift_period_us <= 0:
            return
        self._process = self.soc.engine.process(self._loop())

    def _loop(self) -> typing.Generator[object, object, None]:
        soc = self.soc
        period_fs = int(self.cfg.clock_drift_period_us * FS_PER_US)
        bound = self.cfg.clock_drift_max
        while True:
            # Jittered period: drift steps must not alias with slot pacing.
            gap_fs = max(1, int(period_fs * (0.5 + self._rng.random())))
            yield gap_fs
            step = self._rng.uniform(-self.cfg.clock_drift_step, self.cfg.clock_drift_step)
            self._level = min(bound, max(-bound, self._level + step))
            factor = 1.0 + self._level
            for timer in soc.slm_timers:
                timer.set_drift(factor)  # type: ignore[attr-defined]
            self._emit(factor=factor, timers=len(soc.slm_timers))


class ProbeFaultInjector(FaultInjector):
    """Drop or duplicate handshake light-polls.

    Installed as :attr:`repro.soc.machine.SoC.probe_fault_hook`; the LLC
    protocol consults it once per poll.  ``"drop"`` means the poll runs
    but its observation is discarded; ``"dup"`` means the poll executes
    twice (re-touching the probe lines, which can mask a peer's signal).
    """

    kind = "probe"

    def start(self) -> None:
        if self.cfg.probe_drop_probability + self.cfg.probe_duplicate_probability <= 0:
            return
        self.soc.probe_fault_hook = self._classify

    def stop(self) -> None:
        if self.soc.probe_fault_hook == self._classify:
            self.soc.probe_fault_hook = None
        super().stop()

    def _classify(self) -> typing.Optional[str]:
        u = self._rng.random()
        if u < self.cfg.probe_drop_probability:
            self._emit(effect="drop")
            return "drop"
        if u < self.cfg.probe_drop_probability + self.cfg.probe_duplicate_probability:
            self._emit(effect="dup")
            return "dup"
        return None


#: Construction order is part of the determinism contract: stream names
#: are unique per kind, so order does not affect seeding, but keeping it
#: fixed keeps engine process-creation order (and thus event tie-breaks)
#: reproducible.
INJECTOR_TYPES: typing.Tuple[typing.Type[FaultInjector], ...] = (
    DramLatencySpikeInjector,
    RingBackpressureInjector,
    PreemptionInjector,
    ClockDriftInjector,
    ProbeFaultInjector,
)


class FaultSuite:
    """The full set of injectors configured for one machine."""

    def __init__(self, injectors: typing.Iterable[FaultInjector]) -> None:
        self.injectors: typing.List[FaultInjector] = list(injectors)

    @classmethod
    def from_config(cls, soc: "SoC") -> "FaultSuite":
        """Build every injector for ``soc`` (its config decides no-ops)."""
        return cls(injector_type(soc) for injector_type in INJECTOR_TYPES)

    def start(self) -> None:
        for injector in self.injectors:
            injector.start()

    def stop(self) -> None:
        for injector in self.injectors:
            injector.stop()

    def counts(self) -> typing.Dict[str, int]:
        """Injected-fault counts per kind (for tests and the matrix CLI)."""
        return {injector.kind: injector.injected for injector in self.injectors}
