"""Deterministic fault injection and robustness tooling.

The paper's headline numbers are *error rates under real noise*, so the
reproduction's noise model has to be honest and its protocols have to
degrade gracefully rather than hang.  This package supplies both halves
of that story:

* :mod:`repro.faults.injectors` — composable fault injectors configured
  from :class:`~repro.config.FaultsConfig`: DRAM latency spikes, ring
  back-pressure bursts, adversarial preemption windows, SLM clock-domain
  drift, and dropped/duplicated handshake probes.  Every injector draws
  from its own named RNG stream (``fault-*``) and emits ``fault.inject``
  trace events, so injected faults are deterministic for a given root
  seed and visible in Chrome traces.
* :mod:`repro.faults.matrix` — a :mod:`repro.exec`-driven robustness
  matrix that sweeps fault intensity over either covert channel and
  asserts graceful BER degradation (``python -m repro.faults``).

The channel protocols are hardened against the injected faults (bounded
handshake timeouts with capped-backoff re-synchronization in the LLC
protocol; bounded pacing and per-frame retry in the contention channel),
so a faulted sweep ends with degraded BER instead of a hang or a crash.
"""

from repro.faults.injectors import (
    ClockDriftInjector,
    DramLatencySpikeInjector,
    FaultInjector,
    FaultSuite,
    PreemptionInjector,
    ProbeFaultInjector,
    RingBackpressureInjector,
)
from repro.faults.matrix import (
    DEFAULT_INTENSITIES,
    MatrixPoint,
    MatrixResult,
    faulted_contention_trial,
    faulted_llc_trial,
    run_matrix,
)

__all__ = [
    "ClockDriftInjector",
    "DEFAULT_INTENSITIES",
    "DramLatencySpikeInjector",
    "FaultInjector",
    "FaultSuite",
    "MatrixPoint",
    "MatrixResult",
    "PreemptionInjector",
    "ProbeFaultInjector",
    "RingBackpressureInjector",
    "faulted_contention_trial",
    "faulted_llc_trial",
    "run_matrix",
]
