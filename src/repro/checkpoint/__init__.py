"""Explicit, pickle-free checkpointing of the simulated SoC.

The package has three layers:

* :mod:`repro.checkpoint.snapshot` — the versioned envelope around
  :meth:`SoC.state_dict`/:meth:`SoC.load_state`, taken only at quiescent
  points (empty event queue, no live background processes);
* :mod:`repro.checkpoint.store` — a content-addressed blob store keyed by
  ``(config digest, code fingerprint, prefix label, seed)``, sharing the
  atomic-write discipline of :class:`repro.exec.cache.ResultCache`;
* :mod:`repro.checkpoint.gate` — the ``REPRO_CHECKPOINT`` switch sweeps
  consult before sharing warm prefixes; off means every trial cold-starts.

The contract (DESIGN §12): a restored machine is bit-identical to the one
that produced the snapshot — continuing either produces the same event
stream, payloads, error rates and metrics.
"""

from repro.checkpoint import gate
from repro.checkpoint.gate import enabled, forced, set_enabled
from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    Snapshot,
    check_snapshot,
    restore_soc,
    snapshot_bytes,
    snapshot_from_bytes,
    snapshot_soc,
)
from repro.checkpoint.store import (
    PREFIX_PARAM_KEYS,
    CheckpointStore,
    StoreStats,
    resolve_state,
    strip_prefix_params,
)

__all__ = [
    "CheckpointStore",
    "PREFIX_PARAM_KEYS",
    "SCHEMA_VERSION",
    "Snapshot",
    "StoreStats",
    "check_snapshot",
    "enabled",
    "forced",
    "gate",
    "resolve_state",
    "restore_soc",
    "set_enabled",
    "snapshot_bytes",
    "snapshot_from_bytes",
    "snapshot_soc",
    "strip_prefix_params",
]
