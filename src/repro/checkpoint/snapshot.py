"""Snapshot/restore envelope for a quiescent :class:`~repro.soc.machine.SoC`.

The machine itself serializes through the ``state_dict()``/``load_state()``
pairs its components implement; this module wraps that raw state in a
versioned, guarded envelope:

* ``schema`` — :data:`SCHEMA_VERSION`; any change to what a component
  captures bumps it, and a mismatched snapshot is rejected instead of
  silently misread.
* ``config_digest`` — canonical digest of the full ``SoCConfig``; a
  snapshot only restores into a machine built from the *same* config.
* the staging-mode flag rides inside the machine state (machines sample
  :mod:`repro.sim.fastpath` at construction, and fast/staged paths
  execute different event counts, so a snapshot from one mode must not
  restore into the other).

Everything in the envelope is JSON-able by construction — no pickle, no
live generator frames.  That is only possible because snapshots are taken
at *quiescent points*: the event queue is empty and every background
process (noise, OS ticks, fault injectors) has been stopped, so no
in-flight coroutine state exists to capture.  :meth:`SoC.quiesce` drives
a machine to such a point; :meth:`SoC.state_dict` refuses to run anywhere
else.
"""

from __future__ import annotations

import json
import typing

from repro.errors import CheckpointError
from repro.exec.seeds import stable_digest
from repro.soc.machine import SoC

if typing.TYPE_CHECKING:
    from repro.config import SoCConfig

#: Version of the snapshot schema.  Bump whenever any component's
#: ``state_dict`` shape changes; old blobs then read as misses/rejects
#: rather than as subtly wrong machines.
SCHEMA_VERSION = 1

Snapshot = typing.Dict[str, object]


def snapshot_soc(soc: SoC) -> Snapshot:
    """Capture a quiescent machine into a versioned, JSON-able envelope.

    Raises :class:`~repro.errors.SimulationError` if the machine is not
    quiescent (call :meth:`SoC.quiesce` first).
    """
    return {
        "schema": SCHEMA_VERSION,
        "config_digest": stable_digest(soc.config),
        "state": soc.state_dict(),
    }


def check_snapshot(snapshot: typing.Mapping[str, object], config: "SoCConfig") -> None:
    """Validate an envelope against the schema and a target config."""
    if not isinstance(snapshot, dict) or "schema" not in snapshot:
        raise CheckpointError("not a checkpoint snapshot (missing schema field)")
    if snapshot["schema"] != SCHEMA_VERSION:
        raise CheckpointError(
            f"snapshot schema v{snapshot['schema']} does not match this "
            f"build's v{SCHEMA_VERSION}; re-run the prefix"
        )
    digest = stable_digest(config)
    if snapshot.get("config_digest") != digest:
        raise CheckpointError(
            "snapshot was taken under a different SoC config "
            f"({snapshot.get('config_digest')!r} != {digest!r})"
        )


def restore_soc(config: "SoCConfig", snapshot: typing.Mapping[str, object]) -> SoC:
    """Build a fresh machine from ``config`` and load ``snapshot`` into it.

    The returned machine is indistinguishable from the one that produced
    the snapshot: same clocks, same RNG stream positions, same cache
    lines, same metrics.  Continuing it replays the exact event stream a
    cold run would have produced from the same point.
    """
    check_snapshot(snapshot, config)
    soc = SoC(config)
    soc.load_state(typing.cast(dict, snapshot["state"]))
    return soc


def snapshot_bytes(snapshot: typing.Mapping[str, object]) -> bytes:
    """Canonical serialized form (sorted keys, compact separators)."""
    return json.dumps(
        snapshot, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def snapshot_from_bytes(blob: bytes) -> Snapshot:
    """Parse a blob produced by :func:`snapshot_bytes`."""
    try:
        snapshot = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint blob: {exc}") from exc
    if not isinstance(snapshot, dict):
        raise CheckpointError("corrupt checkpoint blob: not an object")
    return snapshot
