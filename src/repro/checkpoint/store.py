"""Content-addressed on-disk store of quiescent-machine snapshots.

A warm prefix is a deterministic function of ``(code, config, prefix
seed)``, exactly like a cached trial outcome, so its snapshot is
addressed the same way :class:`~repro.exec.cache.ResultCache` addresses
results:

    SHA-256(config digest || code fingerprint || prefix label || seed)

Any code change invalidates every blob; any config or seed change
addresses a different one.  Blobs are the canonical JSON bytes of a
:mod:`repro.checkpoint.snapshot` envelope — no pickle — written with the
same temp-file + atomic-rename discipline as the result cache so
concurrent sweep processes sharing one store directory never read a torn
entry.  Unreadable, unparsable or schema-stale blobs are evicted and
counted, then treated as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
import tempfile
import typing

from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    Snapshot,
    snapshot_bytes,
    snapshot_from_bytes,
)
from repro.errors import CheckpointError
from repro.exec.seeds import stable_digest


@dataclasses.dataclass
class StoreStats:
    """Hit/miss/evict accounting for one store instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> typing.Dict[str, int]:
        """Counter view for JSON footers and telemetry events."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def publish_to(self, registry, prefix: str = "exec.checkpoint") -> None:
        """Register the counters as first-class metrics on ``registry``."""
        for key, value in self.as_dict().items():
            registry.counter(f"{prefix}.{key}").inc(value)

    def summary(self) -> str:
        if self.lookups == 0 and self.stores == 0:
            return "checkpoints: unused"
        return (
            f"checkpoints: {self.hits} hits / {self.misses} misses, "
            f"{self.stores} stored, {self.evictions} evicted"
        )


class CheckpointStore:
    """Filesystem-backed, content-addressed store of snapshot blobs."""

    def __init__(
        self,
        root: typing.Union[str, os.PathLike],
        fingerprint: typing.Optional[str] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self._fingerprint = fingerprint
        self.stats = StoreStats()

    @property
    def fingerprint(self) -> str:
        # Lazy: workers that only ever get() by a precomputed key never
        # pay for hashing the whole source tree.
        if self._fingerprint is None:
            from repro.exec.fingerprint import code_fingerprint

            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def key_for(self, config: object, label: str, seed: int) -> str:
        """The content address of one warm prefix."""
        material = f"{stable_digest(config)}|{self.fingerprint}|{label}|{seed}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> typing.Optional[Snapshot]:
        """Return the stored snapshot or ``None`` on a miss."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            return None
        try:
            snapshot = snapshot_from_bytes(blob)
            # Blobs are either bare envelopes or fork docs wrapping one
            # under "snapshot"; both carry the schema version.
            envelope = snapshot.get("snapshot", snapshot)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
            ):
                raise CheckpointError("stale snapshot schema")
        except CheckpointError:
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return snapshot

    def put(self, key: str, snapshot: typing.Mapping[str, object]) -> None:
        """Store one snapshot; atomic against concurrent writers."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(snapshot_bytes(snapshot))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every blob; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))


def resolve_state(
    params: typing.Mapping[str, object],
) -> typing.Optional[Snapshot]:
    """Fetch the prefix snapshot a sweep harness injected into ``params``.

    The executor's serial path injects the snapshot inline under
    ``_ckpt_state``; the parallel path injects a store root and key
    (``_ckpt_store``/``_ckpt_key``) so worker processes read the blob
    from disk.  Returns ``None`` when neither is present — the trial then
    runs from a cold start.
    """
    inline = params.get("_ckpt_state")
    if inline is not None:
        return typing.cast(Snapshot, inline)
    root = params.get("_ckpt_store")
    key = params.get("_ckpt_key")
    if root is None or key is None:
        return None
    return CheckpointStore(typing.cast(str, root)).get(str(key))


#: Params keys the prefix machinery owns; stripped before a trial's real
#: parameters are digested for the result cache.
PREFIX_PARAM_KEYS = ("_ckpt_state", "_ckpt_store", "_ckpt_key", "_ckpt_label")


def strip_prefix_params(params: typing.Mapping[str, object]) -> typing.Dict[str, object]:
    """``params`` minus the executor-injected checkpoint plumbing."""
    return {k: v for k, v in params.items() if k not in PREFIX_PARAM_KEYS}
