"""``python -m repro.checkpoint`` — cold-vs-forked equivalence smoke.

The checkpoint contract (DESIGN §12) promises that forking a trial from
a restored snapshot is a *scheduling* decision: the forked run must be
byte-identical to a cold start.  This CLI checks that promise end to end
on one figure per channel family:

* an LLC PRIME+PROBE transmission (GPU→CPU), forked from the
  post-session-build barrier, and
* a contention-channel transmission, forked from the prepared machine.

Each check runs the transmission cold, then again from a snapshot doc
that round-trips through canonical JSON bytes (exactly what a
:class:`~repro.checkpoint.CheckpointStore` blob holds), and compares the
full results — payloads, received bits, elapsed simulated time, and
metadata — as canonical byte strings.  Exit code 0 when every check
matches, 1 otherwise, so CI can gate on it directly::

    python -m repro.checkpoint --bits 16 --seed 3
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.checkpoint.snapshot import snapshot_bytes, snapshot_from_bytes
from repro.core.channel import ChannelResult
from repro.exec.seeds import canonical_repr


def _result_bytes(result: ChannelResult) -> bytes:
    """The full observable outcome of a transmission, canonicalized."""
    doc = {
        "direction": result.direction.name,
        "sent": result.sent,
        "received": result.received,
        "elapsed_fs": result.elapsed_fs,
        "meta": result.meta,
    }
    return canonical_repr(doc).encode("utf-8")


def check_contention(n_bits: int, seed: int) -> typing.Tuple[bool, str]:
    from repro.core.contention_channel import (
        ContentionChannel,
        ContentionChannelConfig,
    )
    from repro.core.contention_channel import fork

    channel = ContentionChannel(ContentionChannelConfig())
    cold = channel.transmit(n_bits=n_bits, seed=seed)
    doc = snapshot_from_bytes(
        snapshot_bytes(fork.prepare_doc(channel, seed))
    )
    forked = fork.transmit_from_doc(channel, doc, n_bits=n_bits, seed=seed)
    same = _result_bytes(cold) == _result_bytes(forked)
    return same, f"contention: {cold.summary()}"


def check_llc(n_bits: int, seed: int) -> typing.Tuple[bool, str]:
    from repro.core.llc_channel import LLCChannel, LLCChannelConfig
    from repro.core.llc_channel import fork

    channel = LLCChannel(LLCChannelConfig())
    cold = channel.transmit(n_bits=n_bits, seed=seed)
    doc = snapshot_from_bytes(
        snapshot_bytes(fork.prepare_doc(channel, seed))
    )
    forked = fork.transmit_from_doc(channel, doc, n_bits=n_bits, seed=seed)
    same = _result_bytes(cold) == _result_bytes(forked)
    return same, f"llc: {cold.summary()}"


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkpoint",
        description="Byte-compare cold runs against checkpoint-forked runs.",
    )
    parser.add_argument(
        "--bits", type=int, default=16, metavar="N",
        help="payload bits per transmission (default: 16)",
    )
    parser.add_argument(
        "--seed", type=int, default=3, metavar="SEED",
        help="machine/payload seed (default: 3)",
    )
    parser.add_argument(
        "--only", choices=("llc", "contention"), default=None,
        help="run a single check instead of both",
    )
    args = parser.parse_args(argv)

    checks = {"llc": check_llc, "contention": check_contention}
    if args.only:
        checks = {args.only: checks[args.only]}

    failures = 0
    for name, check in checks.items():
        same, summary = check(args.bits, args.seed)
        verdict = "identical" if same else "MISMATCH"
        print(f"[{verdict}] cold vs forked — {summary}")
        if not same:
            failures += 1
    if failures:
        print(f"{failures} check(s) diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
