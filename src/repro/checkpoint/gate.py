"""Global switch for checkpoint/fork sweep execution.

Mirrors :mod:`repro.sim.fastpath`: the flag is read by the sweep
harnesses and the executor when they *decide* whether to share a warm
prefix across trials.  It is a scheduling decision, not a simulation
semantic — forked trials are pinned bit-identical to cold starts by the
equivalence suite (``tests/test_checkpoint.py``) — so flipping it changes
wall time only.  Default is on; set ``REPRO_CHECKPOINT=0`` in the
environment to run every trial from a cold start.
"""

from __future__ import annotations

import contextlib
import os
import typing

_ENABLED = os.environ.get("REPRO_CHECKPOINT", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)


def enabled() -> bool:
    """Whether sweeps may fork trials from shared warm checkpoints."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Set the process-wide default for subsequent sweeps."""
    global _ENABLED
    _ENABLED = bool(flag)


@contextlib.contextmanager
def forced(flag: bool) -> typing.Iterator[None]:
    """Temporarily force the flag (the equivalence suite's lever)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        _ENABLED = previous
