"""Virtual memory: page-frame allocation, buffers, and shared virtual memory.

The attack cares about virtual memory for two reasons (§III-C):

* the LLC is physically indexed, and 4 KB pages only pin the low 12 address
  bits, so the attacker uses *huge pages* (up to 1 GB) to know the low 30
  bits of physical addresses when reverse engineering the slice hash;
* OpenCL Shared Virtual Memory + zero-copy buffers let the GPU kernel see
  exactly the CPU process's virtual *and* physical addresses, so eviction
  sets built on the CPU remain valid on the GPU.

We model SVM/zero-copy faithfully by letting a GPU kernel borrow the CPU
process's :class:`AddressSpace`.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.config import MmuConfig
from repro.errors import AllocationError, MemoryModelError
from repro.soc.address import AddressRegion


class Mmu:
    """Owns physical memory and hands out page frames.

    Frames for base pages are drawn pseudo-randomly across the physical
    space (the attacker cannot choose them); huge-page allocations return a
    naturally aligned contiguous block.
    """

    #: Physical region [0, _RESERVED_BASE) is reserved for firmware/kernel,
    #: keeping user allocations away from address zero.
    _RESERVED_BYTES = 1 << 24

    def __init__(self, config: MmuConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self._phys_size = 1 << config.phys_bits
        self._allocated: typing.List[AddressRegion] = [
            AddressRegion(0, self._RESERVED_BYTES)
        ]

    @property
    def phys_size(self) -> int:
        return self._phys_size

    def _region_free(self, region: AddressRegion) -> bool:
        return not any(region.overlaps(existing) for existing in self._allocated)

    def _claim(self, base: int, size: int) -> AddressRegion:
        region = AddressRegion(base, size)
        if region.end > self._phys_size:
            raise AllocationError("allocation exceeds physical memory")
        if not self._region_free(region):
            raise AllocationError("physical region already allocated")
        self._allocated.append(region)
        return region

    def allocate_block(self, size: int, align: int) -> AddressRegion:
        """Allocate a contiguous, ``align``-aligned physical block."""
        if align & (align - 1):
            raise MemoryModelError("alignment must be a power of two")
        slots = (self._phys_size - size) // align
        if slots <= 0:
            raise AllocationError(f"no room for a {size}-byte block")
        for _attempt in range(4096):
            base = int(self._rng.integers(0, slots + 1)) * align
            region = AddressRegion(base, size)
            if region.base >= self._RESERVED_BYTES and self._region_free(region):
                self._allocated.append(region)
                return region
        raise AllocationError("physical memory too fragmented")

    def allocate_frames(self, count: int, frame_bytes: int) -> typing.List[int]:
        """Allocate ``count`` scattered page frames (random placement)."""
        frames: typing.List[int] = []
        for _ in range(count):
            frames.append(self.allocate_block(frame_bytes, frame_bytes).base)
        return frames

    def state_dict(self) -> typing.Dict[str, object]:
        """The allocated-region ledger as ``[base, size]`` pairs.

        Frame placement randomness lives in the MMU's named RNG stream
        (restored via :class:`repro.sim.rng.RngStreams`), so the ledger
        plus the stream position fully reproduce future allocations.
        """
        return {
            "allocated": [[region.base, region.size] for region in self._allocated],
        }

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore the region ledger captured by :meth:`state_dict`."""
        self._allocated = [
            AddressRegion(int(base), int(size))
            for base, size in typing.cast(list, state["allocated"])
        ]

    def free(self, region: AddressRegion) -> None:
        """Return a region to the allocator."""
        try:
            self._allocated.remove(region)
        except ValueError:
            raise MemoryModelError("freeing a region that was never allocated")


class Buffer:
    """A virtually contiguous allocation with a per-page physical mapping."""

    def __init__(
        self, space: "AddressSpace", va_base: int, size: int, page_bytes: int,
        frames: typing.Sequence[int],
    ) -> None:
        self.space = space
        self.va_base = va_base
        self.size = size
        self.page_bytes = page_bytes
        self._frames = list(frames)
        expected = (size + page_bytes - 1) // page_bytes
        if len(self._frames) != expected:
            raise MemoryModelError(
                f"buffer of {size} bytes needs {expected} frames, got {len(self._frames)}"
            )

    @property
    def va_end(self) -> int:
        return self.va_base + self.size

    @property
    def is_physically_contiguous(self) -> bool:
        """Whether the backing frames form one contiguous physical run."""
        return all(
            self._frames[i] + self.page_bytes == self._frames[i + 1]
            for i in range(len(self._frames) - 1)
        )

    def paddr_of(self, offset: int) -> int:
        """Physical address of byte ``offset`` within the buffer."""
        if not 0 <= offset < self.size:
            raise MemoryModelError(f"offset {offset} outside buffer of {self.size}")
        page, within = divmod(offset, self.page_bytes)
        return self._frames[page] + within

    def vaddr_of(self, offset: int) -> int:
        """Virtual address of byte ``offset`` within the buffer."""
        if not 0 <= offset < self.size:
            raise MemoryModelError(f"offset {offset} outside buffer of {self.size}")
        return self.va_base + offset

    def offset_of_vaddr(self, vaddr: int) -> int:
        """Byte offset corresponding to a virtual address in this buffer."""
        if not self.va_base <= vaddr < self.va_end:
            raise MemoryModelError(f"vaddr {vaddr:#x} outside buffer")
        return vaddr - self.va_base

    def line_offsets(self, line_bytes: int) -> range:
        """Offsets of every line-aligned element in the buffer."""
        return range(0, self.size - (self.size % line_bytes), line_bytes)

    def line_paddrs(self, line_bytes: int) -> typing.List[int]:
        """Physical addresses of every full cache line in the buffer."""
        return [self.paddr_of(off) for off in self.line_offsets(line_bytes)]


class AddressSpace:
    """One process's virtual address space.

    A GPU kernel launched by the process shares this object (OpenCL SVM /
    zero-copy), giving it an identical view of both virtual and physical
    addresses — the property the paper exploits to reuse CPU-built eviction
    sets on the GPU.
    """

    _VA_BASE = 0x0000_5555_0000_0000

    def __init__(self, mmu: Mmu, name: str = "proc") -> None:
        self.mmu = mmu
        self.name = name
        self._next_va = self._VA_BASE
        self._buffers: typing.List[Buffer] = []

    def mmap(self, size: int, page_bytes: typing.Optional[int] = None) -> Buffer:
        """Allocate a buffer backed by scattered base pages (default) or,
        when ``page_bytes`` is larger, by contiguous aligned huge pages."""
        if size <= 0:
            raise MemoryModelError("buffer size must be positive")
        page = page_bytes or self.mmu.config.page_bytes
        if page & (page - 1):
            raise MemoryModelError("page size must be a power of two")
        count = (size + page - 1) // page
        if page > self.mmu.config.page_bytes:
            # Huge pages: contiguous and naturally aligned.
            block = self.mmu.allocate_block(count * page, page)
            frames = [block.base + i * page for i in range(count)]
        else:
            frames = self.mmu.allocate_frames(count, page)
        va_base = self._next_va
        self._next_va += count * page
        buffer = Buffer(self, va_base, size, page, frames)
        self._buffers.append(buffer)
        return buffer

    def mmap_huge(self, size: int) -> Buffer:
        """Allocate with the configured huge-page size (1 GB by default)."""
        return self.mmap(size, page_bytes=self.mmu.config.huge_page_bytes)

    def translate(self, vaddr: int) -> int:
        """Virtual-to-physical translation across all buffers."""
        for buffer in self._buffers:
            if buffer.va_base <= vaddr < buffer.va_end:
                return buffer.paddr_of(vaddr - buffer.va_base)
        raise MemoryModelError(f"unmapped virtual address {vaddr:#x}")

    @property
    def buffers(self) -> typing.Tuple[Buffer, ...]:
        return tuple(self._buffers)
