"""The simulated SoC substrate: memory, caches, interconnect, wiring.

Everything in this package is *passive state plus timed access paths*; the
active agents (CPU programs, GPU kernels) live in :mod:`repro.cpu` and
:mod:`repro.gpu` and drive these models through the access-path generators
exposed by :class:`repro.soc.machine.SoC`.
"""

from repro.soc.address import AddressRegion, line_address, line_index, offset_in_line
from repro.soc.cache import AccessResult, SetAssocCache
from repro.soc.machine import SoC
from repro.soc.mmu import AddressSpace, Buffer, Mmu
from repro.soc.slice_hash import SliceHash

__all__ = [
    "AccessResult",
    "AddressRegion",
    "AddressSpace",
    "Buffer",
    "Mmu",
    "SetAssocCache",
    "SliceHash",
    "SoC",
    "line_address",
    "line_index",
    "offset_in_line",
]
