"""Physical-address helpers.

Addresses are plain integers.  All caches share one line size, so helpers
take the line size explicitly rather than capturing global state.
"""

from __future__ import annotations

import dataclasses

from repro.errors import MemoryModelError


def line_address(paddr: int, line_bytes: int) -> int:
    """The address of the first byte of the line containing ``paddr``."""
    return paddr & ~(line_bytes - 1)


def line_index(paddr: int, line_bytes: int) -> int:
    """The line number of ``paddr`` (address divided by line size)."""
    return paddr >> (line_bytes.bit_length() - 1)


def offset_in_line(paddr: int, line_bytes: int) -> int:
    """The byte offset of ``paddr`` within its cache line."""
    return paddr & (line_bytes - 1)


def extract_bits(value: int, low: int, count: int) -> int:
    """Bits ``[low, low+count)`` of ``value`` as an integer."""
    return (value >> low) & ((1 << count) - 1)


def parity(value: int) -> int:
    """XOR-reduction (parity) of the set bits of ``value``."""
    return bin(value).count("1") & 1


@dataclasses.dataclass(frozen=True)
class AddressRegion:
    """A contiguous physical address range ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise MemoryModelError(f"invalid region base={self.base} size={self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, paddr: int) -> bool:
        return self.base <= paddr < self.end

    def overlaps(self, other: "AddressRegion") -> bool:
        return self.base < other.end and other.base < self.end

    def lines(self, line_bytes: int):
        """Iterate over the line addresses covered by this region."""
        first = line_address(self.base, line_bytes)
        addr = first
        while addr < self.end:
            yield addr
            addr += line_bytes
