"""The shared, sliced last-level cache.

Geometry follows §III-C: 8 MB total, 4 slices of 2 MB, 16 ways, 64-byte
lines, 2048 sets per slice.  The slice is chosen by the complex XOR hash
(Eq. (1)/(2)); the set within the slice comes from the address bits just
above the line offset.  The LLC is inclusive of the CPU's L1/L2 (the SoC
wiring issues back-invalidations on eviction) but *not* of the GPU L3.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import LlcConfig
from repro.errors import CacheGeometryError
from repro.soc.address import extract_bits, line_address
from repro.soc.cache import AccessResult, SetAssocCache
from repro.soc.replacement import TrueLru
from repro.soc.slice_hash import SliceHash


@dataclasses.dataclass(frozen=True)
class LlcLocation:
    """A (slice, set) coordinate in the LLC."""

    slice_index: int
    set_index: int

    def global_set(self, sets_per_slice: int) -> int:
        """A single integer identifying this set across all slices."""
        return self.slice_index * sets_per_slice + self.set_index


class SlicedLlc:
    """Four independent slice arrays behind one addressing function."""

    def __init__(self, config: LlcConfig) -> None:
        config.validate()
        self.config = config
        self.hash = SliceHash(
            [config.hash_s0_mask, config.hash_s1_mask], config.slices
        )
        self._slices = [
            SetAssocCache(
                name=f"llc-slice{i}",
                n_sets=config.sets_per_slice,
                ways=config.ways,
                line_bytes=config.line_bytes,
                policy=TrueLru(config.ways),
                index_fn=self._set_index,
            )
            for i in range(config.slices)
        ]

    def _set_index(self, paddr: int) -> int:
        return extract_bits(paddr, self.config.offset_bits, self.config.set_index_bits)

    def location_of(self, paddr: int) -> LlcLocation:
        """Which (slice, set) a physical address maps to."""
        return LlcLocation(self.hash.slice_of(paddr), self._set_index(paddr))

    def slice_cache(self, slice_index: int) -> SetAssocCache:
        """Direct access to one slice's array (tests, mitigations)."""
        if not 0 <= slice_index < self.config.slices:
            raise CacheGeometryError(f"no such LLC slice: {slice_index}")
        return self._slices[slice_index]

    def access(
        self, paddr: int, allowed_ways: typing.Optional[typing.Sequence[int]] = None
    ) -> AccessResult:
        """Access (and fill on miss) the line holding ``paddr``."""
        return self._slices[self.hash.slice_of(paddr)].access(paddr, allowed_ways)

    def contains(self, paddr: int) -> bool:
        """Presence check without touching replacement state."""
        return self._slices[self.hash.slice_of(paddr)].contains(paddr)

    def invalidate(self, paddr: int) -> bool:
        """Drop the line holding ``paddr`` (e.g. on clflush)."""
        return self._slices[self.hash.slice_of(paddr)].invalidate(paddr)

    def lines_in_set(self, location: LlcLocation) -> typing.Tuple[int, ...]:
        """Resident line addresses of one (slice, set)."""
        return self._slices[location.slice_index].lines_in_set(location.set_index)

    def same_set(self, paddr_a: int, paddr_b: int) -> bool:
        """Whether two physical addresses collide in one LLC set."""
        return self.location_of(paddr_a) == self.location_of(paddr_b)

    def flush_all(self) -> None:
        """Empty every slice."""
        for slice_cache in self._slices:
            slice_cache.flush_all()

    @property
    def total_sets(self) -> int:
        return self.config.slices * self.config.sets_per_slice

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._slices)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._slices)

    def line_of(self, paddr: int) -> int:
        """Line-align a physical address using the LLC line size."""
        return line_address(paddr, self.config.line_bytes)

    def state_dict(self) -> typing.Dict[str, object]:
        """Every slice's line + replacement state (checkpoint contract)."""
        return {"slices": [s.state_dict() for s in self._slices]}

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        slices = typing.cast(list, state["slices"])
        if len(slices) != len(self._slices):
            raise CacheGeometryError(
                f"snapshot has {len(slices)} LLC slices, machine has "
                f"{len(self._slices)}"
            )
        for slice_cache, slice_state in zip(self._slices, slices):
            slice_cache.load_state(slice_state)

    def stats_dict(self) -> typing.Dict[str, object]:
        """Aggregate plus per-slice counters for the metrics registry."""
        stats: typing.Dict[str, object] = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": sum(s.evictions for s in self._slices),
        }
        for index, slice_cache in enumerate(self._slices):
            stats[f"slice{index}"] = slice_cache.stats_dict()
        return stats
