"""The GPU's L3 data cache.

§III-D reverse engineers the structure: 64-byte lines; placement is fixed
by the low address bits — in order above the byte offset: the set within a
bank, the bank, and the sub-bank (6 + 5 + 2 + 3 = 16 bits at full scale).
The replacement policy is a binary-tree pseudo-LRU, and the cache is
**non-inclusive** with the LLC: evicting a line from the LLC (e.g. with
``clflush`` from the CPU) leaves the GPU L3 copy intact.  That property is
what forces the attacker to build L3 eviction sets from the GPU side.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import GpuL3Config
from repro.soc.address import extract_bits
from repro.soc.cache import AccessResult, SetAssocCache
from repro.soc.replacement import TreePlru


@dataclasses.dataclass(frozen=True)
class L3Placement:
    """Decomposition of an address's L3 placement (paper's terminology)."""

    set_in_bank: int
    bank: int
    subbank: int

    def flat_index(self, config: GpuL3Config) -> int:
        set_bits = config.sets_per_bank.bit_length() - 1
        bank_bits = config.banks.bit_length() - 1
        return (
            self.set_in_bank
            | (self.bank << set_bits)
            | (self.subbank << (set_bits + bank_bits))
        )


class GpuL3:
    """Banked L3 behind one flat placement index."""

    def __init__(self, config: GpuL3Config) -> None:
        config.validate()
        self.config = config
        self._set_bits = config.sets_per_bank.bit_length() - 1
        self._bank_bits = config.banks.bit_length() - 1
        self._subbank_bits = config.subbanks.bit_length() - 1
        self._cache = SetAssocCache(
            name="gpu-l3",
            n_sets=config.total_sets,
            ways=config.ways,
            line_bytes=config.line_bytes,
            policy=TreePlru(config.ways),
            index_fn=self.flat_index_of,
        )

    def placement_of(self, paddr: int) -> L3Placement:
        """Decode the (set, bank, sub-bank) placement of an address."""
        low = self.config.offset_bits
        set_in_bank = extract_bits(paddr, low, self._set_bits)
        bank = extract_bits(paddr, low + self._set_bits, self._bank_bits)
        subbank = extract_bits(
            paddr, low + self._set_bits + self._bank_bits, self._subbank_bits
        )
        return L3Placement(set_in_bank=set_in_bank, bank=bank, subbank=subbank)

    def flat_index_of(self, paddr: int) -> int:
        """The flat set index used by the storage array."""
        low = self.config.offset_bits
        total_bits = self._set_bits + self._bank_bits + self._subbank_bits
        return extract_bits(paddr, low, total_bits)

    def same_set(self, paddr_a: int, paddr_b: int) -> bool:
        """Whether two addresses collide in one L3 set.

        Equivalent to "same low ``placement_bits`` address bits above the
        offset" — the §III-D observation the eviction sets are built on.
        """
        return self.flat_index_of(paddr_a) == self.flat_index_of(paddr_b)

    def access(self, paddr: int) -> AccessResult:
        """Access (and fill on miss) the line holding ``paddr``."""
        return self._cache.access(paddr)

    def contains(self, paddr: int) -> bool:
        return self._cache.contains(paddr)

    def invalidate(self, paddr: int) -> bool:
        return self._cache.invalidate(paddr)

    def lines_in_set(self, flat_index: int) -> typing.Tuple[int, ...]:
        return self._cache.lines_in_set(flat_index)

    def flush_all(self) -> None:
        self._cache.flush_all()

    def resident_lines(self) -> typing.Iterator[int]:
        return self._cache.resident_lines()

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def capacity_bytes(self) -> int:
        return self._cache.capacity_bytes

    def stats_dict(self) -> typing.Dict[str, object]:
        """The backing array's counters for the metrics registry."""
        return self._cache.stats_dict()

    def state_dict(self) -> typing.Dict[str, object]:
        """The backing array's full state (checkpoint contract)."""
        return self._cache.state_dict()

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._cache.load_state(state)

    def __len__(self) -> int:
        return len(self._cache)
