"""Shared Local Memory (SLM).

Each subslice carries 64 KB of SLM inside the L3 complex but on a separate
data path (§II-A / §III-D): SLM traffic neither suffers from nor causes L3
or ring contention.  That isolation is precisely why the paper's custom
timer lives here — its counter updates are not perturbed by the memory
traffic being measured.

The atomic counter itself is modeled in :mod:`repro.gpu.timer`; this module
provides the storage abstraction and its latency.
"""

from __future__ import annotations

import typing

from repro.config import SlmConfig
from repro.errors import GpuModelError


class SharedLocalMemory:
    """Per-subslice scratch storage, private to one work-group."""

    def __init__(self, config: SlmConfig, subslice: int) -> None:
        config.validate()
        self.config = config
        self.subslice = subslice
        self._words: typing.Dict[int, int] = {}
        self._allocated = 0

    def alloc_word(self) -> int:
        """Reserve one 4-byte word; returns its SLM offset."""
        offset = self._allocated
        self._allocated += 4
        if self._allocated > self.config.bytes_per_subslice:
            raise GpuModelError("SLM allocation exceeds 64 KB per subslice")
        self._words[offset] = 0
        return offset

    def load(self, offset: int) -> int:
        if offset not in self._words:
            raise GpuModelError(f"SLM load from unallocated offset {offset}")
        return self._words[offset]

    def store(self, offset: int, value: int) -> None:
        if offset not in self._words:
            raise GpuModelError(f"SLM store to unallocated offset {offset}")
        self._words[offset] = value

    def atomic_add(self, offset: int, delta: int) -> int:
        """Atomically add ``delta``; returns the *old* value (OpenCL semantics)."""
        old = self.load(offset)
        self.store(offset, old + delta)
        return old

    @property
    def access_cycles(self) -> int:
        """GPU cycles for one SLM access (separate path from L3)."""
        return self.config.access_cycles

    def state_dict(self) -> typing.Dict[str, object]:
        """Allocation watermark + word contents (JSON string keys)."""
        return {
            "allocated": self._allocated,
            "words": {str(offset): value for offset, value in self._words.items()},
        }

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._allocated = int(typing.cast(int, state["allocated"]))
        self._words = {
            int(offset): int(value)
            for offset, value in typing.cast(dict, state["words"]).items()
        }
