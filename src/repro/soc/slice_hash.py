"""The LLC complex slice-selection hash.

Intel does not document the function; §III-C of the paper reverse engineers
it for the i7-7700k as two XOR-reductions over physical-address bits
(Eq. (1) and Eq. (2)).  This module implements that exact function, plus the
generic form (arbitrary masks) used by the reverse-engineering code in
:mod:`repro.core.reverse_engineering.slice_hash_re`, which must *recover*
the masks from timing alone.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.soc.address import parity


class SliceHash:
    """XOR-mask slice selector: output bit i = parity(paddr & masks[i])."""

    def __init__(self, masks: typing.Sequence[int], n_slices: int) -> None:
        if n_slices & (n_slices - 1):
            raise ConfigError("slice count must be a power of two")
        needed_bits = max(0, n_slices.bit_length() - 1)
        if len(masks) < needed_bits:
            raise ConfigError(
                f"{n_slices} slices need {needed_bits} hash bits, got {len(masks)}"
            )
        self.masks = tuple(int(m) for m in masks)
        self.n_slices = n_slices
        self._used_bits = needed_bits

    def slice_of(self, paddr: int) -> int:
        """The LLC slice index of a physical address."""
        value = 0
        for position in range(self._used_bits):
            value |= parity(paddr & self.masks[position]) << position
        return value

    def mask_bits(self, position: int) -> typing.Tuple[int, ...]:
        """The physical-address bit positions feeding hash output bit ``position``."""
        mask = self.masks[position]
        return tuple(bit for bit in range(mask.bit_length()) if mask >> bit & 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SliceHash):
            return NotImplemented
        return (
            self.n_slices == other.n_slices
            and self.masks[: self._used_bits] == other.masks[: other._used_bits]
        )

    def __hash__(self) -> int:
        return hash((self.n_slices, self.masks[: self._used_bits]))

    def __repr__(self) -> str:
        masks = ", ".join(hex(m) for m in self.masks[: self._used_bits])
        return f"SliceHash(n_slices={self.n_slices}, masks=[{masks}])"
