"""SoC wiring: the timed access paths through the memory system.

This module composes the passive models (caches, ring, DRAM) into the two
asymmetric pathways the paper reverse engineers:

* **CPU path**: L1 → L2 → (ring) → LLC → (DRAM).  L1/L2 are inclusive of
  the LLC; LLC evictions back-invalidate every core's private caches.
* **GPU path**: L3 → (ring) → LLC → (DRAM).  The L3 is *non-inclusive*:
  neither LLC evictions nor CPU ``clflush`` reach into it.

Both paths share the LLC arrays and the ring resource — the two contention
domains the covert channels are built on.  Access paths are generators
composable with ``yield from``; each returns the latency it took, in
femtoseconds, which is what the attacking agents' timers measure.
"""

from __future__ import annotations

import typing

from repro.config import SoCConfig, kaby_lake
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import recorder as _recorder
from repro.sim import FS_PER_S, RngStreams
from repro.sim import fastpath as _fastpath
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.soc.cpu_cache import CpuCoreCaches
from repro.soc.dram import Dram
from repro.soc.gpu_l3 import GpuL3
from repro.soc.llc import SlicedLlc
from repro.soc.mmu import AddressSpace, Mmu
from repro.soc.ring import Ring
from repro.soc.slm import SharedLocalMemory

AccessGen = typing.Generator[object, object, int]


def _flatten(
    node: typing.Mapping[str, object], prefix: str
) -> typing.Iterator[typing.Tuple[str, object]]:
    """Yield ``(dotted_name, leaf)`` pairs of a component stats dict."""
    for key, value in node.items():
        dotted = f"{prefix}.{key}"
        if isinstance(value, dict):
            yield from _flatten(value, dotted)
        else:
            yield dotted, value


class SoC:
    """A simulated integrated CPU-GPU system."""

    def __init__(self, config: typing.Optional[SoCConfig] = None) -> None:
        self.config = (config or kaby_lake()).validate()
        self.engine = Engine()
        self.rng = RngStreams(self.config.seed)
        self.mmu = Mmu(self.config.mmu, self.rng.stream("mmu"))
        self.dram = Dram(self.config.dram, self.rng.stream("dram"))
        self.ring = Ring(self.engine, self.config.ring, self.config.cpu_clock)
        self.llc = SlicedLlc(self.config.llc)
        self.cpu_caches = [
            CpuCoreCaches(self.config.cpu_cache, core)
            for core in range(self.config.cpu_cores)
        ]
        self.gpu_l3 = GpuL3(self.config.gpu_l3)
        self.slm = [
            SharedLocalMemory(self.config.slm, subslice)
            for subslice in range(self.config.gpu.total_subslices)
        ]
        # Way partition applied to LLC fills, keyed by "cpu"/"gpu".
        # None means unrestricted (no mitigation active).
        self.llc_partition: typing.Optional[typing.Dict[str, typing.Tuple[int, ...]]] = None
        self._noise_process: typing.Optional[Process] = None
        self._noise_lines: typing.List[int] = []
        self._line_slots = self.ring.slots_for_line(self.config.llc.line_bytes)
        # Per-core OS preemption windows (timer interrupts, §V error floor).
        self._core_stall_until = [0] * self.config.cpu_cores
        self._tick_process: typing.Optional[Process] = None
        # ------------------------------------------------------------------
        # Fast path (see repro.sim.fastpath).  Sampled once so this machine
        # is consistently fast or consistently slow; the precomputed fixed
        # latencies below feed the coalesced access paths and bursts.
        self._fastpath = _fastpath.enabled()
        cache_cfg = self.config.cpu_cache
        self._l1_hit_fs = self.cpu_cycles_fs(cache_cfg.l1_hit_cycles)
        self._l2_hit_fs = self.cpu_cycles_fs(cache_cfg.l2_hit_cycles)
        self._l3_hit_fs = self.gpu_cycles_fs(self.config.gpu_l3.hit_cycles)
        llc_lookup_fs = self.cpu_cycles_fs(self.config.llc.lookup_cycles)
        gpu_traverse_fs = (
            self.ring.traverse_fs * self.config.ring.gpu_traverse_multiplier
        )
        self._cpu_pre_fs = self._l2_hit_fs + self.ring.traverse_fs
        self._cpu_tail_base_fs = llc_lookup_fs + self.ring.traverse_fs
        self._gpu_pre_fs = self._l3_hit_fs + gpu_traverse_fs
        self._gpu_tail_base_fs = llc_lookup_fs + gpu_traverse_fs
        self._core_tracks = [
            f"cpu.core{core}" for core in range(self.config.cpu_cores)
        ]
        # ------------------------------------------------------------------
        # Fault injection (see repro.faults).  Every SLM timer registers
        # itself here so the clock-drift injector can reach it; the probe
        # hook lets the handshake-fault injector classify light polls.
        # Both stay None/empty on a healthy machine.
        self.slm_timers: typing.List[object] = []
        self.probe_fault_hook: typing.Optional[
            typing.Callable[[], typing.Optional[str]]
        ] = None
        self._fault_suite: typing.Optional[object] = None
        # ------------------------------------------------------------------
        # Observability.  Sinks resolve once, here; when tracing is off
        # every emit site below is a single `is None` check.  The latency
        # histograms are likewise armed only when observability is on, so
        # the quiet path records nothing.
        self.metrics = MetricsRegistry(
            reservoir=self.config.obs.histogram_reservoir
        )
        self._trace_cache = _recorder.sink_for("cache.access")
        self._trace_evict = _recorder.sink_for("cache.evict")
        self._trace_dram = _recorder.sink_for("dram.access")
        self.obs_enabled = self.config.obs.enabled or _recorder.enabled
        if self.obs_enabled:
            self._lat_cpu: typing.Optional[list] = [
                self.metrics.histogram(f"cpu.core{core}.access_latency_ns")
                for core in range(self.config.cpu_cores)
            ]
            self._lat_gpu = self.metrics.histogram("gpu.access_latency_ns")
            self._lat_dram = self.metrics.histogram("dram.latency_ns")
        else:
            self._lat_cpu = None
            self._lat_gpu = None
            self._lat_dram = None

    # ------------------------------------------------------------------
    # Setup helpers

    def new_process(self, name: str) -> AddressSpace:
        """Create a fresh user process address space."""
        return AddressSpace(self.mmu, name=name)

    def set_llc_partition(
        self,
        cpu_ways: typing.Sequence[int],
        gpu_ways: typing.Sequence[int],
    ) -> None:
        """Activate the §VI way-partitioning mitigation."""
        overlap = set(cpu_ways) & set(gpu_ways)
        if overlap:
            raise SimulationError(f"partitions overlap on ways {sorted(overlap)}")
        self.llc_partition = {"cpu": tuple(cpu_ways), "gpu": tuple(gpu_ways)}

    def clear_llc_partition(self) -> None:
        """Deactivate LLC way partitioning."""
        self.llc_partition = None

    def _fill_ways(self, domain: str) -> typing.Optional[typing.Tuple[int, ...]]:
        if self.llc_partition is None:
            return None
        return self.llc_partition[domain]

    # ------------------------------------------------------------------
    # Clock helpers

    def cpu_cycles_fs(self, cycles: float) -> int:
        return self.config.cpu_clock.cycles_fs(cycles)

    def gpu_cycles_fs(self, cycles: float) -> int:
        return self.config.gpu_clock.cycles_fs(cycles)

    @property
    def now_fs(self) -> int:
        return self.engine.now

    # ------------------------------------------------------------------
    # CPU access path

    def _llc_evict_cpu_side(self, evicted: typing.Optional[int]) -> None:
        """Inclusive back-invalidation: LLC eviction purges CPU caches.

        Deliberately does *not* touch the GPU L3 (non-inclusive, §III-D).
        """
        if evicted is None:
            return
        for caches in self.cpu_caches:
            caches.invalidate(evicted)

    def stall_if_preempted(self, core: int) -> AccessGen:
        """Hold the program while the OS has preempted its core."""
        start = self.engine.now
        stall_until = self._core_stall_until[core]
        if stall_until > start:
            yield stall_until - start
        return self.engine.now - start

    def preempt_core(self, core: int, duration_fs: int) -> None:
        """Descheduled window: stall ``core`` for ``duration_fs`` from now.

        Used by the OS-tick model and the fault-injection preemption
        injector; overlapping windows extend rather than truncate.
        """
        self._core_stall_until[core] = max(
            self._core_stall_until[core], self.engine.now + int(duration_fs)
        )

    def _record_cpu_latency(self, core: int, latency_fs: int) -> None:
        if self._lat_cpu is not None:
            self._lat_cpu[core].add(latency_fs / 1e6)

    def cpu_access(self, core: int, paddr: int) -> AccessGen:
        """One CPU load (or write-allocate store); returns latency in fs."""
        if self._fastpath:
            return self._cpu_access_fast(core, paddr)
        return self._cpu_access_slow(core, paddr)

    def _cpu_access_slow(self, core: int, paddr: int) -> AccessGen:
        """Reference path: one yield per pipeline stage."""
        start = self.engine.now
        yield from self.stall_if_preempted(core)
        caches = self.cpu_caches[core]
        cache_cfg = self.config.cpu_cache
        trace = self._trace_cache
        l1 = caches.l1.access(paddr)
        if l1.hit:
            yield self.cpu_cycles_fs(cache_cfg.l1_hit_cycles)
            if trace is not None:
                trace.emit("cache.access", self.engine.now, f"cpu.core{core}",
                           {"level": "l1", "hit": True, "paddr": paddr})
            latency = self.engine.now - start
            self._record_cpu_latency(core, latency)
            return latency
        l2 = caches.l2.access(paddr)
        if l2.evicted is not None:
            caches.l1.invalidate(l2.evicted)
        if l2.hit:
            yield self.cpu_cycles_fs(cache_cfg.l2_hit_cycles)
            if trace is not None:
                trace.emit("cache.access", self.engine.now, f"cpu.core{core}",
                           {"level": "l2", "hit": True, "paddr": paddr})
            latency = self.engine.now - start
            self._record_cpu_latency(core, latency)
            return latency
        # Private caches missed: cross the ring to the LLC slice.
        yield self.cpu_cycles_fs(cache_cfg.l2_hit_cycles) + self.ring.traverse_fs
        yield from self.ring.transfer(self._line_slots, "cpu")
        llc = self.llc.access(paddr, allowed_ways=self._fill_ways("cpu"))
        self._llc_evict_cpu_side(llc.evicted)
        if trace is not None:
            location = self.llc.location_of(paddr)
            trace.emit(
                "cache.access", self.engine.now, f"cpu.core{core}",
                {"level": "llc", "hit": llc.hit, "paddr": paddr,
                 "slice": location.slice_index, "set": location.set_index},
            )
        if llc.evicted is not None and self._trace_evict is not None:
            self._trace_evict.emit(
                "cache.evict", self.engine.now, "llc",
                {"line": llc.evicted, "by": f"cpu.core{core}",
                 "set": llc.set_index},
            )
        tail_fs = (
            self.cpu_cycles_fs(self.config.llc.lookup_cycles) + self.ring.traverse_fs
        )
        if not llc.hit:
            dram_fs = self.dram.latency_fs()
            if self._trace_dram is not None:
                self._trace_dram.emit(
                    "dram.access", self.engine.now, "dram",
                    {"requester": f"cpu.core{core}", "latency_ns": dram_fs / 1e6},
                )
            if self._lat_dram is not None:
                self._lat_dram.add(dram_fs / 1e6)
            tail_fs += dram_fs
        yield tail_fs
        latency = self.engine.now - start
        self._record_cpu_latency(core, latency)
        return latency

    def _cpu_access_fast(self, core: int, paddr: int) -> AccessGen:
        """Coalesced path: one yield for a private hit, ≤2 around the ring.

        Observationally equivalent to :meth:`_cpu_access_slow`: every
        cache/ring/DRAM state change and every trace/metrics emit happens
        with the same logical timestamp and in the same cross-agent order
        (folds only happen when no other event can run inside the folded
        window — see DESIGN, "Fast-path contract").
        """
        engine = self.engine
        start = engine._now
        stall_until = self._core_stall_until[core]
        if stall_until > start:
            yield stall_until - start
        caches = self.cpu_caches[core]
        trace = self._trace_cache
        l1 = caches.l1.access(paddr)
        if l1.hit:
            yield self._l1_hit_fs
            if trace is not None:
                trace.emit("cache.access", engine._now, self._core_tracks[core],
                           {"level": "l1", "hit": True, "paddr": paddr})
            latency = engine._now - start
            if self._lat_cpu is not None:
                self._lat_cpu[core].add(latency / 1e6)
            return latency
        l2 = caches.l2.access(paddr)
        if l2.evicted is not None:
            caches.l1.invalidate(l2.evicted)
        if l2.hit:
            yield self._l2_hit_fs
            if trace is not None:
                trace.emit("cache.access", engine._now, self._core_tracks[core],
                           {"level": "l2", "hit": True, "paddr": paddr})
            latency = engine._now - start
            if self._lat_cpu is not None:
                self._lat_cpu[core].add(latency / 1e6)
            return latency
        yield from self._miss_path_fast(
            "cpu", self._core_tracks[core], paddr,
            self._cpu_pre_fs, self._cpu_tail_base_fs,
        )
        latency = engine._now - start
        if self._lat_cpu is not None:
            self._lat_cpu[core].add(latency / 1e6)
        return latency

    def _llc_fill_fast(
        self, domain: str, track: str, paddr: int, at_fs: int, tail_base_fs: int
    ) -> int:
        """LLC lookup + possible DRAM fill, stamped with logical ``at_fs``.

        Returns the tail delay beyond ``at_fs``.  State mutations and
        emits are identical to the slow path's post-ring segment; only
        the timestamp is supplied instead of read from the engine.
        """
        llc = self.llc.access(paddr, allowed_ways=self._fill_ways(domain))
        self._llc_evict_cpu_side(llc.evicted)
        trace = self._trace_cache
        if trace is not None:
            location = self.llc.location_of(paddr)
            trace.emit(
                "cache.access", at_fs, track,
                {"level": "llc", "hit": llc.hit, "paddr": paddr,
                 "slice": location.slice_index, "set": location.set_index},
            )
        if llc.evicted is not None and self._trace_evict is not None:
            self._trace_evict.emit(
                "cache.evict", at_fs, "llc",
                {"line": llc.evicted, "by": track, "set": llc.set_index},
            )
        tail_fs = tail_base_fs
        if not llc.hit:
            dram_fs = self.dram.latency_fs()
            if self._trace_dram is not None:
                self._trace_dram.emit(
                    "dram.access", at_fs, "dram",
                    {"requester": track, "latency_ns": dram_fs / 1e6},
                )
            if self._lat_dram is not None:
                self._lat_dram.add(dram_fs / 1e6)
            tail_fs += dram_fs
        return tail_fs

    def _miss_path_fast(
        self, domain: str, track: str, paddr: int, pre_fs: int, tail_base_fs: int
    ) -> typing.Generator[object, object, None]:
        """Private-miss → ring → LLC/DRAM with fixed segments folded.

        Folding a segment is legal only when no other queued event can
        run inside it (strictly — pre-existing entries at the boundary
        time carry lower sequence numbers and would run first), so every
        fold is guarded by a queue-head check.  The TDM window check and,
        when a DRAM fault hook is armed, the DRAM draw must happen at
        their true times; those configurations simply fold less.
        """
        engine = self.engine
        ring = self.ring
        queue = engine._queue
        t0 = engine._now
        t1 = t0 + pre_fs
        if ring.tdm is None and (not queue or queue[0][0] > t1):
            # Fold the pre-ring latency into the reservation: the request
            # is booked at its logical time t1.
            waited, hold = ring.reserve(self._line_slots, domain, at_fs=t1)
            t3 = t1 + waited + hold
            if self.dram.fault_hook is None and (not queue or queue[0][0] > t3):
                tail_fs = self._llc_fill_fast(domain, track, paddr, t3, tail_base_fs)
                yield t3 - t0 + tail_fs
                return
            yield t3 - t0
            tail_fs = self._llc_fill_fast(domain, track, paddr, engine._now, tail_base_fs)
            yield tail_fs
            return
        yield pre_fs
        if ring.tdm is not None:
            tdm_wait = ring.tdm.wait_fs(domain, engine._now)
            if tdm_wait:
                yield tdm_wait
        t1 = engine._now
        waited, hold = ring.reserve(self._line_slots, domain)
        t3 = t1 + waited + hold
        if self.dram.fault_hook is None and (not queue or queue[0][0] > t3):
            tail_fs = self._llc_fill_fast(domain, track, paddr, t3, tail_base_fs)
            yield t3 - t1 + tail_fs
            return
        yield t3 - t1
        tail_fs = self._llc_fill_fast(domain, track, paddr, engine._now, tail_base_fs)
        yield tail_fs

    def cpu_access_burst(
        self, core: int, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, typing.List[int]]:
        """Serial loads; runs of private-cache hits fold into one yield.

        Returns per-access latencies, exactly as issuing each load through
        :meth:`cpu_access` would.  Private hits touch no shared state, so
        batching a run of them is invisible to every other agent — and the
        fold only happens while no other event (and no preemption-window
        boundary) falls inside the run.  Misses, stalls and near-term
        foreign events drop to the per-access path for one access.
        """
        if not self._fastpath:
            latencies = []
            for paddr in paddrs:
                latency = yield from self._cpu_access_slow(core, paddr)
                latencies.append(latency)
            return latencies
        engine = self.engine
        queue = engine._queue
        caches = self.cpu_caches[core]
        l1 = caches.l1
        l2 = caches.l2
        d1 = self._l1_hit_fs
        d2 = self._l2_hit_fs
        trace = self._trace_cache
        hist = self._lat_cpu[core] if self._lat_cpu is not None else None
        track = self._core_tracks[core]
        stalls = self._core_stall_until
        latencies: typing.List[int] = []
        n = len(paddrs)
        i = 0
        while i < n:
            acc = 0
            t = engine._now
            head = queue[0][0] if queue else None
            while i < n:
                ti = t + acc
                if stalls[core] > ti:
                    break
                if head is not None and head <= ti + d2:
                    break
                paddr = paddrs[i]
                if l1.contains(paddr):
                    l1.access(paddr)
                    acc += d1
                    if trace is not None:
                        trace.emit("cache.access", ti + d1, track,
                                   {"level": "l1", "hit": True, "paddr": paddr})
                    latencies.append(d1)
                    if hist is not None:
                        hist.add(d1 / 1e6)
                    i += 1
                    continue
                if l2.contains(paddr):
                    l1.access(paddr)  # install (same as the scalar path)
                    result = l2.access(paddr)
                    if result.evicted is not None:
                        l1.invalidate(result.evicted)
                    acc += d2
                    if trace is not None:
                        trace.emit("cache.access", ti + d2, track,
                                   {"level": "l2", "hit": True, "paddr": paddr})
                    latencies.append(d2)
                    if hist is not None:
                        hist.add(d2 / 1e6)
                    i += 1
                    continue
                break
            if acc:
                yield acc
            if i < n:
                latency = yield from self._cpu_access_fast(core, paddrs[i])
                latencies.append(latency)
                i += 1
        return latencies

    def clflush(self, core: int, paddr: int) -> AccessGen:
        """Flush one line from the CPU-coherent domain (L1, L2, LLC).

        The GPU L3 keeps its copy — exactly the behaviour the §III-D
        inclusiveness experiment detects.  Returns the latency in fs.
        """
        start = self.engine.now
        for caches in self.cpu_caches:
            caches.invalidate(paddr)
        was_in_llc = self.llc.invalidate(paddr)
        cost_cycles = self.config.cpu_cache.l2_hit_cycles
        if was_in_llc:
            cost_cycles += self.config.llc.lookup_cycles
        yield self.cpu_cycles_fs(cost_cycles)
        return self.engine.now - start

    # ------------------------------------------------------------------
    # GPU access path

    def gpu_access(self, paddr: int) -> AccessGen:
        """One GPU (OpenCL) load through L3 → ring → LLC → DRAM."""
        if self._fastpath:
            return self._gpu_access_fast(paddr)
        return self._gpu_access_slow(paddr)

    def _gpu_access_slow(self, paddr: int) -> AccessGen:
        """Reference path: one yield per pipeline stage."""
        start = self.engine.now
        trace = self._trace_cache
        l3 = self.gpu_l3.access(paddr)
        if l3.hit:
            yield self.gpu_cycles_fs(self.config.gpu_l3.hit_cycles)
            if trace is not None:
                trace.emit("cache.access", self.engine.now, "gpu",
                           {"level": "l3", "hit": True, "paddr": paddr})
            latency = self.engine.now - start
            if self._lat_gpu is not None:
                self._lat_gpu.add(latency / 1e6)
            return latency
        # L3 miss detection, then cross the ring.  The L3 fill already
        # happened in state (non-inclusive victim silently dropped).
        gpu_traverse_fs = self.ring.traverse_fs * self.config.ring.gpu_traverse_multiplier
        yield self.gpu_cycles_fs(self.config.gpu_l3.hit_cycles) + gpu_traverse_fs
        yield from self.ring.transfer(self._line_slots, "gpu")
        llc = self.llc.access(paddr, allowed_ways=self._fill_ways("gpu"))
        self._llc_evict_cpu_side(llc.evicted)
        if trace is not None:
            location = self.llc.location_of(paddr)
            trace.emit(
                "cache.access", self.engine.now, "gpu",
                {"level": "llc", "hit": llc.hit, "paddr": paddr,
                 "slice": location.slice_index, "set": location.set_index},
            )
        if llc.evicted is not None and self._trace_evict is not None:
            self._trace_evict.emit(
                "cache.evict", self.engine.now, "llc",
                {"line": llc.evicted, "by": "gpu", "set": llc.set_index},
            )
        tail_fs = (
            self.cpu_cycles_fs(self.config.llc.lookup_cycles) + gpu_traverse_fs
        )
        if not llc.hit:
            dram_fs = self.dram.latency_fs()
            if self._trace_dram is not None:
                self._trace_dram.emit(
                    "dram.access", self.engine.now, "dram",
                    {"requester": "gpu", "latency_ns": dram_fs / 1e6},
                )
            if self._lat_dram is not None:
                self._lat_dram.add(dram_fs / 1e6)
            tail_fs += dram_fs
        yield tail_fs
        latency = self.engine.now - start
        if self._lat_gpu is not None:
            self._lat_gpu.add(latency / 1e6)
        return latency

    def _gpu_access_fast(self, paddr: int) -> AccessGen:
        """Coalesced path: one yield for an L3 hit, ≤2 around the ring."""
        engine = self.engine
        start = engine._now
        trace = self._trace_cache
        l3 = self.gpu_l3.access(paddr)
        if l3.hit:
            yield self._l3_hit_fs
            if trace is not None:
                trace.emit("cache.access", engine._now, "gpu",
                           {"level": "l3", "hit": True, "paddr": paddr})
            latency = engine._now - start
            if self._lat_gpu is not None:
                self._lat_gpu.add(latency / 1e6)
            return latency
        yield from self._miss_path_fast(
            "gpu", "gpu", paddr, self._gpu_pre_fs, self._gpu_tail_base_fs
        )
        latency = engine._now - start
        if self._lat_gpu is not None:
            self._lat_gpu.add(latency / 1e6)
        return latency

    def gpu_access_burst(
        self, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, typing.List[int]]:
        """Serial GPU loads; runs of L3 hits fold into one yield.

        The GPU-side sibling of :meth:`cpu_access_burst` (no preemption
        windows on the GPU; L3 hits never evict, §III-D).  Returns
        per-access latencies.
        """
        if not self._fastpath:
            latencies = []
            for paddr in paddrs:
                latency = yield from self._gpu_access_slow(paddr)
                latencies.append(latency)
            return latencies
        engine = self.engine
        queue = engine._queue
        l3 = self.gpu_l3
        d3 = self._l3_hit_fs
        trace = self._trace_cache
        hist = self._lat_gpu
        latencies: typing.List[int] = []
        n = len(paddrs)
        i = 0
        while i < n:
            acc = 0
            t = engine._now
            head = queue[0][0] if queue else None
            while i < n:
                ti = t + acc
                if head is not None and head <= ti + d3:
                    break
                paddr = paddrs[i]
                if not l3.contains(paddr):
                    break
                l3.access(paddr)
                acc += d3
                if trace is not None:
                    trace.emit("cache.access", ti + d3, "gpu",
                               {"level": "l3", "hit": True, "paddr": paddr})
                latencies.append(d3)
                if hist is not None:
                    hist.add(d3 / 1e6)
                i += 1
            if acc:
                yield acc
            if i < n:
                latency = yield from self._gpu_access_fast(paddrs[i])
                latencies.append(latency)
                i += 1
        return latencies

    # ------------------------------------------------------------------
    # Background noise (§II-B: unconstrained CPU side)

    def start_noise(
        self,
        core: typing.Optional[int] = None,
        rate_per_s: typing.Optional[float] = None,
        footprint_bytes: int = 256 * 1024,
    ) -> None:
        """Launch a background process issuing Poisson LLC traffic."""
        if self._noise_process is not None and self._noise_process.alive:
            raise SimulationError("noise process already running")
        if not self.config.noise.enabled:
            return
        rate = rate_per_s if rate_per_s is not None else (
            self.config.noise.background_llc_rate_per_s
        )
        if rate <= 0:
            return
        if not self._noise_lines:
            space = self.new_process("background-noise")
            buffer = space.mmap(footprint_bytes)
            self._noise_lines = buffer.line_paddrs(self.config.llc.line_bytes)
        noise_core = core if core is not None else self.config.cpu_cores - 1
        self._noise_process = self.engine.process(self._noise_loop(noise_core, rate))

    def _noise_loop(self, core: int, rate_per_s: float) -> typing.Generator:
        rng = self.rng.stream("noise")
        lines = self._noise_lines
        while True:
            gap_fs = max(1, int(rng.exponential(1.0 / rate_per_s) * FS_PER_S))
            yield gap_fs
            paddr = lines[int(rng.integers(0, len(lines)))]
            yield from self.cpu_access(core, paddr)

    def stop_noise(self) -> None:
        """Stop the background noise process, if running."""
        if self._noise_process is not None:
            self._noise_process.interrupt("stop")
            self._noise_process = None

    def start_os_ticks(self) -> None:
        """Launch the periodic timer-interrupt model (per-core stalls)."""
        if not self.config.noise.enabled:
            return
        if self._tick_process is not None and self._tick_process.alive:
            raise SimulationError("OS tick process already running")
        self._tick_process = self.engine.process(self._tick_loop())

    def _tick_loop(self) -> typing.Generator:
        from repro.sim import FS_PER_US

        rng = self.rng.stream("os-ticks")
        noise = self.config.noise
        while True:
            gap_us = noise.os_tick_period_us + rng.uniform(
                -noise.os_tick_jitter_us, noise.os_tick_jitter_us
            )
            yield max(1, int(gap_us * FS_PER_US))
            core = int(rng.integers(0, self.config.cpu_cores))
            duration_fs = int(
                noise.os_tick_duration_us * FS_PER_US * (0.6 + 0.8 * rng.random())
            )
            self.preempt_core(core, duration_fs)

    def stop_os_ticks(self) -> None:
        """Stop the timer-interrupt model."""
        if self._tick_process is not None:
            self._tick_process.interrupt("stop")
            self._tick_process = None

    def start_system_effects(self) -> None:
        """Convenience: background noise + OS ticks (the default testbed).

        When the config arms fault injection, the configured fault suite
        starts alongside the benign system effects.
        """
        if self.config.noise.enabled:
            if self._noise_process is None or not self._noise_process.alive:
                self.start_noise()
            if self._tick_process is None or not self._tick_process.alive:
                self.start_os_ticks()
        if self.config.faults.enabled:
            self.start_faults()

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)

    def start_faults(self) -> None:
        """Start the fault-injection suite configured in ``config.faults``.

        Idempotent: a suite that is already running is left alone.  A
        no-op when ``config.faults.enabled`` is False.
        """
        if not self.config.faults.enabled:
            return
        if self._fault_suite is not None:
            return
        from repro.faults.injectors import FaultSuite

        suite = FaultSuite.from_config(self)
        suite.start()
        self._fault_suite = suite

    def stop_faults(self) -> None:
        """Stop the fault-injection suite, if one is running."""
        if self._fault_suite is not None:
            self._fault_suite.stop()  # type: ignore[attr-defined]
            self._fault_suite = None

    @property
    def fault_suite(self) -> typing.Optional[object]:
        """The running :class:`~repro.faults.injectors.FaultSuite`, if any."""
        return self._fault_suite

    # ------------------------------------------------------------------
    # Checkpointing (see repro.checkpoint for the envelope + contract)

    def quiesce(self) -> None:
        """Drive the machine to a quiescent point: stop the background
        processes (noise, OS ticks, fault injectors) and drain the event
        queue so no live generator frame remains.

        Interrupted background loops terminate cleanly (an unhandled
        :class:`~repro.sim.process.Interrupt` ends the process); their RNG
        stream positions survive in :attr:`rng`, so restarting them after
        a restore continues the exact cold-start draw sequence.
        """
        self.stop_noise()
        self.stop_os_ticks()
        self.stop_faults()
        self.engine.run()

    def state_dict(self) -> typing.Dict[str, object]:
        """Full machine state at a quiescent point, JSON-able.

        Captures every stateful component plus the machine-local fields a
        restart would otherwise re-derive differently (noise working set,
        preemption windows, the LLC way partition).  Raises
        :class:`~repro.errors.SimulationError` when the machine is not
        quiescent (pending events, busy ring, live background processes).
        """
        if self._noise_process is not None or self._tick_process is not None:
            raise SimulationError(
                "machine is not quiescent: background processes running"
            )
        if self._fault_suite is not None:
            raise SimulationError("machine is not quiescent: fault suite running")
        return {
            "fastpath": self._fastpath,
            "engine": self.engine.state_dict(),
            "rng": self.rng.state_dict(),
            "mmu": self.mmu.state_dict(),
            "dram": self.dram.state_dict(),
            "ring": self.ring.state_dict(),
            "llc": self.llc.state_dict(),
            "cpu_caches": [caches.state_dict() for caches in self.cpu_caches],
            "gpu_l3": self.gpu_l3.state_dict(),
            "slm": [slm.state_dict() for slm in self.slm],
            "metrics": self.metrics.state_dict(),
            "noise_lines": list(self._noise_lines),
            "core_stall_until": list(self._core_stall_until),
            "llc_partition": (
                None
                if self.llc_partition is None
                else {
                    domain: list(ways)
                    for domain, ways in self.llc_partition.items()
                }
            ),
        }

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict` into this machine.

        The machine must be freshly constructed (or itself quiescent) with
        the same config; the staging mode must match, since fast and
        staged paths execute different event counts.
        """
        if bool(state["fastpath"]) != self._fastpath:
            from repro.errors import CheckpointError

            raise CheckpointError(
                "snapshot was taken with REPRO_FASTPATH="
                f"{'1' if state['fastpath'] else '0'}; this machine runs the "
                f"{'fast' if self._fastpath else 'staged'} path"
            )
        self.engine.load_state(typing.cast(dict, state["engine"]))
        self.rng.load_state(typing.cast(dict, state["rng"]))
        self.mmu.load_state(typing.cast(dict, state["mmu"]))
        self.dram.load_state(typing.cast(dict, state["dram"]))
        self.ring.load_state(typing.cast(dict, state["ring"]))
        self.llc.load_state(typing.cast(dict, state["llc"]))
        for caches, caches_state in zip(
            self.cpu_caches, typing.cast(list, state["cpu_caches"])
        ):
            caches.load_state(caches_state)
        self.gpu_l3.load_state(typing.cast(dict, state["gpu_l3"]))
        for slm, slm_state in zip(self.slm, typing.cast(list, state["slm"])):
            slm.load_state(slm_state)
        self.metrics.load_state(typing.cast(dict, state["metrics"]))
        self._noise_lines = [int(p) for p in typing.cast(list, state["noise_lines"])]
        self._core_stall_until = [
            int(t) for t in typing.cast(list, state["core_stall_until"])
        ]
        partition = typing.cast(
            typing.Optional[dict], state["llc_partition"]
        )
        self.llc_partition = (
            None
            if partition is None
            else {
                str(domain): tuple(int(way) for way in ways)
                for domain, ways in partition.items()
            }
        )

    # ------------------------------------------------------------------
    # Introspection used by tests and the analysis layer

    def metrics_snapshot(self) -> typing.Dict[str, object]:
        """Every component's counters + live histograms as a nested dict.

        Structural counters (cache hits/misses, ring transfers, DRAM
        accesses, engine totals) are maintained by the components
        themselves at all times, so this *pull* never costs anything on
        the simulation path; the latency histograms are populated only
        while observability is armed.
        """
        m = self.metrics
        m.counter("engine.events_executed").set(self.engine.events_executed)
        m.counter("engine.now_fs").set(self.engine.now)
        for dotted, value in _flatten(self.llc.stats_dict(), "llc"):
            m.counter(dotted).set(value)
        for core, caches in enumerate(self.cpu_caches):
            for dotted, value in _flatten(caches.stats_dict(), f"cpu.core{core}"):
                m.counter(dotted).set(value)
        for dotted, value in _flatten(self.gpu_l3.stats_dict(), "gpu_l3"):
            m.counter(dotted).set(value)
        for dotted, value in _flatten(self.ring.stats_dict(), "ring"):
            m.counter(dotted).set(value)
        for dotted, value in _flatten(self.dram.stats_dict(), "dram"):
            m.counter(dotted).set(value)
        return m.as_dict()

    def cpu_latency_profile(self) -> typing.Dict[str, float]:
        """Nominal (uncontended) CPU latencies in nanoseconds, per level."""
        cc = self.config.cpu_cache
        ring_fs = 2 * self.ring.traverse_fs + self.ring.hold_fs(self._line_slots)
        llc_fs = (
            self.cpu_cycles_fs(cc.l2_hit_cycles + self.config.llc.lookup_cycles)
            + ring_fs
        )
        return {
            "l1_ns": self.cpu_cycles_fs(cc.l1_hit_cycles) / 1e6,
            "l2_ns": self.cpu_cycles_fs(cc.l2_hit_cycles) / 1e6,
            "llc_ns": llc_fs / 1e6,
            "dram_ns": llc_fs / 1e6 + self.dram.mean_latency_ns(),
        }

    def gpu_latency_profile(self) -> typing.Dict[str, float]:
        """Nominal (uncontended) GPU latencies in nanoseconds, per level."""
        ring_fs = (
            2 * self.ring.traverse_fs * self.config.ring.gpu_traverse_multiplier
            + self.ring.hold_fs(self._line_slots)
        )
        l3_fs = self.gpu_cycles_fs(self.config.gpu_l3.hit_cycles)
        llc_fs = l3_fs + ring_fs + self.cpu_cycles_fs(self.config.llc.lookup_cycles)
        return {
            "l3_ns": l3_fs / 1e6,
            "llc_ns": llc_fs / 1e6,
            "dram_ns": llc_fs / 1e6 + self.dram.mean_latency_ns(),
        }
