"""Flat DRAM latency model.

Row-buffer locality and scheduling effects are folded into a latency mix:
an access is a "row hit" with configured probability, a row miss otherwise,
plus Gaussian jitter.  This is one of the modeled noise sources that gives
the covert channels a non-zero error floor (see DESIGN.md §6).
"""

from __future__ import annotations

import typing

import numpy as np

from repro.config import DramConfig
from repro.sim import FS_PER_NS


class Dram:
    """Samples per-access DRAM latencies."""

    def __init__(self, config: DramConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self.accesses = 0
        self.row_misses = 0
        self.total_latency_fs = 0
        #: Optional fault hook (see :mod:`repro.faults`): called once per
        #: access, returns extra latency in fs.  ``None`` keeps the
        #: healthy path to a single check.
        self.fault_hook: typing.Optional[typing.Callable[[], int]] = None

    def latency_fs(self) -> int:
        """Latency of one memory access, in femtoseconds."""
        self.accesses += 1
        latency_ns = self.config.base_ns
        if self._rng.random() >= self.config.row_hit_probability:
            self.row_misses += 1
            latency_ns += self.config.row_miss_extra_ns
        if self.config.jitter_sigma_ns > 0:
            latency_ns += abs(self._rng.normal(0.0, self.config.jitter_sigma_ns))
        latency = max(1, round(latency_ns * FS_PER_NS))
        if self.fault_hook is not None:
            latency += self.fault_hook()
        self.total_latency_fs += latency
        return latency

    def state_dict(self) -> typing.Dict[str, int]:
        """Access counters (the latency stream position lives in RngStreams;
        ``fault_hook`` is re-armed by the owning fault suite, not captured)."""
        return {
            "accesses": self.accesses,
            "row_misses": self.row_misses,
            "total_latency_fs": self.total_latency_fs,
        }

    def load_state(self, state: typing.Dict[str, int]) -> None:
        """Restore counters captured by :meth:`state_dict`."""
        self.accesses = int(state["accesses"])
        self.row_misses = int(state["row_misses"])
        self.total_latency_fs = int(state["total_latency_fs"])

    def stats_dict(self) -> typing.Dict[str, object]:
        """Access/row-miss counters for the metrics registry."""
        mean_ns = (
            self.total_latency_fs / self.accesses / FS_PER_NS if self.accesses else 0.0
        )
        return {
            "accesses": self.accesses,
            "row_misses": self.row_misses,
            "mean_latency_ns": mean_ns,
        }

    def mean_latency_ns(self) -> float:
        """Expected latency, ignoring jitter (used by calibration code)."""
        return self.config.base_ns + (
            (1.0 - self.config.row_hit_probability) * self.config.row_miss_extra_ns
        )
