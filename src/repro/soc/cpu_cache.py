"""Per-core CPU cache hierarchy (L1D + L2).

Both levels are physically indexed set-associative caches with true LRU.
They are *inclusive* of the LLC in the sense the paper uses: every line in
L1/L2 is also in the LLC, maintained by the SoC wiring through
back-invalidations when the LLC evicts (§III-E: "The higher level CPU L1
and L2 caches are inclusive of the LLC").
"""

from __future__ import annotations

import typing

from repro.config import CpuCacheConfig
from repro.soc.cache import SetAssocCache
from repro.soc.replacement import TrueLru


class CpuCoreCaches:
    """One core's private L1D and L2 arrays."""

    def __init__(self, config: CpuCacheConfig, core_id: int) -> None:
        config.validate()
        self.config = config
        self.core_id = core_id
        self.l1 = SetAssocCache(
            name=f"core{core_id}-l1d",
            n_sets=config.l1_sets,
            ways=config.l1_ways,
            line_bytes=config.line_bytes,
            policy=TrueLru(config.l1_ways),
        )
        self.l2 = SetAssocCache(
            name=f"core{core_id}-l2",
            n_sets=config.l2_sets,
            ways=config.l2_ways,
            line_bytes=config.line_bytes,
            policy=TrueLru(config.l2_ways),
        )

    def invalidate(self, paddr: int) -> bool:
        """Drop a line from both private levels (back-invalidation)."""
        in_l1 = self.l1.invalidate(paddr)
        in_l2 = self.l2.invalidate(paddr)
        return in_l1 or in_l2

    def contains(self, paddr: int) -> bool:
        """Whether either private level holds the line."""
        return self.l1.contains(paddr) or self.l2.contains(paddr)

    def flush_all(self) -> None:
        self.l1.flush_all()
        self.l2.flush_all()

    def stats_dict(self) -> typing.Dict[str, object]:
        """Both private levels' counters for the metrics registry."""
        return {"l1": self.l1.stats_dict(), "l2": self.l2.stats_dict()}

    def state_dict(self) -> typing.Dict[str, object]:
        """Both private levels' full state (checkpoint contract)."""
        return {"l1": self.l1.state_dict(), "l2": self.l2.state_dict()}

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.l1.load_state(typing.cast(dict, state["l1"]))
        self.l2.load_state(typing.cast(dict, state["l2"]))

    def fill_after_llc(self, paddr: int) -> typing.Optional[int]:
        """Install a line returning from the LLC into L2 then L1.

        Returns a line evicted from L2 (if any) so the caller can maintain
        L1 ⊆ L2; L1 evictions are clean drops in this model.
        """
        l2_result = self.l2.access(paddr)
        if l2_result.evicted is not None:
            # Keep L1 ⊆ L2 so the inclusion invariant is exact.
            self.l1.invalidate(l2_result.evicted)
        self.l1.access(paddr)
        return l2_result.evicted
