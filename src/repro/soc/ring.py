"""The ring interconnect between CPU cores, the iGPU and the LLC slices.

The ring is the contention domain of the paper's second covert channel
(§IV): when both components stream LLC traffic, each transfer queues behind
the other side's and the CPU observes its access latency rise by T_OV.
We model the shared medium as a single FIFO resource; a cache-line
transfer occupies it for ``slots_per_line x slot_cycles`` ring-clock
cycles, while the propagation latency (``traverse_cycles`` each way) does
not occupy the shared resource.

The ring optionally enforces a time-division (TDM) schedule between the
``cpu`` and ``gpu`` domains — the §VI traffic-isolation mitigation.
"""

from __future__ import annotations

import typing

from repro.config import ClockConfig, RingConfig
from repro.errors import ConfigError
from repro.obs.recorder import recorder as _recorder
from repro.sim import fastpath as _fastpath
from repro.sim.engine import Engine
from repro.sim.resources import FifoResource

Domain = str  # "cpu" or "gpu"


class TdmSchedule:
    """A fixed two-phase time-division schedule over the ring.

    The period is split into a CPU window followed by a GPU window; a
    domain may only begin a transfer inside its own window.
    """

    def __init__(self, period_fs: int, cpu_share: float = 0.5) -> None:
        if period_fs <= 0:
            raise ConfigError("TDM period must be positive")
        if not 0.0 < cpu_share < 1.0:
            raise ConfigError("TDM cpu_share must be in (0, 1)")
        self.period_fs = period_fs
        self.cpu_window_fs = int(period_fs * cpu_share)

    def wait_fs(self, domain: Domain, now_fs: int) -> int:
        """Delay before ``domain`` may begin a transfer at time ``now_fs``."""
        phase = now_fs % self.period_fs
        if domain == "cpu":
            if phase < self.cpu_window_fs:
                return 0
            return self.period_fs - phase
        if phase >= self.cpu_window_fs:
            return 0
        return self.cpu_window_fs - phase


class Ring:
    """Shared ring bus with per-domain accounting and optional TDM."""

    def __init__(self, engine: Engine, config: RingConfig, clock: ClockConfig) -> None:
        config.validate()
        self.engine = engine
        self.config = config
        self.clock = clock
        self._resource = FifoResource(engine, name="ring")
        self.tdm: typing.Optional[TdmSchedule] = None
        self.transfers: typing.Dict[Domain, int] = {"cpu": 0, "gpu": 0}
        self.waited_fs: typing.Dict[Domain, int] = {"cpu": 0, "gpu": 0}
        # Resolved once; `None` keeps transfer()'s disabled path to one check.
        self._trace = _recorder.sink_for("ring.hop")
        # Sampled at construction: one ring is consistently ledger-mode
        # (reserve) or consistently event-mode (occupy) for its lifetime.
        self._fast = _fastpath.enabled()

    @property
    def traverse_fs(self) -> int:
        """One-way propagation latency (does not occupy the ring)."""
        return self.clock.cycles_fs(self.config.traverse_cycles)

    def hold_fs(self, payload_slots: int) -> int:
        """Occupancy time for a transfer of ``payload_slots`` ring slots."""
        return self.clock.cycles_fs(payload_slots * self.config.slot_cycles)

    def slots_for_line(self, line_bytes: int) -> int:
        """Ring slots needed to move one cache line plus its request."""
        return 1 + self.config.slots_per_line(line_bytes)

    def transfer(
        self, payload_slots: int, domain: Domain
    ) -> typing.Generator[object, object, int]:
        """Occupy the ring for a transfer; returns queueing delay in fs.

        Composable with ``yield from``.  The returned value is the
        contention component of the requester's latency (T_OV in Eq. (3)).
        On a fast-path ring the occupancy goes through the reservation
        ledger (one coalesced yield); otherwise through the event-mode
        FIFO.  Both orderings are FIFO by request time, so the waits —
        and all accounting — are identical.
        """
        if self._fast:
            return self._transfer_ledger(payload_slots, domain)
        return self._transfer_event(payload_slots, domain)

    def _transfer_event(
        self, payload_slots: int, domain: Domain
    ) -> typing.Generator[object, object, int]:
        if self.tdm is not None:
            tdm_wait = self.tdm.wait_fs(domain, self.engine.now)
            if tdm_wait:
                yield tdm_wait
        waited = yield from self._resource.occupy(self.hold_fs(payload_slots))
        # `.get` keeps the accounting open to auxiliary domains ("fault"
        # back-pressure bursts) beyond the wired-in cpu/gpu pair.
        self.transfers[domain] = self.transfers.get(domain, 0) + 1
        self.waited_fs[domain] = self.waited_fs.get(domain, 0) + waited
        if self._trace is not None:
            self._trace.emit(
                "ring.hop",
                self.engine.now,
                "ring",
                {
                    "domain": domain,
                    "slots": payload_slots,
                    "waited_ns": waited / 1e6,
                    "hold_ns": self.hold_fs(payload_slots) / 1e6,
                },
            )
        return waited

    def _transfer_ledger(
        self, payload_slots: int, domain: Domain
    ) -> typing.Generator[object, object, int]:
        if self.tdm is not None:
            # The TDM window check must happen at the true request time,
            # so it cannot fold into the occupancy yield.
            tdm_wait = self.tdm.wait_fs(domain, self.engine.now)
            if tdm_wait:
                yield tdm_wait
        waited, hold = self.reserve(payload_slots, domain)
        yield waited + hold
        return waited

    def reserve(
        self, payload_slots: int, domain: Domain, at_fs: typing.Optional[int] = None
    ) -> typing.Tuple[int, int]:
        """Ledger-mode transfer: book occupancy + accounting at request time.

        Returns ``(waited_fs, hold_fs)``; the caller simulates the delay
        (typically folded into one coalesced yield).  ``at_fs`` lets a
        coalesced access path reserve at its logical request time.  The
        ``ring.hop`` trace fires now with the logical completion
        timestamp — the same timestamp the event-mode emit carries.
        """
        at = self.engine._now if at_fs is None else at_fs
        hold = self.hold_fs(payload_slots)
        waited = self._resource.reserve(hold, at_fs=at)
        self.transfers[domain] = self.transfers.get(domain, 0) + 1
        self.waited_fs[domain] = self.waited_fs.get(domain, 0) + waited
        if self._trace is not None:
            self._trace.emit(
                "ring.hop",
                at + waited + hold,
                "ring",
                {
                    "domain": domain,
                    "slots": payload_slots,
                    "waited_ns": waited / 1e6,
                    "hold_ns": hold / 1e6,
                },
            )
        return waited, hold

    def utilization(self) -> float:
        """Fraction of simulated time the ring medium was occupied."""
        return self._resource.utilization()

    def mean_wait_fs(self, domain: Domain) -> float:
        """Average queueing delay experienced by one domain."""
        count = self.transfers.get(domain, 0)
        return self.waited_fs.get(domain, 0) / count if count else 0.0

    def stats_dict(self) -> typing.Dict[str, object]:
        """Per-domain transfer/queueing counters for the metrics registry."""
        stats: typing.Dict[str, object] = {"utilization": self.utilization()}
        for domain in sorted(self.transfers):
            stats[domain] = {
                "transfers": self.transfers[domain],
                "waited_fs": self.waited_fs.get(domain, 0),
                "mean_wait_ns": self.mean_wait_fs(domain) / 1e6,
            }
        return stats

    def state_dict(self) -> typing.Dict[str, object]:
        """Ledger + accounting state (the TDM schedule is config-derived)."""
        return {
            "resource": self._resource.state_dict(),
            "transfers": dict(self.transfers),
            "waited_fs": dict(self.waited_fs),
        }

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._resource.load_state(typing.cast(dict, state["resource"]))
        self.transfers = {
            str(domain): int(count)
            for domain, count in typing.cast(dict, state["transfers"]).items()
        }
        self.waited_fs = {
            str(domain): int(waited)
            for domain, waited in typing.cast(dict, state["waited_fs"]).items()
        }

    def reset_stats(self) -> None:
        """Zero the per-domain accounting (between measurement windows).

        Auxiliary domains (e.g. the ``"fault"`` back-pressure domain) are
        zeroed in place rather than dropped, so ``stats_dict()`` keeps
        reporting them across measurement-window resets.
        """
        self.transfers = {domain: 0 for domain in self.transfers}
        self.waited_fs = {domain: 0 for domain in self.waited_fs}
        for domain in ("cpu", "gpu"):
            self.transfers.setdefault(domain, 0)
            self.waited_fs.setdefault(domain, 0)
