"""A generic set-associative cache with pluggable indexing and replacement.

This one structure backs the CPU L1/L2, each LLC slice, and the GPU L3 —
they differ only in geometry, index function and replacement policy.  The
cache is purely a state machine; all timing lives in the access paths of
:class:`repro.soc.machine.SoC`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import CacheGeometryError
from repro.soc.address import line_address
from repro.soc.replacement import ReplacementPolicy, TrueLru

IndexFn = typing.Callable[[int], int]


@dataclasses.dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    set_index: int
    way: int
    evicted: typing.Optional[int] = None  # line address pushed out, if any


class SetAssocCache:
    """Set-associative cache storing line addresses as tags."""

    def __init__(
        self,
        name: str,
        n_sets: int,
        ways: int,
        line_bytes: int,
        policy: ReplacementPolicy,
        index_fn: typing.Optional[IndexFn] = None,
    ) -> None:
        if n_sets <= 0 or ways <= 0:
            raise CacheGeometryError(f"{name}: sets and ways must be positive")
        if line_bytes & (line_bytes - 1):
            raise CacheGeometryError(f"{name}: line size must be a power of two")
        if policy.ways != ways:
            raise CacheGeometryError(f"{name}: policy sized for {policy.ways} ways")
        self.name = name
        self.n_sets = n_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.policy = policy
        self._offset_bits = line_bytes.bit_length() - 1
        self._index_fn = index_fn or self._default_index
        self._tags: typing.List[typing.List[typing.Optional[int]]] = [
            [None] * ways for _ in range(n_sets)
        ]
        self._meta = [policy.new_set_state() for _ in range(n_sets)]
        # Reverse map line -> (set, way) for O(1) invalidation.
        self._where: typing.Dict[int, typing.Tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _default_index(self, paddr: int) -> int:
        return (paddr >> self._offset_bits) % self.n_sets

    @property
    def capacity_bytes(self) -> int:
        return self.n_sets * self.ways * self.line_bytes

    def set_index_of(self, paddr: int) -> int:
        """The set a physical address maps to."""
        return self._index_fn(paddr)

    def contains(self, paddr: int) -> bool:
        """Whether the line holding ``paddr`` is present (no state change)."""
        return line_address(paddr, self.line_bytes) in self._where

    def access(
        self, paddr: int, allowed_ways: typing.Optional[typing.Sequence[int]] = None
    ) -> AccessResult:
        """Look up ``paddr``; on miss, install it, evicting if needed.

        ``allowed_ways`` restricts where a *fill* may land (used by the
        way-partitioning mitigation); hits are unrestricted.
        """
        line = line_address(paddr, self.line_bytes)
        location = self._where.get(line)
        if location is not None:
            set_index, way = location
            self.policy.on_hit(self._meta[set_index], way)
            self.hits += 1
            return AccessResult(hit=True, set_index=set_index, way=way)
        self.misses += 1
        set_index = self._index_fn(line)
        way, evicted = self._install(set_index, line, allowed_ways)
        return AccessResult(hit=False, set_index=set_index, way=way, evicted=evicted)

    def _install(
        self,
        set_index: int,
        line: int,
        allowed_ways: typing.Optional[typing.Sequence[int]],
    ) -> typing.Tuple[int, typing.Optional[int]]:
        tags = self._tags[set_index]
        meta = self._meta[set_index]
        candidates = range(self.ways) if allowed_ways is None else allowed_ways
        for way in candidates:
            if tags[way] is None:
                tags[way] = line
                self._where[line] = (set_index, way)
                self.policy.on_fill(meta, way)
                return way, None
        way = self._pick_victim(set_index, allowed_ways)
        evicted = tags[way]
        if evicted is not None:
            del self._where[evicted]
            self.evictions += 1
        tags[way] = line
        self._where[line] = (set_index, way)
        self.policy.on_fill(meta, way)
        return way, evicted

    def _pick_victim(
        self, set_index: int, allowed_ways: typing.Optional[typing.Sequence[int]]
    ) -> int:
        meta = self._meta[set_index]
        if allowed_ways is None:
            return self.policy.victim(meta)
        allowed = set(allowed_ways)
        if not allowed:
            raise CacheGeometryError(f"{self.name}: empty way partition")
        # Honour recency within the partition when the policy is true LRU;
        # otherwise fall back to the policy victim if allowed, else any.
        if isinstance(self.policy, TrueLru):
            for way in reversed(typing.cast(list, meta)):  # LRU end first
                if way in allowed:
                    return way
        victim = self.policy.victim(meta)
        if victim in allowed:
            return victim
        return next(iter(sorted(allowed)))

    def invalidate(self, paddr: int) -> bool:
        """Drop the line holding ``paddr``; True if it was present."""
        line = line_address(paddr, self.line_bytes)
        location = self._where.pop(line, None)
        if location is None:
            return False
        set_index, way = location
        self._tags[set_index][way] = None
        return True

    def lines_in_set(self, set_index: int) -> typing.Tuple[int, ...]:
        """The line addresses currently resident in one set."""
        return tuple(tag for tag in self._tags[set_index] if tag is not None)

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines in one set."""
        return sum(1 for tag in self._tags[set_index] if tag is not None)

    def flush_all(self) -> None:
        """Invalidate every line (used between experiment repetitions)."""
        self._tags = [[None] * self.ways for _ in range(self.n_sets)]
        self._meta = [self.policy.new_set_state() for _ in range(self.n_sets)]
        self._where.clear()

    def resident_lines(self) -> typing.Iterator[int]:
        """Iterate over every resident line address."""
        return iter(self._where)

    def state_dict(self) -> typing.Dict[str, object]:
        """Full line + replacement + counter state, JSON-able.

        The reverse map is derivable from the tag arrays, so only tags,
        per-set policy metadata and the counters are captured.
        """
        return {
            "tags": [list(ways) for ways in self._tags],
            "meta": [self.policy.export_set_state(meta) for meta in self._meta],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict` (geometry must match)."""
        tags = typing.cast(typing.List[typing.List[typing.Optional[int]]], state["tags"])
        meta = typing.cast(typing.List[object], state["meta"])
        if len(tags) != self.n_sets or any(len(ways) != self.ways for ways in tags):
            raise CacheGeometryError(
                f"{self.name}: snapshot geometry does not match "
                f"({len(tags)} sets vs {self.n_sets})"
            )
        self._tags = [
            [None if tag is None else int(tag) for tag in ways] for ways in tags
        ]
        self._meta = [self.policy.import_set_state(entry) for entry in meta]
        self._where = {
            line: (set_index, way)
            for set_index, ways in enumerate(self._tags)
            for way, line in enumerate(ways)
            if line is not None
        }
        self.hits = int(typing.cast(int, state["hits"]))
        self.misses = int(typing.cast(int, state["misses"]))
        self.evictions = int(typing.cast(int, state["evictions"]))

    def stats_dict(self) -> typing.Dict[str, object]:
        """Hit/miss/eviction/occupancy counters for the metrics registry."""
        capacity_lines = self.n_sets * self.ways
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident_lines": len(self._where),
            "occupancy": len(self._where) / capacity_lines,
        }

    def __len__(self) -> int:
        return len(self._where)

    def __repr__(self) -> str:
        return (
            f"SetAssocCache({self.name!r}, sets={self.n_sets}, ways={self.ways}, "
            f"line={self.line_bytes}, resident={len(self._where)})"
        )
