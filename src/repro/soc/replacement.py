"""Cache replacement policies.

Each policy owns the per-set metadata needed to pick victims.  The GPU L3
uses a tree-based pseudo-LRU with N-1 internal nodes (§III-D quotes the
Gen9 PRM); the CPU caches and LLC use true LRU, and a random policy exists
for ablations.

A policy instance is bound to one cache; per-set state is an opaque object
created by :meth:`new_set_state`.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import CacheGeometryError


class ReplacementPolicy:
    """Interface: victim selection plus hit/fill bookkeeping per set."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise CacheGeometryError(f"ways must be positive, got {ways}")
        self.ways = ways

    def new_set_state(self) -> object:
        """Create the metadata object for one cache set."""
        raise NotImplementedError

    def on_hit(self, state: object, way: int) -> None:
        """Update metadata after a hit in ``way``."""
        raise NotImplementedError

    def on_fill(self, state: object, way: int) -> None:
        """Update metadata after a new line is installed in ``way``."""
        raise NotImplementedError

    def victim(self, state: object) -> int:
        """Pick the way to evict from a full set (no state change)."""
        raise NotImplementedError

    def export_set_state(self, state: object) -> object:
        """Per-set metadata as a JSON-able value (checkpoint contract).

        The default covers list-of-int metadata (true LRU stacks, pLRU bit
        vectors) and ``None`` (stateless policies).
        """
        return list(typing.cast(list, state)) if state is not None else None

    def import_set_state(self, exported: object) -> object:
        """Rebuild per-set metadata from :meth:`export_set_state` output."""
        if exported is None:
            return None
        return [int(entry) for entry in typing.cast(list, exported)]


class TrueLru(ReplacementPolicy):
    """Exact least-recently-used ordering."""

    def new_set_state(self) -> typing.List[int]:
        # Recency stack: index 0 = MRU, last = LRU.
        return list(range(self.ways))

    def _touch(self, stack: typing.List[int], way: int) -> None:
        stack.remove(way)
        stack.insert(0, way)

    def on_hit(self, state: object, way: int) -> None:
        self._touch(typing.cast(list, state), way)

    def on_fill(self, state: object, way: int) -> None:
        self._touch(typing.cast(list, state), way)

    def victim(self, state: object) -> int:
        return typing.cast(list, state)[-1]


class TreePlru(ReplacementPolicy):
    """Binary-tree pseudo-LRU with ``ways - 1`` internal nodes.

    Each internal node stores one bit pointing *away* from the recently
    used half.  Victim selection walks the bits from the root; touching a
    way flips the bits along its path to point away from it.  ``ways`` must
    be a power of two.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise CacheGeometryError("tree-pLRU requires a power-of-two way count")
        self._levels = ways.bit_length() - 1

    def new_set_state(self) -> typing.List[int]:
        return [0] * max(1, self.ways - 1)

    def _touch(self, bits: typing.List[int], way: int) -> None:
        node = 0
        for level in range(self._levels):
            side = (way >> (self._levels - 1 - level)) & 1
            bits[node] = 1 - side  # point away from the touched side
            node = 2 * node + 1 + side

    def on_hit(self, state: object, way: int) -> None:
        self._touch(typing.cast(list, state), way)

    def on_fill(self, state: object, way: int) -> None:
        self._touch(typing.cast(list, state), way)

    def victim(self, state: object) -> int:
        bits = typing.cast(list, state)
        node = 0
        way = 0
        for _level in range(self._levels):
            side = bits[node]
            way = (way << 1) | side
            node = 2 * node + 1 + side
        return way


class RandomReplacement(ReplacementPolicy):
    """Uniformly random victim; used only for ablation experiments."""

    def __init__(self, ways: int, rng: np.random.Generator) -> None:
        super().__init__(ways)
        self._rng = rng

    def new_set_state(self) -> None:
        return None

    def on_hit(self, state: object, way: int) -> None:
        pass

    def on_fill(self, state: object, way: int) -> None:
        pass

    def victim(self, state: object) -> int:
        return int(self._rng.integers(0, self.ways))


def make_policy(
    name: str, ways: int, rng: typing.Optional[np.random.Generator] = None
) -> ReplacementPolicy:
    """Factory keyed by policy name: ``lru``, ``tree-plru`` or ``random``."""
    if name == "lru":
        return TrueLru(ways)
    if name == "tree-plru":
        return TreePlru(ways)
    if name == "random":
        if rng is None:
            raise CacheGeometryError("random policy requires an rng")
        return RandomReplacement(ways, rng)
    raise CacheGeometryError(f"unknown replacement policy: {name!r}")
