"""repro.exec — parallel trial execution with deterministic fan-out.

Every figure in the paper aggregates many independent seeded trials; this
package runs them fast without changing a single simulated bit:

* :class:`TrialExecutor` — serial (``workers=0``, the default) or
  process-pool execution of :class:`TrialSpec` lists, with per-trial
  timeout/retry degradation and submission-order outcomes;
* :class:`ResultCache` — content-addressed on-disk cache keyed by
  ``(config hash, code fingerprint, seed)``;
* :func:`derive_seed` / :func:`fan_out_seeds` — deterministic seed
  derivation, independent of worker count and scheduling order;
* ``python -m repro.exec`` — a CLI that runs a packaged sweep with
  ``--workers/--cache-dir/--no-cache`` and prints a cache hit/miss
  summary.

See DESIGN.md ("Parallel execution & caching") for the determinism and
invalidation contract.
"""

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.executor import (
    CRASH,
    DEAD,
    MODEL,
    OK,
    TIMEOUT,
    ExecutionReport,
    PrefixSpec,
    TrialExecutor,
    TrialOutcome,
    TrialSpec,
    default_workers,
    run_one_trial,
)
from repro.exec.fingerprint import code_fingerprint
from repro.exec.seeds import (
    canonical_repr,
    derive_seed,
    fan_out_seeds,
    stable_digest,
)

__all__ = [
    "CacheStats",
    "CRASH",
    "DEAD",
    "ExecutionReport",
    "MODEL",
    "OK",
    "PrefixSpec",
    "ResultCache",
    "TIMEOUT",
    "TrialExecutor",
    "TrialOutcome",
    "TrialSpec",
    "canonical_repr",
    "code_fingerprint",
    "default_workers",
    "derive_seed",
    "fan_out_seeds",
    "run_one_trial",
    "stable_digest",
]
