"""Packaged sweeps for the ``python -m repro.exec`` CLI and CI smoke jobs.

Three tiers, all built from module-level trial functions (so they pickle
into worker processes):

* ``smoke`` — a synthetic noisy-channel trial on the bare DES engine.
  Cheap (milliseconds per trial) but real simulation work: it spins the
  event loop, draws from seeded RNG streams, and returns a
  :class:`~repro.core.channel.ChannelResult`.  CI uses it to exercise
  the executor's fan-out, caching and JSON reporting inside a tight
  timeout.
* ``llc`` — the paper's PRIME+PROBE LLC channel over a small
  redundant-set grid (Fig. 8 territory).
* ``contention`` — the ring-contention channel over a work-group ×
  buffer grid (Fig. 10 territory).
"""

from __future__ import annotations

import typing

from repro.core.channel import ChannelDirection, ChannelResult
from repro.errors import ChannelProtocolError
from repro.sim import FS_PER_US
from repro.sim.engine import Engine
from repro.sim.events import Timeout
from repro.sim.rng import RngStreams

Params = typing.Dict[str, object]
MB = 1024 * 1024


def synthetic_trial(params: Params, seed: int) -> ChannelResult:
    """A tiny simulated noisy channel: engine-driven, fully deterministic.

    A sender process emits ``n_bits`` bits at ``slot_us`` intervals; a
    receiver samples each slot and misreads it with probability
    ``noise``.  The point is not realism — it is a trial whose cost is
    milliseconds while still exercising the event loop, the process
    machinery and the seeded RNG streams end to end.
    """
    n_bits = int(params.get("n_bits", 64))
    slot_us = float(params.get("slot_us", 5.0))
    noise = float(params.get("noise", 0.02))
    if not 0.0 <= noise < 0.5:
        raise ChannelProtocolError(f"synthetic channel drowned in noise: {noise}")
    rng = RngStreams(seed)
    payload_rng = rng.stream("payload")
    noise_rng = rng.stream("noise")
    sent = [int(b) for b in payload_rng.integers(0, 2, size=n_bits)]
    received: typing.List[int] = []
    engine = Engine()
    slot_fs = int(slot_us * FS_PER_US)

    def sender() -> typing.Iterator[Timeout]:
        for bit in sent:
            yield Timeout(engine, slot_fs)
            flipped = bool(noise_rng.random() < noise)
            received.append(bit ^ int(flipped))

    engine.process(sender())
    engine.run()
    return ChannelResult(
        direction=ChannelDirection.GPU_TO_CPU,
        sent=sent,
        received=received,
        elapsed_fs=engine.now,
        meta={"kind": "synthetic", "noise": noise},
    )


def llc_trial(params: Params, seed: int) -> ChannelResult:
    """One LLC PRIME+PROBE transmission at the given grid point."""
    from repro.core.llc_channel import LLCChannel, LLCChannelConfig

    config = LLCChannelConfig(
        direction=params.get("direction", ChannelDirection.GPU_TO_CPU),
        n_sets_per_role=int(params.get("n_sets", 2)),
    )
    channel = LLCChannel(config)
    return channel.transmit(n_bits=int(params.get("n_bits", 32)), seed=seed)


def contention_trial(params: Params, seed: int) -> ChannelResult:
    """One ring-contention transmission at the given grid point."""
    from repro.core.contention_channel import (
        ContentionChannel,
        ContentionChannelConfig,
    )

    channel = ContentionChannel(
        ContentionChannelConfig(
            n_workgroups=int(params.get("n_workgroups", 2)),
            gpu_buffer_paper_bytes=int(params.get("gpu_buffer_paper_bytes", 2 * MB)),
        )
    )
    calibration = channel.calibrate(seed=int(params.get("calibration_seed", 1)))
    return channel.transmit(
        n_bits=int(params.get("n_bits", 32)), seed=seed, calibration=calibration
    )


def packaged_sweep(
    name: str, n_bits: int
) -> typing.Tuple[typing.Callable[[Params, int], ChannelResult], typing.List[Params]]:
    """Return ``(trial_fn, grid points)`` for one packaged sweep name."""
    from repro.analysis.sweep import grid

    if name == "smoke":
        return synthetic_trial, grid(
            n_bits=(n_bits,), slot_us=(2.5, 5.0), noise=(0.0, 0.02, 0.1)
        )
    if name == "llc":
        return llc_trial, grid(
            n_bits=(n_bits,),
            n_sets=(1, 2, 4),
            direction=(ChannelDirection.GPU_TO_CPU, ChannelDirection.CPU_TO_GPU),
        )
    if name == "contention":
        return contention_trial, grid(
            n_bits=(n_bits,),
            n_workgroups=(1, 2, 4),
            gpu_buffer_paper_bytes=(1 * MB, 2 * MB),
        )
    raise ValueError(f"unknown packaged sweep {name!r} (smoke/llc/contention)")


PACKAGED_SWEEPS = ("smoke", "llc", "contention")
