"""``python -m repro.exec`` — run a packaged sweep through the executor.

Examples::

    # Cheap synthetic sweep, serial, no cache:
    python -m repro.exec --sweep smoke --no-cache

    # Real LLC-channel sweep on 4 workers with an on-disk cache
    # (run it twice: the second run is all cache hits):
    python -m repro.exec --sweep llc --workers 4 --cache-dir .exec-cache

    # Watch the sweep live (tail -f watch.jsonl in another terminal)
    # and append a provenance record to the run ledger:
    python -m repro.exec --sweep llc --workers 4 \\
        --watch watch.jsonl --ledger benchmarks/results/LEDGER.jsonl

The exit code is 0 when every trial succeeded or died deterministically
(a dead channel point is a *result*, not an error) and 1 when any trial
crashed or timed out.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import typing

from repro.analysis.render import format_table
from repro.analysis.sweep import run_sweep
from repro.config import ExecutionConfig
from repro.exec import TrialExecutor, fan_out_seeds
from repro.exec.demo import PACKAGED_SWEEPS, packaged_sweep


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec",
        description="Run a packaged parameter sweep through the trial executor.",
    )
    parser.add_argument(
        "--sweep", choices=PACKAGED_SWEEPS, default="smoke",
        help="which packaged sweep to run (default: smoke)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker processes; 0 = serial in-process (default)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="on-disk result cache directory (default: cache off)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if --cache-dir is given",
    )
    parser.add_argument(
        "--bits", type=int, default=32, metavar="N",
        help="payload bits per trial (default: 32)",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="seeded repetitions per grid point (default: 3)",
    )
    parser.add_argument(
        "--root-seed", type=int, default=1, metavar="SEED",
        help="root of the deterministic seed fan-out (default: 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-trial timeout when workers >= 1 (default: 300)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries for crashed/wedged trials (default: 1)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write a machine-readable summary to PATH",
    )
    parser.add_argument(
        "--watch", default=None, metavar="PATH",
        help="stream live telemetry events (JSON Lines) to PATH and "
             "render progress on stderr; tail -f PATH to watch the sweep",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append a provenance record to this run ledger "
             "(default: REPRO_LEDGER; pass 0 to disable)",
    )
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ExecutionConfig(
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        trial_timeout_s=args.timeout,
        retries=args.retries,
    ).validate()

    fn, points = packaged_sweep(args.sweep, n_bits=args.bits)
    seeds = fan_out_seeds(args.root_seed, args.seeds, label=args.sweep)
    telemetry = None
    watch_file = None
    if args.watch:
        from repro.obs.telemetry import SweepTelemetry

        watch_file = open(args.watch, "a", encoding="utf-8")
        telemetry = SweepTelemetry(
            label=args.sweep,
            stream=watch_file,
            progress=sys.stderr,
            prom_path=os.environ.get("REPRO_TELEMETRY_PROM", "").strip()
            or None,
        )
    executor = TrialExecutor(
        workers=config.workers,
        cache=config.cache_dir if config.use_cache else None,
        trial_timeout_s=config.trial_timeout_s,
        retries=config.retries,
        telemetry=telemetry,
    )
    try:
        result = run_sweep(fn, points, seeds=seeds, executor=executor)
    finally:
        if watch_file is not None:
            watch_file.close()
    report = result.report
    assert report is not None

    print(f"sweep: {args.sweep} ({len(points)} points x {args.seeds} seeds)")
    print(format_table(result.header(), result.rows()))
    print()
    print(report.summary())
    if executor.telemetry is not None:
        print(executor.telemetry.summary())
        for warning in executor.telemetry.warnings:
            print(f"DRIFT: {warning}", file=sys.stderr)

    # Ledger is opt-in for the CLI: --ledger PATH, or the REPRO_LEDGER env
    # knob (the bench harness, by contrast, records every figure run).
    from repro.obs.ledger import default_ledger_path

    ledger_path = None
    if args.ledger is not None:
        ledger_path = default_ledger_path({"REPRO_LEDGER": args.ledger})
    elif os.environ.get("REPRO_LEDGER", "").strip():
        ledger_path = default_ledger_path()
    if ledger_path is not None:
        from repro.exec.seeds import stable_digest
        from repro.obs.ledger import append_record, make_record
        from repro.obs.telemetry import bench_run_record

        record = make_record(
            name=args.sweep,
            kind="sweep",
            run=bench_run_record(
                workers=report.workers,
                wall_s=report.wall_s,
                sim=report.sim,
                cache=report.cache,
            ),
            config_digest=stable_digest({
                "sweep": args.sweep, "bits": args.bits,
                "points": len(points),
            }),
            seeds={"root": args.root_seed, "count": args.seeds},
            metrics=executor.telemetry.snapshot()
            if executor.telemetry is not None
            else None,
            warnings=executor.telemetry.warnings
            if executor.telemetry is not None
            else (),
            argv=list(sys.argv[1:] if argv is None else argv),
        )
        append_record(ledger_path, record)
        print(f"ledger: appended {args.sweep} record to {ledger_path}")

    if args.json:
        doc = {
            "sweep": args.sweep,
            "points": len(points),
            "seeds": seeds,
            "workers": report.workers,
            "wall_s": report.wall_s,
            "events_executed": report.sim.get("events_executed", 0),
            "events_per_sec": report.events_per_sec,
            "cache": report.cache.as_dict(),
            "outcomes": {
                kind: sum(1 for o in report.outcomes if o.kind == kind)
                for kind in ("ok", "dead", "crash", "timeout")
            },
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    hard_failures = [o for o in report.outcomes if o.kind in ("crash", "timeout")]
    if hard_failures:
        first = hard_failures[0]
        print(
            f"{len(hard_failures)} trial(s) failed hard; first: "
            f"[{first.kind}] {first.error}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
