"""Parallel trial execution with deterministic results.

:class:`TrialExecutor` fans a list of independent :class:`TrialSpec`\\ s —
``(fn, params, seed)`` triples — across a ``multiprocessing`` worker pool.
The contract:

* **Determinism.**  Outcomes are keyed by submission index and every seed
  is fixed before dispatch, so the aggregate result is bit-identical
  whether trials run serially (``workers=0``, the default), on 2 workers
  or on 64, and regardless of completion order.
* **Caching.**  With a :class:`~repro.exec.cache.ResultCache` attached,
  trials whose ``(config hash, code fingerprint, seed)`` key is already
  on disk are not re-run; only new points compute.
* **Degradation.**  A trial that crashes or wedges a worker becomes one
  recorded :class:`TrialOutcome` failure (after ``retries`` fresh
  attempts), never a hung or aborted sweep.  Dead channel points
  (:class:`~repro.errors.ChannelProtocolError`) are recorded without
  retry: the simulation is deterministic, so a dead point stays dead.
* **Observability.**  Every trial runs under an armed
  :class:`~repro.obs.EngineCensus`; the per-worker snapshots merge into
  one ``report.sim`` total (engines created, events executed, furthest
  simulated clock).  Parallel runs always carry a telemetry queue: each
  worker posts its per-trial census back, so even trials whose pool
  handle was abandoned during timeout/retry degradation credit their
  completed simulation work.  Attach a
  :class:`~repro.obs.telemetry.SweepTelemetry` (or set
  ``REPRO_TELEMETRY=1``) and the same queue streams live per-trial
  BER/bandwidth/wall-time events to the parent — without perturbing the
  trials, so results stay bit-identical with streaming on or off.

Trial functions must be module-level callables and their params/results
picklable when ``workers > 0``; the serial path has no such restriction,
which is why it is the default for tests.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time
import traceback
import typing

import tempfile

# Imported lazily inside methods: repro.checkpoint imports this module's
# package for stable_digest, so a top-level import would be circular.
if typing.TYPE_CHECKING:
    from repro.checkpoint import CheckpointStore
from repro.errors import ChannelProtocolError
from repro.exec.cache import CacheStats, ResultCache
from repro.obs import telemetry as _telemetry
from repro.obs.census import EngineCensus, note_external_sim
from repro.sim.batch import gate as _batch_gate

if typing.TYPE_CHECKING:
    from repro.obs.telemetry import SweepTelemetry

Params = typing.Dict[str, object]
TrialFn = typing.Callable[[Params, int], object]

#: Outcome kinds, from best to worst.
OK, DEAD, CRASH, TIMEOUT = "ok", "dead", "crash", "timeout"
#: A trial answered by the analytical tier instead of the DES: the spec
#: carried a pre-resolved prediction, so no simulation ran.  Not a
#: failure kind — but deliberately distinct from OK so nothing mistakes
#: a closed-form estimate for simulated evidence.
MODEL = "model"


@dataclasses.dataclass(frozen=True)
class PrefixSpec:
    """A shared warm prefix several trials fork from.

    ``fn(dict(params), seed)`` must return a JSON-able checkpoint doc
    (e.g. :func:`repro.core.contention_channel.fork.prepare_doc` output).
    Trials carrying the same (equal) prefix spec form one group: the
    executor runs the prefix **once** per group and hands the doc to each
    trial — inline for serial runs, via a
    :class:`~repro.checkpoint.CheckpointStore` blob for parallel runs.
    With ``REPRO_CHECKPOINT=0`` prefixes are ignored and every trial
    cold-starts; either way the outcomes are bit-identical.
    """

    fn: TrialFn
    params: Params
    seed: int
    label: str = "prefix"

    def identity(self) -> object:
        """The value that defines prefix-group membership."""
        return (self.fn, tuple(sorted(self.params.items())), self.seed, self.label)


@dataclasses.dataclass(frozen=True)
class TrialSpec:
    """One independent unit of work: ``fn(dict(params), seed)``."""

    fn: TrialFn
    params: Params
    seed: int
    #: Free-form grouping label (e.g. the sweep point the trial belongs
    #: to); carried through to the outcome untouched.
    tag: object = None
    #: Optional shared warm prefix (see :class:`PrefixSpec`).  The trial
    #: function receives the checkpoint doc through the ``_ckpt_*`` keys
    #: :func:`repro.checkpoint.resolve_state` reads; result-cache keys are
    #: computed on the *bare* params, so warm and cold runs address the
    #: same cache entries (their results are bit-identical).
    prefix: typing.Optional[PrefixSpec] = None
    #: Pre-resolved payload from the analytical tier (a pre-screening
    #: planner's prediction).  When set, ``fn`` is never called: the
    #: executor short-circuits to a :data:`MODEL` outcome carrying this
    #: value verbatim — uncached, zero attempts, no simulation.
    resolved: object = None


@dataclasses.dataclass
class TrialOutcome:
    """What happened to one trial, in submission order."""

    index: int
    kind: str  # OK / DEAD / CRASH / TIMEOUT / MODEL
    result: object = None
    error: typing.Optional[str] = None
    from_cache: bool = False
    attempts: int = 1
    tag: object = None

    @property
    def ok(self) -> bool:
        return self.kind == OK


@dataclasses.dataclass
class ExecutionReport:
    """Everything one :meth:`TrialExecutor.run` produced."""

    outcomes: typing.List[TrialOutcome]
    workers: int
    wall_s: float
    cache: CacheStats
    #: Merged per-worker simulation census: engines created, events
    #: executed (summed) and the furthest simulated clock (maxed).
    sim: typing.Dict[str, int]

    def results(self) -> typing.List[object]:
        """Successful results, in submission order."""
        return [o.result for o in self.outcomes if o.kind == OK]

    @property
    def failures(self) -> typing.List[TrialOutcome]:
        return [o for o in self.outcomes if o.kind not in (OK, MODEL)]

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.sim.get("events_executed", 0) / self.wall_s

    def summary(self) -> str:
        ok = sum(1 for o in self.outcomes if o.kind == OK)
        modeled = sum(1 for o in self.outcomes if o.kind == MODEL)
        headline = (
            f"{ok}/{len(self.outcomes)} trials ok "
            f"(workers={self.workers}, {self.wall_s:.2f}s wall)"
        )
        if modeled:
            headline += f", {modeled} answered by model"
        parts = [
            headline,
            self.cache.summary(),
            (
                f"sim: engines={self.sim.get('engines_created', 0)} "
                f"events={self.sim.get('events_executed', 0)} "
                f"({self.events_per_sec:,.0f} events/sec of wall time)"
            ),
        ]
        kinds: typing.Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.kind not in (OK, MODEL):
                kinds[outcome.kind] = kinds.get(outcome.kind, 0) + 1
        if kinds:
            detail = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
            parts.append(f"failures: {detail}")
        return "\n".join(parts)


def _empty_sim() -> typing.Dict[str, int]:
    return {"engines_created": 0, "events_executed": 0, "final_now_fs": 0}


def _census_dict(census: EngineCensus) -> typing.Dict[str, int]:
    return {
        "engines_created": census.engines_created,
        "events_executed": census.events_executed,
        "final_now_fs": census.final_now_fs,
    }


def _merge_sim(total: typing.Dict[str, int], part: typing.Mapping[str, int]) -> None:
    total["engines_created"] += part.get("engines_created", 0)
    total["events_executed"] += part.get("events_executed", 0)
    total["final_now_fs"] = max(total["final_now_fs"], part.get("final_now_fs", 0))


def run_one_trial(
    payload: typing.Sequence[object],
) -> typing.Tuple[str, object, typing.Dict[str, int]]:
    """Execute one trial under an engine census.

    Module-level so worker processes can unpickle it.  ``payload`` is
    ``(fn, params, seed)`` — parallel dispatch appends a unique
    ``token`` and the submission ``index``, which key the telemetry
    events the worker posts back on its installed queue (trial start,
    then a finish event carrying the census sim and result health).
    Returns ``(kind, result_or_message, sim_stats)``; exceptions other
    than :class:`ChannelProtocolError` are folded into a ``CRASH``
    record so a worker never dies on an application error.
    """
    fn = typing.cast(TrialFn, payload[0])
    params = typing.cast(Params, payload[1])
    seed = typing.cast(int, payload[2])
    token = typing.cast(typing.Optional[int], payload[3]) if len(payload) > 3 else None
    index = typing.cast(typing.Optional[int], payload[4]) if len(payload) > 4 else None
    if token is not None:
        _telemetry.emit_from_worker(
            _telemetry.trial_start_event(token, typing.cast(int, index))
        )
        wall_start = time.perf_counter()
    with EngineCensus() as census:
        try:
            result = fn(dict(params), seed)
            kind, value = OK, result
        except ChannelProtocolError as exc:
            kind, value = DEAD, str(exc)
        except Exception:
            kind, value = CRASH, traceback.format_exc(limit=20)
    sim = {
        "engines_created": census.engines_created,
        "events_executed": census.events_executed,
        "final_now_fs": census.final_now_fs,
    }
    if token is not None:
        _telemetry.emit_from_worker(
            _telemetry.trial_finish_event(
                token, index, kind, value, sim,
                time.perf_counter() - wall_start,
            )
        )
    return kind, value, sim


def default_workers() -> int:
    """A sensible worker count for "use the whole machine" callers."""
    return max(1, os.cpu_count() or 1)


_DRAIN_STOP = {"ev": "__drain_stop__"}


class _TelemetryDrainer(threading.Thread):
    """Drains the workers' telemetry queue in the parent.

    Two jobs: forward every event to the attached
    :class:`~repro.obs.telemetry.SweepTelemetry` (if any), and keep the
    per-dispatch-token census sims so the executor can credit trials
    whose pool handle was abandoned (timeout/retry degradation) but
    whose worker did finish the simulation — the handle path would
    silently drop that work (see ``orphan_sims``).
    """

    def __init__(
        self,
        queue: typing.Any,
        telemetry: typing.Optional["SweepTelemetry"],
    ) -> None:
        super().__init__(name="repro-telemetry-drainer", daemon=True)
        self._queue = queue
        self._telemetry = telemetry
        self._sims: typing.Dict[int, typing.Dict[str, int]] = {}
        self._lock = threading.Lock()

    def run(self) -> None:
        while True:
            try:
                event = self._queue.get()
            except (EOFError, OSError):  # queue torn down under us
                return
            except Exception:  # torn pickle from a terminated worker
                continue
            if not isinstance(event, dict):
                continue
            if event.get("ev") == _DRAIN_STOP["ev"]:
                return
            if event.get("ev") == "trial.finish":
                token = event.get("token")
                trial_sim = event.get("sim")
                if isinstance(token, int) and isinstance(trial_sim, dict):
                    with self._lock:
                        self._sims[token] = trial_sim
            if self._telemetry is not None:
                self._telemetry.handle(event)

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self._queue.put(dict(_DRAIN_STOP))
        except Exception:
            pass
        self.join(timeout=timeout)

    def orphan_sims(
        self, claimed: typing.AbstractSet[int]
    ) -> typing.List[typing.Tuple[int, typing.Dict[str, int]]]:
        """Census sims whose dispatch token the handle path never merged."""
        with self._lock:
            return [
                (token, trial_sim)
                for token, trial_sim in sorted(self._sims.items())
                if token not in claimed
            ]


class TrialExecutor:
    """Runs trial specs serially or across a process pool (see module doc)."""

    def __init__(
        self,
        workers: int = 0,
        cache: typing.Union[ResultCache, str, os.PathLike, None] = None,
        trial_timeout_s: float = 300.0,
        retries: int = 1,
        mp_context: typing.Optional[str] = None,
        checkpoints: typing.Union[CheckpointStore, str, os.PathLike, None] = None,
        telemetry: typing.Union["SweepTelemetry", bool, None] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if trial_timeout_s <= 0:
            raise ValueError("trial_timeout_s must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.trial_timeout_s = trial_timeout_s
        self.retries = retries
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        if mp_context is None:
            # fork is the cheap, closure-tolerant default where it exists.
            mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        self._mp_context = mp_context
        from repro.checkpoint import CheckpointStore

        if checkpoints is None or isinstance(checkpoints, CheckpointStore):
            self._checkpoints = checkpoints
        else:
            self._checkpoints = CheckpointStore(checkpoints)
        # None = honour the REPRO_TELEMETRY env knobs; False = force off;
        # True = aggregate in-process with no streams attached.
        if telemetry is None:
            self.telemetry = _telemetry.telemetry_from_env()
        elif telemetry is False:
            self.telemetry = None
        elif telemetry is True:
            self.telemetry = _telemetry.SweepTelemetry()
        else:
            self.telemetry = telemetry
        #: Batch-tier width decisions from the most recent run — one
        #: record per dispatched lockstep chunk (see ``plan_groups``).
        self.last_batch_plans: typing.List[typing.Dict[str, object]] = []

    def _checkpoint_store(self) -> CheckpointStore:
        """The blob store parallel prefix groups ship their docs through."""
        from repro.checkpoint import CheckpointStore

        if self._checkpoints is None:
            self._checkpoints = CheckpointStore(
                tempfile.mkdtemp(prefix="repro-ckpt-")
            )
        return self._checkpoints

    # -- shared warm prefixes -------------------------------------------

    def _prepare_prefixes(
        self,
        specs: typing.Sequence[TrialSpec],
        pending: typing.Sequence[int],
        sim: typing.Dict[str, int],
    ) -> typing.Dict[int, Params]:
        """Run each distinct prefix once; map trial index -> params+doc.

        Serial runs get the doc inline (``_ckpt_state``); parallel runs
        get a store root + key (``_ckpt_store``/``_ckpt_key``) because the
        doc must cross a process boundary.  A prefix that fails to build
        is dropped silently — its trials simply cold-start, which is
        always correct.
        """
        from repro.checkpoint import gate as _checkpoint_gate

        if not _checkpoint_gate.enabled():
            return {}
        groups: typing.Dict[object, typing.List[int]] = {}
        for index in pending:
            prefix = specs[index].prefix
            if prefix is not None:
                groups.setdefault(prefix.identity(), []).append(index)
        effective: typing.Dict[int, Params] = {}
        for indices in groups.values():
            prefix = specs[indices[0]].prefix
            assert prefix is not None
            inject: typing.Optional[Params] = None
            if self.workers == 0:
                try:
                    with EngineCensus() as census:
                        doc = prefix.fn(dict(prefix.params), prefix.seed)
                except Exception:
                    continue
                _merge_sim(sim, _census_dict(census))
                self._emit_prefix_event(prefix.label, census)
                inject = {"_ckpt_state": doc, "_ckpt_label": prefix.label}
            else:
                store = self._checkpoint_store()
                key = store.key_for(
                    (prefix.fn, dict(prefix.params)), prefix.label, prefix.seed
                )
                if store.get(key) is None:
                    try:
                        with EngineCensus() as census:
                            doc = prefix.fn(dict(prefix.params), prefix.seed)
                    except Exception:
                        continue
                    _merge_sim(sim, _census_dict(census))
                    self._emit_prefix_event(prefix.label, census)
                    store.put(key, typing.cast(typing.Dict[str, object], doc))
                inject = {
                    "_ckpt_store": str(store.root),
                    "_ckpt_key": key,
                    "_ckpt_label": prefix.label,
                }
            for index in indices:
                effective[index] = {**specs[index].params, **inject}
        return effective

    def _emit_prefix_event(self, label: str, census: EngineCensus) -> None:
        if self.telemetry is not None:
            self.telemetry.handle({
                "ev": "prefix.build", "label": label,
                "sim": _census_dict(census),
            })

    # -- cache plumbing -------------------------------------------------

    def _cache_lookup(
        self, spec: TrialSpec, index: int
    ) -> typing.Optional[TrialOutcome]:
        if self.cache is None:
            return None
        key = self.cache.key_for(spec.fn, spec.params, spec.seed)
        entry = self.cache.get(key)
        if entry is None:
            return None
        kind, payload = entry
        if kind == OK:
            return TrialOutcome(
                index=index, kind=OK, result=payload, from_cache=True,
                attempts=0, tag=spec.tag,
            )
        return TrialOutcome(
            index=index, kind=DEAD, error=str(payload), from_cache=True,
            attempts=0, tag=spec.tag,
        )

    def _cache_store(self, spec: TrialSpec, outcome: TrialOutcome) -> None:
        # Only deterministic outcomes are cacheable; a crash or timeout
        # may be environmental (OOM kill, wedged worker) and must re-run.
        if self.cache is None or outcome.kind not in (OK, DEAD):
            return
        key = self.cache.key_for(spec.fn, spec.params, spec.seed)
        payload = outcome.result if outcome.kind == OK else outcome.error
        self.cache.put(key, outcome.kind, payload)

    # -- execution ------------------------------------------------------

    def run(self, specs: typing.Sequence[TrialSpec]) -> ExecutionReport:
        """Execute every spec; outcomes come back in submission order."""
        start = time.perf_counter()
        if self.cache is not None:
            self.cache.stats = CacheStats()
        tel = self.telemetry
        if tel is not None:
            tel.handle({
                "ev": "sweep.start", "trials": len(specs),
                "workers": self.workers, "label": tel.label,
            })
        sim = _empty_sim()
        outcomes: typing.Dict[int, TrialOutcome] = {}
        pending: typing.List[int] = []
        for index, spec in enumerate(specs):
            if spec.resolved is not None:
                # Analytical-tier short-circuit: the planner already
                # answered this point; never simulated, never cached.
                outcomes[index] = TrialOutcome(
                    index=index, kind=MODEL, result=spec.resolved,
                    attempts=0, tag=spec.tag,
                )
                if tel is not None:
                    tel.handle({"ev": "trial.model", "index": index})
                continue
            hit = self._cache_lookup(spec, index)
            if hit is not None:
                outcomes[index] = hit
                if tel is not None:
                    tel.handle({
                        "ev": "trial.cached", "index": index, "kind": hit.kind,
                    })
            else:
                pending.append(index)

        if pending:
            effective = self._prepare_prefixes(specs, pending, sim)
            if _batch_gate.enabled():
                pending = self._run_batched(
                    specs, pending, outcomes, sim, effective
                )
            if pending:
                if self.workers == 0:
                    self._run_serial(specs, pending, outcomes, sim, effective)
                else:
                    self._run_parallel(specs, pending, outcomes, sim, effective)

        ordered = [outcomes[i] for i in range(len(specs))]
        report = ExecutionReport(
            outcomes=ordered,
            workers=self.workers,
            wall_s=time.perf_counter() - start,
            cache=self.cache.stats if self.cache is not None else CacheStats(),
            sim=sim,
        )
        if tel is not None:
            finish: typing.Dict[str, object] = {
                "ev": "sweep.finish",
                "wall_s": round(report.wall_s, 6),
                "cached": sum(1 for o in ordered if o.from_cache),
                "sim": dict(sim),
            }
            for kind in (OK, DEAD, CRASH, TIMEOUT, MODEL):
                finish[kind] = sum(1 for o in ordered if o.kind == kind)
            if self.cache is not None:
                finish["cache"] = self.cache.stats.as_dict()
            if self._checkpoints is not None:
                finish["checkpoints"] = self._checkpoints.stats.as_dict()
            tel.handle(finish)
            tel.flush()
        return report

    def _record(
        self,
        specs: typing.Sequence[TrialSpec],
        outcomes: typing.Dict[int, TrialOutcome],
        index: int,
        kind: str,
        value: object,
        attempts: int,
    ) -> None:
        spec = specs[index]
        if kind == OK:
            outcome = TrialOutcome(
                index=index, kind=OK, result=value, attempts=attempts,
                tag=spec.tag,
            )
        else:
            outcome = TrialOutcome(
                index=index, kind=kind, error=str(value), attempts=attempts,
                tag=spec.tag,
            )
        outcomes[index] = outcome
        self._cache_store(spec, outcome)

    def _run_batched(
        self,
        specs: typing.Sequence[TrialSpec],
        pending: typing.Sequence[int],
        outcomes: typing.Dict[int, TrialOutcome],
        sim: typing.Dict[str, int],
        effective: typing.Dict[int, Params],
    ) -> typing.List[int]:
        """Lockstep batch tier: returns the indices it did *not* handle.

        Trials whose function has a registered lockstep kernel are
        grouped by shape digest and advanced N-at-a-time over numpy
        arrays (:mod:`repro.sim.batch`); everything else — plus any
        group that fails wholesale or any trial whose batched outcome
        was a retryable failure — falls through to the ordinary
        serial/parallel path.  Parallel executors ship whole groups to
        pool workers; lanes a kernel ejects re-run serially inside the
        group task either way, so batching never changes an outcome,
        only its cost.
        """
        from repro.sim.batch.engine import plan_groups, run_batch_group

        plans: typing.List[typing.Dict[str, object]] = []
        groups, leftover = plan_groups(specs, pending, effective, plans)
        self.last_batch_plans = plans
        if not groups:
            return leftover
        tel = self.telemetry
        payloads = [
            (
                specs[group[0]].fn,
                [
                    (i, effective.get(i, specs[i].params), specs[i].seed)
                    for i in group
                ],
            )
            for group in groups
        ]

        def apply(entries, value) -> None:
            results, group_sim = value
            _merge_sim(sim, group_sim)
            for index, kind, result, trial_sim, wall_s in results:
                if kind in (CRASH, TIMEOUT):
                    # Keep the normal path's retry/degradation semantics.
                    leftover.append(index)
                    continue
                if tel is not None:
                    tel.handle(_telemetry.trial_start_event(index, index))
                    tel.handle(_telemetry.trial_finish_event(
                        index, index, kind, result, trial_sim, wall_s,
                    ))
                self._record(specs, outcomes, index, kind, result, attempts=1)

        if self.workers == 0:
            for payload in payloads:
                try:
                    value = run_batch_group(payload)
                except Exception:
                    leftover.extend(entry[0] for entry in payload[1])
                    continue
                apply(payload[1], value)
        else:
            context = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context
                else multiprocessing.get_context()
            )
            external = _empty_sim()
            pool = context.Pool(processes=min(self.workers, len(payloads)))
            try:
                handles = [
                    (payload, pool.apply_async(run_batch_group, (payload,)))
                    for payload in payloads
                ]
                for payload, handle in handles:
                    try:
                        value = handle.get(
                            self.trial_timeout_s * max(1, len(payload[1]))
                        )
                    except Exception:
                        leftover.extend(entry[0] for entry in payload[1])
                        continue
                    _merge_sim(external, value[1])
                    apply(payload[1], value)
            finally:
                pool.terminate()
                pool.join()
            # Worker-side engines/kernels never announce to this process's
            # censuses; publish their merged census once, like _run_parallel.
            note_external_sim(external)
        leftover.sort()
        return leftover

    def _run_serial(
        self,
        specs: typing.Sequence[TrialSpec],
        pending: typing.Sequence[int],
        outcomes: typing.Dict[int, TrialOutcome],
        sim: typing.Dict[str, int],
        effective: typing.Dict[int, Params],
    ) -> None:
        tel = self.telemetry
        for index in pending:
            spec = specs[index]
            params = effective.get(index, spec.params)
            if tel is not None:
                tel.handle(_telemetry.trial_start_event(index, index))
            trial_start = time.perf_counter()
            kind, value, trial_sim = run_one_trial((spec.fn, params, spec.seed))
            _merge_sim(sim, trial_sim)
            if tel is not None:
                tel.handle(_telemetry.trial_finish_event(
                    index, index, kind, value, trial_sim,
                    time.perf_counter() - trial_start,
                ))
            self._record(specs, outcomes, index, kind, value, attempts=1)

    def _run_parallel(
        self,
        specs: typing.Sequence[TrialSpec],
        pending: typing.Sequence[int],
        outcomes: typing.Dict[int, TrialOutcome],
        sim: typing.Dict[str, int],
        effective: typing.Dict[int, Params],
    ) -> None:
        context = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context
            else multiprocessing.get_context()
        )
        # Workers' engines never announce to this process's censuses, so
        # collect their merged census and publish it once at the end.
        worker_sim = _empty_sim()
        # Workers post telemetry (and their per-trial census) back on
        # this queue; the drainer runs regardless of telemetry so census
        # totals include trials whose pool handle was abandoned below.
        queue = context.Queue()
        drainer = _TelemetryDrainer(queue, self.telemetry)
        drainer.start()
        #: dispatch tokens whose census the handle path already merged.
        claimed: typing.Set[int] = set()
        next_token = 0
        remaining = list(pending)
        attempts = {index: 0 for index in remaining}
        tel = self.telemetry
        try:
            while remaining:
                pool = context.Pool(
                    processes=min(self.workers, len(remaining)),
                    initializer=_telemetry.install_worker_queue,
                    initargs=(queue,),
                )
                next_round: typing.List[int] = []
                try:
                    handles = []
                    for index in remaining:
                        token = next_token
                        next_token += 1
                        handles.append((
                            index,
                            token,
                            pool.apply_async(
                                run_one_trial,
                                ((
                                    specs[index].fn,
                                    effective.get(index, specs[index].params),
                                    specs[index].seed,
                                    token,
                                    index,
                                ),),
                            ),
                        ))
                    aborted = False
                    for index, token, handle in handles:
                        attempts[index] += 1
                        if aborted:
                            # A wedged worker poisoned this pool.  Harvest
                            # whatever already finished; everything else goes
                            # to a fresh pool (without burning an attempt).
                            if not handle.ready():
                                attempts[index] -= 1
                                next_round.append(index)
                                continue
                        try:
                            kind, value, trial_sim = handle.get(
                                None if aborted else self.trial_timeout_s
                            )
                        except multiprocessing.TimeoutError:
                            aborted = True
                            if attempts[index] <= self.retries:
                                next_round.append(index)
                            else:
                                self._record(
                                    specs, outcomes, index, TIMEOUT,
                                    f"trial exceeded {self.trial_timeout_s}s "
                                    f"(worker wedged or overloaded)",
                                    attempts[index],
                                )
                                if tel is not None:
                                    tel.handle({
                                        "ev": "trial.finish", "token": token,
                                        "index": index, "kind": TIMEOUT,
                                    })
                            continue
                        except Exception as exc:
                            # The worker process died before returning (hard
                            # crash, OOM kill): retry on a fresh pool.
                            aborted = True
                            if attempts[index] <= self.retries:
                                next_round.append(index)
                            else:
                                self._record(
                                    specs, outcomes, index, CRASH,
                                    f"worker died: {exc!r}", attempts[index],
                                )
                                if tel is not None:
                                    tel.handle({
                                        "ev": "trial.finish", "token": token,
                                        "index": index, "kind": CRASH,
                                    })
                            continue
                        claimed.add(token)
                        _merge_sim(sim, trial_sim)
                        _merge_sim(worker_sim, trial_sim)
                        if kind == CRASH and attempts[index] <= self.retries:
                            next_round.append(index)
                        else:
                            self._record(
                                specs, outcomes, index, kind, value,
                                attempts[index],
                            )
                finally:
                    pool.terminate()
                    pool.join()
                remaining = next_round
        finally:
            drainer.stop()
        # Census-crediting fix: trials that finished in a worker but whose
        # handle was abandoned (harvest raced a pool abort) still reported
        # their census on the queue — fold that work in so events/sec
        # stays honest.  Trials killed mid-run are gone for good.
        for _token, trial_sim in drainer.orphan_sims(claimed):
            _merge_sim(sim, trial_sim)
            _merge_sim(worker_sim, trial_sim)
        note_external_sim(worker_sim)
