"""Code fingerprinting for cache invalidation.

A cached trial result is only valid while the code that produced it is
unchanged.  Rather than track fine-grained dependencies, the cache key
includes one SHA-256 digest over the *contents* of every ``.py`` file in
the installed ``repro`` package: touch any source file and every cache
entry silently becomes a miss.  Contents (not mtimes) are hashed so a
fresh checkout of identical code keeps its cache warm.
"""

from __future__ import annotations

import hashlib
import pathlib
import typing

_CACHE: typing.Dict[str, str] = {}


def _package_root(package: str) -> pathlib.Path:
    module = __import__(package)
    file = getattr(module, "__file__", None)
    if file is None:  # pragma: no cover - namespace package fallback
        raise RuntimeError(f"cannot locate source of package {package!r}")
    return pathlib.Path(file).resolve().parent


def engine_knobs() -> str:
    """Canonical string of the engine-selection switches, sampled live.

    ``REPRO_FASTPATH``, ``REPRO_CHECKPOINT`` and ``REPRO_BATCH`` select
    *how* a trial executes.  The engines are pinned byte-identical by
    their equivalence suites, but the cache must not rely on that being
    true forever: keying entries by the engine path that produced them
    means a path with a latent divergence bug can never serve its
    outcomes to the other paths.  Sampled per call (not memoized)
    because tests flip the gates at runtime via ``forced()``.
    """
    from repro.checkpoint import gate as checkpoint_gate
    from repro.sim import fastpath
    from repro.sim.batch import gate as batch_gate

    return (
        f"fastpath={int(fastpath.enabled())}"
        f",checkpoint={int(checkpoint_gate.enabled())}"
        f",batch={int(batch_gate.enabled())}"
    )


def code_fingerprint(package: str = "repro", refresh: bool = False) -> str:
    """SHA-256 over all ``.py`` sources of ``package``, hex-encoded.

    The digest is computed once per process and memoized; pass
    ``refresh=True`` to force a re-scan (used by tests that modify
    sources on the fly).
    """
    if not refresh and package in _CACHE:
        return _CACHE[package]
    root = _package_root(package)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    value = digest.hexdigest()
    _CACHE[package] = value
    return value
