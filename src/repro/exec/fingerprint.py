"""Code fingerprinting for cache invalidation.

A cached trial result is only valid while the code that produced it is
unchanged.  Rather than track fine-grained dependencies, the cache key
includes one SHA-256 digest over the *contents* of every ``.py`` file in
the installed ``repro`` package: touch any source file and every cache
entry silently becomes a miss.  Contents (not mtimes) are hashed so a
fresh checkout of identical code keeps its cache warm.
"""

from __future__ import annotations

import hashlib
import pathlib
import typing

_CACHE: typing.Dict[str, str] = {}


def _package_root(package: str) -> pathlib.Path:
    module = __import__(package)
    file = getattr(module, "__file__", None)
    if file is None:  # pragma: no cover - namespace package fallback
        raise RuntimeError(f"cannot locate source of package {package!r}")
    return pathlib.Path(file).resolve().parent


def code_fingerprint(package: str = "repro", refresh: bool = False) -> str:
    """SHA-256 over all ``.py`` sources of ``package``, hex-encoded.

    The digest is computed once per process and memoized; pass
    ``refresh=True`` to force a re-scan (used by tests that modify
    sources on the fly).
    """
    if not refresh and package in _CACHE:
        return _CACHE[package]
    root = _package_root(package)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    value = digest.hexdigest()
    _CACHE[package] = value
    return value
