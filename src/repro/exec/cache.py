"""Content-addressed on-disk cache of trial outcomes.

A trial is a deterministic function of ``(code, config, seed)``, so its
outcome can be cached under the key

    SHA-256(config digest || code fingerprint || engine knobs || seed)

where the config digest canonicalizes the trial function and its
parameters (:func:`repro.exec.seeds.stable_digest`) and the code
fingerprint covers every source file of the ``repro`` package
(:func:`repro.exec.fingerprint.code_fingerprint`).  Any code change
invalidates every entry; any parameter or seed change addresses a
different entry.  Both successful results and *deterministic* failures
(dead channel points) are cached — re-running a sweep recomputes nothing
it already knows.

Entries are pickled so a cache hit returns an object equal to what the
cold run produced.  Unreadable or truncated entries are treated as
misses and deleted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
import pickle
import tempfile
import typing

from repro.exec.fingerprint import code_fingerprint, engine_knobs
from repro.exec.seeds import stable_digest

_FORMAT_VERSION = 1


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one executor run (or cache lifetime)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries dropped because they were unreadable, truncated or written
    #: by a different format version; each eviction also counts as a miss.
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> typing.Dict[str, int]:
        """Counter view for JSON footers (bench artifacts, reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def publish_to(self, registry, prefix: str = "exec.cache") -> None:
        """Register the counters as first-class metrics on ``registry``.

        ``registry`` is any :class:`~repro.obs.metrics.MetricsRegistry`;
        duck-typed so this module keeps its import graph obs-free.
        """
        for key, value in self.as_dict().items():
            registry.counter(f"{prefix}.{key}").inc(value)

    def summary(self) -> str:
        if self.lookups == 0:
            return "cache: disabled"
        rate = 100.0 * self.hits / self.lookups
        evicted = f", {self.evictions} evicted" if self.evictions else ""
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({rate:.0f}% hit rate), {self.stores} new entries{evicted}"
        )


class ResultCache:
    """Filesystem-backed, content-addressed store of trial outcomes."""

    def __init__(
        self,
        root: typing.Union[str, os.PathLike],
        fingerprint: typing.Optional[str] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()

    def key_for(self, fn: typing.Callable, params: typing.Mapping, seed: int) -> str:
        """The content address of one trial.

        Besides code and config, the key carries the engine-selection
        knobs in force right now (:func:`engine_knobs`): outcomes from
        different engine paths address different entries, so a latent
        equivalence bug in one path can never poison the others' caches.
        """
        config_digest = stable_digest((fn, dict(params)))
        material = f"{config_digest}|{self.fingerprint}|{engine_knobs()}|{seed}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> typing.Optional[typing.Tuple[str, object]]:
        """Return the cached ``(kind, payload)`` or ``None`` on a miss.

        ``kind`` is ``"ok"`` (payload: the trial's return value) or
        ``"dead"`` (payload: the failure message of a deterministic
        :class:`~repro.errors.ChannelProtocolError`).
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Truncated/corrupt/unpicklable entry: drop it, treat as miss.
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
            self.stats.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("v") != _FORMAT_VERSION:
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["kind"], entry["payload"]

    def put(self, key: str, kind: str, payload: object) -> None:
        """Store one outcome; atomic against concurrent writers."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"v": _FORMAT_VERSION, "kind": kind, "payload": payload}
        # Write-to-temp + rename keeps readers from ever seeing a torn
        # entry, even with several executors sharing one cache dir.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))
