"""Deterministic seed fan-out and stable parameter digests.

Parallel trial execution must produce *the same seeds* no matter how many
workers run or in what order trials complete.  Both guarantees come from
computing everything up front, in the parent, from pure functions of the
inputs:

* :func:`derive_seed` maps ``(root_seed, *components)`` to a 63-bit seed
  through SHA-256 — no global RNG, no iteration-order dependence;
* :func:`fan_out_seeds` expands one root seed into ``n`` distinct trial
  seeds;
* :func:`stable_digest` canonicalizes an arbitrary parameter structure
  (dicts sorted by key, dataclasses via their field dict, enums by their
  value) into a hex digest usable as a cache-key component.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import typing


def _canonical(obj: object, out: typing.List[str]) -> None:
    """Append a canonical, deterministic text form of ``obj`` to ``out``."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        out.append(repr(obj))
    elif isinstance(obj, float):
        # repr() of a float is shortest-roundtrip and stable across runs.
        out.append(repr(obj))
    elif isinstance(obj, enum.Enum):
        out.append(f"{type(obj).__name__}.{obj.name}")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(type(obj).__name__)
        out.append("(")
        for field in dataclasses.fields(obj):
            out.append(field.name)
            out.append("=")
            _canonical(getattr(obj, field.name), out)
            out.append(",")
        out.append(")")
    elif isinstance(obj, dict):
        out.append("{")
        for key in sorted(obj, key=repr):
            _canonical(key, out)
            out.append(":")
            _canonical(obj[key], out)
            out.append(",")
        out.append("}")
    elif isinstance(obj, (list, tuple)):
        out.append("[" if isinstance(obj, list) else "(")
        for item in obj:
            _canonical(item, out)
            out.append(",")
        out.append("]" if isinstance(obj, list) else ")")
    elif isinstance(obj, (set, frozenset)):
        out.append("{s:")
        for item in sorted(obj, key=repr):
            _canonical(item, out)
            out.append(",")
        out.append("}")
    elif callable(obj):
        module = getattr(obj, "__module__", "?")
        qualname = getattr(obj, "__qualname__", repr(obj))
        out.append(f"<{module}:{qualname}>")
    else:
        out.append(repr(obj))


def canonical_repr(obj: object) -> str:
    """A deterministic text rendering of ``obj`` (see module docstring)."""
    parts: typing.List[str] = []
    _canonical(obj, parts)
    return "".join(parts)


def stable_digest(obj: object) -> str:
    """SHA-256 hex digest of :func:`canonical_repr`."""
    return hashlib.sha256(canonical_repr(obj).encode("utf-8")).hexdigest()


def derive_seed(root_seed: int, *components: object) -> int:
    """A 63-bit seed derived from ``root_seed`` and arbitrary components.

    Pure and order-sensitive in its arguments only: the same inputs always
    produce the same seed, on every platform and Python version.

    The all-primitive case (ints and strs, by exact type) renders its
    canonical form directly instead of walking :func:`_canonical` — the
    string built is identical, only cheaper, and this is the hot shape:
    seed fan-outs and per-slot payload derivations sit on sweep setup
    paths that the lockstep batch engine executes once per lane.
    """
    if type(root_seed) is int and all(
        type(component) in (int, str) for component in components
    ):
        parts = [f"({root_seed!r},"]
        parts.extend(f"{component!r}," for component in components)
        parts.append(")")
        material = "".join(parts)
    else:
        material = canonical_repr((root_seed,) + components)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


def fan_out_seeds(root_seed: int, n: int, label: str = "trial") -> typing.List[int]:
    """Expand one root seed into ``n`` deterministic, distinct trial seeds."""
    if n < 0:
        raise ValueError(f"cannot fan out a negative seed count: {n}")
    return [derive_seed(root_seed, label, index) for index in range(n)]
