"""Reliable transport over a noisy covert channel (extension).

The paper reports raw channels at 0.8-6% bit error.  A real exfiltration
pipeline wraps them in forward error correction and integrity checks;
this module provides that layer:

* **Hamming(7,4)** block code — corrects any single bit error per 7-bit
  codeword, which covers the paper's error regime comfortably;
* **CRC-8** frame check so the receiver knows whether residual errors
  survived;
* a length-prefixed frame format: ``[16-bit length][payload][8-bit CRC]``
  encoded as Hamming codewords.

``encode_frame``/``decode_frame`` are pure bit-level functions, usable
with either channel (see ``examples/reliable_exfiltration.py``).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import AttackError

Bits = typing.List[int]

#: Generator positions: Hamming(7,4) with parity bits at 1,2,4 (1-based).
_PARITY_POSITIONS = (1, 2, 4)
_DATA_POSITIONS = (3, 5, 6, 7)

CRC8_POLY = 0x07  # CRC-8/ATM


def crc8(data: bytes) -> int:
    """CRC-8 (poly 0x07) over a byte string."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = ((crc << 1) ^ CRC8_POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


def hamming_encode_nibble(nibble: typing.Sequence[int]) -> Bits:
    """Encode 4 data bits into a 7-bit Hamming codeword."""
    if len(nibble) != 4 or any(bit not in (0, 1) for bit in nibble):
        raise AttackError("hamming_encode_nibble needs exactly 4 bits")
    word = [0] * 8  # 1-based indexing; word[0] unused
    for position, bit in zip(_DATA_POSITIONS, nibble):
        word[position] = bit
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, 8):
            if position & parity_position and position != parity_position:
                parity ^= word[position]
        word[parity_position] = parity
    return word[1:]


def hamming_decode_word(word: typing.Sequence[int]) -> typing.Tuple[Bits, bool]:
    """Decode one 7-bit codeword; returns (4 data bits, corrected?)."""
    if len(word) != 7:
        raise AttackError("hamming_decode_word needs exactly 7 bits")
    padded = [0] + [bit & 1 for bit in word]
    syndrome = 0
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, 8):
            if position & parity_position:
                parity ^= padded[position]
        if parity:
            syndrome |= parity_position
    corrected = False
    if syndrome:
        padded[syndrome] ^= 1
        corrected = True
    return [padded[position] for position in _DATA_POSITIONS], corrected


def hamming_encode(bits: typing.Sequence[int]) -> Bits:
    """Encode a bit stream; pads the tail nibble with zeros."""
    out: Bits = []
    for start in range(0, len(bits), 4):
        nibble = list(bits[start : start + 4])
        nibble += [0] * (4 - len(nibble))
        out.extend(hamming_encode_nibble(nibble))
    return out


def hamming_decode(bits: typing.Sequence[int]) -> typing.Tuple[Bits, int]:
    """Decode a stream of 7-bit codewords; returns (bits, corrections)."""
    out: Bits = []
    corrections = 0
    for start in range(0, len(bits) - 6, 7):
        data, corrected = hamming_decode_word(bits[start : start + 7])
        out.extend(data)
        corrections += int(corrected)
    return out, corrections


@dataclasses.dataclass(frozen=True)
class FrameReport:
    """Receiver-side diagnostics of one frame."""

    payload: typing.Optional[bytes]
    crc_ok: bool
    corrected_bits: int
    declared_length: int

    @property
    def delivered(self) -> bool:
        return self.payload is not None and self.crc_ok


def encode_frame(payload: bytes) -> Bits:
    """Wrap a byte payload into an FEC-protected bit frame."""
    if len(payload) > 0xFFFF:
        raise AttackError("frame payload limited to 64 KiB")
    header = len(payload).to_bytes(2, "big")
    body = header + payload + bytes([crc8(header + payload)])
    bits: Bits = []
    for byte in body:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return hamming_encode(bits)


def decode_frame(bits: typing.Sequence[int]) -> FrameReport:
    """Recover a frame; never raises on corrupt input."""
    decoded, corrections = hamming_decode(bits)
    if len(decoded) < 24:
        return FrameReport(None, False, corrections, 0)
    data = bytearray()
    for start in range(0, len(decoded) - 7, 8):
        value = 0
        for bit in decoded[start : start + 8]:
            value = (value << 1) | bit
        data.append(value)
    if len(data) < 3:
        return FrameReport(None, False, corrections, 0)
    declared = int.from_bytes(data[:2], "big")
    if len(data) < declared + 3:
        return FrameReport(None, False, corrections, declared)
    payload = bytes(data[2 : 2 + declared])
    checksum = data[2 + declared]
    crc_ok = checksum == crc8(data[: 2 + declared])
    return FrameReport(payload if crc_ok else None, crc_ok, corrections, declared)


def frame_overhead_ratio(payload_bytes: int) -> float:
    """Channel bits per payload bit under this framing (>= 7/4)."""
    if payload_bytes <= 0:
        raise AttackError("payload must be non-empty")
    payload_bits = 8 * payload_bytes
    framed = len(encode_frame(bytes(payload_bytes)))
    return framed / payload_bits
