"""Common covert-channel abstractions: direction, results, reports."""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.core.encoding import bit_error_rate
from repro.sim import FS_PER_S


class ChannelDirection(enum.Enum):
    """Who transmits: the kernel on the iGPU or the process on the CPU."""

    GPU_TO_CPU = "gpu-to-cpu"
    CPU_TO_GPU = "cpu-to-gpu"

    @property
    def pretty(self) -> str:
        return "GPU→CPU" if self is ChannelDirection.GPU_TO_CPU else "CPU→GPU"


@dataclasses.dataclass
class ChannelResult:
    """Outcome of one covert-channel transmission run."""

    direction: ChannelDirection
    sent: typing.List[int]
    received: typing.List[int]
    elapsed_fs: int
    meta: typing.Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def n_bits(self) -> int:
        return len(self.sent)

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_fs / FS_PER_S

    @property
    def bandwidth_bps(self) -> float:
        """Raw channel bandwidth in bits per second of simulated time."""
        if self.elapsed_fs <= 0:
            return 0.0
        return self.n_bits / self.elapsed_s

    @property
    def bandwidth_kbps(self) -> float:
        """Bandwidth in kb/s, the unit the paper reports."""
        return self.bandwidth_bps / 1e3

    @property
    def error_rate(self) -> float:
        """Alignment-aware bit error rate against the sent payload."""
        return bit_error_rate(self.sent, self.received)

    @property
    def error_percent(self) -> float:
        return 100.0 * self.error_rate

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.direction.pretty}: {self.n_bits} bits in "
            f"{self.elapsed_s * 1e3:.2f} ms -> {self.bandwidth_kbps:.1f} kb/s, "
            f"error {self.error_percent:.2f}%"
        )
