"""Reverse-engineering procedures of §III.

Everything here works through *timing only* (plus huge-page physical-bit
knowledge), exactly as an unprivileged attacker would: the procedures never
touch the simulator's hidden configuration, and the tests then check that
what they recover matches it.
"""

from repro.core.reverse_engineering.l3_geometry import (
    L3GeometryReport,
    discover_l3_geometry,
    find_l3_eviction_rounds,
)
from repro.core.reverse_engineering.l3_inclusive import (
    InclusivenessReport,
    check_l3_inclusiveness,
)
from repro.core.reverse_engineering.slice_hash_re import (
    SliceHashReport,
    build_conflict_oracle,
    recover_slice_hash,
)
from repro.core.reverse_engineering.timer_char import (
    TimerCharacterization,
    characterize_timer,
)

__all__ = [
    "InclusivenessReport",
    "L3GeometryReport",
    "SliceHashReport",
    "TimerCharacterization",
    "build_conflict_oracle",
    "characterize_timer",
    "discover_l3_geometry",
    "find_l3_eviction_rounds",
    "recover_slice_hash",
    "check_l3_inclusiveness",
]
