"""Custom-timer characterization (§III-B, Fig. 4).

Launches one work-group whose first wavefront times memory accesses while
the remaining threads drive the SLM counter, then measures the tick deltas
for accesses served by system memory, the LLC, and the GPU L3 — following
Algorithm 1: measure cold (memory), clear the L3 but not the LLC, measure
again (LLC), measure once more with the line back in the L3 (L3).

The report also sweeps the number of counter threads, reproducing the
paper's observation that a single extra wavefront yields too coarse a
timer while a full 256-thread work-group separates the three levels.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing

from repro.config import SoCConfig, kaby_lake
from repro.core.evictionset import AddressPool
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.soc.machine import SoC
from repro.soc.slice_hash import SliceHash

if typing.TYPE_CHECKING:
    from repro.gpu.workgroup import WorkGroupCtx


@dataclasses.dataclass
class LevelSamples:
    """Tick-delta samples for one memory-hierarchy level."""

    level: str
    ticks: typing.List[int]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.ticks) if self.ticks else 0.0

    @property
    def stdev(self) -> float:
        return statistics.pstdev(self.ticks) if len(self.ticks) > 1 else 0.0

    @property
    def minimum(self) -> int:
        return min(self.ticks)

    @property
    def maximum(self) -> int:
        return max(self.ticks)


@dataclasses.dataclass
class TimerCharacterization:
    """Fig. 4: per-level tick distributions for one counter-thread count."""

    counter_threads: int
    memory: LevelSamples
    llc: LevelSamples
    l3: LevelSamples

    @property
    def levels_separated(self) -> bool:
        """Whether the three levels are clearly orderable.

        Uses medians with a small margin: occasional glitched reads make
        min/max or stdev-based checks overly pessimistic, just like on
        real hardware.
        """
        l3 = statistics.median(self.l3.ticks)
        llc = statistics.median(self.llc.ticks)
        memory = statistics.median(self.memory.ticks)
        return l3 + 2 <= llc and llc + 2 <= memory

    def rows(self) -> typing.List[typing.Tuple[str, float, float]]:
        """(level, mean ticks, stdev) rows in Fig. 4 order."""
        return [
            ("L3", self.l3.mean, self.l3.stdev),
            ("LLC", self.llc.mean, self.llc.stdev),
            ("memory", self.memory.mean, self.memory.stdev),
        ]


def characterize_timer(
    config: typing.Optional[SoCConfig] = None,
    counter_threads: typing.Optional[int] = None,
    samples: int = 24,
    seed: int = 0,
) -> TimerCharacterization:
    """Run the Algorithm-1 experiment on a fresh SoC."""
    soc_config = (config or kaby_lake()).replace(seed=seed)
    soc = SoC(soc_config)
    device = GpuDevice(soc)
    space = soc.new_process("timer-char")
    cl = OpenClContext(soc, device, space)
    hash_model = SliceHash(
        [soc_config.llc.hash_s0_mask, soc_config.llc.hash_s1_mask],
        soc_config.llc.slices,
    )
    pool_bytes = 512 * max(
        soc_config.llc.line_bytes << soc_config.llc.set_index_bits,
        1 << soc_config.gpu_l3.placement_bits,
    )
    pool = AddressPool(
        cl.svm_alloc(pool_bytes, huge=True),
        soc_config.llc,
        soc_config.gpu_l3,
        hash_model,
    )
    # One measured line per sample, plus its L3 conflict set for the
    # "clear from L3 but not LLC" step of Algorithm 1.
    from repro.soc.llc import LlcLocation

    lines: typing.List[int] = []
    pollutes: typing.List[typing.List[int]] = []
    for i in range(samples):
        location = LlcLocation(i % soc_config.llc.slices, 8 + i)
        target = pool.llc_eviction_set(location, 1)[0]
        lines.append(target)
        pollutes.append(
            pool.l3_pollute_set(target, soc_config.gpu_l3.ways, [location])
        )

    n_counter = counter_threads
    rounds = soc_config.gpu_l3.plru_rounds_for_eviction

    def kernel(wg: "WorkGroupCtx") -> typing.Generator:
        wg.start_timer(n_counter)
        memory_ticks: typing.List[int] = []
        llc_ticks: typing.List[int] = []
        l3_ticks: typing.List[int] = []
        for target, pollute in zip(lines, pollutes):
            # Cold: served from system memory.
            delta = yield from wg.timed_read(target)
            memory_ticks.append(delta)
            # Clear from the L3 but not the LLC, then re-measure.
            for _round in range(rounds):
                yield from wg.parallel_read(pollute)
            delta = yield from wg.timed_read(target)
            llc_ticks.append(delta)
            # Now resident in both: the L3 answers.
            delta = yield from wg.timed_read(target)
            l3_ticks.append(delta)
        return memory_ticks, llc_ticks, l3_ticks

    results = cl.run_kernel_to_completion(
        kernel, 1, soc_config.gpu.max_threads_per_workgroup
    )
    memory_ticks, llc_ticks, l3_ticks = results[0]
    effective_threads = (
        n_counter
        if n_counter is not None
        else soc_config.gpu.max_threads_per_workgroup - soc_config.gpu.wavefront_size
    )
    return TimerCharacterization(
        counter_threads=effective_threads,
        memory=LevelSamples("memory", memory_ticks),
        llc=LevelSamples("llc", llc_ticks),
        l3=LevelSamples("l3", l3_ticks),
    )


def resolution_sweep(
    config: typing.Optional[SoCConfig] = None,
    thread_counts: typing.Sequence[int] = (32, 64, 128, 224),
    samples: int = 16,
    seed: int = 0,
) -> typing.List[TimerCharacterization]:
    """§III-B ablation: timer quality vs number of counter threads."""
    return [
        characterize_timer(
            config, counter_threads=count, samples=samples, seed=seed + i
        )
        for i, count in enumerate(thread_counts)
    ]
