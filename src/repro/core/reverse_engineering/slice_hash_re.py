"""LLC slice-hash recovery (§III-C).

Works the way the attacker must: allocate a 1 GB huge page (physical bits
below 30 are then known offsets), build a timing *conflict oracle* — does
accessing this candidate set evict that victim from the LLC? — and exploit
the hash's GF(2) linearity.

Within one huge page the oracle can compare addresses that share the LLC
set-index bits but differ in bits 17..29; the hash restricted to those
bits is recovered exactly, up to an invertible relabeling of the slice
numbers (the absolute labels depend on unknowable bits ≥ 30 of the page's
base).  ``SliceHashReport.partition_matches`` verifies the recovery
against any reference hash by comparing the induced address partitions,
which is label-free.  Bits 6..16 participate in the set index, so a
single-page timing oracle cannot probe them — the report records that
limitation explicitly (the paper leaned on prior work [20], [32], [48]
plus performance-counter assists for the full mask).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import SoCConfig, kaby_lake
from repro.core.evictionset import reduce_eviction_set
from repro.cpu.core import CpuProgram
from repro.errors import ReverseEngineeringError
from repro.soc.machine import SoC
from repro.soc.mmu import Buffer

ConflictOracle = typing.Callable[[int, typing.Sequence[int]], bool]


@dataclasses.dataclass
class SliceHashReport:
    """Recovered hash structure."""

    #: Recovered per-output-bit masks, restricted to the probed bits.
    masks: typing.Tuple[int, ...]
    #: Physical-address bit positions actually probed.
    probed_bits: typing.Tuple[int, ...]
    #: Self-check accuracy on held-out offsets (1.0 = perfect).
    verification_accuracy: float
    #: Number of distinct slices observed.
    n_slices: int
    oracle_queries: int

    def predict_code(self, offset: int) -> int:
        """Relabeled slice code of a page offset under the recovery."""
        code = 0
        for j, mask in enumerate(self.masks):
            code |= (bin(offset & mask).count("1") & 1) << j
        return code

    def partition_matches(
        self,
        reference: typing.Callable[[int], int],
        offsets: typing.Iterable[int],
    ) -> bool:
        """Label-free check: does the recovery split ``offsets`` into the
        same groups as ``reference``?"""
        forward: typing.Dict[int, int] = {}
        backward: typing.Dict[int, int] = {}
        for offset in offsets:
            mine = self.predict_code(offset)
            theirs = reference(offset)
            if forward.setdefault(mine, theirs) != theirs:
                return False
            if backward.setdefault(theirs, mine) != mine:
                return False
        return True


def build_conflict_oracle(
    soc: SoC, program: CpuProgram
) -> typing.Tuple[ConflictOracle, typing.Callable[[], int]]:
    """A CPU timing oracle: "does this candidate set evict that victim?"

    Accessing the candidates (which share the victim's set-index bits)
    also pushes the victim out of the inclusive L1/L2, so the timed
    re-access cleanly discriminates LLC-hit from DRAM.
    """
    profile = soc.cpu_latency_profile()
    cycle_fs = soc.config.cpu_clock.cycle_fs
    threshold_cycles = int(
        (profile["llc_ns"] + profile["dram_ns"]) / 2 * 1_000_000 / cycle_fs
    )
    queries = 0

    def oracle(victim: int, candidates: typing.Sequence[int]) -> bool:
        nonlocal queries
        queries += 1

        def body() -> typing.Generator:
            yield from program.read(victim)
            yield from program.read_series(candidates)
            cycles = yield from program.timed_read(victim)
            return cycles > threshold_cycles

        return typing.cast(
            bool, soc.engine.run_until_complete(soc.engine.process(body()))
        )

    return oracle, lambda: queries


def recover_slice_hash(
    config: typing.Optional[SoCConfig] = None,
    seed: int = 0,
    pool_size: int = 160,
    verify_offsets: int = 24,
) -> SliceHashReport:
    """Recover the hash over bits 17..29 from one 1 GB huge page."""
    soc_config = (config or kaby_lake()).replace(seed=seed)
    soc = SoC(soc_config)
    space = soc.new_process("slice-re")
    program = CpuProgram(soc, 0, space, name="slice-re")
    llc = soc_config.llc
    set_period = llc.line_bytes << llc.set_index_bits
    page = space.mmap_huge(soc_config.mmu.huge_page_bytes)
    base = page.paddr_of(0)
    probed_bits = tuple(
        bit
        for bit in range(llc.offset_bits + llc.set_index_bits, 30)
        if (1 << bit) < page.size
    )
    oracle, query_count = build_conflict_oracle(soc, program)

    rng = soc.rng.stream("slice-re-pool")
    max_offset_units = page.size // set_period
    pool_units = sorted(
        int(u) for u in rng.choice(max_offset_units, size=pool_size, replace=False)
    )
    pool = [base + u * set_period for u in pool_units]

    # Slice groups: each is a minimal LLC eviction set acting as a
    # membership test for its (slice, set-0) class.
    groups: typing.List[typing.List[int]] = []
    group_codes: typing.Dict[int, int] = {}

    def group_of(paddr: int) -> int:
        """Membership test against known groups; grow a new one if none."""
        for index, eviction_set in enumerate(groups):
            if oracle(paddr, eviction_set):
                return index
        minimal = reduce_eviction_set(
            paddr, [c for c in pool if c != paddr], oracle, llc.ways
        )
        groups.append(minimal)
        return len(groups) - 1

    # Label the reference and every probed bit's single-bit offset.
    reference_group = group_of(base)
    bit_groups: typing.Dict[int, int] = {}
    for bit in probed_bits:
        bit_groups[bit] = group_of(base + (1 << bit))

    # Assign binary codes to groups, anchored at the reference = 0.  The
    # first two new classes get the free labels 1 and 2 (any invertible
    # relabeling over GF(2)² is equivalent); a third must then be 3.
    group_codes[reference_group] = 0
    next_code = 1
    for bit in probed_bits:
        group = bit_groups[bit]
        if group not in group_codes:
            if next_code > 3:
                raise ReverseEngineeringError(
                    "more than 4 slice classes found; the oracle is noisy"
                )
            group_codes[group] = next_code
            next_code += 1
    for group in range(len(groups)):
        if group not in group_codes:
            if next_code > 3:
                raise ReverseEngineeringError(
                    "more than 4 slice classes found; the oracle is noisy"
                )
            group_codes[group] = next_code
            next_code += 1

    masks = [0, 0]
    for bit in probed_bits:
        code = group_codes[bit_groups[bit]]
        for j in range(2):
            if code >> j & 1:
                masks[j] |= 1 << bit

    # Held-out verification: random multi-bit offsets must land in the
    # group their XOR-predicted code says.
    hits = 0
    trials = 0
    code_to_group = {code: group for group, code in group_codes.items()}
    for _ in range(verify_offsets):
        units = int(rng.integers(1, max_offset_units))
        offset = units * set_period
        predicted_code = 0
        for j, mask in enumerate(masks):
            predicted_code |= (bin(offset & mask).count("1") & 1) << j
        predicted_group = code_to_group.get(predicted_code)
        if predicted_group is None:
            trials += 1
            continue
        actual = oracle(base + offset, groups[predicted_group])
        trials += 1
        hits += 1 if actual else 0
    accuracy = hits / trials if trials else 0.0
    return SliceHashReport(
        masks=tuple(masks),
        probed_bits=probed_bits,
        verification_accuracy=accuracy,
        n_slices=len(groups),
        oracle_queries=query_count(),
    )
