"""GPU L3 geometry recovery (§III-D).

Discovers, from timing alone:

* the number of low address bits fixing L3 placement (6-bit line offset +
  set + bank + sub-bank — 16 at the full published geometry): the smallest
  power-of-two stride at which addresses still evict one another;
* the set associativity: the smallest conflict-set size that reliably
  evicts a target;
* the pLRU round count: how many sweeps of that conflict set are needed
  for a *stable* eviction (the paper found 5).

All probes run inside one work-group using the custom SLM timer, and the
conflict addresses are chosen so they never share an LLC set with the
target (§III-D's self-interference constraint) — eviction of the target
from the *LLC* would fake an L3 conflict.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import SoCConfig, kaby_lake
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.soc.machine import SoC

if typing.TYPE_CHECKING:
    from repro.gpu.workgroup import WorkGroupCtx
    from repro.soc.mmu import Buffer


@dataclasses.dataclass
class L3GeometryReport:
    """Recovered L3 structure."""

    placement_bits: int
    ways: int
    eviction_rounds: int
    conflicts_by_stride_bits: typing.Dict[int, bool]

    @property
    def total_sets(self) -> int:
        """Placement groups implied by the recovered bit count (line = 64B)."""
        return 1 << (self.placement_bits - 6)


def _gpu_threshold_ticks(soc: SoC) -> int:
    """Decision level between an L3 hit and anything beyond it.

    A timed read spans the access plus one SLM timer read (the closing
    ``atomic_add(counter, 0)``), so that overhead is part of both levels.
    """
    from repro.gpu.timer import counter_rate_per_cycle

    profile = soc.gpu_latency_profile()
    rate = counter_rate_per_cycle(
        soc.config.slm,
        soc.config.gpu.max_threads_per_workgroup - soc.config.gpu.wavefront_size,
    )
    ticks_per_ns = rate * 1e6 / soc.config.gpu_clock.cycle_fs
    level_ns = (profile["l3_ns"] + profile["llc_ns"]) / 2
    overhead_ticks = rate * soc.config.slm.access_cycles
    return max(1, int(level_ns * ticks_per_ns + overhead_ticks))


def _evicted_after(
    soc: SoC,
    cl: OpenClContext,
    target: int,
    conflicts: typing.Sequence[int],
    rounds: int,
    margin_ticks: int = 5,
    trials: int = 5,
    require_all: bool = False,
) -> bool:
    """Timing conflict test: do ``conflicts`` push ``target`` out of the L3?

    Differential form: the verdict compares the timed re-access against an
    immediate second read of the same line (which is L3-resident by then).
    The pair shares the timer overhead and every slow path above the L3,
    so a positive difference cleanly means "the first read was not an L3
    hit" without an absolute threshold.
    """

    def kernel(wg: "WorkGroupCtx") -> typing.Generator:
        wg.start_timer()
        diffs = []
        for _trial in range(trials):
            yield from wg.read(target)  # ensure L3 residency
            for _round in range(rounds):
                for paddr in conflicts:
                    yield from wg.read(paddr)
            first = yield from wg.timed_read(target)
            second = yield from wg.timed_read(target)
            diffs.append(first - second)
        return diffs

    instance = cl.enqueue_nd_range(
        kernel, 1, soc.config.gpu.max_threads_per_workgroup, name="l3-evict-test"
    )
    soc.engine.run_until_complete(instance.completion)
    diffs = typing.cast(typing.List[int], instance.results()[0])
    if require_all:
        # "Stable eviction": every trial must individually show it.
        return all(diff >= margin_ticks for diff in diffs)
    # Structural probe: a stale counter read *inflates* a difference (the
    # start timestamp lags), so the low order statistics are trustworthy.
    # A real eviction lifts every trial; demand it of the 2nd smallest.
    return sorted(diffs)[min(1, len(diffs) - 1)] >= margin_ticks


def _conflict_addrs(
    buffer: "Buffer", target_offset: int, stride: int, count: int, soc: SoC
) -> typing.List[int]:
    """Addresses at *odd* multiples of ``stride`` from the target.

    Odd multiples all flip the bit at the stride position: if that bit is
    still inside the placement field, none of them share the target's L3
    set, and the conflict test correctly fails.  (Even multiples would
    alias back onto the target's set and fake a conflict at half the true
    period.)  Addresses sharing the target's LLC set are skipped to avoid
    the §III-D self-interference false positive.
    """
    target = buffer.paddr_of(target_offset)
    target_loc = soc.llc.location_of(target)
    out: typing.List[int] = []
    multiple = 1
    while len(out) < count:
        offset = target_offset + multiple * stride
        multiple += 2
        if offset >= buffer.size:
            break
        paddr = buffer.paddr_of(offset)
        if soc.llc.location_of(paddr) != target_loc:
            out.append(paddr)
    return out


def discover_l3_geometry(
    config: typing.Optional[SoCConfig] = None,
    min_bits: int = 9,
    max_bits: int = 20,
    max_ways: int = 64,
    seed: int = 0,
) -> L3GeometryReport:
    """Recover placement bits, associativity and pLRU rounds."""
    soc_config = (config or kaby_lake()).replace(seed=seed)
    soc = SoC(soc_config)
    device = GpuDevice(soc)
    space = soc.new_process("l3-geometry")
    cl = OpenClContext(soc, device, space)
    # Generous rounds while probing structure; tightened afterwards.
    probe_rounds = 2 * soc_config.gpu_l3.plru_rounds_for_eviction
    buffer = cl.svm_alloc((2 * max_ways) << max_bits, huge=True)

    line = soc_config.llc.line_bytes
    conflicts_by_stride: typing.Dict[int, bool] = {}
    placement_bits = max_bits
    for probe_index, bits in enumerate(range(min_bits, max_bits + 1)):
        # Every probe targets a fresh line in a fresh L3 set so residual
        # conflict lines from earlier probes cannot alias into it.
        target_offset = probe_index * line
        conflicts = _conflict_addrs(buffer, target_offset, 1 << bits, max_ways, soc)
        evicted = _evicted_after(
            soc, cl, buffer.paddr_of(target_offset), conflicts, probe_rounds
        )
        conflicts_by_stride[bits] = evicted
        if evicted:
            placement_bits = bits
            break

    stride = 1 << placement_bits
    ways = max_ways
    size = 1
    probe_index = 64
    while size <= max_ways:
        target_offset = probe_index * line
        probe_index += 1
        conflicts = _conflict_addrs(buffer, target_offset, stride, size, soc)
        if _evicted_after(
            soc, cl, buffer.paddr_of(target_offset), conflicts, probe_rounds
        ):
            ways = size
            break
        size *= 2

    rounds = find_l3_eviction_rounds(soc, cl, buffer, stride, ways)
    return L3GeometryReport(
        placement_bits=placement_bits,
        ways=ways,
        eviction_rounds=rounds,
        conflicts_by_stride_bits=conflicts_by_stride,
    )


def find_l3_eviction_rounds(
    soc: SoC,
    cl: OpenClContext,
    buffer: "Buffer",
    stride: int,
    ways: int,
    max_rounds: int = 12,
) -> int:
    """Smallest sweep count giving a *stable* pLRU eviction (§III-D).

    Stability means eviction in every one of five trials, matching the
    paper's "5 times or more ... guarantees stable eviction" criterion.
    """
    line = soc.config.llc.line_bytes
    for rounds in range(1, max_rounds + 1):
        target_offset = (128 + rounds) * line  # fresh set per attempt
        conflicts = _conflict_addrs(buffer, target_offset, stride, ways, soc)
        if _evicted_after(
            soc, cl, buffer.paddr_of(target_offset), conflicts, rounds,
            trials=5, require_all=True,
        ):
            return rounds
    return max_rounds
