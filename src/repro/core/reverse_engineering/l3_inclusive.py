"""The §III-D inclusiveness experiment.

A buffer is shared between the CPU and GPU (SVM).  The GPU touches a set
of lines (caching them in L3 *and* LLC), the CPU then reads and
``clflush``-es them — removing them from every CPU-coherent level.  If
the LLC were inclusive of the GPU L3, the flush would back-invalidate the
L3 copies; the GPU then times its re-accesses.  L3-hit-level timings mean
the copies survived: the L3 is **non-inclusive**, which is the property
forcing GPU-side eviction sets in the rest of the attack.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing

from repro.config import SoCConfig, kaby_lake
from repro.cpu.core import CpuProgram
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.soc.machine import SoC

if typing.TYPE_CHECKING:
    from repro.gpu.workgroup import WorkGroupCtx


@dataclasses.dataclass
class InclusivenessReport:
    """Outcome of the experiment."""

    n_lines: int
    reaccess_ticks: typing.List[int]
    #: Same-timer reference level for an L3 hit.
    l3_hit_level_ticks: float
    #: Same-timer reference level for a full miss (flushed everywhere).
    miss_level_ticks: float

    @property
    def mean_reaccess(self) -> float:
        return statistics.fmean(self.reaccess_ticks)

    @property
    def inclusive(self) -> bool:
        """True would mean flushes reached the L3 (they do not here)."""
        decision_level = (self.l3_hit_level_ticks + self.miss_level_ticks) / 2
        return self.mean_reaccess > decision_level


def check_l3_inclusiveness(
    config: typing.Optional[SoCConfig] = None,
    n_lines: int = 16,
    seed: int = 0,
) -> InclusivenessReport:
    """Run the experiment on a fresh SoC and report the verdict."""
    soc_config = (config or kaby_lake()).replace(seed=seed)
    soc = SoC(soc_config)
    device = GpuDevice(soc)
    space = soc.new_process("inclusiveness")
    cpu = CpuProgram(soc, 0, space, name="inclusiveness")
    cl = OpenClContext(soc, device, space)
    line = soc_config.llc.line_bytes
    # Spread lines so they cannot conflict with each other in the L3.
    buffer = cl.svm_alloc(n_lines * (1 << soc_config.gpu_l3.placement_bits), huge=True)
    lines = [
        buffer.paddr_of(i * (1 << soc_config.gpu_l3.placement_bits) + (i % 4) * line)
        for i in range(n_lines)
    ]

    def gpu_touch(wg: "WorkGroupCtx") -> typing.Generator:
        wg.start_timer()
        yield from wg.parallel_read(lines)
        # Reference levels, measured on this same kernel's timer.
        l3_ref = yield from wg.timed_read(lines[0])
        return l3_ref

    instance = cl.enqueue_nd_range(
        gpu_touch, 1, soc_config.gpu.max_threads_per_workgroup, name="touch"
    )
    soc.engine.run_until_complete(instance.completion)

    def cpu_phase() -> typing.Generator:
        for paddr in lines:
            yield from cpu.read(paddr)
        for paddr in lines:
            yield from cpu.clflush(paddr)
        return None

    soc.engine.run_until_complete(soc.engine.process(cpu_phase()))
    for paddr in lines:
        assert not soc.llc.contains(paddr)  # flush really emptied the LLC

    def gpu_retime(wg: "WorkGroupCtx") -> typing.Generator:
        wg.start_timer()
        deltas = []
        for paddr in lines:
            delta = yield from wg.timed_read(paddr)
            deltas.append(delta)
        # Empirical references measured with the same timer and overhead:
        # re-reading a just-read line gives the L3-hit level; reading it
        # again after clearing it from the L3 (but not the LLC... it was
        # flushed from the LLC too, so re-fetch first) gives higher levels.
        l3_refs = []
        for paddr in lines:
            delta = yield from wg.timed_read(paddr)  # L3 resident now
            l3_refs.append(delta)
        miss_refs = []
        for index in range(len(lines)):
            cold = buffer.paddr_of(
                index * (1 << wg.soc.config.gpu_l3.placement_bits) + 32 * 64
            )
            delta = yield from wg.timed_read(cold)  # never touched: DRAM
            miss_refs.append(delta)
        return deltas, l3_refs, miss_refs

    instance = cl.enqueue_nd_range(
        gpu_retime, 1, soc_config.gpu.max_threads_per_workgroup, name="retime"
    )
    soc.engine.run_until_complete(instance.completion)
    deltas, l3_refs, miss_refs = typing.cast(tuple, instance.results()[0])
    return InclusivenessReport(
        n_lines=n_lines,
        reaccess_ticks=deltas,
        l3_hit_level_ticks=statistics.median(l3_refs),
        miss_level_ticks=statistics.median(miss_refs),
    )
