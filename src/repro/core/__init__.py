"""The paper's contribution: cross-component covert channels.

Layout:

* :mod:`repro.core.encoding` — payloads, bit streams, error metrics;
* :mod:`repro.core.evictionset` — LLC and GPU-L3 eviction-set construction;
* :mod:`repro.core.reverse_engineering` — §III-B/C/D procedures (timer
  characterization, slice-hash recovery, L3 inclusiveness and geometry);
* :mod:`repro.core.llc_channel` — the §III PRIME+PROBE channel over the
  shared LLC, both directions, with the three L3-eviction strategies;
* :mod:`repro.core.contention_channel` — the §IV ring-bus contention
  channel with iteration-factor calibration.
"""

from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.encoding import bit_error_rate, bits_to_bytes, bytes_to_bits, random_bits

__all__ = [
    "ChannelDirection",
    "ChannelResult",
    "bit_error_rate",
    "bits_to_bytes",
    "bytes_to_bits",
    "random_bits",
]
