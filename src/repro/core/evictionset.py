"""Eviction-set construction (§III-C / §III-D).

Two kinds of sets are needed:

* **LLC eviction sets** — ``ways`` addresses mapping to one (slice, set).
  Built from a huge-page buffer: the page gives the attacker the physical
  bits below the page size, and the slice is computed with the
  reverse-engineered hash (recovered by
  :mod:`repro.core.reverse_engineering.slice_hash_re`; the channel code
  consumes the recovered masks, not the hidden ones).

* **GPU L3 eviction ("pollute") sets** — the L3 is non-inclusive, so LLC
  targets must be pushed out of the L3 *from the GPU side* before every
  prime/probe.  Addresses sharing the target's low placement bits conflict
  in the L3; the constraint is that they must land in *different* LLC sets
  than every communication set, or they would self-interfere (§III-D).

The module also implements the generic timing-based group-testing
reduction (Vila et al. [39]) used when no geometry knowledge is assumed.
"""

from __future__ import annotations

import typing

from repro.config import GpuL3Config, LlcConfig
from repro.errors import EvictionSetError
from repro.soc.llc import LlcLocation
from repro.soc.mmu import Buffer
from repro.soc.slice_hash import SliceHash


class AddressPool:
    """Attacker-controlled addresses with architectural knowledge attached.

    ``hash_model`` is the *recovered* slice hash; on an un-reverse-engineered
    machine it would come straight out of
    :func:`repro.core.reverse_engineering.slice_hash_re.recover_slice_hash`.
    """

    def __init__(
        self,
        buffer: Buffer,
        llc_config: LlcConfig,
        l3_config: GpuL3Config,
        hash_model: SliceHash,
    ) -> None:
        if not buffer.is_physically_contiguous:
            raise EvictionSetError(
                "the address pool must be backed by huge pages (physically "
                "contiguous), as in §III-C"
            )
        self.buffer = buffer
        self.llc_config = llc_config
        self.l3_config = l3_config
        self.hash_model = hash_model
        self._line = llc_config.line_bytes
        self._set_period = self._line << llc_config.set_index_bits
        self._l3_period = 1 << l3_config.placement_bits

    # ------------------------------------------------------------------
    # Geometry helpers (attacker-side model, mirrors the hardware)

    def llc_location_of(self, paddr: int) -> LlcLocation:
        """(slice, set) under the attacker's recovered model."""
        set_index = (paddr >> self.llc_config.offset_bits) % self.llc_config.sets_per_slice
        return LlcLocation(self.hash_model.slice_of(paddr), set_index)

    def l3_set_of(self, paddr: int) -> int:
        """Flat L3 placement index (same low bits ⇒ same L3 set)."""
        bits = self.l3_config.placement_bits - self.l3_config.offset_bits
        return (paddr >> self.l3_config.offset_bits) & ((1 << bits) - 1)

    # ------------------------------------------------------------------
    # LLC eviction sets

    def llc_eviction_set(
        self,
        location: LlcLocation,
        count: int,
        exclude: typing.Container[int] = (),
    ) -> typing.List[int]:
        """``count`` buffer addresses mapping to ``location``."""
        found: typing.List[int] = []
        offset = location.set_index * self._line
        while offset < self.buffer.size and len(found) < count:
            paddr = self.buffer.paddr_of(offset)
            if paddr not in exclude and (
                self.hash_model.slice_of(paddr) == location.slice_index
            ):
                found.append(paddr)
            offset += self._set_period
        if len(found) < count:
            raise EvictionSetError(
                f"buffer too small: found {len(found)}/{count} lines for "
                f"slice {location.slice_index} set {location.set_index}"
            )
        return found

    def available_llc_sets(
        self, min_candidates: int, limit: typing.Optional[int] = None
    ) -> typing.List[LlcLocation]:
        """LLC locations for which the buffer holds enough candidates."""
        locations: typing.List[LlcLocation] = []
        for set_index in range(self.llc_config.sets_per_slice):
            for slice_index in range(self.llc_config.slices):
                location = LlcLocation(slice_index, set_index)
                try:
                    self.llc_eviction_set(location, min_candidates)
                except EvictionSetError:
                    continue
                locations.append(location)
                if limit is not None and len(locations) >= limit:
                    return locations
        return locations

    # ------------------------------------------------------------------
    # GPU L3 pollute sets

    def l3_pollute_set(
        self,
        target_paddr: int,
        count: int,
        forbidden: typing.Collection[LlcLocation],
        exclude: typing.Container[int] = (),
    ) -> typing.List[int]:
        """Addresses conflicting with ``target_paddr`` in the L3 while
        avoiding every communication LLC set (precise §III-D strategy)."""
        found: typing.List[int] = []
        target_offset = target_paddr - self.buffer.paddr_of(0)
        offset = target_offset % self._l3_period
        forbidden_set = set(forbidden)
        while offset < self.buffer.size and len(found) < count:
            paddr = self.buffer.paddr_of(offset)
            if (
                paddr != target_paddr
                and paddr not in exclude
                and self.llc_location_of(paddr) not in forbidden_set
            ):
                found.append(paddr)
            offset += self._l3_period
        if len(found) < count:
            raise EvictionSetError(
                f"buffer too small: found {len(found)}/{count} L3-conflict "
                f"lines for target {target_paddr:#x}"
            )
        return found

    def llc_setindex_pollute_set(
        self,
        target_paddr: int,
        count: int,
        forbidden: typing.Collection[LlcLocation],
        exclude: typing.Container[int] = (),
    ) -> typing.List[int]:
        """The intermediate (LLC-knowledge-only) strategy of Fig. 7.

        Without L3 geometry, the attacker exploits that addresses sharing
        the LLC *set-index bits* also share the L3 placement bits they
        cover; picking ones whose (slice, set) differs from every
        communication set avoids self-interference but needs more
        addresses and rounds than the precise variant.
        """
        found: typing.List[int] = []
        target_offset = target_paddr - self.buffer.paddr_of(0)
        offset = target_offset % self._set_period
        forbidden_set = set(forbidden)
        while offset < self.buffer.size and len(found) < count:
            paddr = self.buffer.paddr_of(offset)
            if (
                paddr != target_paddr
                and paddr not in exclude
                and self.llc_location_of(paddr) not in forbidden_set
            ):
                found.append(paddr)
            offset += self._set_period
        if len(found) < count:
            raise EvictionSetError(
                f"buffer too small: found {len(found)}/{count} set-index "
                f"conflict lines for target {target_paddr:#x}"
            )
        return found

    def whole_l3_clear_set(self, forbidden: typing.Collection[LlcLocation]) -> typing.List[int]:
        """The naive Fig. 7 strategy: ways+1 addresses per L3 set.

        Touching all of these flushes the entire L3 without requiring any
        reverse engineering, at a crushing bandwidth cost.  One line more
        than the associativity per set guarantees at least one miss every
        sweep, so the tree-pLRU keeps churning instead of settling into an
        orbit that spares a resident line.
        """
        forbidden_set = set(forbidden)
        per_set = self.l3_config.ways + 1
        found: typing.List[int] = []
        for l3_set in range(self.l3_config.total_sets):
            anchor = l3_set << self.l3_config.offset_bits
            offset = anchor
            picked = 0
            while offset < self.buffer.size and picked < per_set:
                paddr = self.buffer.paddr_of(offset)
                if self.llc_location_of(paddr) not in forbidden_set:
                    found.append(paddr)
                    picked += 1
                offset += self._l3_period
            if picked < per_set:
                raise EvictionSetError(
                    f"buffer too small to cover L3 set {l3_set}"
                )
        return found


# ----------------------------------------------------------------------
# Timing-based reduction (no geometry knowledge assumed)

EvictionOracle = typing.Callable[[int, typing.Sequence[int]], bool]


def reduce_eviction_set(
    victim: int,
    candidates: typing.Sequence[int],
    oracle: EvictionOracle,
    ways: int,
    max_iterations: int = 10_000,
) -> typing.List[int]:
    """Group-testing reduction of a conflict pool to a minimal eviction set.

    ``oracle(victim, subset)`` must answer whether accessing ``subset``
    evicts ``victim`` (a timing measurement in practice).  Implements the
    O(w²·n) algorithm of Vila et al. [39]: repeatedly split into ``ways+1``
    groups and drop one group whose removal preserves eviction.
    """
    working = list(candidates)
    if not oracle(victim, working):
        raise EvictionSetError("candidate pool does not evict the victim")
    iterations = 0
    while len(working) > ways:
        iterations += 1
        if iterations > max_iterations:
            raise EvictionSetError("reduction did not converge")
        n_groups = min(ways + 1, len(working))
        group_size = (len(working) + n_groups - 1) // n_groups
        groups = [
            working[i : i + group_size] for i in range(0, len(working), group_size)
        ]
        for group in groups:
            remainder = [addr for addr in working if addr not in set(group)]
            if remainder and oracle(victim, remainder):
                working = remainder
                break
        else:
            # Group testing can wedge on a mixed pool (non-conflicting
            # fillers spread so every group holds a critical line).  Fall
            # back to element-wise filtering: any filler is individually
            # removable, so this pass either shrinks the set or proves it
            # minimal.
            removed_any = False
            index = 0
            while index < len(working) and len(working) > ways:
                remainder = working[:index] + working[index + 1 :]
                if remainder and oracle(victim, remainder):
                    working = remainder
                    removed_any = True
                else:
                    index += 1
            if not removed_any:
                break
    return working
