"""Bit-stream utilities and error metrics.

The covert channels move raw bits; these helpers generate payloads,
convert to/from bytes, and score a received stream against the sent one.
``bit_error_rate`` uses a banded edit-distance alignment so that a single
inserted or deleted bit (a synchronization slip) is charged as one error
instead of corrupting every subsequent position.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import AttackError

Bits = typing.List[int]


def random_bits(count: int, rng: np.random.Generator) -> Bits:
    """A uniformly random payload of ``count`` bits."""
    if count <= 0:
        raise AttackError("payload must contain at least one bit")
    return [int(b) for b in rng.integers(0, 2, size=count)]


def bytes_to_bits(data: bytes) -> Bits:
    """MSB-first bit expansion of a byte string."""
    bits: Bits = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: typing.Sequence[int]) -> bytes:
    """Pack MSB-first bits into bytes; the tail is zero-padded."""
    out = bytearray()
    for start in range(0, len(bits), 8):
        chunk = bits[start : start + 8]
        value = 0
        for bit in chunk:
            value = (value << 1) | (bit & 1)
        value <<= 8 - len(chunk)
        out.append(value)
    return bytes(out)


def hamming_errors(sent: typing.Sequence[int], received: typing.Sequence[int]) -> int:
    """Positional mismatches; lengths may differ (excess counts as errors)."""
    errors = abs(len(sent) - len(received))
    for a, b in zip(sent, received):
        if a != b:
            errors += 1
    return errors


def edit_distance(
    sent: typing.Sequence[int],
    received: typing.Sequence[int],
    band: int = 64,
) -> int:
    """Levenshtein distance restricted to a diagonal band.

    The band makes the DP linear-ish in payload length; channel slips are
    small, so a band of 64 is far wider than any real misalignment.  If
    the length difference exceeds the band, the exact distance can't be in
    the band, so the Hamming bound (positional mismatches plus the length
    gap) stands in — it is always a valid Levenshtein upper bound and
    never looser than the one the unbanded DP would tighten.
    """
    n, m = len(sent), len(received)
    if abs(n - m) > band:
        # Outside the band's reach: fall back to a safe upper bound.
        return hamming_errors(sent, received)
    inf = n + m + 1
    previous = [j if j <= band else inf for j in range(m + 1)]
    for i in range(1, n + 1):
        current = [inf] * (m + 1)
        low = max(0, i - band)
        high = min(m, i + band)
        if low == 0:
            current[0] = i
        for j in range(max(1, low), high + 1):
            cost = 0 if sent[i - 1] == received[j - 1] else 1
            current[j] = min(
                previous[j] + 1,       # deletion
                current[j - 1] + 1,    # insertion
                previous[j - 1] + cost # substitution / match
            )
        previous = current
    return previous[m]


def bit_error_rate(
    sent: typing.Sequence[int],
    received: typing.Sequence[int],
    align: bool = True,
) -> float:
    """Fraction of sent bits received incorrectly.

    With ``align`` (default) the rate is edit-distance based, which is the
    fair metric for a channel that can slip a bit; without it, plain
    positional comparison is used.
    """
    if not sent:
        raise AttackError("cannot score an empty payload")
    if align:
        errors = edit_distance(sent, received)
    else:
        errors = hamming_errors(sent, received)
    return min(1.0, errors / len(sent))
