"""Checkpoint fork point for the contention channel.

The channel's expensive work splits cleanly at the t=0 barrier captured
by :class:`~repro.core.contention_channel.channel.PreparedContention`:
machine wiring, buffer allocation, line splitting and the pointer-chase
permutation are identical for every trial sharing a ``(config, seed)``
pair, while everything that depends on the payload, the slot length or
the mitigation runs afterwards.  :func:`prepare_doc` runs the shared part
once and captures it — a machine snapshot plus the host-side artifacts
(line lists, stripes, the chase cycle, the GPU dispatch counter) that
live outside the machine; :func:`transmit_from_doc` restores the capture
into a fresh machine and runs only the divergent suffix.

Equivalence contract: for any payload/calibration/margin, a transmission
forked from a doc is **bit-identical** to a cold
:meth:`ContentionChannel.transmit` with the same arguments — same
received bits, same elapsed clock, same metrics.  Retries (attempt > 0)
use a derived machine seed, so they fall back to cold preparation in
both modes and stay identical too.
"""

from __future__ import annotations

import typing

from repro.checkpoint import restore_soc, snapshot_soc
from repro.core.channel import ChannelResult
from repro.core.contention_channel.calibration import (
    CalibrationResult,
    calibrate_iteration_factor,
)
from repro.core.contention_channel.channel import (
    ContentionChannel,
    PreparedContention,
)
from repro.core.encoding import random_bits
from repro.cpu.core import CpuProgram
from repro.cpu.pointer_chase import PointerChaseBuffer
from repro.errors import ChannelProtocolError
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.sim import RngStreams

ForkDoc = typing.Dict[str, object]


def prepare_doc(channel: ContentionChannel, seed: int = 0) -> ForkDoc:
    """Run the shared prefix once and capture it as a JSON-able doc."""
    params = channel.params()
    prepared = channel.prepare(params, seed)
    soc = prepared.soc
    soc.quiesce()  # a no-op at t=0, but pins the invariant explicitly
    return {
        "snapshot": snapshot_soc(soc),
        "aux": {
            "seed": seed,
            "cpu_lines": list(prepared.cpu_lines),
            "gpu_lines": list(prepared.gpu_lines),
            "stripes": [list(s) for s in prepared.stripes],
            "chase": prepared.chase.state_dict(),
            "dispatch_counter": prepared.device._dispatch_counter,
        },
    }


def restore_prepared(
    channel: ContentionChannel, doc: typing.Mapping[str, object], seed: int
) -> PreparedContention:
    """Rebuild the :class:`PreparedContention` a doc captured."""
    aux = typing.cast(dict, doc["aux"])
    if aux["seed"] != seed:
        raise ChannelProtocolError(
            f"fork doc was prepared for seed {aux['seed']}, not {seed}"
        )
    soc_config = channel.soc_config.replace(seed=seed)
    soc = restore_soc(soc_config, typing.cast(dict, doc["snapshot"]))
    device = GpuDevice(soc)
    device._dispatch_counter = int(aux["dispatch_counter"])
    spy_space = soc.new_process("spy")
    trojan_space = soc.new_process("trojan")
    spy = CpuProgram(soc, channel.config.spy_core, spy_space, name="spy")
    cl = OpenClContext(soc, device, trojan_space)
    return PreparedContention(
        soc=soc,
        device=device,
        spy=spy,
        cl=cl,
        cpu_lines=[int(p) for p in aux["cpu_lines"]],
        gpu_lines=[int(p) for p in aux["gpu_lines"]],
        stripes=[[int(p) for p in stripe] for stripe in aux["stripes"]],
        chase=PointerChaseBuffer.from_state(typing.cast(dict, aux["chase"])),
    )


def transmit_from_doc(
    channel: ContentionChannel,
    doc: typing.Mapping[str, object],
    bits: typing.Optional[typing.Sequence[int]] = None,
    n_bits: int = 128,
    seed: int = 0,
    calibration: typing.Optional[CalibrationResult] = None,
) -> ChannelResult:
    """:meth:`ContentionChannel.transmit`, forking attempt 0 from ``doc``.

    Mirrors the cold path exactly: same calibration fallback, same payload
    stream, same retry schedule.  Only the *first* attempt restores from
    the doc; retry attempts use derived machine seeds, which address
    different prepared states, so they cold-start — as they do in the
    cold path.
    """
    params = channel.params()
    if calibration is None:
        calibration = calibrate_iteration_factor(
            channel.soc_config, params, seed=seed + 10_000
        )
    if bits is None:
        bits = random_bits(n_bits, RngStreams(seed).stream("payload"))
    payload = [int(b) & 1 for b in bits]
    retries = channel.config.frame_retries or (
        2 if channel.soc_config.faults.enabled else 0
    )
    margin = channel.config.record_margin
    best: typing.Optional[ChannelResult] = None
    failure: typing.Optional[ChannelProtocolError] = None
    attempts = 0
    for attempt in range(retries + 1):
        attempts = attempt + 1
        attempt_seed = seed if attempt == 0 else seed + 104_729 * attempt
        try:
            if attempt == 0:
                prepared = restore_prepared(channel, doc, attempt_seed)
                result = channel._modulate(
                    prepared, params, payload, attempt_seed, calibration, margin
                )
            else:
                result = channel._transmit_once(
                    params, payload, attempt_seed, calibration, margin
                )
        except ChannelProtocolError as exc:
            if retries == 0:
                raise
            failure = exc
            result = None
        if result is not None:
            if best is None or len(result.received) > len(best.received):
                best = result
            if len(result.received) >= len(payload):
                break
        margin = min(margin * 1.4, channel.config.retry_margin_cap)
    if best is None:
        if failure is not None:
            raise failure
        raise ChannelProtocolError("no transmission attempt produced a frame")
    best.meta["frame_attempts"] = attempts
    return best
