"""User-facing facade for the ring-contention covert channel (§IV).

The Trojan's GPU kernel modulates ring/LLC-path contention — per bit it
either sweeps its buffer :math:`I_F` times (a ``1``) or idles for the same
duration (a ``0``) — while the Spy pointer-chases its own, set-disjoint
buffer and records per-group access times with ``clock_gettime``-style
timestamps.  Decoding is offline run-length recovery (see
:mod:`repro.core.contention_channel.decoder`); no pre-agreed cache sets
are needed, exactly as the paper argues for this channel type.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import SoCConfig, kaby_lake_model, scale_bytes
from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.contention_channel.calibration import (
    CalibrationResult,
    build_gpu_stripes,
    calibrate_iteration_factor,
    split_lines_by_set_index,
)
from repro.core.contention_channel.decoder import decode_samples, frame_bits
from repro.core.contention_channel.params import ContentionParams
from repro.core.encoding import random_bits
from repro.cpu.core import CpuProgram
from repro.cpu.pointer_chase import PointerChaseBuffer
from repro.errors import ChannelProtocolError
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.obs.recorder import recorder as _recorder
from repro.sim import FS_PER_S, FS_PER_US, RngStreams
from repro.soc.machine import SoC

if typing.TYPE_CHECKING:
    from repro.gpu.workgroup import WorkGroupCtx


@dataclasses.dataclass
class ContentionChannelConfig:
    """Configuration of one contention-channel deployment.

    Buffer sizes are given in *paper units* (the i7-7700k's 8 MB LLC) and
    scaled to the simulated machine automatically, preserving the
    buffer/LLC/L3 capacity ratios the experiment depends on.
    """

    cpu_buffer_paper_bytes: int = 512 * 1024
    gpu_buffer_paper_bytes: int = 2 * 1024 * 1024
    n_workgroups: int = 2
    iteration_factor: int = 0  # 0 = calibrate (Fig. 9)
    probe_group: int = 8
    slot_us: float = 2.6
    spy_core: int = 0
    trojan_core: int = 1
    system_effects: bool = True
    #: Quiet lead-in before the preamble, in bit slots.
    lead_in_slots: int = 4
    #: Safety margin of receiver recording beyond the expected duration.
    record_margin: float = 1.35
    #: Optional §VI mitigation applied to the freshly wired machine.
    mitigation: typing.Optional[typing.Callable] = None
    max_sim_seconds: float = 2.0
    #: Per-frame retransmissions when the decoder loses the frame
    #: (preamble never found / truncated payload).  0 means "auto": no
    #: retries on a healthy machine, a small budget under fault injection.
    frame_retries: int = 0
    #: Capped backoff for retries: each attempt records longer, up to
    #: this multiple of the expected duration.
    retry_margin_cap: float = 2.2
    #: Upper bound on pacing spins per slot target; a pacing loop that
    #: exceeds it (a wedged timer) kills the transmission instead of
    #: spinning forever.
    max_pace_spins: int = 100_000


@dataclasses.dataclass
class PreparedContention:
    """A wired contention-channel machine at the t=0 quiescent barrier.

    Everything host-side is done — machine built, buffers allocated, lines
    split by set index, stripes assigned, the pointer chase threaded — but
    no simulated event has executed yet.  This is the contention channel's
    checkpoint fork point: a machine restored from a snapshot of this
    state is indistinguishable from a freshly prepared one (see
    :mod:`repro.core.contention_channel.fork`).
    """

    soc: SoC
    device: GpuDevice
    spy: CpuProgram
    cl: OpenClContext
    cpu_lines: typing.List[int]
    gpu_lines: typing.List[int]
    stripes: typing.List[typing.List[int]]
    chase: PointerChaseBuffer


class ContentionChannel:
    """Run ring-contention covert transmissions (GPU → CPU)."""

    def __init__(
        self,
        config: typing.Optional[ContentionChannelConfig] = None,
        soc_config: typing.Optional[SoCConfig] = None,
    ) -> None:
        self.config = config or ContentionChannelConfig()
        self.soc_config = soc_config or kaby_lake_model(scale=16)

    def params(self) -> ContentionParams:
        """The machine-scaled operating point."""
        return ContentionParams(
            cpu_buffer_bytes=scale_bytes(self.soc_config, self.config.cpu_buffer_paper_bytes),
            gpu_buffer_bytes=scale_bytes(self.soc_config, self.config.gpu_buffer_paper_bytes),
            n_workgroups=self.config.n_workgroups,
            probe_group=self.config.probe_group,
            slot_us=self.config.slot_us,
            iteration_factor=self.config.iteration_factor,
        ).validate(self.soc_config)

    def calibrate(self, seed: int = 0, n_passes: int = 6) -> CalibrationResult:
        """Run (or re-run) the Fig. 9 iteration-factor calibration."""
        return calibrate_iteration_factor(
            self.soc_config, self.params(), seed=seed, n_passes=n_passes
        )

    def transmit(
        self,
        bits: typing.Optional[typing.Sequence[int]] = None,
        n_bits: int = 128,
        seed: int = 0,
        calibration: typing.Optional[CalibrationResult] = None,
    ) -> ChannelResult:
        """Send a payload over a freshly wired SoC; returns the result.

        On a healthy machine this is a single attempt.  Under fault
        injection (or with ``frame_retries`` set) a frame the decoder
        loses — preamble never found, payload truncated — is resent on a
        fresh machine with a derived seed and a longer recording window
        (capped backoff); the best attempt is returned with the attempt
        count in ``meta["frame_attempts"]``.
        """
        params = self.params()
        if calibration is None:
            calibration = calibrate_iteration_factor(
                self.soc_config, params, seed=seed + 10_000
            )
        if bits is None:
            # Same stream the transmission machine would expose: named
            # streams are draw-order independent, so pre-drawing the
            # payload here leaves every other stream untouched.
            bits = random_bits(n_bits, RngStreams(seed).stream("payload"))
        payload = [int(b) & 1 for b in bits]
        retries = self.config.frame_retries or (
            2 if self.soc_config.faults.enabled else 0
        )
        margin = self.config.record_margin
        best: typing.Optional[ChannelResult] = None
        failure: typing.Optional[ChannelProtocolError] = None
        attempts = 0
        for attempt in range(retries + 1):
            attempts = attempt + 1
            attempt_seed = seed if attempt == 0 else seed + 104_729 * attempt
            try:
                result = self._transmit_once(
                    params, payload, attempt_seed, calibration, margin
                )
            except ChannelProtocolError as exc:
                if retries == 0:
                    raise
                failure = exc
                result = None
            if result is not None:
                if best is None or len(result.received) > len(best.received):
                    best = result
                if len(result.received) >= len(payload):
                    break
            # Retries most often lose the frame to a truncated recording;
            # record longer next time, up to the cap.
            margin = min(margin * 1.4, self.config.retry_margin_cap)
        if best is None:
            if failure is not None:
                raise failure
            raise ChannelProtocolError("no transmission attempt produced a frame")
        best.meta["frame_attempts"] = attempts
        return best

    def prepare(self, params: ContentionParams, seed: int) -> PreparedContention:
        """Build a wired machine up to the t=0 barrier (no events run).

        Everything here is host-side and deterministic in ``seed``: machine
        construction, buffer allocation (drawing the ``mmu`` stream), line
        splitting and the pointer-chase permutation (the ``chase`` stream).
        The transmission suffix — system effects, warm-up, modulation —
        runs in :meth:`_modulate`.
        """
        soc = SoC(self.soc_config.replace(seed=seed))
        device = GpuDevice(soc)
        spy_space = soc.new_process("spy")
        trojan_space = soc.new_process("trojan")
        spy = CpuProgram(soc, self.config.spy_core, spy_space, name="spy")
        cl = OpenClContext(soc, device, trojan_space)

        cpu_buffer = spy_space.mmap_huge(4 * params.cpu_buffer_bytes)
        cpu_lines = split_lines_by_set_index(
            soc, cpu_buffer, params.cpu_lines(soc.config), upper_half=False
        )
        gpu_buffer = cl.svm_alloc(4 * params.gpu_buffer_bytes, huge=True)
        gpu_lines = split_lines_by_set_index(
            soc, gpu_buffer, params.gpu_lines(soc.config), upper_half=True
        )
        stripes = build_gpu_stripes(gpu_lines, params.n_workgroups)
        chase = PointerChaseBuffer.from_lines(cpu_lines, soc.rng.stream("chase"))
        return PreparedContention(
            soc=soc,
            device=device,
            spy=spy,
            cl=cl,
            cpu_lines=cpu_lines,
            gpu_lines=gpu_lines,
            stripes=stripes,
            chase=chase,
        )

    def _transmit_once(
        self,
        params: ContentionParams,
        payload: typing.List[int],
        seed: int,
        calibration: CalibrationResult,
        record_margin: float,
    ) -> ChannelResult:
        return self._modulate(
            self.prepare(params, seed), params, payload, seed, calibration,
            record_margin,
        )

    def _modulate(
        self,
        prepared: PreparedContention,
        params: ContentionParams,
        payload: typing.List[int],
        seed: int,
        calibration: CalibrationResult,
        record_margin: float,
    ) -> ChannelResult:
        soc = prepared.soc
        cl = prepared.cl
        spy = prepared.spy
        cpu_lines = prepared.cpu_lines
        stripes = prepared.stripes
        chase = prepared.chase

        frame = frame_bits(payload)

        if self.config.system_effects:
            soc.start_system_effects()
        if self.config.mitigation is not None:
            self.config.mitigation(soc, prepared.device)

        slot_fs = calibration.slot_fs
        expected_fs = (
            (len(frame) + self.config.lead_in_slots + 2) * slot_fs
        )
        # The sender's warm-up (two passes over a cold working set) and the
        # framing precede the payload; record past all of it with margin.
        deadline_fs = soc.engine.now + int(
            record_margin * (expected_fs + 6 * calibration.gpu_pass_fs)
        )
        samples: typing.List[typing.Tuple[int, int]] = []

        def spy_loop(program: CpuProgram) -> typing.Generator:
            yield from program.read_batch(cpu_lines)  # warm the LLC
            while soc.now_fs < deadline_fs:
                start = yield from program.rdtsc()
                yield from program.read_series(chase.next_paddrs(params.probe_group))
                end = yield from program.rdtsc()
                samples.append((soc.now_fs, end - start))
            return len(samples)

        max_pace_spins = self.config.max_pace_spins

        def pace_until(wg: "WorkGroupCtx", target_ticks: float) -> typing.Generator:
            """Spin until the SLM counter reaches an absolute target.

            The spin count is bounded: a counter that stops advancing
            (a wedged clock domain) must kill the transmission, not hang
            the simulation."""
            assert wg.timer is not None
            rate = wg.timer.rate_per_cycle
            for _spin in range(max_pace_spins):
                now_ticks = yield from wg.read_timer()
                remaining = target_ticks - now_ticks
                if remaining <= 0:
                    return
                yield from wg.wait_cycles(max(4.0, 0.9 * remaining / rate))
            raise ChannelProtocolError(
                f"pacing stalled: SLM counter never reached its slot target "
                f"after {max_pace_spins} spins"
            )

        def trojan_kernel(wg: "WorkGroupCtx") -> typing.Generator:
            lines_for_wg = stripes[wg.workgroup_id]
            timer = wg.start_timer()
            cycle_fs = soc.config.gpu_clock.cycle_fs
            ticks_per_slot = timer.rate_per_cycle * slot_fs / cycle_fs
            chunk = max(wg.mem_parallelism, min(64, len(lines_for_wg)))
            # Warm pass (cold, DRAM-heavy) brings the working set into the
            # LLC; the *second* pass measures the steady-state chunk cost
            # used to stop 1-bursts before the slot boundary.
            yield from wg.parallel_read(lines_for_wg)
            t0 = yield from wg.read_timer()
            yield from wg.parallel_read(lines_for_wg)
            t1 = yield from wg.read_timer()
            chunk_ticks = max(1.0, (t1 - t0) * chunk / len(lines_for_wg))
            # Pace every bit against an *absolute* tick schedule: with
            # several work-groups transmitting simultaneously, relative
            # pacing would let their bit edges drift apart (this is the
            # job the §III-B custom timer exists for).  Bursts sweep the
            # buffer in chunks with a wrap-around cursor, so a bit need
            # not cover a whole pass (fractional iteration factors).
            target = float(t1) + self.config.lead_in_slots * ticks_per_slot
            yield from pace_until(wg, target)
            cursor = 0
            sink = _recorder.sink_for("channel.bit")
            for index, bit in enumerate(frame):
                target += ticks_per_slot
                if sink is not None:
                    sink.emit(
                        "channel.bit",
                        soc.engine.now,
                        "gpu",
                        {"role": "sender", "index": index, "value": bit,
                         "workgroup": wg.workgroup_id},
                    )
                if bit:
                    while True:
                        now_ticks = yield from wg.read_timer()
                        if now_ticks + 0.8 * chunk_ticks > target:
                            break
                        if cursor + chunk <= len(lines_for_wg):
                            piece = lines_for_wg[cursor : cursor + chunk]
                        else:
                            wrap = (cursor + chunk) - len(lines_for_wg)
                            piece = lines_for_wg[cursor:] + lines_for_wg[:wrap]
                        cursor = (cursor + chunk) % len(lines_for_wg)
                        yield from wg.parallel_read(piece)
                yield from pace_until(wg, target)
            return chunk_ticks

        spy_process = soc.engine.process(spy_loop(spy))
        cl.enqueue_nd_range(
            trojan_kernel,
            params.n_workgroups,
            soc.config.gpu.max_threads_per_workgroup,
            name="contention-trojan",
        )
        start_fs = soc.engine.now
        limit_fs = start_fs + int(self.config.max_sim_seconds * FS_PER_S)
        try:
            soc.engine.run_until_complete(spy_process, limit_fs=limit_fs)
        except ChannelProtocolError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise ChannelProtocolError(f"transmission failed: {exc}") from exc

        decoded = decode_samples(
            samples,
            slot_fs,
            expected_bits=len(payload),
            lead_in_slots=self.config.lead_in_slots,
            cycle_fs=soc.config.cpu_clock.cycle_fs,
        )
        # Bandwidth over the payload span, as the paper reports it.  When
        # decoding collapsed (e.g. under a mitigation) the span is
        # meaningless; charge the whole recording instead.
        span_fs = decoded.payload_span_fs
        if not span_fs or len(decoded.bits) < len(payload) // 2:
            span_fs = soc.engine.now - start_fs
        meta: typing.Dict[str, object] = {
            "iteration_factor": calibration.iteration_factor,
            "slot_us": slot_fs / FS_PER_US,
            "gpu_pass_us": calibration.gpu_pass_fs / FS_PER_US,
            "n_workgroups": params.n_workgroups,
            "cpu_buffer_bytes": params.cpu_buffer_bytes,
            "gpu_buffer_bytes": params.gpu_buffer_bytes,
            "threshold_cycles": decoded.threshold_cycles,
            "n_samples": decoded.n_samples,
            "seed": seed,
        }
        if soc.obs_enabled:
            meta["metrics"] = soc.metrics_snapshot()
        return ChannelResult(
            direction=ChannelDirection.GPU_TO_CPU,
            sent=payload,
            received=decoded.bits,
            elapsed_fs=max(1, span_fs),
            meta=meta,
        )
