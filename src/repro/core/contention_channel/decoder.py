"""Offline decoder for the contention channel's latency trace.

The Spy records one sample per probe group: ``(timestamp, measured
cycles)``.  Decoding is classic self-clocked run-length recovery:

1. clip outliers (OS preemption spikes dwarf the contention signal);
2. split the samples into contended / uncontended with a 1-D 2-means
   threshold — no pre-shared baseline needed;
3. smooth with a short majority filter;
4. measure the duration of each run of equal state and round it to a
   whole number of nominal bit slots (the pre-agreed slot length from
   calibration — this rounding step is where a badly chosen Iteration
   Factor turns into bit errors, reproducing the paper's Fig. 9/10
   sensitivity);
5. strip the framing (a ``1 0`` preamble and a ``1`` postamble).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import AttackError

Sample = typing.Tuple[int, int]  # (timestamp_fs, measured_cycles)

#: Frame layout: preamble bits, payload, postamble bits.
PREAMBLE: typing.Tuple[int, ...] = (1, 0)
POSTAMBLE: typing.Tuple[int, ...] = (1,)


@dataclasses.dataclass
class DecodeResult:
    """Decoded payload plus decoder diagnostics."""

    bits: typing.List[int]
    threshold_cycles: float
    n_samples: int
    first_edge_fs: typing.Optional[int]
    last_edge_fs: typing.Optional[int]
    runs: typing.List[typing.Tuple[int, int]]  # (state, duration_fs)

    @property
    def payload_span_fs(self) -> int:
        """Duration between the first and last observed signal edge."""
        if self.first_edge_fs is None or self.last_edge_fs is None:
            return 0
        return self.last_edge_fs - self.first_edge_fs


def two_means_threshold(values: typing.Sequence[float]) -> float:
    """1-D 2-means decision level between the two latency populations.

    Centers initialize at the 10th/90th percentiles rather than min/max:
    a single preemption spike or cold lead-in window must not drag an
    initial center away from the real clusters.
    """
    if not values:
        raise AttackError("cannot threshold an empty trace")
    ordered = sorted(values)
    low = ordered[int(0.10 * (len(ordered) - 1))]
    high = ordered[int(0.90 * (len(ordered) - 1))]
    if low == high:
        return low + 0.5
    center_low, center_high = float(low), float(high)
    for _iteration in range(16):
        midpoint = (center_low + center_high) / 2.0
        below = [v for v in values if v <= midpoint]
        above = [v for v in values if v > midpoint]
        if not below or not above:
            break
        new_low = sum(below) / len(below)
        new_high = sum(above) / len(above)
        if abs(new_low - center_low) < 1e-9 and abs(new_high - center_high) < 1e-9:
            break
        center_low, center_high = new_low, new_high
    return (center_low + center_high) / 2.0


def _clip_outliers(values: typing.List[float], factor: float = 4.0) -> typing.List[float]:
    ordered = sorted(values)
    median = ordered[len(ordered) // 2]
    cap = median * factor
    return [min(v, cap) for v in values]


def _majority_smooth(states: typing.List[int], window: int = 5) -> typing.List[int]:
    if window <= 1 or len(states) < window:
        return list(states)
    half = window // 2
    smoothed = list(states)
    for i in range(len(states)):
        lo = max(0, i - half)
        hi = min(len(states), i + half + 1)
        ones = sum(states[lo:hi])
        smoothed[i] = 1 if 2 * ones >= (hi - lo) else 0
    return smoothed


def decode_samples(
    samples: typing.Sequence[Sample],
    slot_fs: int,
    expected_bits: typing.Optional[int] = None,
    smooth_window: int = 3,
    windows_per_slot: int = 4,
    lead_in_slots: int = 4,
    cycle_fs: typing.Optional[int] = None,
) -> DecodeResult:
    """Recover the framed bit stream from a latency trace.

    Individual probe groups are noisy, so samples are first integrated
    over sub-slot windows (``slot / windows_per_slot``); the 2-means
    threshold and the run-length extraction then operate on the much
    tighter window means.
    """
    if len(samples) < 4:
        raise AttackError("trace too short to decode")
    if slot_fs <= 0:
        raise AttackError("slot duration must be positive")
    window_fs = max(1, slot_fs // max(1, windows_per_slot))
    values = _clip_outliers([float(v) for _, v in samples])
    t0 = samples[0][0]
    sums: typing.Dict[int, float] = {}
    counts: typing.Dict[int, int] = {}
    for (t, _), v in zip(samples, values):
        index = (t - t0) // window_fs
        sums[index] = sums.get(index, 0.0) + v
        counts[index] = counts.get(index, 0) + 1
    # Decision statistic per window: the mean measured group time where
    # the window is densely sampled; where the receiver crawled (ring
    # saturated — few samples land), the sampling *density* itself is the
    # signal, expressed in the same units as a group measurement.  A
    # window with no samples at all inherits its neighbour's state.
    last_index = max(sums)
    indices = list(range(last_index + 1))
    window_times = [t0 + i * window_fs for i in indices]
    window_means: typing.List[typing.Optional[float]] = []
    for i in indices:
        count = counts.get(i, 0)
        if count == 0:
            window_means.append(None)
        elif count >= 4:
            window_means.append(sums[i] / count)
        else:
            density = (window_fs / count) / cycle_fs if cycle_fs else None
            mean = sums[i] / count
            window_means.append(max(mean, density) if density else mean)
    dense = [v for v in window_means if v is not None]
    if len(dense) < 3:
        raise AttackError("trace too short for windowed decoding")
    # Guard the 2-means against residual spike windows.
    dense_sorted = sorted(dense)
    cap = dense_sorted[min(len(dense_sorted) - 1, int(0.95 * len(dense_sorted)))]
    threshold = two_means_threshold([min(v, cap) for v in dense])
    states: typing.List[int] = []
    previous_state = 0
    for mean in window_means:
        if mean is None:
            states.append(previous_state)
        else:
            previous_state = 1 if mean > threshold else 0
            states.append(previous_state)
    states = _majority_smooth(states, smooth_window)

    # Run-length extraction over window time.
    runs: typing.List[typing.Tuple[int, int]] = []
    edges: typing.List[int] = []
    run_start = window_times[0]
    current = states[0]
    for t, state in zip(window_times[1:], states[1:]):
        if state != current:
            runs.append((current, t - run_start))
            edges.append(t)
            run_start = t
            current = state
    runs.append((current, window_times[-1] + window_fs - run_start))

    # Synchronize on the pre-agreed lead-in gap: the sender's warm-up
    # passes look like contention too, so the frame starts at the first
    # rising edge *after* a quiet run of roughly lead-in length.
    gap_fs = int(0.5 * lead_in_slots * slot_fs)
    start_index = 0
    for i, (state, duration) in enumerate(runs):
        if state == 0 and duration >= gap_fs:
            start_index = i + 1
            break
    runs = runs[start_index:]
    while runs and runs[0][0] == 0:
        runs.pop(0)
    # Consume runs only up to the frame length: windows in the quiet
    # recording tail can contain phantom edges (preemption spikes) that
    # would otherwise inflate both the bit count and the measured span.
    frame_limit = (
        None
        if expected_bits is None
        else len(PREAMBLE) + expected_bits + len(POSTAMBLE)
    )
    bits: typing.List[int] = []
    frame_span_fs = 0
    for state, duration in runs:
        count = max(1, round(duration / slot_fs))
        if frame_limit is not None and len(bits) + count > frame_limit:
            count = max(0, frame_limit - len(bits))
            duration = count * slot_fs
        bits.extend([state] * count)
        frame_span_fs += duration
        if frame_limit is not None and len(bits) >= frame_limit:
            break

    # Strip framing.  The quiet tail after the final postamble '1' decodes
    # as phantom zeros: cut everything after the last 1 first, then remove
    # the preamble prefix and postamble suffix.
    frame = bits
    if 1 in frame:
        last_one = len(frame) - 1 - frame[::-1].index(1)
        frame = frame[: last_one + 1]
    if len(frame) > len(PREAMBLE) + len(POSTAMBLE):
        payload = frame[len(PREAMBLE) : len(frame) - len(POSTAMBLE)]
    else:
        payload = []
    if expected_bits is not None and len(payload) > expected_bits:
        payload = payload[:expected_bits]
    frame_start_fs = None
    if runs:
        frame_start_fs = window_times[-1] + window_fs - sum(d for _, d in runs)
    return DecodeResult(
        bits=payload,
        threshold_cycles=threshold,
        n_samples=len(samples),
        first_edge_fs=frame_start_fs,
        last_edge_fs=(
            frame_start_fs + frame_span_fs if frame_start_fs is not None else None
        ),
        runs=runs,
    )


def frame_bits(payload: typing.Sequence[int]) -> typing.List[int]:
    """Wrap a payload in the pre-agreed preamble/postamble framing."""
    return list(PREAMBLE) + [int(b) & 1 for b in payload] + list(POSTAMBLE)
