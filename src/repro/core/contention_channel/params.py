"""Parameters of the contention channel (§IV, Eq. 3-7).

The paper identifies the knobs that shape the contention signal: the CPU
and GPU buffer sizes (Eq. 5 bounds their sum by the LLC capacity, Eq. 6
requires disjoint LLC sets), the number of work-groups, and the Iteration
Factor :math:`I_F` aligning the two clock domains (Eq. 4).  Paper-quoted
buffer sizes are scaled to the simulated machine's capacity via
:func:`repro.config.scale_bytes` so the buffer/LLC/L3 ratios match.
"""

from __future__ import annotations

import dataclasses

from repro.config import SoCConfig
from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class ContentionParams:
    """One operating point of the contention channel."""

    cpu_buffer_bytes: int
    gpu_buffer_bytes: int
    n_workgroups: int = 2
    #: Accesses measured per receiver sample (one rdtsc-bracketed group).
    probe_group: int = 8
    #: Pre-agreed bit-slot duration in microseconds: sets the symbol rate
    #: (2.6 us is roughly the paper's ~400 kb/s operating point).
    slot_us: float = 2.6
    #: Forced whole-pass iteration factor (> 0) for the Fig. 9 ablation;
    #: 0 means normal fixed-slot operation.
    iteration_factor: int = 0

    def validate(self, config: SoCConfig) -> "ContentionParams":
        line = config.llc.line_bytes
        if self.cpu_buffer_bytes < 4 * line or self.gpu_buffer_bytes < 4 * line:
            raise ConfigError("buffers must span at least a few cache lines")
        # Eq. 5: both working sets must fit in the LLC together.
        if self.cpu_buffer_bytes + self.gpu_buffer_bytes >= config.llc.total_bytes:
            raise ConfigError(
                "S_CPU + S_GPU must be (well) below the LLC capacity (Eq. 5)"
            )
        if self.n_workgroups < 1:
            raise ConfigError("need at least one work-group")
        if self.probe_group < 1:
            raise ConfigError("probe group must be positive")
        if self.slot_us <= 0:
            raise ConfigError("slot duration must be positive")
        return self

    def cpu_lines(self, config: SoCConfig) -> int:
        return self.cpu_buffer_bytes // config.llc.line_bytes

    def gpu_lines(self, config: SoCConfig) -> int:
        return self.gpu_buffer_bytes // config.llc.line_bytes

    def num_els_per_thread(self, config: SoCConfig) -> float:
        """Eq. 7: cache lines per GPU thread."""
        total_threads = self.n_workgroups * config.gpu.max_threads_per_workgroup
        return self.gpu_lines(config) / total_threads
