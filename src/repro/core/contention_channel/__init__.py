"""The §IV ring-bus contention covert channel."""

from repro.core.contention_channel.calibration import (
    CalibrationResult,
    calibrate_iteration_factor,
)
from repro.core.contention_channel.channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.contention_channel.decoder import DecodeResult, decode_samples
from repro.core.contention_channel.params import ContentionParams

__all__ = [
    "CalibrationResult",
    "ContentionChannel",
    "ContentionChannelConfig",
    "ContentionParams",
    "DecodeResult",
    "calibrate_iteration_factor",
    "decode_samples",
]
