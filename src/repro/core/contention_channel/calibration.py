"""Iteration-factor calibration (§IV, Fig. 9).

The CPU and GPU run at a ~4x frequency ratio and see the LLC through
asymmetric paths, so an uncalibrated sender either starves the slot (bits
bleed into each other) or overshoots it (bandwidth collapses).  The paper
introduces the *Iteration Factor* :math:`I_F` — how many passes over its
buffer the GPU makes per bit — "so that the ratio between the GPU and CPU
execution time is near 1".

The calibration runs a short joint measurement on a scratch SoC wired
exactly like the channel: the Spy pointer-chases while the Trojan performs
single passes, yielding the *contended* pass time and probe-group time.
The slot itself is a pre-agreed constant (``params.slot_us``); ``I_F`` is
the resulting buffer-passes-per-slot ratio the paper plots in Fig. 9.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.checkpoint import gate as _checkpoint
from repro.config import SoCConfig
from repro.core.contention_channel.params import ContentionParams
from repro.cpu.core import CpuProgram
from repro.cpu.pointer_chase import PointerChaseBuffer
from repro.errors import CalibrationError
from repro.exec.seeds import stable_digest
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.sim import FS_PER_S
from repro.sim import fastpath as _fastpath
from repro.soc.machine import SoC

if typing.TYPE_CHECKING:
    from repro.gpu.workgroup import WorkGroupCtx


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Pre-agreed timing constants of one operating point.

    ``iteration_factor`` is the Fig. 9 quantity: buffer passes per bit
    slot.  For small buffers it is an integer > 1; for buffers whose pass
    outlasts the slot it drops below 1 (the burst covers part of the
    buffer per bit, wrapping across bits).
    """

    iteration_factor: float
    gpu_pass_fs: int
    cpu_group_fs: int
    slot_fs: int

    @property
    def nominal_bandwidth_bps(self) -> float:
        """1 / slot: the raw symbol rate this calibration implies."""
        return FS_PER_S / self.slot_fs


def split_lines_by_set_index(
    soc: SoC, buffer, n_lines: int, upper_half: bool
) -> typing.List[int]:
    """Select ``n_lines`` lines whose LLC set index falls in one half.

    Implements the Eq. 6 constraint: the CPU buffer draws from the lower
    half of the set-index space and the GPU buffer from the upper half, so
    the two working sets can never collide in an LLC set.
    """
    config = soc.config.llc
    half = config.sets_per_slice // 2
    chosen: typing.List[int] = []
    for paddr in buffer.line_paddrs(config.line_bytes):
        set_index = (paddr >> config.offset_bits) % config.sets_per_slice
        if (set_index >= half) == upper_half:
            chosen.append(paddr)
            if len(chosen) == n_lines:
                return chosen
    raise CalibrationError(
        f"buffer too small: found {len(chosen)}/{n_lines} lines in the "
        f"{'upper' if upper_half else 'lower'} set-index half"
    )


def build_gpu_stripes(
    lines: typing.Sequence[int], n_workgroups: int
) -> typing.List[typing.List[int]]:
    """Interleave the buffer lines across work-groups (Eq. 7 split)."""
    return [list(lines[wg::n_workgroups]) for wg in range(n_workgroups)]


#: In-process memo of joint measurements, keyed by everything the
#: measurement depends on.  ``slot_us`` and a forced ``iteration_factor``
#: deliberately do NOT key it: they bind only in the post-measure
#: derivation (:func:`calibrate_iteration_factor`), so every slot-length
#: operating point over one (config, buffers, seed) tuple shares a single
#: 0.5 s joint measurement.  Gated on :mod:`repro.checkpoint`'s switch —
#: with ``REPRO_CHECKPOINT=0`` every calibration re-measures cold.
_MEASURE_MEMO: typing.Dict[str, typing.Tuple[int, int]] = {}


def _measure_key(
    config: SoCConfig, params: ContentionParams, seed: int, n_passes: int
) -> str:
    return stable_digest(
        (
            config.replace(seed=seed),
            params.cpu_buffer_bytes,
            params.gpu_buffer_bytes,
            params.n_workgroups,
            params.probe_group,
            n_passes,
            _fastpath.enabled(),
        )
    )


def _measure(
    config: SoCConfig, params: ContentionParams, seed: int, n_passes: int
) -> typing.Tuple[int, int]:
    """Joint contended measurement: (gpu_pass_fs, cpu_group_fs)."""
    if _checkpoint.enabled():
        key = _measure_key(config, params, seed, n_passes)
        cached = _MEASURE_MEMO.get(key)
        if cached is not None:
            return cached
    soc = SoC(config.replace(seed=seed))
    device = GpuDevice(soc)
    spy_space = soc.new_process("cal-spy")
    trojan_space = soc.new_process("cal-trojan")
    spy = CpuProgram(soc, 0, spy_space, name="cal-spy")
    cl = OpenClContext(soc, device, trojan_space)

    cpu_buffer = spy_space.mmap_huge(4 * params.cpu_buffer_bytes)
    cpu_lines = split_lines_by_set_index(
        soc, cpu_buffer, params.cpu_lines(config), upper_half=False
    )
    gpu_buffer = cl.svm_alloc(4 * params.gpu_buffer_bytes, huge=True)
    gpu_lines = split_lines_by_set_index(
        soc, gpu_buffer, params.gpu_lines(config), upper_half=True
    )
    stripes = build_gpu_stripes(gpu_lines, params.n_workgroups)

    chase = PointerChaseBuffer.from_lines(cpu_lines, soc.rng.stream("cal-chase"))

    group_times: typing.List[int] = []

    def spy_warm(program: CpuProgram) -> typing.Generator:
        yield from program.read_batch(cpu_lines)
        return None

    def spy_loop(program: CpuProgram) -> typing.Generator:
        while True:
            start = program.soc.now_fs
            yield from program.read_series(chase.next_paddrs(params.probe_group))
            group_times.append(program.soc.now_fs - start)

    pass_times: typing.List[int] = []

    def trojan_kernel(wg: "WorkGroupCtx") -> typing.Generator:
        lines_for_wg = stripes[wg.workgroup_id]
        yield from wg.parallel_read(lines_for_wg)  # warm
        for _ in range(n_passes):
            start = wg.soc.now_fs
            yield from wg.parallel_read(lines_for_wg)
            if wg.workgroup_id == 0:
                pass_times.append(wg.soc.now_fs - start)
        return 0

    # Sequence the joint measurement: warm the spy's working set first
    # (both sides belong to the same attacker, so host-side coordination
    # is fair game during calibration), then sample while the kernel runs.
    soc.engine.run_until_complete(soc.engine.process(spy_warm(spy)))
    spy_process = soc.engine.process(spy_loop(spy))
    instance = cl.enqueue_nd_range(
        trojan_kernel, params.n_workgroups,
        config.gpu.max_threads_per_workgroup, name="cal-trojan",
    )
    soc.engine.run_until_complete(instance.completion)
    spy_process.interrupt("calibration done")
    # Drain the interrupt delivery so the scratch machine ends quiescent
    # (empty queue) — the state a checkpoint could be taken at.
    soc.engine.run()
    if not pass_times or not group_times:
        raise CalibrationError("calibration produced no samples")
    gpu_pass_fs = sorted(pass_times)[len(pass_times) // 2]
    cpu_group_fs = sorted(group_times)[len(group_times) // 2]
    if _checkpoint.enabled():
        _MEASURE_MEMO[_measure_key(config, params, seed, n_passes)] = (
            gpu_pass_fs,
            cpu_group_fs,
        )
    return gpu_pass_fs, cpu_group_fs


def calibrate_iteration_factor(
    config: SoCConfig,
    params: ContentionParams,
    seed: int = 0,
    n_passes: int = 6,
) -> CalibrationResult:
    """Derive :math:`I_F` and the slot length for one operating point."""
    params.validate(config)
    gpu_pass_fs, cpu_group_fs = _measure(config, params, seed, n_passes)
    if params.iteration_factor > 0:
        # Forced iteration factor (the Fig. 9 ablation): the slot is tied
        # to whole GPU passes instead of the pre-agreed symbol rate.
        iteration_factor = float(params.iteration_factor)
        slot_fs = int(1.25 * iteration_factor * gpu_pass_fs)
    else:
        slot_fs = int(params.slot_us * 1_000_000_000)
        iteration_factor = round(slot_fs / gpu_pass_fs, 3)
    return CalibrationResult(
        iteration_factor=iteration_factor,
        gpu_pass_fs=gpu_pass_fs,
        cpu_group_fs=cpu_group_fs,
        slot_fs=slot_fs,
    )
