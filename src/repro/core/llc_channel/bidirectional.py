"""Bidirectional messaging over the LLC channel.

§II-B: "We also demonstrate the communication in the other direction (in
fact, we implement bidirectional covert channel)."  This wrapper turns
the two directed channels into a half-duplex link: the parties alternate
as Trojan and Spy, reusing the same pre-agreed set layout (each direction
builds its own session, exactly as two cooperating processes would take
turns).

Combined with :mod:`repro.core.framing` this yields a reliable
request/response transport between the components.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import SoCConfig
from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.framing import FrameReport, decode_frame, encode_frame
from repro.core.llc_channel.channel import LLCChannel, LLCChannelConfig


@dataclasses.dataclass
class ExchangeResult:
    """Outcome of one half-duplex exchange."""

    forward: ChannelResult   # GPU→CPU leg
    backward: ChannelResult  # CPU→GPU leg

    @property
    def total_bits(self) -> int:
        return self.forward.n_bits + self.backward.n_bits

    @property
    def mean_error_rate(self) -> float:
        total = self.total_bits
        return (
            self.forward.error_rate * self.forward.n_bits
            + self.backward.error_rate * self.backward.n_bits
        ) / total


@dataclasses.dataclass
class ReliableExchange:
    """Framed exchange with delivery verdicts per direction."""

    raw: ExchangeResult
    gpu_to_cpu: FrameReport
    cpu_to_gpu: FrameReport

    @property
    def both_delivered(self) -> bool:
        return self.gpu_to_cpu.delivered and self.cpu_to_gpu.delivered


class BidirectionalLink:
    """Half-duplex covert link between the iGPU and CPU processes."""

    def __init__(
        self,
        base_config: typing.Optional[LLCChannelConfig] = None,
        soc_config: typing.Optional[SoCConfig] = None,
    ) -> None:
        base = base_config or LLCChannelConfig()
        self._forward = LLCChannel(
            dataclasses.replace(base, direction=ChannelDirection.GPU_TO_CPU),
            soc_config=soc_config,
        )
        self._backward = LLCChannel(
            dataclasses.replace(base, direction=ChannelDirection.CPU_TO_GPU),
            soc_config=soc_config,
        )

    def exchange_bits(
        self,
        gpu_to_cpu: typing.Sequence[int],
        cpu_to_gpu: typing.Sequence[int],
        seed: int = 0,
    ) -> ExchangeResult:
        """Run both legs back to back (half-duplex)."""
        forward = self._forward.transmit(bits=gpu_to_cpu, seed=seed)
        backward = self._backward.transmit(bits=cpu_to_gpu, seed=seed + 1)
        return ExchangeResult(forward=forward, backward=backward)

    @staticmethod
    def _majority(streams: typing.Sequence[typing.Sequence[int]], length: int) -> typing.List[int]:
        """Bitwise majority vote across received copies.

        Bit errors are independent across retransmissions, so combining
        three noisy copies drops the residual error roughly quadratically
        before the FEC even runs.
        """
        combined = []
        for position in range(length):
            votes = [s[position] for s in streams if position < len(s)]
            combined.append(1 if sum(votes) * 2 > len(votes) else 0)
        return combined

    def _deliver(
        self,
        channel: LLCChannel,
        frame_bits: typing.Sequence[int],
        seed: int,
        max_attempts: int,
    ) -> typing.Tuple[ChannelResult, FrameReport]:
        copies: typing.List[typing.List[int]] = []
        last_result: typing.Optional[ChannelResult] = None
        report: typing.Optional[FrameReport] = None
        for attempt in range(max_attempts):
            last_result = channel.transmit(bits=frame_bits, seed=seed + 10 * attempt)
            copies.append(list(last_result.received))
            report = decode_frame(last_result.received)
            if report.delivered:
                break
            if len(copies) >= 3:
                combined = self._majority(copies, len(frame_bits))
                report = decode_frame(combined)
                if report.delivered:
                    break
        assert last_result is not None and report is not None
        return last_result, report

    def exchange_messages(
        self,
        gpu_to_cpu: bytes,
        cpu_to_gpu: bytes,
        seed: int = 0,
        max_attempts: int = 4,
    ) -> ReliableExchange:
        """Framed, FEC-protected exchange with retransmission and
        majority-combining across copies."""
        forward_result, forward_report = self._deliver(
            self._forward, encode_frame(gpu_to_cpu), seed, max_attempts
        )
        backward_result, backward_report = self._deliver(
            self._backward, encode_frame(cpu_to_gpu), seed + 5, max_attempts
        )
        return ReliableExchange(
            raw=ExchangeResult(forward=forward_result, backward=backward_result),
            gpu_to_cpu=forward_report,
            cpu_to_gpu=backward_report,
        )
