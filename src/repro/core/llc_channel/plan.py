"""Pre-agreed sets, eviction strategies and address plans (§III-E).

The protocol uses three roles of LLC sets:

* ``READY_SEND`` (the paper's :math:`S_A`) — primed by the sender to say
  "ready to send";
* ``READY_RECV`` (:math:`S_B`) — primed by the receiver to say "ready to
  receive";
* ``DATA`` (:math:`S_C`) — primed by the sender iff the bit is 1.

Each role uses ``n_sets_per_role`` redundant LLC sets (§V, Fig. 8: the
paper settles on 2, i.e. 6 sets total).  Sets are assigned to slices 0 and
1 so that GPU L3-pollute addresses — which necessarily share the targets'
set-index bits — can be drawn from the remaining slices without touching
any communication set (§III-D's self-interference constraint).

The three Fig. 7 strategies differ in how the GPU evicts its targets from
the non-inclusive L3 before each LLC access:

* ``PRECISE_L3`` — full §III-D knowledge: exactly one L3 eviction set per
  role set, ``plru_rounds`` rounds;
* ``LLC_ONLY`` — no L3 geometry: conflict addresses chosen by LLC
  set-index bits only, twice as many of them and more rounds;
* ``FULL_L3_CLEAR`` — no reverse engineering at all: walk a buffer the
  size of the whole L3.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.config import SoCConfig
from repro.core.evictionset import AddressPool
from repro.errors import AttackError
from repro.soc.llc import LlcLocation


class Role(enum.Enum):
    """The three LLC set roles of the 3-phase protocol."""

    READY_SEND = "A"
    READY_RECV = "B"
    DATA = "C"


class EvictionStrategy(enum.Enum):
    """How the GPU evicts targets from the L3 (Fig. 7)."""

    FULL_L3_CLEAR = "full-l3-clear"
    LLC_ONLY = "llc-only"
    PRECISE_L3 = "precise-l3"


@dataclasses.dataclass
class RolePlan:
    """One endpoint's addresses for one role."""

    locations: typing.List[LlcLocation]
    #: Own lines per location (the prime/probe working set).
    prime: typing.Dict[LlcLocation, typing.List[int]]
    #: GPU only: L3 pollute lines per location (empty for CPU endpoints).
    pollute: typing.Dict[LlcLocation, typing.List[int]]


@dataclasses.dataclass
class CalibrationAddresses:
    """Scratch lines for self-calibrating the endpoint's threshold.

    ``scratch`` lines are primed then re-probed for the hit baseline
    (after ``scratch_pollute`` pushed them out of the GPU L3, when on the
    GPU side); ``cold`` lines are never touched before the calibration
    probe and give the miss baseline.
    """

    scratch: typing.List[int]
    scratch_pollute: typing.List[int]
    cold: typing.List[int]


@dataclasses.dataclass
class EndpointPlan:
    """Everything one side needs to play the protocol."""

    roles: typing.Dict[Role, RolePlan]
    pollute_rounds: int
    strategy: EvictionStrategy
    calibration: CalibrationAddresses

    def locations(self, role: Role) -> typing.List[LlcLocation]:
        return self.roles[role].locations


@dataclasses.dataclass
class ChannelPlan:
    """The agreed channel layout plus both endpoints' address plans."""

    locations: typing.Dict[Role, typing.List[LlcLocation]]
    cpu: EndpointPlan
    gpu: EndpointPlan
    n_sets_per_role: int
    strategy: EvictionStrategy


class LlcChannelPlanner:
    """Builds a :class:`ChannelPlan` from two attacker address pools."""

    #: Index of the first set-index used for communication; arbitrary but
    #: fixed, so both processes can agree without communicating.
    BASE_SET_INDEX = 32

    def __init__(
        self,
        config: SoCConfig,
        cpu_pool: AddressPool,
        gpu_pool: AddressPool,
        strategy: EvictionStrategy = EvictionStrategy.PRECISE_L3,
        n_sets_per_role: int = 2,
    ) -> None:
        if config.llc.slices < 4:
            raise AttackError(
                "the planner reserves two slices for pollute traffic and "
                "needs at least 4 LLC slices"
            )
        self.config = config
        self.cpu_pool = cpu_pool
        self.gpu_pool = gpu_pool
        self.strategy = strategy
        self.n_sets_per_role = n_sets_per_role

    def _role_locations(self) -> typing.Dict[Role, typing.List[LlcLocation]]:
        """Deterministic pre-agreed (slice, set) assignment.

        Communication sets live on slices 0 and 1 only; for each role the
        redundant sets spread over consecutive set indices two at a time.
        """
        locations: typing.Dict[Role, typing.List[LlcLocation]] = {}
        indices_per_role = (self.n_sets_per_role + 1) // 2
        for role_number, role in enumerate(Role):
            base = self.BASE_SET_INDEX + role_number * indices_per_role
            role_locations = []
            for j in range(self.n_sets_per_role):
                set_index = base + j // 2
                slice_index = j % 2
                role_locations.append(LlcLocation(slice_index, set_index))
            locations[role] = role_locations
        return locations

    def _calibration_for(
        self,
        pool: AddressPool,
        all_locations: typing.Sequence[LlcLocation],
        index_offset: int,
        reps: int = 8,
    ) -> CalibrationAddresses:
        """Scratch/cold lines in sets disjoint from every communication set.

        ``index_offset`` keeps the two endpoints' calibration sets apart —
        they calibrate concurrently and must not evict each other.
        """
        ways = self.config.llc.ways
        scratch_loc = LlcLocation(0, self.BASE_SET_INDEX - index_offset)
        cold_loc = LlcLocation(1, self.BASE_SET_INDEX - index_offset)
        scratch = pool.llc_eviction_set(scratch_loc, ways)
        forbidden = list(all_locations) + [scratch_loc, cold_loc]
        pollute = pool.l3_pollute_set(scratch[0], self.config.gpu_l3.ways, forbidden)
        cold = pool.llc_eviction_set(cold_loc, ways * reps)
        return CalibrationAddresses(
            scratch=scratch, scratch_pollute=pollute, cold=cold
        )

    def build(self) -> ChannelPlan:
        """Construct both endpoints' plans."""
        locations = self._role_locations()
        all_locations = [loc for locs in locations.values() for loc in locs]
        # Pollute traffic must also avoid both endpoints' calibration sets:
        # strategy traffic (especially the whole-L3 clear) runs while the
        # peer is measuring its baselines.
        for index_offset in (8, 16):
            for slice_index in (0, 1):
                all_locations.append(
                    LlcLocation(slice_index, self.BASE_SET_INDEX - index_offset)
                )
        ways = self.config.llc.ways
        cpu_roles: typing.Dict[Role, RolePlan] = {}
        gpu_roles: typing.Dict[Role, RolePlan] = {}
        full_clear: typing.Optional[typing.List[int]] = None
        for role, role_locations in locations.items():
            cpu_prime = {
                loc: self.cpu_pool.llc_eviction_set(loc, ways)
                for loc in role_locations
            }
            gpu_prime = {
                loc: self.gpu_pool.llc_eviction_set(loc, ways)
                for loc in role_locations
            }
            gpu_pollute: typing.Dict[LlcLocation, typing.List[int]] = {}
            for loc in role_locations:
                target = gpu_prime[loc][0]
                gpu_pollute[loc] = self._pollute_for(
                    target, all_locations, full_clear_cache=lambda: full_clear
                )
                if self.strategy is EvictionStrategy.FULL_L3_CLEAR and full_clear is None:
                    full_clear = gpu_pollute[loc]
            cpu_roles[role] = RolePlan(
                locations=list(role_locations), prime=cpu_prime, pollute={}
            )
            gpu_roles[role] = RolePlan(
                locations=list(role_locations), prime=gpu_prime, pollute=gpu_pollute
            )
        rounds = self.pollute_rounds()
        plan = ChannelPlan(
            locations=locations,
            cpu=EndpointPlan(
                roles=cpu_roles,
                pollute_rounds=rounds,
                strategy=self.strategy,
                calibration=self._calibration_for(
                    self.cpu_pool, all_locations, index_offset=8
                ),
            ),
            gpu=EndpointPlan(
                roles=gpu_roles,
                pollute_rounds=rounds,
                strategy=self.strategy,
                calibration=self._calibration_for(
                    self.gpu_pool, all_locations, index_offset=16
                ),
            ),
            n_sets_per_role=self.n_sets_per_role,
            strategy=self.strategy,
        )
        return plan

    def _pollute_for(
        self,
        target: int,
        forbidden: typing.Sequence[LlcLocation],
        full_clear_cache: typing.Callable[[], typing.Optional[typing.List[int]]],
    ) -> typing.List[int]:
        l3_ways = self.config.gpu_l3.ways
        if self.strategy is EvictionStrategy.PRECISE_L3:
            return self.gpu_pool.l3_pollute_set(target, l3_ways, forbidden)
        if self.strategy is EvictionStrategy.LLC_ONLY:
            return self.gpu_pool.llc_setindex_pollute_set(
                target, 2 * l3_ways, forbidden
            )
        cached = full_clear_cache()
        if cached is not None:
            return cached
        return self.gpu_pool.whole_l3_clear_set(forbidden)

    def pollute_rounds(self) -> int:
        """Access rounds needed for a stable pLRU eviction, per strategy."""
        base = self.config.gpu_l3.plru_rounds_for_eviction
        if self.strategy is EvictionStrategy.PRECISE_L3:
            return base
        if self.strategy is EvictionStrategy.LLC_ONLY:
            # Without the exact conflict set, extra rounds are needed for
            # confidence that the pLRU tree converged.
            return base + 2
        # Clearing the whole L3 needs fewer per-line rounds: the sheer
        # volume of fills overturns every tree.
        return 2
