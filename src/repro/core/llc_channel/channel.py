"""User-facing facade for the LLC PRIME+PROBE covert channel.

Each transmission runs on a freshly wired SoC (like the paper's repeated
independent runs): two unprivileged processes — the Spy pinned to core 0
and the Trojan on core 1 that launches the GPU kernel — communicate only
through the shared LLC state.

    >>> from repro import LLCChannel, LLCChannelConfig
    >>> result = LLCChannel(LLCChannelConfig()).transmit(n_bits=64)
    >>> result.bandwidth_kbps > 0
    True
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import SoCConfig, kaby_lake_model
from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.encoding import random_bits
from repro.core.evictionset import AddressPool
from repro.core.llc_channel.plan import (
    ChannelPlan,
    EvictionStrategy,
    LlcChannelPlanner,
)
from repro.core.llc_channel.protocol import (
    CpuEndpoint,
    GpuEndpoint,
    ProtocolTuning,
    derive_t_data_fs,
    receiver_loop,
    sender_loop,
)
from repro.cpu.core import CpuProgram
from repro.errors import ChannelProtocolError
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.gpu.workgroup import WorkGroupCtx
from repro.sim import FS_PER_S
from repro.soc.machine import SoC
from repro.soc.slice_hash import SliceHash


@dataclasses.dataclass
class LLCChannelConfig:
    """Configuration of one LLC covert-channel deployment."""

    direction: ChannelDirection = ChannelDirection.GPU_TO_CPU
    strategy: EvictionStrategy = EvictionStrategy.PRECISE_L3
    n_sets_per_role: int = 2
    spy_core: int = 0
    trojan_core: int = 1
    tuning: ProtocolTuning = dataclasses.field(default_factory=ProtocolTuning)
    #: Attacker pool size; None derives it from the geometry.
    pool_bytes: typing.Optional[int] = None
    #: Model the §II-B environment (background traffic + OS ticks).
    system_effects: bool = True
    #: Optional §VI mitigation applied to the freshly wired machine.
    mitigation: typing.Optional[typing.Callable] = None
    #: Hard cap on simulated time per transmission.
    max_sim_seconds: float = 2.0


class _Session:
    """One fully wired transmission: SoC, plan, endpoints."""

    def __init__(self, config: LLCChannelConfig, soc_config: SoCConfig, seed: int) -> None:
        self.config = config
        self.soc = SoC(soc_config.replace(seed=seed))
        self.device = GpuDevice(self.soc)
        spy_space = self.soc.new_process("spy")
        trojan_space = self.soc.new_process("trojan")
        self.spy = CpuProgram(self.soc, config.spy_core, spy_space, name="spy")
        self.trojan = CpuProgram(self.soc, config.trojan_core, trojan_space, name="trojan")
        self.cl = OpenClContext(self.soc, self.device, trojan_space)
        pool_bytes = config.pool_bytes or self._default_pool_bytes(soc_config)
        hash_model = SliceHash(
            [soc_config.llc.hash_s0_mask, soc_config.llc.hash_s1_mask],
            soc_config.llc.slices,
        )
        cpu_pool = AddressPool(
            spy_space.mmap_huge(pool_bytes), soc_config.llc, soc_config.gpu_l3, hash_model
        )
        gpu_pool = AddressPool(
            self.cl.svm_alloc(pool_bytes, huge=True),
            soc_config.llc,
            soc_config.gpu_l3,
            hash_model,
        )
        planner = LlcChannelPlanner(
            soc_config,
            cpu_pool=cpu_pool,
            gpu_pool=gpu_pool,
            strategy=config.strategy,
            n_sets_per_role=config.n_sets_per_role,
        )
        self.plan: ChannelPlan = planner.build()
        # Copy the tuning so auto-derived fields never leak across runs.
        self.tuning = dataclasses.replace(config.tuning)
        gpu_estimator = GpuEndpoint(self._estimation_ctx(), self.plan.gpu, self.tuning)
        cpu_estimator = CpuEndpoint(self.spy, self.plan.cpu, self.tuning)
        if config.direction is ChannelDirection.GPU_TO_CPU:
            sender_est: object = gpu_estimator
        else:
            sender_est = cpu_estimator
        self.t_data_fs = (
            self.tuning.t_data_fs
            if self.tuning.t_data_fs is not None
            else derive_t_data_fs(sender_est, self.tuning)
        )
        from repro.core.llc_channel.plan import Role

        peer_prime = max(
            cpu_estimator.estimate_prime_fs(Role.READY_RECV),
            gpu_estimator.estimate_prime_fs(Role.READY_RECV),
        )
        if self.tuning.peer_prime_settle_fs is None:
            self.tuning.peer_prime_settle_fs = int(0.75 * peer_prime)
        # A slow strategy (whole-L3 clear) spreads one prime across many
        # receiver polls; the latch must outlive the whole prime or the
        # first set's observation expires before the second set's arrives.
        polls_per_prime = peer_prime // max(1, self.tuning.receiver_poll_gap_fs)
        self.tuning.latch_window = max(
            self.tuning.latch_window, int(3 * polls_per_prime)
        )
        # A machine with fault injection armed gets the hardened protocol:
        # bounded re-synchronization and an erasure budget turn handshake
        # timeouts into degraded BER instead of a dead channel.  Healthy
        # machines keep the strict defaults, so the §VI mitigation
        # experiments still observe ChannelProtocolError.
        if soc_config.faults.enabled:
            self.tuning.max_resyncs = max(self.tuning.max_resyncs, 2)
            self.tuning.erasure_limit = max(self.tuning.erasure_limit, 8)

    def _estimation_ctx(self) -> WorkGroupCtx:
        """A throwaway work-group context used only for cost estimates."""
        return WorkGroupCtx(self.soc, workgroup_id=-1, subslice=0,
                            threads=self.soc.config.gpu.max_threads_per_workgroup)

    @staticmethod
    def _default_pool_bytes(soc_config: SoCConfig) -> int:
        set_period = soc_config.llc.line_bytes << soc_config.llc.set_index_bits
        l3_period = 1 << soc_config.gpu_l3.placement_bits
        return 512 * max(set_period, l3_period)


class LLCChannel:
    """Run LLC PRIME+PROBE covert transmissions (either direction)."""

    def __init__(
        self,
        config: typing.Optional[LLCChannelConfig] = None,
        soc_config: typing.Optional[SoCConfig] = None,
    ) -> None:
        self.config = config or LLCChannelConfig()
        self.soc_config = soc_config or kaby_lake_model(scale=16)

    def build_session(self, seed: int = 0) -> _Session:
        """Wire a fresh SoC + plan (exposed for tests and examples)."""
        return _Session(self.config, self.soc_config, seed)

    def transmit(
        self,
        bits: typing.Optional[typing.Sequence[int]] = None,
        n_bits: int = 128,
        seed: int = 0,
    ) -> ChannelResult:
        """Send a payload through a fresh session; returns the result."""
        return self._transmit_session(self.build_session(seed), bits, n_bits, seed)

    def _transmit_session(
        self,
        session: _Session,
        bits: typing.Optional[typing.Sequence[int]],
        n_bits: int,
        seed: int,
    ) -> ChannelResult:
        """Run one transmission on an already wired session.

        The session may come from :meth:`build_session` (cold start) or
        from a restored checkpoint (:mod:`repro.core.llc_channel.fork`);
        both take the identical path from here on.
        """
        soc = session.soc
        if bits is None:
            bits = random_bits(n_bits, soc.rng.stream("payload"))
        payload = [int(b) & 1 for b in bits]
        if self.config.system_effects:
            soc.start_system_effects()
        if self.config.mitigation is not None:
            self.config.mitigation(soc, session.device)
        direction = self.config.direction
        tuning = session.tuning
        start_fs = soc.engine.now

        if direction is ChannelDirection.GPU_TO_CPU:
            def trojan_kernel(wg: WorkGroupCtx, payload_bits: list) -> typing.Generator:
                endpoint = GpuEndpoint(wg, session.plan.gpu, tuning)
                sent = yield from sender_loop(endpoint, payload_bits, tuning)
                return sent

            session.cl.enqueue_nd_range(
                trojan_kernel,
                1,
                soc.config.gpu.max_threads_per_workgroup,
                payload,
                name="llc-trojan",
            )
            cpu_endpoint = CpuEndpoint(session.spy, session.plan.cpu, tuning)
            receiver = soc.engine.process(
                receiver_loop(cpu_endpoint, len(payload), tuning, session.t_data_fs)
            )
            received = self._run(soc, receiver)
        else:
            def spy_kernel(wg: WorkGroupCtx, count: int) -> typing.Generator:
                endpoint = GpuEndpoint(wg, session.plan.gpu, tuning)
                got = yield from receiver_loop(endpoint, count, tuning, session.t_data_fs)
                return got

            instance = session.cl.enqueue_nd_range(
                spy_kernel,
                1,
                soc.config.gpu.max_threads_per_workgroup,
                len(payload),
                name="llc-spy",
            )
            cpu_endpoint = CpuEndpoint(session.trojan, session.plan.cpu, tuning)
            soc.engine.process(sender_loop(cpu_endpoint, payload, tuning))
            self._run(soc, instance.completion)
            received = instance.results()[0]

        elapsed_fs = soc.engine.now - start_fs
        meta: typing.Dict[str, object] = {
            "strategy": self.config.strategy.value,
            "n_sets_per_role": self.config.n_sets_per_role,
            "t_data_ns": session.t_data_fs / 1e6,
            "soc": self.soc_config.name,
            "seed": seed,
        }
        if soc.obs_enabled:
            meta["metrics"] = soc.metrics_snapshot()
        return ChannelResult(
            direction=direction,
            sent=payload,
            received=typing.cast(typing.List[int], received),
            elapsed_fs=elapsed_fs,
            meta=meta,
        )

    def _run(self, soc: SoC, event) -> object:
        limit_fs = soc.engine.now + int(self.config.max_sim_seconds * FS_PER_S)
        try:
            return soc.engine.run_until_complete(event, limit_fs=limit_fs)
        except ChannelProtocolError:
            raise
        except Exception as exc:  # noqa: BLE001 - annotate simulation failures
            raise ChannelProtocolError(f"transmission failed: {exc}") from exc
