"""Checkpoint fork point for the LLC PRIME+PROBE channel.

The LLC protocol runs endpoint calibration *inside* the concurrent
sender/receiver loops, so no mid-stream quiescent barrier exists; the
fork point is the post-session-build t=0 barrier instead.  Session
construction is the expensive shared prefix — pool allocation, eviction
set planning, cost estimation and tuning derivation are identical for
every trial sharing a ``(config, seed)`` pair — and everything
payload-dependent runs after it.

:func:`prepare_doc` builds a session once and captures the machine
snapshot plus the host-side session artifacts: the serialized
:class:`~repro.core.llc_channel.plan.ChannelPlan`, the derived
:class:`~repro.core.llc_channel.protocol.ProtocolTuning`, ``t_data_fs``
and the GPU dispatch counter.  :func:`transmit_from_doc` rebuilds the
session around a restored machine and runs the identical transmission
suffix, bit-for-bit equal to a cold :meth:`LLCChannel.transmit`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.checkpoint import restore_soc, snapshot_soc
from repro.core.channel import ChannelResult
from repro.core.llc_channel.channel import LLCChannel, _Session
from repro.core.llc_channel.plan import (
    CalibrationAddresses,
    ChannelPlan,
    EndpointPlan,
    EvictionStrategy,
    Role,
    RolePlan,
)
from repro.core.llc_channel.protocol import ProtocolTuning
from repro.cpu.core import CpuProgram
from repro.errors import ChannelProtocolError
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.soc.llc import LlcLocation

ForkDoc = typing.Dict[str, object]


# -- plan (de)serialization -------------------------------------------------
#
# LlcLocation is a frozen (slice, set) pair; dict keys become "slice:set"
# strings so the whole plan is plain JSON.


def _loc_key(location: LlcLocation) -> str:
    return f"{location.slice_index}:{location.set_index}"


def _loc_from_key(key: str) -> LlcLocation:
    slice_index, set_index = key.split(":")
    return LlcLocation(int(slice_index), int(set_index))


def _role_plan_to_doc(plan: RolePlan) -> typing.Dict[str, object]:
    return {
        "locations": [[loc.slice_index, loc.set_index] for loc in plan.locations],
        "prime": {_loc_key(loc): list(lines) for loc, lines in plan.prime.items()},
        "pollute": {
            _loc_key(loc): list(lines) for loc, lines in plan.pollute.items()
        },
    }


def _role_plan_from_doc(doc: typing.Mapping[str, object]) -> RolePlan:
    return RolePlan(
        locations=[
            LlcLocation(int(s), int(i))
            for s, i in typing.cast(list, doc["locations"])
        ],
        prime={
            _loc_from_key(key): [int(p) for p in lines]
            for key, lines in typing.cast(dict, doc["prime"]).items()
        },
        pollute={
            _loc_from_key(key): [int(p) for p in lines]
            for key, lines in typing.cast(dict, doc["pollute"]).items()
        },
    )


def _endpoint_plan_to_doc(plan: EndpointPlan) -> typing.Dict[str, object]:
    return {
        "roles": {
            role.name: _role_plan_to_doc(role_plan)
            for role, role_plan in plan.roles.items()
        },
        "pollute_rounds": plan.pollute_rounds,
        "strategy": plan.strategy.value,
        "calibration": {
            "scratch": list(plan.calibration.scratch),
            "scratch_pollute": list(plan.calibration.scratch_pollute),
            "cold": list(plan.calibration.cold),
        },
    }


def _endpoint_plan_from_doc(doc: typing.Mapping[str, object]) -> EndpointPlan:
    calibration = typing.cast(dict, doc["calibration"])
    return EndpointPlan(
        roles={
            Role[name]: _role_plan_from_doc(role_doc)
            for name, role_doc in typing.cast(dict, doc["roles"]).items()
        },
        pollute_rounds=int(typing.cast(int, doc["pollute_rounds"])),
        strategy=EvictionStrategy(doc["strategy"]),
        calibration=CalibrationAddresses(
            scratch=[int(p) for p in calibration["scratch"]],
            scratch_pollute=[int(p) for p in calibration["scratch_pollute"]],
            cold=[int(p) for p in calibration["cold"]],
        ),
    )


def plan_to_doc(plan: ChannelPlan) -> typing.Dict[str, object]:
    """Serialize a :class:`ChannelPlan` to plain JSON-able structures."""
    return {
        "locations": {
            role.name: [[loc.slice_index, loc.set_index] for loc in locations]
            for role, locations in plan.locations.items()
        },
        "cpu": _endpoint_plan_to_doc(plan.cpu),
        "gpu": _endpoint_plan_to_doc(plan.gpu),
        "n_sets_per_role": plan.n_sets_per_role,
        "strategy": plan.strategy.value,
    }


def plan_from_doc(doc: typing.Mapping[str, object]) -> ChannelPlan:
    """Rebuild a :class:`ChannelPlan` serialized by :func:`plan_to_doc`."""
    return ChannelPlan(
        locations={
            Role[name]: [LlcLocation(int(s), int(i)) for s, i in locations]
            for name, locations in typing.cast(dict, doc["locations"]).items()
        },
        cpu=_endpoint_plan_from_doc(typing.cast(dict, doc["cpu"])),
        gpu=_endpoint_plan_from_doc(typing.cast(dict, doc["gpu"])),
        n_sets_per_role=int(typing.cast(int, doc["n_sets_per_role"])),
        strategy=EvictionStrategy(doc["strategy"]),
    )


# -- session capture/restore ------------------------------------------------


def prepare_doc(channel: LLCChannel, seed: int = 0) -> ForkDoc:
    """Build a session once and capture it as a JSON-able doc."""
    session = channel.build_session(seed)
    soc = session.soc
    soc.quiesce()  # a no-op at t=0, but pins the invariant explicitly
    return {
        "snapshot": snapshot_soc(soc),
        "aux": {
            "seed": seed,
            "plan": plan_to_doc(session.plan),
            "tuning": dataclasses.asdict(session.tuning),
            "t_data_fs": session.t_data_fs,
            "dispatch_counter": session.device._dispatch_counter,
        },
    }


def restore_session(
    channel: LLCChannel, doc: typing.Mapping[str, object], seed: int
) -> _Session:
    """Rebuild the :class:`_Session` a doc captured around a restored SoC."""
    aux = typing.cast(dict, doc["aux"])
    if aux["seed"] != seed:
        raise ChannelProtocolError(
            f"fork doc was prepared for seed {aux['seed']}, not {seed}"
        )
    soc_config = channel.soc_config.replace(seed=seed)
    soc = restore_soc(soc_config, typing.cast(dict, doc["snapshot"]))
    session = _Session.__new__(_Session)
    session.config = channel.config
    session.soc = soc
    session.device = GpuDevice(soc)
    session.device._dispatch_counter = int(aux["dispatch_counter"])
    spy_space = soc.new_process("spy")
    trojan_space = soc.new_process("trojan")
    session.spy = CpuProgram(soc, channel.config.spy_core, spy_space, name="spy")
    session.trojan = CpuProgram(
        soc, channel.config.trojan_core, trojan_space, name="trojan"
    )
    session.cl = OpenClContext(soc, session.device, trojan_space)
    session.plan = plan_from_doc(typing.cast(dict, aux["plan"]))
    session.tuning = ProtocolTuning(**typing.cast(dict, aux["tuning"]))
    session.t_data_fs = int(aux["t_data_fs"])
    return session


def transmit_from_doc(
    channel: LLCChannel,
    doc: typing.Mapping[str, object],
    bits: typing.Optional[typing.Sequence[int]] = None,
    n_bits: int = 128,
    seed: int = 0,
) -> ChannelResult:
    """:meth:`LLCChannel.transmit`, with the session forked from ``doc``.

    Takes the identical suffix path as a cold transmit — same payload
    stream (``soc.rng.stream("payload")`` continues from its restored
    position), same system effects, same mitigation hook.
    """
    session = restore_session(channel, doc, seed)
    return channel._transmit_session(session, bits, n_bits, seed)
