"""The §III PRIME+PROBE covert channel over the shared LLC."""

from repro.core.llc_channel.channel import LLCChannel, LLCChannelConfig
from repro.core.llc_channel.plan import (
    ChannelPlan,
    EndpointPlan,
    EvictionStrategy,
    LlcChannelPlanner,
    Role,
)

__all__ = [
    "ChannelPlan",
    "EndpointPlan",
    "EvictionStrategy",
    "LLCChannel",
    "LLCChannelConfig",
    "LlcChannelPlanner",
    "Role",
]
