"""The 3-phase PRIME+PROBE protocol and its two asymmetric endpoints.

Per transmitted bit (§III-E, Fig. 5):

1. sender primes the ``READY_SEND`` sets; receiver polls them by timing
   probes of *its own* lines (misses ⇒ the sender's prime evicted them);
2. receiver primes ``READY_RECV``; sender polls symmetrically;
3. sender primes ``DATA`` iff the bit is 1; after a calibrated delay the
   receiver probes ``DATA`` and thresholds the time.

The endpoints are deliberately asymmetric, mirroring the paper's
challenges: the CPU probes serially with ``rdtsc`` and is subject to OS
preemption; the GPU probes all ways in parallel, must first evict its
targets from the non-inclusive L3 (the strategy's pollute accesses), and
times with the jittery SLM counter.

Thresholds are **self-calibrated**: before transmitting, each endpoint
measures its own probe time on scratch sets in the two ground-truth states
(lines LLC-resident vs never touched) and places the decision level
between them.  This is the cross-component calibration the paper calls
out in §I/§III-E — without it, ring contention from the other side's
polling pushes hit-state probes over an analytically chosen threshold.

Detection uses an all-sets rule over the redundant sets, which is what
makes 2 sets so much better than 1 (Fig. 8): a single OS-tick-inflated
probe can no longer flip a bit by itself.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.llc_channel.plan import EndpointPlan, EvictionStrategy, Role
from repro.errors import ChannelProtocolError
from repro.obs.recorder import recorder as _recorder
from repro.sim import FS_PER_NS, FS_PER_US

if typing.TYPE_CHECKING:
    from repro.cpu.core import CpuProgram
    from repro.gpu.workgroup import WorkGroupCtx
    from repro.soc.machine import SoC


@dataclasses.dataclass
class ProtocolTuning:
    """Timing knobs of the protocol; ``None`` fields are auto-derived."""

    receiver_poll_gap_fs: int = 150 * FS_PER_NS
    sender_poll_gap_fs: int = 250 * FS_PER_NS
    settle_fs: int = 25 * FS_PER_US
    t_data_fs: typing.Optional[int] = None
    #: Poll iterations before declaring the channel dead (mitigations do
    #: exactly this to the handshake).
    max_poll_iterations: int = 20_000
    #: Where between the calibrated hit and miss baselines the decision
    #: level sits.
    threshold_fraction: float = 0.55
    #: Handshake (light) probes use a stricter level: stray third-party
    #: evictions of a single line must not read as a peer prime, which
    #: always evicts *every* sampled line.
    light_threshold_fraction: float = 0.75
    #: Calibration repetitions per endpoint.
    calibration_reps: int = 6
    #: Handshake detections latch per-set observations across this many
    #: polls.  A probe of a half-primed role *refills* the sets it reads,
    #: destroying the remaining signal, so the two sets of a role are
    #: rarely seen evicted simultaneously; latching makes the handshake
    #: robust to that interleaving while the window bounds how much
    #: unrelated noise can accumulate into a false detection.
    latch_window: int = 64
    #: The receiver classifies DATA over a short latched window of polls
    #: rather than a single probe, absorbing the variable delay between
    #: its ready-to-receive prime and the sender's DATA prime.
    data_window_polls: int = 4
    #: Handshake polls touch only this many (rotating) lines per set: a
    #: full prime evicts all ``ways`` lines, so sampling a couple answers
    #: the question without refilling — and thus destroying — the signal.
    handshake_probe_lines: int = 2
    #: Light probes detect a prime while it is still in flight; before
    #: restoring its own lines the detector waits this long so the tail of
    #: the peer's prime cannot re-evict them (a phantom signal otherwise).
    #: ``None`` is auto-derived from the peer's prime cost estimate.
    peer_prime_settle_fs: typing.Optional[int] = None
    # ------------------------------------------------------------------
    # Hardening knobs (see repro.faults).  All default *off* so the
    # healthy protocol — and the §VI mitigation experiments, which rely
    # on a dead handshake raising ChannelProtocolError — are unchanged.
    #: Bounded re-synchronization: after a handshake timeout, back off
    #: and retry the wait up to this many times before giving up.
    max_resyncs: int = 0
    #: Initial backoff before a re-synchronization attempt; doubles per
    #: attempt up to the cap (capped exponential backoff).
    resync_backoff_fs: int = 30 * FS_PER_US
    resync_backoff_cap_fs: int = 240 * FS_PER_US
    #: Per-loop budget of *consecutive* handshake failures tolerated as
    #: bit erasures (receiver records a 0, sender skips the bit) before
    #: the loop declares the channel dead.
    erasure_limit: int = 0


#: Optional protocol trace hook: a callable ``(time_fs, message)`` set by
#: tests and debugging sessions; ``None`` disables tracing.
TRACE: typing.Optional[typing.Callable[[int, str], None]] = None


def _trace(endpoint: "Endpoint", message: str) -> None:
    if TRACE is not None:
        TRACE(endpoint.now_fs(), message)


def robust_center(samples: typing.Sequence[int]) -> int:
    """Trimmed median: drop the extremes, then take the median.

    Calibration samples suffer one-sided corruption in both directions
    (OS preemption inflates CPU probes; stale counter reads swing GPU
    deltas by the glitch lag either way), so a plain median over few reps
    is not enough.
    """
    ordered = sorted(samples)
    if len(ordered) > 4:
        ordered = ordered[1:-1]
    return ordered[len(ordered) // 2]


class Endpoint:
    """Shared interface of the two protocol endpoints."""

    plan: EndpointPlan
    #: Trace track this endpoint's protocol events land on.
    track: str = "channel"
    #: The machine this endpoint runs on (set by subclasses).
    _soc: "SoC"

    def probe_fault(self) -> typing.Optional[str]:
        """Consult the machine's probe-fault hook (see :mod:`repro.faults`).

        Returns ``None`` (healthy), ``"drop"`` (this poll's observation is
        lost) or ``"dup"`` (the poll executes twice).
        """
        hook = self._soc.probe_fault_hook
        return hook() if hook is not None else None

    def now_fs(self) -> int:
        raise NotImplementedError

    def calibrate(self) -> typing.Generator:
        raise NotImplementedError

    def prime(self, role: Role) -> typing.Generator:
        raise NotImplementedError

    def probe(self, role: Role) -> typing.Generator:
        """Yields; returns one bool per redundant set: True = evicted."""
        raise NotImplementedError

    def probe_light(self, role: Role, salt: int) -> typing.Generator:
        """Non-destructive handshake poll: a few rotating lines per set."""
        raise NotImplementedError

    def wait_fs(self, duration_fs: int) -> typing.Generator:
        raise NotImplementedError

    def estimate_prime_fs(self, role: Role) -> int:
        raise NotImplementedError

    def estimate_probe_fs(self, role: Role) -> int:
        raise NotImplementedError

    def estimate_light_probe_fs(self, role: Role) -> int:
        raise NotImplementedError


class CpuEndpoint(Endpoint):
    """The CPU side: serial probes timed with rdtsc."""

    def __init__(self, program: "CpuProgram", plan: EndpointPlan,
                 tuning: ProtocolTuning) -> None:
        self.program = program
        self.plan = plan
        self.tuning = tuning
        self.track = f"cpu.core{program.core}"
        soc = program.soc
        self._soc = soc
        self._cycle_fs = soc.config.cpu_clock.cycle_fs
        profile = soc.cpu_latency_profile()
        self._hit_ns = profile["llc_ns"]
        self._miss_ns = profile["dram_ns"]
        # Analytic fallback until calibrate() runs.
        ways = soc.config.llc.ways
        gap_ns = self._miss_ns - self._hit_ns
        self._threshold_cycles = self._ns_to_cycles(
            ways * (self._hit_ns + tuning.threshold_fraction * gap_ns)
        )
        self._light_threshold_cycles = self._ns_to_cycles(
            tuning.handshake_probe_lines
            * (self._hit_ns + tuning.light_threshold_fraction * gap_ns)
        )

    def _ns_to_cycles(self, ns: float) -> int:
        return int(ns * FS_PER_NS / self._cycle_fs)

    def calibrate(self) -> typing.Generator:
        """Measure hit/miss probe baselines on scratch lines."""
        calib = self.plan.calibration
        n = len(calib.scratch)
        hits: typing.List[int] = []
        misses: typing.List[int] = []
        for rep in range(self.tuning.calibration_reps):
            yield from self.program.read_series(calib.scratch)
            cycles = yield from self.program.timed_probe(calib.scratch)
            hits.append(cycles)
            cold = calib.cold[rep * n : (rep + 1) * n]
            if len(cold) == n:
                cycles = yield from self.program.timed_probe(cold)
                misses.append(cycles)
        if hits and misses:
            hit = robust_center(hits)
            miss = robust_center(misses)
            if miss > hit:
                self._threshold_cycles = int(
                    hit + self.tuning.threshold_fraction * (miss - hit)
                )
                # Serial probes scale linearly with the line count; the
                # strict fraction demands (nearly) all lines missing.
                light = self.tuning.handshake_probe_lines
                per_line_gap = (miss - hit) / n
                self._light_threshold_cycles = int(
                    hit * light / n
                    + self.tuning.light_threshold_fraction * per_line_gap * light
                )
        return self._threshold_cycles

    def prime(self, role: Role) -> typing.Generator:
        role_plan = self.plan.roles[role]
        for location in role_plan.locations:
            yield from self.program.read_batch(role_plan.prime[location])

    def probe(self, role: Role) -> typing.Generator:
        role_plan = self.plan.roles[role]
        verdicts: typing.List[bool] = []
        for location in role_plan.locations:
            addrs = role_plan.prime[location]
            cycles = yield from self.program.timed_probe(addrs)
            verdicts.append(cycles > self._threshold_cycles)
        return verdicts

    def probe_light(self, role: Role, salt: int) -> typing.Generator:
        role_plan = self.plan.roles[role]
        light = self.tuning.handshake_probe_lines
        verdicts: typing.List[bool] = []
        for location in role_plan.locations:
            addrs = role_plan.prime[location]
            picked = [addrs[(salt + k) % len(addrs)] for k in range(light)]
            cycles = yield from self.program.timed_probe(picked)
            verdicts.append(cycles > self._light_threshold_cycles)
        return verdicts

    def now_fs(self) -> int:
        return self._soc.now_fs

    def wait_fs(self, duration_fs: int) -> typing.Generator:
        yield max(1, duration_fs)

    def estimate_prime_fs(self, role: Role) -> int:
        from repro.cpu.core import CPU_MEM_PARALLELISM

        role_plan = self.plan.roles[role]
        n = sum(len(role_plan.prime[loc]) for loc in role_plan.locations)
        batches = (n + CPU_MEM_PARALLELISM - 1) // CPU_MEM_PARALLELISM
        return int(batches * 1.5 * self._miss_ns * FS_PER_NS)

    def estimate_probe_fs(self, role: Role) -> int:
        role_plan = self.plan.roles[role]
        n = sum(len(role_plan.prime[loc]) for loc in role_plan.locations)
        return int(n * self._miss_ns * FS_PER_NS)

    def estimate_light_probe_fs(self, role: Role) -> int:
        n_sets = len(self.plan.roles[role].locations)
        n = n_sets * self.tuning.handshake_probe_lines
        return int(n * self._miss_ns * FS_PER_NS)


class GpuEndpoint(Endpoint):
    """The GPU side: parallel probes, L3 pollution, SLM-counter timing."""

    def __init__(self, wg: "WorkGroupCtx", plan: EndpointPlan,
                 tuning: ProtocolTuning) -> None:
        self.wg = wg
        self.plan = plan
        self.tuning = tuning
        self.track = "gpu"
        soc = wg.soc
        self._soc = soc
        profile = soc.gpu_latency_profile()
        issue_ns = soc.gpu_cycles_fs(soc.config.gpu.issue_cycles) / FS_PER_NS
        hold_ns = soc.ring.hold_fs(
            soc.ring.slots_for_line(soc.config.llc.line_bytes)
        ) / FS_PER_NS
        self._serial_ns = max(issue_ns, hold_ns)
        self._hit_base_ns = profile["llc_ns"]
        self._dram_extra_ns = profile["dram_ns"] - profile["llc_ns"]
        if wg.timer is None:
            wg.start_timer()
        # Analytic fallback until calibrate() runs.
        ways = soc.config.llc.ways
        hit_ns = self._batch_hit_ns(min(ways, wg.mem_parallelism))
        level = hit_ns + tuning.threshold_fraction * self._dram_extra_ns
        self._threshold_ticks = max(1, int(wg.timer.ticks_for_ns(level)))
        # Per-line level for the serial handshake probes.
        line_level = self._hit_base_ns + tuning.threshold_fraction * self._dram_extra_ns
        self._line_threshold_ticks = max(1, int(wg.timer.ticks_for_ns(line_level)))

    def _batch_hit_ns(self, n_addrs: int) -> float:
        """Completion estimate for a parallel batch of LLC hits."""
        return self._hit_base_ns + (n_addrs - 1) * self._serial_ns

    def calibrate(self) -> typing.Generator:
        """Measure hit/miss probe baselines with the SLM timer.

        Both the full-set (parallel) and the single-line (serial) probe
        levels are measured; the latter backs the handshake polls.
        """
        calib = self.plan.calibration
        n = len(calib.scratch)
        hits: typing.List[int] = []
        misses: typing.List[int] = []
        line_hits: typing.List[int] = []
        line_misses: typing.List[int] = []
        for rep in range(self.tuning.calibration_reps):
            yield from self.wg.parallel_read(calib.scratch)
            for _round in range(self.plan.pollute_rounds):
                yield from self.wg.parallel_read(calib.scratch_pollute)
            ticks = yield from self.wg.timed_parallel_read(calib.scratch)
            hits.append(ticks)
            # Single-line hit: scratch[0] is back in the L3 now; evict it
            # again, then time one load (LLC hit).
            for _round in range(self.plan.pollute_rounds):
                yield from self.wg.parallel_read(calib.scratch_pollute)
            ticks = yield from self.wg.timed_read(calib.scratch[0])
            line_hits.append(ticks)
            cold = calib.cold[rep * n : (rep + 1) * n]
            if len(cold) == n:
                ticks = yield from self.wg.timed_read(cold[0])
                line_misses.append(ticks)
                ticks = yield from self.wg.timed_parallel_read(cold[1:])
                misses.append(ticks)
        if hits and misses:
            hit = robust_center(hits)
            miss = robust_center(misses)
            if miss > hit:
                self._threshold_ticks = int(
                    hit + self.tuning.threshold_fraction * (miss - hit)
                )
        if line_hits and line_misses:
            hit = robust_center(line_hits)
            miss = robust_center(line_misses)
            if miss > hit:
                self._line_threshold_ticks = int(
                    hit + self.tuning.threshold_fraction * (miss - hit)
                )
        return self._threshold_ticks

    def _pollute(self, role: Role, location) -> typing.Generator:
        """Evict this location's targets from the L3 (strategy-dependent)."""
        role_plan = self.plan.roles[role]
        pollute_addrs = role_plan.pollute[location]
        for _round in range(self.plan.pollute_rounds):
            yield from self.wg.parallel_read(pollute_addrs)

    def prime(self, role: Role) -> typing.Generator:
        role_plan = self.plan.roles[role]
        for location in role_plan.locations:
            yield from self._pollute(role, location)
            yield from self.wg.parallel_read(role_plan.prime[location])

    def probe(self, role: Role) -> typing.Generator:
        role_plan = self.plan.roles[role]
        verdicts: typing.List[bool] = []
        for location in role_plan.locations:
            yield from self._pollute(role, location)
            addrs = role_plan.prime[location]
            ticks = yield from self.wg.timed_parallel_read(addrs)
            verdicts.append(ticks > self._threshold_ticks)
        return verdicts

    def probe_light(self, role: Role, salt: int) -> typing.Generator:
        """Serial per-line handshake poll.

        Lines are timed one at a time and the set verdict requires *every*
        sampled line to miss: a peer prime evicts the whole set, while a
        stray third-party fill evicts one line at most — serial probing
        keeps the two distinguishable (parallel misses would overlap into
        the same tick count).
        """
        role_plan = self.plan.roles[role]
        light = self.tuning.handshake_probe_lines
        verdicts: typing.List[bool] = []
        for location in role_plan.locations:
            # The probed lines were refilled into the L3 by the previous
            # poll; they must be pushed out again before timing.
            yield from self._pollute(role, location)
            addrs = role_plan.prime[location]
            all_missed = True
            for k in range(light):
                paddr = addrs[(salt + k) % len(addrs)]
                ticks = yield from self.wg.timed_read(paddr)
                if ticks <= self._line_threshold_ticks:
                    all_missed = False
            verdicts.append(all_missed)
        return verdicts

    def now_fs(self) -> int:
        return self._soc.now_fs

    def wait_fs(self, duration_fs: int) -> typing.Generator:
        yield max(1, duration_fs)

    def _pollute_cost_ns(self, role: Role) -> float:
        role_plan = self.plan.roles[role]
        total = 0.0
        for location in role_plan.locations:
            n = len(role_plan.pollute[location]) * self.plan.pollute_rounds
            batches = (n + self.wg.mem_parallelism - 1) // self.wg.mem_parallelism
            # Most pollute rounds hit the L3; the first one largely misses.
            per_batch = self._batch_hit_ns(self.wg.mem_parallelism)
            if self.plan.strategy is EvictionStrategy.FULL_L3_CLEAR:
                per_batch += 0.3 * self._dram_extra_ns
            total += batches * per_batch
        return total

    def estimate_prime_fs(self, role: Role) -> int:
        role_plan = self.plan.roles[role]
        target_ns = 0.0
        for location in role_plan.locations:
            n = len(role_plan.prime[location])
            target_ns += self._batch_hit_ns(n) + 0.5 * self._dram_extra_ns
        return int((self._pollute_cost_ns(role) + target_ns) * FS_PER_NS)

    def estimate_probe_fs(self, role: Role) -> int:
        return self.estimate_prime_fs(role)

    def estimate_light_probe_fs(self, role: Role) -> int:
        n_sets = len(self.plan.roles[role].locations)
        probe_ns = n_sets * (
            self._batch_hit_ns(self.tuning.handshake_probe_lines)
            + self._dram_extra_ns
        )
        return int(self._pollute_cost_ns(role) * FS_PER_NS + probe_ns * FS_PER_NS)


def derive_t_data_fs(sender: Endpoint, tuning: ProtocolTuning) -> int:
    """Delay between the receiver's READY_RECV prime and the start of its
    DATA window.

    Worst case on the sender side: it had just begun a light poll when the
    prime landed, needs one more poll to latch the second set, then primes
    DATA.  The latched window after this delay absorbs the remaining
    variance."""
    poll_period = (
        sender.estimate_light_probe_fs(Role.READY_RECV) + tuning.sender_poll_gap_fs
    )
    prime = sender.estimate_prime_fs(Role.DATA)
    return int(2 * poll_period + prime + 500 * FS_PER_NS)


def wait_for_signal(
    endpoint: Endpoint,
    role: Role,
    tuning: ProtocolTuning,
    poll_gap_fs: int,
    consume: bool = True,
) -> typing.Generator:
    """Poll ``role`` with light probes until every set was seen evicted,
    then (optionally) *consume* the signal by re-priming with own lines.

    Light probes touch only a couple of rotating lines, so the peer's
    prime is observed without being destroyed; per-set observations latch
    across polls within ``latch_window`` to ride out partial primes.
    The sender passes ``consume=False`` so it can prime DATA immediately
    on detection and re-prime READY_RECV afterwards.
    Raises :class:`ChannelProtocolError` if the signal never arrives —
    which is precisely what the §VI mitigations cause.
    """
    n_sets = len(endpoint.plan.roles[role].locations)
    latched = [False] * n_sets
    sink = _recorder.sink_for("channel.sync")
    for attempt in range(tuning.max_poll_iterations):
        if attempt and attempt % tuning.latch_window == 0:
            latched = [False] * n_sets
        # Stride the rotation by the window size: consecutive polls must
        # not share a line, since a probed line is refilled and would veto
        # the next poll's all-lines-missed verdict.
        salt = attempt * tuning.handshake_probe_lines
        fault = endpoint.probe_fault()
        verdicts = yield from endpoint.probe_light(role, salt=salt)
        if fault == "drop":
            # The poll ran (lines refilled, time spent) but its
            # observation is lost.
            verdicts = [False] * n_sets
        elif fault == "dup":
            # The poll executes twice; the repeat samples different lines
            # (the first pass refilled its own) and the observations merge.
            repeat = yield from endpoint.probe_light(
                role, salt=salt + tuning.handshake_probe_lines
            )
            verdicts = [a or b for a, b in zip(verdicts, repeat)]
        latched = [seen or new for seen, new in zip(latched, verdicts)]
        if all(latched):
            _trace(endpoint, f"detected {role.name} after {attempt + 1} polls")
            if sink is not None:
                sink.emit(
                    "channel.sync",
                    endpoint.now_fs(),
                    endpoint.track,
                    {"role": role.name, "polls": attempt + 1},
                )
            if consume:
                # Let the tail of the peer's prime drain, then reset the
                # role for the next round with own lines.
                yield from endpoint.wait_fs(tuning.peer_prime_settle_fs or 0)
                yield from endpoint.prime(role)
            return attempt
        yield from endpoint.wait_fs(poll_gap_fs)
    raise ChannelProtocolError(
        f"never observed the {role.name} signal; channel is dead"
    )


def wait_for_signal_resync(
    endpoint: Endpoint,
    role: Role,
    tuning: ProtocolTuning,
    poll_gap_fs: int,
    consume: bool = True,
    reprime: typing.Sequence[Role] = (),
) -> typing.Generator:
    """:func:`wait_for_signal` with bounded re-synchronization.

    A handshake timeout under fault injection usually means the peer's
    prime was masked (dropped poll, preemption window, drift-skewed
    pacing), not that the channel is dead.  Up to ``tuning.max_resyncs``
    times, back off with capped exponential backoff, re-prime the roles in
    ``reprime`` (the endpoint's own outgoing signals, which the failed
    round may have left stale) and retry the wait.  With the default
    ``max_resyncs=0`` this is exactly :func:`wait_for_signal`.
    """
    backoff_fs = tuning.resync_backoff_fs
    sink = _recorder.sink_for("channel.resync")
    for attempt in range(tuning.max_resyncs + 1):
        try:
            polls = yield from wait_for_signal(
                endpoint, role, tuning, poll_gap_fs, consume
            )
            return polls
        except ChannelProtocolError:
            if attempt >= tuning.max_resyncs:
                raise
        _trace(endpoint, f"resync {attempt + 1} on {role.name}")
        if sink is not None:
            sink.emit(
                "channel.resync",
                endpoint.now_fs(),
                endpoint.track,
                {"role": role.name, "attempt": attempt + 1,
                 "backoff_ns": backoff_fs / 1e6},
            )
        yield from endpoint.wait_fs(backoff_fs)
        backoff_fs = min(2 * backoff_fs, tuning.resync_backoff_cap_fs)
        for other in reprime:
            yield from endpoint.prime(other)
    raise ChannelProtocolError("unreachable")  # pragma: no cover


def sender_loop(
    endpoint: Endpoint, bits: typing.Sequence[int], tuning: ProtocolTuning
) -> typing.Generator:
    """Transmit ``bits``; runs as the Trojan's agent."""
    yield from endpoint.calibrate()
    yield from endpoint.wait_fs(tuning.settle_fs)
    # Warm READY_RECV with own lines so the receiver's prime is visible.
    yield from endpoint.prime(Role.READY_RECV)
    idle_fs = endpoint.estimate_prime_fs(Role.DATA)
    sink = _recorder.sink_for("channel.bit")
    erasures = 0
    for index, bit in enumerate(bits):
        yield from endpoint.prime(Role.READY_SEND)
        _trace(endpoint, f"sender primed READY_SEND bit={index} value={bit}")
        try:
            yield from wait_for_signal_resync(
                endpoint,
                Role.READY_RECV,
                tuning,
                tuning.sender_poll_gap_fs,
                consume=False,
                reprime=(Role.READY_SEND,),
            )
        except ChannelProtocolError:
            # The receiver never acknowledged this round.  Under fault
            # injection, treat it as an erasure and move on to keep the
            # stream draining; consecutive erasures beyond the budget
            # mean the channel really is dead.
            erasures += 1
            if erasures > tuning.erasure_limit:
                raise
            _trace(endpoint, f"sender erased bit={index}")
            continue
        erasures = 0
        # Send the bit first — the receiver's DATA window is already
        # open — then restore READY_RECV for the next round, after the
        # tail of the receiver's READY_RECV prime has drained.
        if bit:
            yield from endpoint.prime(Role.DATA)
        else:
            yield from endpoint.wait_fs(idle_fs)
        if sink is not None:
            sink.emit(
                "channel.bit",
                endpoint.now_fs(),
                endpoint.track,
                {"role": "sender", "index": index, "value": bit},
            )
        yield from endpoint.wait_fs(tuning.peer_prime_settle_fs or 0)
        yield from endpoint.prime(Role.READY_RECV)
    return len(bits)


def receiver_loop(
    endpoint: Endpoint, n_bits: int, tuning: ProtocolTuning, t_data_fs: int
) -> typing.Generator:
    """Receive ``n_bits``; runs as the Spy's agent.  Returns the bits."""
    received: typing.List[int] = []
    yield from endpoint.calibrate()
    # Warm READY_SEND and DATA with own lines.
    yield from endpoint.prime(Role.READY_SEND)
    yield from endpoint.prime(Role.DATA)
    sink = _recorder.sink_for("channel.bit")
    erasures = 0
    for _ in range(n_bits):
        try:
            yield from wait_for_signal_resync(
                endpoint, Role.READY_SEND, tuning, tuning.receiver_poll_gap_fs
            )
        except ChannelProtocolError:
            # Never saw the sender's ready signal: record an erasure (a
            # zero bit — framing's CRC catches the corruption upstream)
            # rather than abandoning the bits already received.
            erasures += 1
            if erasures > tuning.erasure_limit:
                raise
            received.append(0)
            _trace(endpoint, f"receiver erased bit={len(received) - 1}")
            continue
        erasures = 0
        yield from endpoint.prime(Role.READY_RECV)
        _trace(endpoint, f"receiver primed READY_RECV bit={len(received)}")
        yield from endpoint.wait_fs(t_data_fs)
        n_sets = len(endpoint.plan.roles[Role.DATA].locations)
        latched = [False] * n_sets
        for poll in range(tuning.data_window_polls):
            verdicts = yield from endpoint.probe(Role.DATA)
            latched = [seen or new for seen, new in zip(latched, verdicts)]
            if all(latched):
                break
            if poll + 1 < tuning.data_window_polls:
                yield from endpoint.wait_fs(tuning.receiver_poll_gap_fs)
        received.append(1 if all(latched) else 0)
        if sink is not None:
            sink.emit(
                "channel.bit",
                endpoint.now_fs(),
                endpoint.track,
                {"role": "receiver", "index": len(received) - 1,
                 "value": received[-1]},
            )
        _trace(endpoint, f"receiver decoded bit={len(received) - 1} value={received[-1]}")
    return received
