"""``python -m repro.obs`` — trace, profile and report simulated scenarios.

Runs one of the packaged covert-channel scenarios with the process-global
recorder armed and exports what was seen::

    python -m repro.obs --scenario quickstart --trace out.json
    python -m repro.obs --scenario contention --bits 16 --report report.txt
    python -m repro.obs --scenario quickstart --profile

The ``ledger`` subcommand queries the append-only run ledger every
figure/bench/sweep writes (see :mod:`repro.obs.ledger`)::

    python -m repro.obs ledger                      # table of all runs
    python -m repro.obs ledger --name fig04 --last 3
    python -m repro.obs ledger --json --strict      # machine-readable

``--trace`` writes Chrome ``trace_event`` JSON (open in chrome://tracing
or https://ui.perfetto.dev), ``--jsonl`` streams the raw events, and the
plain-text report (stdout, or ``--report FILE``) summarizes event totals
and the SoC metrics registry.  ``--profile`` skips tracing entirely and
reports the simulator's raw throughput (engine events per wall second).
"""

from __future__ import annotations

import argparse
import sys
import time
import typing

from repro.obs.census import EngineCensus
from repro.obs.chrome_trace import export_chrome_trace, track_names
from repro.obs.recorder import (
    DEFAULT_EVENT_ALLOWLIST,
    TRACE_EVENT_NAMES,
    recorder,
)
from repro.obs.report import render_report
from repro.obs.sinks import JsonlSink, MemorySink, TeeSink


def _run_scenario(name: str, bits: int, seed: int, scale: int):
    """Build and run one scenario; returns its ChannelResult."""
    from repro.config import kaby_lake_model

    soc_config = kaby_lake_model(scale=scale)
    if name in ("quickstart", "llc-cpu-to-gpu"):
        from repro.core.channel import ChannelDirection
        from repro.core.llc_channel.channel import LLCChannel, LLCChannelConfig

        direction = (
            ChannelDirection.CPU_TO_GPU
            if name == "llc-cpu-to-gpu"
            else ChannelDirection.GPU_TO_CPU
        )
        channel = LLCChannel(LLCChannelConfig(direction=direction), soc_config)
        return channel.transmit(n_bits=bits, seed=seed)
    if name == "contention":
        from repro.core.contention_channel.channel import (
            ContentionChannel,
            ContentionChannelConfig,
        )

        channel = ContentionChannel(ContentionChannelConfig(), soc_config)
        return channel.transmit(n_bits=bits, seed=seed)
    raise ValueError(f"unknown scenario: {name}")


def _result_lines(result) -> typing.List[str]:
    """Headline result numbers for the report preamble."""
    return [
        f"direction: {result.direction.value}",
        f"bits sent: {len(result.sent)}",
        f"bit error rate: {100.0 * result.error_rate:.2f}%",
        f"bandwidth: {result.bandwidth_kbps:.2f} kbps",
        f"simulated time: {result.elapsed_fs / 1e12:.3f} ms",
    ]


def _parse_events(spec: str) -> typing.Tuple[str, ...]:
    names = tuple(name.strip() for name in spec.split(",") if name.strip())
    unknown = [name for name in names if name not in TRACE_EVENT_NAMES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown event name(s): {', '.join(unknown)}; "
            f"choose from {', '.join(TRACE_EVENT_NAMES)}"
        )
    return names


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace, profile and report the simulated SoC.",
    )
    parser.add_argument(
        "--scenario",
        default="quickstart",
        choices=("quickstart", "llc-cpu-to-gpu", "contention"),
        help="which packaged run to observe (default: quickstart)",
    )
    parser.add_argument("--bits", type=_positive_int, default=16,
                        help="payload length in bits (default: 16)")
    parser.add_argument("--seed", type=int, default=2026,
                        help="simulation seed (default: 2026)")
    parser.add_argument("--scale", type=int, default=16,
                        help="machine scale divisor (default: 16)")
    parser.add_argument("--trace", metavar="FILE",
                        help="write Chrome trace_event JSON here")
    parser.add_argument("--jsonl", metavar="FILE",
                        help="stream raw events as JSON Lines here")
    parser.add_argument("--report", metavar="FILE",
                        help="write the plain-text report here (default: stdout)")
    parser.add_argument(
        "--events",
        type=_parse_events,
        metavar="NAME[,NAME...]",
        help="comma-separated event allowlist (default: all except "
             "engine.step)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="skip tracing; report engine events per wall-clock second",
    )
    return parser


def _profile(args: argparse.Namespace) -> int:
    census = EngineCensus()
    wall_start = time.perf_counter()
    with census:
        result = _run_scenario(args.scenario, args.bits, args.seed, args.scale)
    wall = time.perf_counter() - wall_start
    rate = census.events_executed / wall if wall > 0 else 0.0
    lines = _result_lines(result)
    lines.append(census.footer())
    lines.append(f"wall time: {wall:.3f} s")
    lines.append(f"throughput: {rate:,.0f} engine events/s")
    print("\n".join(lines))
    return 0


def build_ledger_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs ledger",
        description="Query the append-only run ledger.",
    )
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="ledger path (default: REPRO_LEDGER or "
                             "benchmarks/results/LEDGER.jsonl)")
    parser.add_argument("--name", help="only records for this run name")
    parser.add_argument("--kind", help="only records of this kind "
                                       "(figure, bench, sweep, ...)")
    parser.add_argument("--last", type=int, metavar="N",
                        help="only the N most recent matching records")
    parser.add_argument("--json", action="store_true",
                        help="print matching records as JSON Lines")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any ledger line is "
                             "malformed or schema-invalid")
    return parser


def _ledger_main(argv: typing.Sequence[str]) -> int:
    import json

    from repro.obs.ledger import (
        default_ledger_path,
        format_record,
        read_records,
    )

    args = build_ledger_parser().parse_args(argv)
    path = args.ledger or default_ledger_path()
    if path is None:
        print("ledger disabled (REPRO_LEDGER=0)", file=sys.stderr)
        return 1
    records, problems = read_records(
        path, name=args.name, kind=args.kind, last=args.last
    )
    for problem in problems:
        print(f"ledger: {problem}", file=sys.stderr)
    if args.json:
        for record in records:
            print(json.dumps(record, sort_keys=True))
    else:
        if not records:
            print(f"no matching ledger records in {path}")
        for record in records:
            print(format_record(record))
    if args.strict and problems:
        return 1
    return 0


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "ledger":
        return _ledger_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.profile:
        return _profile(args)

    allowlist = args.events if args.events else DEFAULT_EVENT_ALLOWLIST
    memory = MemorySink()
    jsonl_file = None
    jsonl_sink = None
    sink: object = memory
    if args.jsonl:
        jsonl_file = open(args.jsonl, "w", encoding="utf-8")
        jsonl_sink = JsonlSink(jsonl_file)
        sink = TeeSink(memory, jsonl_sink)

    census = EngineCensus()
    try:
        with census, recorder.recording(sink, allowlist):
            result = _run_scenario(
                args.scenario, args.bits, args.seed, args.scale
            )
    finally:
        if jsonl_sink is not None:
            jsonl_sink.close()
        if jsonl_file is not None:
            jsonl_file.close()

    extra = _result_lines(result)
    extra.append(census.footer())
    if args.trace:
        count = export_chrome_trace(
            memory.events,
            args.trace,
            metadata={
                "scenario": args.scenario,
                "bits": args.bits,
                "seed": args.seed,
                "scale": args.scale,
            },
        )
        extra.append(
            f"chrome trace: {args.trace} ({count} events, "
            f"{len(track_names(memory.events))} tracks)"
        )
    if args.jsonl:
        extra.append(f"jsonl: {args.jsonl} ({len(memory)} events)")

    metrics = result.meta.get("metrics")
    text = render_report(
        f"repro.obs — {args.scenario}",
        memory.events,
        metrics=typing.cast(typing.Optional[dict], metrics),
        extra_lines=extra,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fileobj:
            fileobj.write(text + "\n")
        print(f"report written to {args.report}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
