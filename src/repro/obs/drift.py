"""Channel-health drift detection against committed bench baselines.

Two complementary detectors guard the paper's statistical claims:

* **z-score vs. committed baseline** (this module): a bench run's
  per-channel mean BER / bandwidth is compared against the numbers in
  the committed ``BENCH_<name>.json`` (read via ``git show``, the same
  trick ``check_bench_regression.py`` uses for wall time).  The
  committed confidence interval supplies the scale, so a channel whose
  BER rises by more than ``z * ci`` (plus an absolute floor for
  near-zero baselines) is flagged.
* **CUSUM within a sweep** (:class:`repro.obs.telemetry.Cusum`): an
  online detector over per-trial BER that catches mid-sweep shifts the
  aggregate mean would smear out.

Both surface as plain-text warnings: bench footers print them, the run
ledger records them, and ``check_bench_regression.py`` turns them into
failing checks.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import typing

#: Detection knobs: flag BER that rises more than ``Z * ci`` above the
#: baseline mean (but never for less than BER_FLOOR points, so noiseless
#: channels with ci=0 don't alarm on epsilon), and bandwidth that drops
#: more than BW_REL_DROP of baseline (again beyond ``Z * ci``).
Z_THRESHOLD = 3.0
BER_FLOOR_POINTS = 0.75
BW_REL_DROP = 0.10

ChannelHealth = typing.Mapping[str, object]


def _num(doc: ChannelHealth, key: str) -> typing.Optional[float]:
    value = doc.get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def channel_drift_warnings(
    current: typing.Mapping[str, ChannelHealth],
    baseline: typing.Mapping[str, ChannelHealth],
    z_threshold: float = Z_THRESHOLD,
    ber_floor_points: float = BER_FLOOR_POINTS,
    bw_rel_drop: float = BW_REL_DROP,
) -> typing.List[str]:
    """Compare per-channel health dicts; one warning string per drift.

    Each side maps channel name -> ``{error_percent, error_ci?,
    bandwidth_kbps, bandwidth_ci?, ...}``.  Channels present on only one
    side are ignored (new sweep points are not drift).  Only harmful
    directions flag: BER up, bandwidth down.
    """
    warnings: typing.List[str] = []
    for channel in sorted(set(current) & set(baseline)):
        now, then = current[channel], baseline[channel]
        if not isinstance(now, typing.Mapping) or not isinstance(
            then, typing.Mapping
        ):
            continue
        ber_now, ber_then = _num(now, "error_percent"), _num(then, "error_percent")
        if ber_now is not None and ber_then is not None:
            ci = _num(then, "error_ci") or 0.0
            allowance = max(ber_floor_points, z_threshold * ci)
            if ber_now > ber_then + allowance:
                warnings.append(
                    f"{channel}: BER drift {ber_then:.2f}% -> {ber_now:.2f}% "
                    f"(allowance {allowance:.2f} points, z={z_threshold:g})"
                )
        bw_now, bw_then = (
            _num(now, "bandwidth_kbps"),
            _num(then, "bandwidth_kbps"),
        )
        if bw_now is not None and bw_then is not None and bw_then > 0:
            ci = _num(then, "bandwidth_ci") or 0.0
            floor = bw_then * (1.0 - bw_rel_drop) - z_threshold * ci
            if bw_now < floor:
                warnings.append(
                    f"{channel}: bandwidth drift {bw_then:.2f} -> "
                    f"{bw_now:.2f} kbps (floor {floor:.2f}, z={z_threshold:g})"
                )
    return warnings


def prediction_error_warnings(
    channels: typing.Mapping[str, ChannelHealth],
    bandwidth_rel_ceiling: float,
    ber_abs_ceiling_points: float,
    label: str = "",
) -> typing.List[str]:
    """Flag channels whose analytical prediction strays past a ceiling.

    Each channel dict may carry both measured (``bandwidth_kbps`` /
    ``error_percent``) and predicted (``predicted_bandwidth_kbps`` /
    ``predicted_error_percent``) fields — the merged shape
    :func:`repro.obs.telemetry.bench_run_record` writes.  Bandwidth is
    judged relatively, BER in absolute points (relative BER explodes on
    the figures' error-free channels).  Channels missing either side are
    skipped: a prediction ceiling only binds where both views exist.
    """
    prefix = f"{label}: " if label else ""
    warnings: typing.List[str] = []
    for channel in sorted(channels):
        doc = channels[channel]
        if not isinstance(doc, typing.Mapping):
            continue
        bw, bw_pred = _num(doc, "bandwidth_kbps"), _num(doc, "predicted_bandwidth_kbps")
        if bw is not None and bw_pred is not None and bw > 0:
            rel = abs(bw_pred - bw) / bw
            if rel > bandwidth_rel_ceiling:
                warnings.append(
                    f"{prefix}{channel}: predicted bandwidth {bw_pred:.2f} "
                    f"vs measured {bw:.2f} kbps ({100 * rel:.1f}% off, "
                    f"ceiling {100 * bandwidth_rel_ceiling:.0f}%)"
                )
        ber, ber_pred = _num(doc, "error_percent"), _num(doc, "predicted_error_percent")
        if ber is not None and ber_pred is not None:
            delta = abs(ber_pred - ber)
            if delta > ber_abs_ceiling_points:
                warnings.append(
                    f"{prefix}{channel}: predicted BER {ber_pred:.2f}% vs "
                    f"measured {ber:.2f}% ({delta:.2f} points off, ceiling "
                    f"{ber_abs_ceiling_points:.1f})"
                )
    return warnings


def zscore(
    value: float, baseline_mean: float, baseline_scale: float
) -> float:
    """Signed z-score of ``value`` against a baseline mean and scale."""
    if baseline_scale <= 0:
        return 0.0
    return (value - baseline_mean) / baseline_scale


# -- committed-baseline plumbing ----------------------------------------


def committed_bench_doc(
    name: str,
    rev: str = "HEAD",
    repo_root: typing.Union[str, pathlib.Path, None] = None,
    relpath: typing.Optional[str] = None,
) -> typing.Optional[typing.Dict[str, object]]:
    """The committed ``BENCH_<name>.json`` at ``rev``, or None.

    Reads via ``git show`` so the working tree's regenerated artifact
    never masks the baseline.  Any git failure (no repo, file not
    committed yet) degrades to None — drift checks simply don't run.
    """
    relpath = relpath or f"benchmarks/results/BENCH_{name}.json"
    cmd = ["git", "show", f"{rev}:{relpath}"]
    try:
        blob = subprocess.run(
            cmd,
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            timeout=30,
            check=True,
        ).stdout
        doc = json.loads(blob.decode("utf-8"))
    except Exception:
        return None
    return doc if isinstance(doc, dict) else None


def channels_of(
    doc: typing.Optional[typing.Mapping[str, object]],
    workers: int = 0,
) -> typing.Optional[typing.Dict[str, ChannelHealth]]:
    """Extract the per-channel health dict from one BENCH doc.

    Channel health is recorded on the run entry for ``workers`` (the
    figure data is worker-count-invariant, so any entry carrying
    ``channels`` is an equally valid baseline — the requested worker
    count is preferred, then any other).
    """
    if not isinstance(doc, typing.Mapping):
        return None
    runs = doc.get("runs")
    if not isinstance(runs, typing.Mapping):
        return None
    candidates = [str(workers)] + sorted(k for k in runs if k != str(workers))
    for key in candidates:
        entry = runs.get(key)
        if isinstance(entry, typing.Mapping):
            channels = entry.get("channels")
            if isinstance(channels, typing.Mapping):
                return typing.cast(
                    typing.Dict[str, ChannelHealth], dict(channels)
                )
    return None


def committed_channels(
    name: str,
    rev: str = "HEAD",
    repo_root: typing.Union[str, pathlib.Path, None] = None,
    workers: int = 0,
) -> typing.Optional[typing.Dict[str, ChannelHealth]]:
    """Per-channel baseline from the committed BENCH doc, or None."""
    return channels_of(committed_bench_doc(name, rev, repo_root), workers)
