"""repro.obs — zero-overhead-when-off observability for the simulated SoC.

Three pieces:

* a process-global :data:`recorder` that instrumented layers (engine,
  SoC access paths, ring, channels, GPU device) emit structured events
  to — when no sink is installed, every emit site is one ``is None``
  check (see DESIGN.md, "zero-overhead-when-off");
* a :class:`MetricsRegistry` of named counters and histograms attached
  to every :class:`~repro.soc.machine.SoC` as ``soc.metrics``, exported
  as a nested dict by ``soc.metrics_snapshot()``;
* exporters: Chrome ``trace_event`` JSON (``chrome://tracing`` /
  Perfetto), JSON-Lines event dumps, and a plain-text run report — plus
  a ``python -m repro.obs`` CLI that runs a scenario with tracing on.

This module is imported by the hot simulation layers, so it stays lazy:
submodules load on first attribute access (PEP 562).
"""

from __future__ import annotations

import typing

from repro.obs.census import EngineCensus, note_engine, note_external_sim
from repro.obs.recorder import (
    DEFAULT_EVENT_ALLOWLIST,
    TRACE_EVENT_NAMES,
    Recorder,
    TraceSink,
    recorder,
)

_LAZY = {
    "MemorySink": ("repro.obs.sinks", "MemorySink"),
    "JsonlSink": ("repro.obs.sinks", "JsonlSink"),
    "TeeSink": ("repro.obs.sinks", "TeeSink"),
    "TraceEvent": ("repro.obs.sinks", "TraceEvent"),
    "Counter": ("repro.obs.metrics", "Counter"),
    "Histogram": ("repro.obs.metrics", "Histogram"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "merge_snapshots": ("repro.obs.metrics", "merge_snapshots"),
    "chrome_trace_events": ("repro.obs.chrome_trace", "chrome_trace_events"),
    "export_chrome_trace": ("repro.obs.chrome_trace", "export_chrome_trace"),
    "track_names": ("repro.obs.chrome_trace", "track_names"),
    "render_report": ("repro.obs.report", "render_report"),
    "event_totals": ("repro.obs.report", "event_totals"),
    "per_track_totals": ("repro.obs.report", "per_track_totals"),
    "SweepTelemetry": ("repro.obs.telemetry", "SweepTelemetry"),
    "Cusum": ("repro.obs.telemetry", "Cusum"),
    "telemetry_from_env": ("repro.obs.telemetry", "telemetry_from_env"),
    "bench_run_record": ("repro.obs.telemetry", "bench_run_record"),
    "append_record": ("repro.obs.ledger", "append_record"),
    "make_record": ("repro.obs.ledger", "make_record"),
    "read_records": ("repro.obs.ledger", "read_records"),
    "validate_record": ("repro.obs.ledger", "validate_record"),
    "default_ledger_path": ("repro.obs.ledger", "default_ledger_path"),
    "channel_drift_warnings": ("repro.obs.drift", "channel_drift_warnings"),
    "committed_channels": ("repro.obs.drift", "committed_channels"),
    "prometheus_text": ("repro.obs.prometheus", "prometheus_text"),
}

if typing.TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.obs.chrome_trace import (  # noqa: F401
        chrome_trace_events,
        export_chrome_trace,
        track_names,
    )
    from repro.obs.drift import (  # noqa: F401
        channel_drift_warnings,
        committed_channels,
    )
    from repro.obs.ledger import (  # noqa: F401
        append_record,
        default_ledger_path,
        make_record,
        read_records,
        validate_record,
    )
    from repro.obs.prometheus import prometheus_text  # noqa: F401
    from repro.obs.telemetry import (  # noqa: F401
        Cusum,
        SweepTelemetry,
        bench_run_record,
        telemetry_from_env,
    )
    from repro.obs.metrics import (  # noqa: F401
        Counter,
        Histogram,
        MetricsRegistry,
        merge_snapshots,
    )
    from repro.obs.report import (  # noqa: F401
        event_totals,
        per_track_totals,
        render_report,
    )
    from repro.obs.sinks import (  # noqa: F401
        JsonlSink,
        MemorySink,
        TeeSink,
        TraceEvent,
    )


def __getattr__(name: str) -> object:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = [
    "DEFAULT_EVENT_ALLOWLIST",
    "EngineCensus",
    "Recorder",
    "TRACE_EVENT_NAMES",
    "TraceSink",
    "note_engine",
    "note_external_sim",
    "recorder",
    *sorted(_LAZY),
]
