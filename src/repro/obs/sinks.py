"""Concrete :class:`~repro.obs.recorder.TraceSink` implementations."""

from __future__ import annotations

import json
import typing

#: One recorded event: ``(name, ts_fs, track, args)``.
TraceEvent = typing.Tuple[
    str, int, str, typing.Optional[typing.Dict[str, object]]
]


class MemorySink:
    """Append events to an in-process list (the exporters' input)."""

    def __init__(self) -> None:
        self.events: typing.List[TraceEvent] = []
        self._append = self.events.append  # bound once: hot-path emit

    def emit(
        self,
        name: str,
        ts_fs: int,
        track: str,
        args: typing.Optional[typing.Dict[str, object]],
    ) -> None:
        self._append((name, ts_fs, track, args))

    def __len__(self) -> int:
        return len(self.events)

    def by_name(self, name: str) -> typing.List[TraceEvent]:
        """Events matching one name (test/report convenience)."""
        return [event for event in self.events if event[0] == name]

    def tracks(self) -> typing.List[str]:
        """Distinct tracks in first-appearance order."""
        seen: typing.Dict[str, None] = {}
        for _name, _ts, track, _args in self.events:
            seen.setdefault(track)
        return list(seen)


class JsonlSink:
    """Stream events as JSON Lines to a file object.

    The caller owns the file handle's lifetime; use :meth:`close` (or the
    ``closing`` idiom) to flush.  Lines are buffered in chunks so the
    emit path stays cheap.
    """

    def __init__(self, fileobj: typing.TextIO, flush_every: int = 1024) -> None:
        self._fileobj = fileobj
        self._flush_every = max(1, flush_every)
        self._buffer: typing.List[str] = []

    def emit(
        self,
        name: str,
        ts_fs: int,
        track: str,
        args: typing.Optional[typing.Dict[str, object]],
    ) -> None:
        record: typing.Dict[str, object] = {
            "name": name, "ts_fs": ts_fs, "track": track,
        }
        if args:
            record["args"] = args
        self._buffer.append(json.dumps(record))
        if len(self._buffer) >= self._flush_every:
            self._drain()

    def _drain(self) -> None:
        if self._buffer:
            self._fileobj.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def close(self) -> None:
        """Flush buffered lines (does not close the underlying file)."""
        self._drain()
        self._fileobj.flush()


class TeeSink:
    """Fan one emit stream out to several sinks (e.g. memory + JSONL)."""

    def __init__(self, *sinks: object) -> None:
        self._sinks = sinks

    def emit(
        self,
        name: str,
        ts_fs: int,
        track: str,
        args: typing.Optional[typing.Dict[str, object]],
    ) -> None:
        for sink in self._sinks:
            sink.emit(name, ts_fs, track, args)  # type: ignore[attr-defined]
