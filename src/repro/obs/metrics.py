"""Named counters and histograms for the simulated SoC.

The registry is a flat store keyed by dotted names (``llc.slice0.hits``,
``cpu.core1.access_latency_ns``) that exports as a *nested* dict — the
shape the run report and the tests consume.  Histograms combine the
Welford accumulator from :mod:`repro.sim.stats` with a bounded,
deterministic sample reservoir (stride-doubling decimation, no RNG) so
percentile estimates never grow without bound and never perturb the
simulation's random streams.
"""

from __future__ import annotations

import typing

from repro.errors import ObservabilityError
from repro.sim.stats import OnlineStats, percentile


Number = typing.Union[int, float]


class Counter:
    """A named numeric gauge/count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite the value (used when syncing pull-based sources)."""
        self.value = value


class Histogram:
    """Online summary stats plus a bounded percentile reservoir.

    Keeps every ``stride``-th sample; when the reservoir fills, it is
    decimated to every other kept sample and the stride doubles.  The
    scheme is deterministic — a hard requirement, since histograms record
    from inside the simulation and must not consume RNG state.
    """

    __slots__ = ("name", "stats", "_reservoir", "_samples", "_stride", "_seen")

    def __init__(self, name: str, reservoir: int = 256) -> None:
        if reservoir < 2:
            raise ObservabilityError(f"histogram reservoir too small: {reservoir}")
        self.name = name
        self.stats = OnlineStats()
        self._reservoir = reservoir
        self._samples: typing.List[float] = []
        self._stride = 1
        self._seen = 0

    def add(self, value: float) -> None:
        self.stats.add(value)
        if self._seen % self._stride == 0:
            if len(self._samples) >= self._reservoir:
                self._samples = self._samples[::2]
                self._stride *= 2
            self._samples.append(value)
        self._seen += 1

    @property
    def count(self) -> int:
        return self.stats.count

    def percentile(self, q: float) -> float:
        """Approximate percentile from the retained reservoir."""
        if not self._samples:
            return 0.0
        return percentile(self._samples, q)

    def snapshot(self) -> typing.Dict[str, float]:
        summary = self.stats.snapshot()
        summary["p50"] = self.percentile(50)
        summary["p90"] = self.percentile(90)
        summary["p99"] = self.percentile(99)
        return summary


class MetricsRegistry:
    """Get-or-create store of named counters and histograms."""

    def __init__(self, reservoir: int = 256) -> None:
        self._reservoir = reservoir
        self._counters: typing.Dict[str, Counter] = {}
        self._histograms: typing.Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._check_name(name, self._histograms)
            existing = self._counters[name] = Counter(name)
        return existing

    def histogram(
        self, name: str, reservoir: typing.Optional[int] = None
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._check_name(name, self._counters)
            existing = self._histograms[name] = Histogram(
                name, reservoir or self._reservoir
            )
        return existing

    @staticmethod
    def _check_name(name: str, other_kind: typing.Mapping[str, object]) -> None:
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        if name in other_kind:
            raise ObservabilityError(
                f"metric {name!r} already registered with a different kind"
            )

    def counters(self) -> typing.Dict[str, Number]:
        """Flat ``name -> value`` view of every counter."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def as_dict(self) -> typing.Dict[str, object]:
        """Nested dict keyed by the dotted-name components.

        Counters become leaf ints; histograms become leaf summary dicts.
        """
        root: typing.Dict[str, object] = {}
        for name, counter in self._counters.items():
            _nest(root, name, counter.value)
        for name, histogram in self._histograms.items():
            _nest(root, name, histogram.snapshot())
        return root


def _nest(root: typing.Dict[str, object], dotted: str, leaf: object) -> None:
    parts = dotted.split(".")
    node = root
    for part in parts[:-1]:
        child = node.setdefault(part, {})
        if not isinstance(child, dict):
            # A leaf already sits where a branch must go: hang the branch
            # off a sibling key instead of silently clobbering the leaf.
            child = node.setdefault(part + ".value", {})  # pragma: no cover
        node = typing.cast(typing.Dict[str, object], child)
    node[parts[-1]] = leaf
