"""Named counters and histograms for the simulated SoC.

The registry is a flat store keyed by dotted names (``llc.slice0.hits``,
``cpu.core1.access_latency_ns``) that exports as a *nested* dict — the
shape the run report and the tests consume.  Histograms combine the
Welford accumulator from :mod:`repro.sim.stats` with a bounded,
deterministic sample reservoir (stride-doubling decimation, no RNG) so
percentile estimates never grow without bound and never perturb the
simulation's random streams.
"""

from __future__ import annotations

import math
import typing

from repro.errors import ObservabilityError
from repro.sim.stats import OnlineStats, percentile


Number = typing.Union[int, float]


class Counter:
    """A named numeric gauge/count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite the value (used when syncing pull-based sources)."""
        self.value = value


class Histogram:
    """Online summary stats plus a bounded percentile reservoir.

    Keeps every ``stride``-th sample; when the reservoir fills, it is
    decimated to every other kept sample and the stride doubles.  The
    scheme is deterministic — a hard requirement, since histograms record
    from inside the simulation and must not consume RNG state.
    """

    __slots__ = ("name", "stats", "_reservoir", "_samples", "_stride", "_seen")

    def __init__(self, name: str, reservoir: int = 256) -> None:
        if reservoir < 2:
            raise ObservabilityError(f"histogram reservoir too small: {reservoir}")
        self.name = name
        self.stats = OnlineStats()
        self._reservoir = reservoir
        self._samples: typing.List[float] = []
        self._stride = 1
        self._seen = 0

    def add(self, value: float) -> None:
        self.stats.add(value)
        if self._seen % self._stride == 0:
            if len(self._samples) >= self._reservoir:
                self._samples = self._samples[::2]
                self._stride *= 2
            self._samples.append(value)
        self._seen += 1

    @property
    def count(self) -> int:
        return self.stats.count

    def percentile(self, q: float) -> float:
        """Approximate percentile from the retained reservoir."""
        if not self._samples:
            return 0.0
        return percentile(self._samples, q)

    def snapshot(self) -> typing.Dict[str, float]:
        summary = self.stats.snapshot()
        summary["p50"] = self.percentile(50)
        summary["p90"] = self.percentile(90)
        summary["p99"] = self.percentile(99)
        return summary

    def state_dict(self) -> typing.Dict[str, object]:
        """Exact accumulator + reservoir state (checkpoint contract)."""
        return {
            "reservoir": self._reservoir,
            "stats": self.stats.state_dict(),
            "samples": list(self._samples),
            "stride": self._stride,
            "seen": self._seen,
        }

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._reservoir = int(typing.cast(int, state["reservoir"]))
        self.stats.load_state(typing.cast(dict, state["stats"]))
        self._samples = [float(v) for v in typing.cast(list, state["samples"])]
        self._stride = int(typing.cast(int, state["stride"]))
        self._seen = int(typing.cast(int, state["seen"]))


class MetricsRegistry:
    """Get-or-create store of named counters and histograms."""

    def __init__(self, reservoir: int = 256) -> None:
        self._reservoir = reservoir
        self._counters: typing.Dict[str, Counter] = {}
        self._histograms: typing.Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._check_name(name, self._histograms)
            existing = self._counters[name] = Counter(name)
        return existing

    def histogram(
        self, name: str, reservoir: typing.Optional[int] = None
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._check_name(name, self._counters)
            existing = self._histograms[name] = Histogram(
                name, reservoir or self._reservoir
            )
        return existing

    @staticmethod
    def _check_name(name: str, other_kind: typing.Mapping[str, object]) -> None:
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        if name in other_kind:
            raise ObservabilityError(
                f"metric {name!r} already registered with a different kind"
            )

    def counters(self) -> typing.Dict[str, Number]:
        """Flat ``name -> value`` view of every counter."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def state_dict(self) -> typing.Dict[str, object]:
        """Every counter value and full histogram state, JSON-able."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "histograms": {
                name: h.state_dict() for name, h in self._histograms.items()
            },
        }

    def load_state(self, state: typing.Dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`.

        Metrics are restored *in place*: existing objects keep their
        identity (the SoC holds direct references to its histograms), and
        names present only in the snapshot are created.
        """
        for name, value in typing.cast(dict, state["counters"]).items():
            self.counter(name).value = value
        for name, hist_state in typing.cast(dict, state["histograms"]).items():
            self.histogram(name).load_state(hist_state)

    def as_dict(self) -> typing.Dict[str, object]:
        """Nested dict keyed by the dotted-name components.

        Counters become leaf ints; histograms become leaf summary dicts.
        """
        root: typing.Dict[str, object] = {}
        for name, counter in self._counters.items():
            _nest(root, name, counter.value)
        for name, histogram in self._histograms.items():
            _nest(root, name, histogram.snapshot())
        return root


def merge_snapshots(
    snapshots: typing.Sequence[typing.Mapping[str, object]],
) -> typing.Dict[str, object]:
    """Merge nested metric snapshots from several workers into one report.

    Counter leaves (plain numbers) are summed.  Histogram-summary leaves
    (dicts carrying ``count``/``mean``) combine exactly for count, mean,
    min and max via the parallel Welford rules; percentile keys are
    count-weighted averages — an approximation, flagged here because the
    underlying reservoirs live in the worker processes and are gone by
    merge time.  Branch dicts merge recursively; a key that is a branch
    in one snapshot and a leaf in another raises.
    """
    merged: typing.Dict[str, object] = {}
    for snapshot in snapshots:
        _merge_into(merged, snapshot)
    return merged


def _is_summary(value: object) -> bool:
    return (
        isinstance(value, dict)
        and "count" in value
        and "mean" in value
        and all(isinstance(v, (int, float)) for v in value.values())
    )


def _merge_summaries(
    a: typing.Dict[str, float], b: typing.Mapping[str, float]
) -> typing.Dict[str, float]:
    na, nb = a.get("count", 0), b.get("count", 0)
    total = na + nb
    if total == 0:
        return dict(a)
    out: typing.Dict[str, float] = {"count": total}
    mean_a, mean_b = a.get("mean", 0.0), b.get("mean", 0.0)
    out["mean"] = (mean_a * na + mean_b * nb) / total
    if "stdev" in a or "stdev" in b:
        # Pooled via the pairwise-variance identity on the m2 sums.
        var_a = a.get("stdev", 0.0) ** 2
        var_b = b.get("stdev", 0.0) ** 2
        m2 = (
            var_a * max(0, na - 1)
            + var_b * max(0, nb - 1)
            + (mean_b - mean_a) ** 2 * na * nb / total
        )
        out["stdev"] = math.sqrt(m2 / (total - 1)) if total > 1 else 0.0
    if "min" in a or "min" in b:
        mins = [s["min"] for s, n in ((a, na), (b, nb)) if n and "min" in s]
        out["min"] = min(mins) if mins else 0.0
    if "max" in a or "max" in b:
        maxes = [s["max"] for s, n in ((a, na), (b, nb)) if n and "max" in s]
        out["max"] = max(maxes) if maxes else 0.0
    for key in sorted(set(a) | set(b)):
        if key in out or key == "count":
            continue
        out[key] = (a.get(key, 0.0) * na + b.get(key, 0.0) * nb) / total
    return out


def _merge_into(
    target: typing.Dict[str, object], source: typing.Mapping[str, object]
) -> None:
    for key, value in source.items():
        if key not in target:
            target[key] = _copy_tree(value)
            continue
        existing = target[key]
        if _is_summary(existing) and _is_summary(value):
            target[key] = _merge_summaries(
                typing.cast(typing.Dict[str, float], existing),
                typing.cast(typing.Mapping[str, float], value),
            )
        elif isinstance(existing, dict) and isinstance(value, dict):
            _merge_into(
                typing.cast(typing.Dict[str, object], existing),
                typing.cast(typing.Mapping[str, object], value),
            )
        elif isinstance(existing, (int, float)) and isinstance(value, (int, float)):
            target[key] = existing + value
        else:
            raise ObservabilityError(
                f"cannot merge metric {key!r}: branch/leaf shape mismatch"
            )


def _copy_tree(value: object) -> object:
    if isinstance(value, dict):
        return {k: _copy_tree(v) for k, v in value.items()}
    return value


def _nest(root: typing.Dict[str, object], dotted: str, leaf: object) -> None:
    parts = dotted.split(".")
    node = root
    for part in parts[:-1]:
        child = node.setdefault(part, {})
        if not isinstance(child, dict):
            # A leaf already sits where a branch must go: hang the branch
            # off a sibling key instead of silently clobbering the leaf.
            child = node.setdefault(part + ".value", {})  # pragma: no cover
        node = typing.cast(typing.Dict[str, object], child)
    node[parts[-1]] = leaf
