"""Cross-process sweep telemetry: live streaming and aggregation.

A sweep through :class:`~repro.exec.TrialExecutor` is observable while
it runs: the parent (and, on a pool, every worker via a multiprocessing
queue) emits small structured **telemetry events** — plain dicts keyed
by ``ev`` — and a :class:`SweepTelemetry` aggregator folds them into a
:class:`~repro.obs.metrics.MetricsRegistry`, merges any per-trial SoC
metric snapshots via :func:`~repro.obs.metrics.merge_snapshots`, renders
live TTY progress, tails a ``--watch`` JSONL stream, and runs an online
CUSUM drift detector over per-trial BER.

The event schema (every event is JSON-able)::

    sweep.start   {trials, workers, label}
    trial.start   {index, token}
    trial.finish  {index, token, kind, wall_s, sim,
                   ber_percent?, bandwidth_kbps?, metrics?}
    trial.cached  {index, kind}
    trial.model   {index}
    prefix.build  {label, sim}
    sweep.finish  {wall_s, ok, dead, crash, timeout, model, cached,
                   sim, cache?, checkpoints?}

``trial.model`` marks a point the pre-screening planner answered with an
analytical-tier prediction instead of a DES run (executor outcome kind
``"model"``); it counts toward completion but contributes no BER/latency
samples — predictions are not measurements.

Zero-overhead-when-off contract: with no telemetry attached the
executor's fast paths cost one ``is None`` check, and workers never see
a queue.  Crucially the channel under test is **never** perturbed —
telemetry only reads data the trial already produced (result health,
census counters, pre-existing ``meta["metrics"]`` snapshots), so sweep
outputs stay bit-identical with streaming on or off at any worker
count.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import typing

from repro.obs.metrics import MetricsRegistry, merge_snapshots

Event = typing.Dict[str, object]

#: Environment knobs (see README "Monitoring a sweep").
ENV_ENABLE = "REPRO_TELEMETRY"
ENV_JSONL = "REPRO_TELEMETRY_JSONL"
ENV_PROM = "REPRO_TELEMETRY_PROM"

_TRUTHY = ("1", "true", "on", "yes")

# -- worker-side emitter ------------------------------------------------
#
# Pool workers get the parent's queue through the pool initializer
# (`install_worker_queue` is module-level, hence picklable).  With no
# queue installed `emit_from_worker` is one `is None` check, so the
# serial path and telemetry-off pools pay nothing.

_WORKER_QUEUE: typing.Optional[typing.Any] = None


def install_worker_queue(queue: typing.Optional[typing.Any]) -> None:
    """Install (or clear, with ``None``) this process's telemetry queue."""
    global _WORKER_QUEUE
    _WORKER_QUEUE = queue


def emit_from_worker(event: Event) -> None:
    """Forward one event to the parent; no-op without an installed queue."""
    queue = _WORKER_QUEUE
    if queue is None:
        return
    try:
        queue.put(event)
    except Exception:
        # A torn-down queue must never take the trial down with it.
        pass


# -- event builders -----------------------------------------------------


def _result_health(
    value: object,
) -> typing.Tuple[typing.Optional[float], typing.Optional[float]]:
    """Best-effort ``(ber_percent, bandwidth_kbps)`` from a trial result."""
    ber: typing.Optional[float] = None
    kbps: typing.Optional[float] = None
    try:
        rate = getattr(value, "error_rate", None)
        if rate is not None:
            ber = 100.0 * float(rate)  # type: ignore[arg-type]
        elif hasattr(value, "error_percent"):
            ber = float(value.error_percent)  # type: ignore[attr-defined]
        raw = getattr(value, "bandwidth_kbps", None)
        if raw is not None:
            kbps = float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None, None
    return ber, kbps


def trial_start_event(token: int, index: int) -> Event:
    return {"ev": "trial.start", "token": token, "index": index}


def trial_finish_event(
    token: typing.Optional[int],
    index: typing.Optional[int],
    kind: str,
    value: object,
    sim: typing.Mapping[str, int],
    wall_s: float,
) -> Event:
    """One trial's terminal event; never embeds the result object itself."""
    event: Event = {
        "ev": "trial.finish",
        "token": token,
        "index": index,
        "kind": kind,
        "wall_s": round(wall_s, 6),
        "sim": dict(sim),
    }
    ber, kbps = _result_health(value)
    if ber is not None:
        event["ber_percent"] = round(ber, 6)
    if kbps is not None:
        event["bandwidth_kbps"] = round(kbps, 6)
    meta = getattr(value, "meta", None)
    if isinstance(meta, dict):
        metrics = meta.get("metrics")
        if isinstance(metrics, dict):
            # Present only when the trial already ran with obs enabled;
            # telemetry never turns obs on, it just forwards what exists.
            event["metrics"] = metrics
    return event


# -- aggregation --------------------------------------------------------


class Cusum:
    """Two-sided CUSUM drift detector over a stream of samples.

    ``update`` accumulates deviations beyond ``slack`` of ``target`` and
    alarms when either one-sided sum crosses ``threshold``.  Used online
    over per-trial BER: the target is learned from the first ``warmup``
    samples, so a mid-sweep shift (a channel going noisy) trips it while
    a uniformly-bad sweep is left to the baseline z-score check.
    """

    def __init__(
        self,
        slack: float = 2.0,
        threshold: float = 8.0,
        warmup: int = 4,
        target: typing.Optional[float] = None,
    ) -> None:
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.warmup = max(1, int(warmup))
        self.target = target
        self.pos = 0.0
        self.neg = 0.0
        self.alarmed = False
        self._warm: typing.List[float] = []

    def update(self, sample: float) -> bool:
        """Feed one sample; returns True on the update that first alarms."""
        if self.target is None:
            self._warm.append(float(sample))
            if len(self._warm) < self.warmup:
                return False
            self.target = sum(self._warm) / len(self._warm)
            return False
        delta = float(sample) - self.target
        self.pos = max(0.0, self.pos + delta - self.slack)
        self.neg = max(0.0, self.neg - delta - self.slack)
        if not self.alarmed and max(self.pos, self.neg) >= self.threshold:
            self.alarmed = True
            return True
        return False


class SweepTelemetry:
    """Thread-safe aggregator of telemetry events for one or more sweeps.

    ``handle(event)`` is the single entry point — the executor calls it
    for parent-side events and the queue drainer thread calls it for
    worker-side events, serialized by an internal lock.  State lands in
    three places: a private :class:`MetricsRegistry` (``sweep.*`` and
    ``exec.*`` counters/histograms), a merged SoC-metrics tree (from any
    ``trial.finish`` events carrying snapshots), and a warning list fed
    by the online BER CUSUM.
    """

    def __init__(
        self,
        label: str = "sweep",
        stream: typing.Optional[typing.TextIO] = None,
        progress: typing.Optional[typing.TextIO] = None,
        prom_path: typing.Union[str, os.PathLike, None] = None,
        cusum: typing.Optional[Cusum] = None,
    ) -> None:
        self.label = label
        self.stream = stream
        self.progress = progress
        self.prom_path = prom_path
        self.registry = MetricsRegistry()
        self.warnings: typing.List[str] = []
        self._cusum = cusum if cusum is not None else Cusum()
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._total = 0
        self._done_indices: typing.Set[typing.Optional[int]] = set()
        self._soc_metrics: typing.Dict[str, object] = {}
        self.events_seen = 0

    # -- ingestion ------------------------------------------------------

    def handle(self, event: typing.Mapping[str, object]) -> None:
        """Fold one event into the aggregate (thread-safe)."""
        with self._lock:
            self._handle_locked(dict(event))

    def _handle_locked(self, event: Event) -> None:
        self.events_seen += 1
        ev = event.get("ev")
        reg = self.registry
        if ev == "sweep.start":
            self._total += int(typing.cast(int, event.get("trials", 0)))
            reg.counter("sweep.trials").inc(
                int(typing.cast(int, event.get("trials", 0)))
            )
            reg.counter("sweep.workers").set(
                int(typing.cast(int, event.get("workers", 0)))
            )
        elif ev == "trial.start":
            reg.counter("sweep.started").inc()
        elif ev == "trial.cached":
            self._done_indices.add(typing.cast(int, event.get("index")))
            reg.counter("sweep.cached").inc()
            reg.counter(f"sweep.{event.get('kind', 'ok')}").inc()
        elif ev == "trial.model":
            self._done_indices.add(typing.cast(int, event.get("index")))
            reg.counter("sweep.model").inc()
        elif ev == "trial.finish":
            self._done_indices.add(typing.cast(int, event.get("index")))
            reg.counter("sweep.attempts").inc()
            reg.counter(f"sweep.{event.get('kind', 'ok')}").inc()
            wall = event.get("wall_s")
            if isinstance(wall, (int, float)):
                reg.histogram("sweep.trial_wall_s").add(float(wall))
            sim = event.get("sim")
            if isinstance(sim, dict):
                reg.counter("sweep.events_executed").inc(
                    int(sim.get("events_executed", 0))
                )
                reg.counter("sweep.engines_created").inc(
                    int(sim.get("engines_created", 0))
                )
            ber = event.get("ber_percent")
            if isinstance(ber, (int, float)):
                reg.histogram("sweep.ber_percent").add(float(ber))
                if self._cusum.update(float(ber)):
                    self.warnings.append(
                        f"CUSUM drift: per-trial BER shifted from "
                        f"{self._cusum.target:.2f}% baseline "
                        f"(trial index={event.get('index')}, "
                        f"ber={float(ber):.2f}%)"
                    )
                    reg.counter("sweep.drift_alarms").inc()
            kbps = event.get("bandwidth_kbps")
            if isinstance(kbps, (int, float)):
                reg.histogram("sweep.bandwidth_kbps").add(float(kbps))
            metrics = event.get("metrics")
            if isinstance(metrics, dict):
                self._soc_metrics = merge_snapshots(
                    [self._soc_metrics, metrics]
                )
        elif ev == "prefix.build":
            reg.counter("sweep.prefixes_built").inc()
        elif ev == "sweep.finish":
            for prefix, payload in (
                ("exec.cache", event.get("cache")),
                ("exec.checkpoint", event.get("checkpoints")),
            ):
                if isinstance(payload, dict):
                    for key, value in payload.items():
                        if isinstance(value, (int, float)):
                            reg.counter(f"{prefix}.{key}").inc(value)
        if self.stream is not None:
            line = json.dumps(
                {"t": round(time.perf_counter() - self._t0, 6), **event},
                sort_keys=True,
                default=str,
            )
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except ValueError:
                self.stream = None  # closed underneath us
        if self.progress is not None:
            self._render_progress(ev == "sweep.finish")

    # -- presentation ---------------------------------------------------

    @property
    def done(self) -> int:
        return len(self._done_indices)

    def _counts(self) -> typing.Dict[str, float]:
        return self.registry.counters()

    def _render_progress(self, final: bool) -> None:
        counts = self._counts()
        parts = [f"[{self.label}] {self.done}/{self._total}"]
        for kind in ("ok", "dead", "crash", "timeout", "model"):
            n = counts.get(f"sweep.{kind}", 0)
            if n:
                parts.append(f"{kind}={int(n)}")
        cached = counts.get("sweep.cached", 0)
        if cached:
            parts.append(f"cached={int(cached)}")
        if self.warnings:
            parts.append(f"drift!={len(self.warnings)}")
        line = " ".join(parts)
        out = self.progress
        if out is None:
            return
        try:
            if out.isatty():
                out.write("\r" + line.ljust(78))
                if final:
                    out.write("\n")
                out.flush()
            elif final:
                out.write(line + "\n")
                out.flush()
        except ValueError:
            self.progress = None

    def snapshot(self) -> typing.Dict[str, object]:
        """Nested dict of everything aggregated so far (JSON-able)."""
        with self._lock:
            doc: typing.Dict[str, object] = self.registry.as_dict()
            if self._soc_metrics:
                doc["soc"] = merge_snapshots([self._soc_metrics])
            if self.warnings:
                doc["warnings"] = list(self.warnings)
            return doc

    def summary(self) -> str:
        counts = self._counts()
        kinds = ", ".join(
            f"{kind}={int(counts.get(f'sweep.{kind}', 0))}"
            for kind in ("ok", "dead", "crash", "timeout", "model")
            if counts.get(f"sweep.{kind}", 0)
        )
        text = (
            f"telemetry[{self.label}]: {self.events_seen} events, "
            f"{self.done}/{self._total} trials ({kinds or 'no outcomes'})"
        )
        if self.warnings:
            text += f", {len(self.warnings)} drift warning(s)"
        return text

    def flush(self) -> None:
        """Flush the watch stream and (re)write the Prometheus file."""
        if self.stream is not None:
            try:
                self.stream.flush()
            except ValueError:
                self.stream = None
        if self.prom_path:
            from repro.obs.prometheus import prometheus_text

            text = prometheus_text(self.snapshot())
            with open(os.fspath(self.prom_path), "w", encoding="utf-8") as fileobj:
                fileobj.write(text)


def env_enabled(environ: typing.Optional[typing.Mapping[str, str]] = None) -> bool:
    env = os.environ if environ is None else environ
    return env.get(ENV_ENABLE, "").strip().lower() in _TRUTHY


def telemetry_from_env(
    label: str = "sweep",
    environ: typing.Optional[typing.Mapping[str, str]] = None,
) -> typing.Optional[SweepTelemetry]:
    """Build a :class:`SweepTelemetry` from ``REPRO_TELEMETRY*`` knobs.

    Returns ``None`` unless ``REPRO_TELEMETRY`` is truthy — the executor
    calls this once at construction, so the off path costs one env read.
    """
    env = os.environ if environ is None else environ
    if not env_enabled(env):
        return None
    stream = None
    jsonl = env.get(ENV_JSONL, "").strip()
    if jsonl:
        stream = open(jsonl, "a", encoding="utf-8")
    return SweepTelemetry(
        label=label,
        stream=stream,
        progress=sys.stderr,
        prom_path=env.get(ENV_PROM, "").strip() or None,
    )


# -- shared bench footer assembly ---------------------------------------


def bench_run_record(
    workers: int,
    wall_s: float,
    census: typing.Optional[typing.Any] = None,
    sim: typing.Optional[typing.Mapping[str, int]] = None,
    cache: typing.Optional[typing.Any] = None,
    checkpoints: typing.Optional[typing.Any] = None,
    channels: typing.Optional[typing.Mapping[str, object]] = None,
    extra: typing.Optional[typing.Mapping[str, object]] = None,
    engine: typing.Optional[str] = None,
    batch_width: typing.Optional[int] = None,
    batch_width_source: typing.Optional[str] = None,
    predictions: typing.Optional[typing.Mapping[str, typing.Mapping[str, object]]] = None,
) -> typing.Dict[str, object]:
    """One benchmark run record, in the ``BENCH_<name>.json`` shape.

    The single assembly point for the per-benchmark JSON footers that
    used to be hand-rolled in each ``bench_*.py``: engine census (or a
    raw executor ``sim`` dict), cache/checkpoint counters (anything with
    ``as_dict()``, or a plain mapping) and per-channel health metrics.
    The run ledger reuses the same records, so provenance and bench
    artifacts can never drift apart.

    ``engine`` names the execution tier that produced the numbers
    (``"serial"`` / ``"batched"``; compare like with like when reading
    the ledger) and ``batch_width`` the lockstep lane count in force —
    both optional so non-sweep benches stay unchanged.
    ``batch_width_source`` records where that width came from —
    ``"auto"`` (footprint tuner), ``"env"`` (``REPRO_BATCH_WIDTH``) or
    ``"serial"`` (batch tier off) — so drift detection can tell a width
    change from a true perf regression.

    ``predictions`` maps channel names to analytical-tier prediction
    dicts (:meth:`repro.model.ModelPrediction.as_dict` shape); their
    ``predicted_*`` scalars are folded into the matching ``channels``
    entry (created if absent, stamped ``source="model"`` if it carries
    no measured fields) so every baseline that stores channel health can
    also carry — and drift-check — the model's view of it.
    """
    engines = events = 0
    if census is not None:
        engines = int(census.engines_created)
        events = int(census.events_executed)
    elif sim is not None:
        engines = int(sim.get("engines_created", 0))
        events = int(sim.get("events_executed", 0))
    record: typing.Dict[str, object] = {
        "workers": int(workers),
        "wall_s": round(float(wall_s), 4),
        "engines": engines,
        "events_executed": events,
        "events_per_sec": round(events / wall_s, 1) if wall_s > 0 else 0.0,
    }
    if engine is not None:
        record["engine"] = str(engine)
    if batch_width is not None:
        record["batch_width"] = int(batch_width)
    if batch_width_source is not None:
        record["batch_width_source"] = str(batch_width_source)
    for key, stats in (("cache", cache), ("checkpoints", checkpoints)):
        if stats is None:
            continue
        if hasattr(stats, "as_dict"):
            record[key] = stats.as_dict()
        else:
            record[key] = dict(typing.cast(typing.Mapping, stats))
    if channels:
        record["channels"] = {
            name: dict(typing.cast(typing.Mapping, value))
            if isinstance(value, typing.Mapping)
            else value
            for name, value in channels.items()
        }
    if predictions:
        merged = typing.cast(
            typing.Dict[str, object], record.setdefault("channels", {})
        )
        for name, pred in predictions.items():
            entry = typing.cast(
                typing.Dict[str, object], merged.setdefault(name, {})
            )
            measured = any(not k.startswith("predicted_") for k in entry)
            entry.update(
                {
                    key: value
                    for key, value in pred.items()
                    if key.startswith("predicted_")
                }
            )
            entry["source"] = "des" if measured else "model"
    if extra:
        record.update(extra)
    return record
