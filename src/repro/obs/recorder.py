"""The process-global trace recorder and the ``TraceSink`` contract.

Observability in this codebase follows one rule: **the disabled path is a
single ``is None`` check**.  Components resolve their sink *once*, at
construction time, via :meth:`Recorder.sink_for`; when tracing is off (or
the event name is not allowlisted) that resolution returns ``None`` and
every emit site reduces to ``if self._trace is not None`` — no dict
construction, no string formatting, no function call.  This is what keeps
tier-1 test runtime unchanged while the same build can produce full
Chrome traces when asked.

Because sinks are resolved at construction, a sink must be installed
*before* the observed objects (``SoC``, channels, engines) are built —
which is how the CLI and the tests use it::

    from repro.obs import MemorySink, recorder

    with recorder.recording(MemorySink()) as sink:
        result = LLCChannel(LLCChannelConfig()).transmit(n_bits=16)
    print(len(sink.events), "events")
"""

from __future__ import annotations

import contextlib
import typing

from repro.errors import ObservabilityError

#: Every structured event name emitted by the instrumented layers.  The
#: allowlist in :class:`~repro.config.ObservabilityConfig` is validated
#: against this set.
TRACE_EVENT_NAMES: typing.Tuple[str, ...] = (
    "cache.access",   # an access reached a cache array (level + hit/miss)
    "cache.evict",    # an LLC fill pushed a victim line out
    "ring.hop",       # a transfer occupied the ring (domain + queueing)
    "dram.access",    # an LLC miss went to memory (sampled latency)
    "engine.step",    # one scheduled action executed (very high volume)
    "channel.bit",    # a covert-channel endpoint sent/decoded one bit
    "channel.sync",   # a handshake signal was detected
    "channel.resync", # a hardened endpoint recovered from a sync timeout
    "cpu.probe",      # a timed CPU probe completed (measured cycles)
    "gpu.kernel",     # a GPU kernel ran (span: launch -> completion)
    "fault.inject",   # a fault injector perturbed the machine (see repro.faults)
    "batch.plan",     # the batch tier chose a lane width for one group
)

#: The default allowlist: everything except the per-step firehose, which
#: multiplies the trace volume by the raw event count of the run.
DEFAULT_EVENT_ALLOWLIST: typing.Tuple[str, ...] = tuple(
    name for name in TRACE_EVENT_NAMES if name != "engine.step"
)


class TraceSink(typing.Protocol):
    """Anything that can receive structured trace events."""

    def emit(
        self,
        name: str,
        ts_fs: int,
        track: str,
        args: typing.Optional[typing.Dict[str, object]],
    ) -> None:
        """Record one event.

        ``ts_fs`` is simulation time in femtoseconds; ``track`` names the
        agent/resource the event belongs to (one Chrome-trace thread per
        distinct track); ``args`` is an optional payload dict.
        """


class Recorder:
    """Process-global switchboard between components and the active sink."""

    __slots__ = ("_sink", "_allowlist")

    def __init__(self) -> None:
        self._sink: typing.Optional[TraceSink] = None
        self._allowlist: typing.Optional[typing.FrozenSet[str]] = None

    @property
    def enabled(self) -> bool:
        """Whether a sink is currently installed."""
        return self._sink is not None

    @property
    def sink(self) -> typing.Optional[TraceSink]:
        return self._sink

    def sink_for(self, *names: str) -> typing.Optional[TraceSink]:
        """The sink a component should cache for the given event names.

        Returns ``None`` when tracing is off or none of ``names`` is
        allowlisted — making the component's disabled path a plain
        ``is None`` check with zero per-event cost.
        """
        if self._sink is None:
            return None
        if self._allowlist is None:
            return self._sink
        if any(name in self._allowlist for name in names):
            return self._sink
        return None

    def install(
        self,
        sink: TraceSink,
        allowlist: typing.Optional[typing.Iterable[str]] = None,
    ) -> TraceSink:
        """Install ``sink`` as the process-global trace destination.

        Components built while the sink is installed will emit to it;
        components built before keep their ``None`` and stay silent.
        """
        if self._sink is not None:
            raise ObservabilityError(
                "a trace sink is already installed; uninstall it first"
            )
        self._sink = sink
        self._allowlist = frozenset(allowlist) if allowlist is not None else None
        return sink

    def uninstall(self) -> typing.Optional[TraceSink]:
        """Remove and return the installed sink (no-op when off)."""
        sink, self._sink, self._allowlist = self._sink, None, None
        return sink

    @contextlib.contextmanager
    def recording(
        self,
        sink: TraceSink,
        allowlist: typing.Optional[typing.Iterable[str]] = None,
    ) -> typing.Iterator[TraceSink]:
        """Scoped install/uninstall around a block of observed work."""
        self.install(sink, allowlist)
        try:
            yield sink
        finally:
            self.uninstall()


#: The process-global recorder every instrumented layer resolves against.
recorder = Recorder()
