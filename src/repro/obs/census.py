"""Engine census: account for simulation work done inside a code block.

Benchmark harnesses (and the CLI's report) want to state *how much
simulation* a figure cost — total events executed and the final
simulated clock — but the channel facades build their engines internally
and drop them when a transmission returns.  The census solves this
without any per-event hook: :class:`~repro.sim.engine.Engine` announces
itself **once, at construction**, to whatever censuses are armed; an
armed census keeps a strong reference so the engine's final counters are
still readable when the block ends.  When no census is armed the
announcement is a single ``if not _ACTIVE`` check.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:
    from repro.sim.engine import Engine

_ACTIVE: typing.List["EngineCensus"] = []


def note_engine(engine: "Engine") -> None:
    """Called by ``Engine.__init__``; no-op unless a census is armed."""
    if not _ACTIVE:
        return
    for census in _ACTIVE:
        census.engines.append(engine)


def note_external_sim(sim: typing.Mapping[str, int]) -> None:
    """Credit out-of-process simulation work to every armed census.

    :class:`~repro.exec.TrialExecutor` runs trials in worker processes
    whose engines never announce to the parent's censuses; the executor
    publishes the workers' merged census here so ``EngineCensus`` totals
    stay honest whether a figure ran serially or on a pool.
    """
    if not _ACTIVE:
        return
    for census in _ACTIVE:
        census._ext_engines += sim.get("engines_created", 0)
        census._ext_events += sim.get("events_executed", 0)
        census._ext_final_now = max(
            census._ext_final_now, sim.get("final_now_fs", 0)
        )


class EngineCensus:
    """Collects every engine created while armed; nestable."""

    def __init__(self) -> None:
        self.engines: typing.List["Engine"] = []
        self._ext_engines = 0
        self._ext_events = 0
        self._ext_final_now = 0

    def start(self) -> "EngineCensus":
        _ACTIVE.append(self)
        return self

    def stop(self) -> None:
        if self in _ACTIVE:
            _ACTIVE.remove(self)

    def __enter__(self) -> "EngineCensus":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()

    @property
    def engines_created(self) -> int:
        return len(self.engines) + self._ext_engines

    @property
    def events_executed(self) -> int:
        """Total actions executed across every censused engine."""
        return (
            sum(engine.events_executed for engine in self.engines)
            + self._ext_events
        )

    @property
    def final_now_fs(self) -> int:
        """The furthest simulated clock any censused engine reached."""
        return max(
            max((engine.now for engine in self.engines), default=0),
            self._ext_final_now,
        )

    def footer(self) -> str:
        """One-line summary for benchmark reports."""
        return (
            f"sim: engines={self.engines_created} "
            f"events_executed={self.events_executed} "
            f"final_now={self.final_now_fs} fs "
            f"({self.final_now_fs / 1e12:.3f} ms simulated)"
        )
