"""Plain-text run report: event totals, per-agent breakdown, metrics."""

from __future__ import annotations

import typing

from repro.obs.chrome_trace import track_names
from repro.obs.sinks import TraceEvent


def _render_nested(
    node: typing.Mapping[str, object], indent: int, lines: typing.List[str]
) -> None:
    pad = "  " * indent
    for key in sorted(node):
        value = node[key]
        if isinstance(value, dict):
            if value and all(not isinstance(v, dict) for v in value.values()):
                # Leaf summary (histogram snapshot): render on one line.
                summary = " ".join(
                    f"{k}={_fmt(v)}" for k, v in value.items()
                )
                lines.append(f"{pad}{key}: {summary}")
            else:
                lines.append(f"{pad}{key}:")
                _render_nested(value, indent + 1, lines)
        else:
            lines.append(f"{pad}{key}: {_fmt(value)}")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def event_totals(
    events: typing.Sequence[TraceEvent],
) -> typing.Dict[str, int]:
    """Event count per name."""
    totals: typing.Dict[str, int] = {}
    for name, _ts, _track, _args in events:
        totals[name] = totals.get(name, 0) + 1
    return totals


def per_track_totals(
    events: typing.Sequence[TraceEvent],
) -> typing.Dict[str, typing.Dict[str, int]]:
    """Per-agent (track) event count per name."""
    tracks: typing.Dict[str, typing.Dict[str, int]] = {}
    for name, _ts, track, _args in events:
        bucket = tracks.setdefault(track, {})
        bucket[name] = bucket.get(name, 0) + 1
    return tracks


def render_report(
    title: str,
    events: typing.Sequence[TraceEvent],
    metrics: typing.Optional[typing.Mapping[str, object]] = None,
    extra_lines: typing.Optional[typing.Sequence[str]] = None,
) -> str:
    """Human-readable run report over a recorded event stream."""
    lines: typing.List[str] = [f"== {title} ==", ""]
    if extra_lines:
        lines.extend(extra_lines)
        lines.append("")

    lines.append(f"trace: {len(events)} events across "
                 f"{len(track_names(events))} tracks")
    span_fs = 0
    if events:
        stamps = [ts for _n, ts, _t, _a in events]
        span_fs = max(stamps) - min(stamps)
    lines.append(f"trace span: {span_fs / 1e12:.3f} ms simulated")
    lines.append("")

    lines.append("events by name:")
    for name, count in sorted(event_totals(events).items()):
        lines.append(f"  {name}: {count}")
    lines.append("")

    lines.append("events by agent:")
    by_track = per_track_totals(events)
    for track in track_names(events):
        parts = " ".join(
            f"{name}={count}" for name, count in sorted(by_track[track].items())
        )
        lines.append(f"  {track}: {parts}")
    lines.append("")

    if metrics:
        lines.append("metrics:")
        _render_nested(metrics, 1, lines)
        lines.append("")
    return "\n".join(lines)
