"""Append-only JSONL run ledger: provenance for every figure and sweep.

The committed ``BENCH_*.json`` artifacts state *numbers*; the ledger
states *where they came from*.  Every figure, bench or sweep appends one
JSON record — schema version, run name/kind, UTC timestamp, the code
fingerprint the run executed under, config digest, seed spec, the run
record (wall time, events/sec, cache/checkpoint counters, per-channel
health) and any drift warnings — to a JSON-Lines file that is only ever
appended to, so the history of a working tree's runs is reconstructible
after the fact.

Query with ``python -m repro.obs ledger`` (see ``__main__``).  The
default path is ``benchmarks/results/LEDGER.jsonl`` relative to the
current directory; override (or disable with ``0``/``off``) via
``REPRO_LEDGER``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import typing

from repro.errors import ObservabilityError

#: Bump when a record's required shape changes.
LEDGER_SCHEMA = 1

ENV_LEDGER = "REPRO_LEDGER"
_OFF = ("0", "off", "none", "false")

#: field name -> required type(s); ``validate_record`` enforces these.
REQUIRED_FIELDS: typing.Dict[str, typing.Tuple[type, ...]] = {
    "schema": (int,),
    "name": (str,),
    "kind": (str,),
    "ts": (int, float),
    "fingerprint": (str,),
    "run": (dict,),
}

_OPTIONAL_FIELDS: typing.Dict[str, typing.Tuple[type, ...]] = {
    "config_digest": (str,),
    "seeds": (dict, list, int, str),
    "channels": (dict,),
    "metrics": (dict,),
    "warnings": (list,),
    "argv": (list,),
    #: Analytical-tier view of the run: per-channel ``predicted_*``
    #: scalars plus per-point provenance counts (``source=model|des``) —
    #: see :func:`repro.obs.telemetry.bench_run_record` and the model
    #: validation report.
    "predictions": (dict,),
}


def default_ledger_path(
    environ: typing.Optional[typing.Mapping[str, str]] = None,
) -> typing.Optional[pathlib.Path]:
    """Resolve the ledger path from ``REPRO_LEDGER`` (None = disabled)."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_LEDGER, "").strip()
    if raw.lower() in _OFF:
        return None
    if raw:
        return pathlib.Path(raw)
    return pathlib.Path("benchmarks") / "results" / "LEDGER.jsonl"


def make_record(
    name: str,
    kind: str,
    run: typing.Mapping[str, object],
    config_digest: typing.Optional[str] = None,
    seeds: typing.Optional[object] = None,
    channels: typing.Optional[typing.Mapping[str, object]] = None,
    metrics: typing.Optional[typing.Mapping[str, object]] = None,
    warnings: typing.Sequence[str] = (),
    fingerprint: typing.Optional[str] = None,
    argv: typing.Optional[typing.Sequence[str]] = None,
    predictions: typing.Optional[typing.Mapping[str, object]] = None,
) -> typing.Dict[str, object]:
    """Assemble one schema-valid ledger record (stamps time/fingerprint)."""
    if fingerprint is None:
        from repro.exec.fingerprint import code_fingerprint

        fingerprint = code_fingerprint()
    record: typing.Dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "name": name,
        "kind": kind,
        "ts": round(time.time(), 3),
        "fingerprint": fingerprint,
        "run": dict(run),
    }
    if config_digest is not None:
        record["config_digest"] = config_digest
    if seeds is not None:
        record["seeds"] = seeds
    if channels:
        record["channels"] = {k: v for k, v in channels.items()}
    if metrics:
        record["metrics"] = dict(metrics)
    if warnings:
        record["warnings"] = list(warnings)
    if argv is not None:
        record["argv"] = list(argv)
    if predictions:
        record["predictions"] = dict(predictions)
    return record


def validate_record(record: object) -> typing.List[str]:
    """Schema problems with one record; empty list means valid."""
    if not isinstance(record, dict):
        return ["record is not an object"]
    problems = []
    for field, types in REQUIRED_FIELDS.items():
        if field not in record:
            problems.append(f"missing required field {field!r}")
        elif not isinstance(record[field], types) or isinstance(
            record[field], bool
        ):
            problems.append(
                f"field {field!r} has type {type(record[field]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if isinstance(record.get("schema"), int) and record["schema"] > LEDGER_SCHEMA:
        problems.append(
            f"record schema {record['schema']} is newer than "
            f"supported {LEDGER_SCHEMA}"
        )
    for field, types in _OPTIONAL_FIELDS.items():
        if field in record and not isinstance(record[field], types):
            problems.append(
                f"field {field!r} has type {type(record[field]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    return problems


def append_record(
    path: typing.Union[str, os.PathLike],
    record: typing.Mapping[str, object],
) -> typing.Dict[str, object]:
    """Validate and append one record; returns the record appended."""
    doc = dict(record)
    problems = validate_record(doc)
    if problems:
        raise ObservabilityError(
            "refusing to append invalid ledger record: " + "; ".join(problems)
        )
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(doc, sort_keys=True, default=str)
    with open(target, "a", encoding="utf-8") as fileobj:
        fileobj.write(line + "\n")
    return doc


def read_records(
    path: typing.Union[str, os.PathLike],
    name: typing.Optional[str] = None,
    kind: typing.Optional[str] = None,
    last: typing.Optional[int] = None,
) -> typing.Tuple[typing.List[typing.Dict[str, object]], typing.List[str]]:
    """Parse the ledger; returns ``(records, problems)``.

    Malformed lines and schema-invalid records are reported in
    ``problems`` (with line numbers) rather than raised, so one bad line
    never hides the rest of the history.  Filters apply before ``last``.
    """
    records: typing.List[typing.Dict[str, object]] = []
    problems: typing.List[str] = []
    target = pathlib.Path(path)
    try:
        lines = target.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return [], [f"ledger not found: {target}"]
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {lineno}: unparsable JSON ({exc})")
            continue
        bad = validate_record(record)
        if bad:
            problems.append(f"line {lineno}: {'; '.join(bad)}")
            continue
        if name is not None and record.get("name") != name:
            continue
        if kind is not None and record.get("kind") != kind:
            continue
        records.append(record)
    if last is not None and last >= 0:
        records = records[-last:] if last else []
    return records, problems


def format_record(record: typing.Mapping[str, object]) -> str:
    """One human-readable ledger line for the CLI table."""
    ts = typing.cast(float, record.get("ts", 0))
    stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(ts))
    run = typing.cast(typing.Dict[str, object], record.get("run", {}))
    fingerprint = str(record.get("fingerprint", ""))[:12]
    parts = [
        stamp,
        f"{record.get('kind', '?')}:{record.get('name', '?')}",
        f"fp={fingerprint}",
        f"wall={run.get('wall_s', '?')}s",
        f"ev/s={run.get('events_per_sec', '?')}",
    ]
    if "engine" in run:
        tier = run["engine"]
        if "batch_width" in run:
            tier = f"{tier}x{run['batch_width']}"
        if "batch_width_source" in run:
            tier = f"{tier}({run['batch_width_source']})"
        parts.append(f"engine={tier}")
    warnings = record.get("warnings")
    if isinstance(warnings, list) and warnings:
        parts.append(f"drift!={len(warnings)}")
    return "  ".join(parts)
