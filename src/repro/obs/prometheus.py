"""Prometheus text-format exporter for metric snapshots.

Renders the nested dicts produced by ``MetricsRegistry.as_dict()`` /
``merge_snapshots`` / ``SweepTelemetry.snapshot()`` as Prometheus
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4), so a node-exporter textfile collector — or the future
sweep service's ``/metrics`` endpoint — can scrape sweep health without
any new dependency.  Counter leaves become gauges; histogram-summary
leaves become ``_count``/``_sum`` pairs plus ``{quantile=...}`` sample
lines in the classic summary shape.
"""

from __future__ import annotations

import re
import typing

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILE_KEYS = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}
_SUMMARY_STAT_KEYS = ("mean", "min", "max", "stdev")


def sanitize_metric_name(*parts: str) -> str:
    """Join dotted/nested name parts into one legal Prometheus name."""
    joined = "_".join(p for p in parts if p)
    name = _NAME_OK.sub("_", joined)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _is_summary(value: object) -> bool:
    return (
        isinstance(value, dict)
        and "count" in value
        and "mean" in value
        and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in value.values()
        )
    )


def _format_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def _walk(
    node: typing.Mapping[str, object],
    prefix: typing.Tuple[str, ...],
    lines: typing.List[str],
) -> None:
    for key in sorted(node):
        value = node[key]
        path = prefix + (str(key),)
        if _is_summary(value):
            summary = typing.cast(typing.Dict[str, float], value)
            base = sanitize_metric_name(*path)
            count = summary.get("count", 0)
            lines.append(f"# TYPE {base} summary")
            for raw, quantile in _QUANTILE_KEYS.items():
                if raw in summary:
                    lines.append(
                        f'{base}{{quantile="{quantile}"}} '
                        f"{_format_value(summary[raw])}"
                    )
            lines.append(f"{base}_count {_format_value(count)}")
            mean = summary.get("mean", 0.0)
            lines.append(f"{base}_sum {_format_value(mean * count)}")
            for stat in _SUMMARY_STAT_KEYS:
                if stat in summary:
                    stat_name = sanitize_metric_name(*path, stat)
                    lines.append(
                        f"# TYPE {stat_name} gauge\n"
                        f"{stat_name} {_format_value(summary[stat])}"
                    )
        elif isinstance(value, typing.Mapping):
            _walk(value, path, lines)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            name = sanitize_metric_name(*path)
            lines.append(f"# TYPE {name} gauge\n{name} {_format_value(value)}")
        # Non-numeric leaves (warning strings, labels) are not samples.


def prometheus_text(
    snapshot: typing.Mapping[str, object], prefix: str = "repro"
) -> str:
    """Render one nested metric snapshot as Prometheus exposition text."""
    lines: typing.List[str] = []
    _walk(snapshot, (prefix,) if prefix else (), lines)
    return "\n".join(lines) + ("\n" if lines else "")
