"""Export recorded events as Chrome ``trace_event`` JSON.

The output loads directly in ``chrome://tracing`` and in Perfetto
(https://ui.perfetto.dev).  Each distinct event *track* (spy core,
trojan core, GPU, ring, DRAM, ...) becomes one named thread under a
single "simulated SoC" process; events carrying a ``dur_fs`` argument
become complete spans (``ph: "X"``), everything else becomes an instant
event (``ph: "i"``).

Timestamps: the trace_event format counts microseconds; simulation time
is integer femtoseconds, so ``ts = ts_fs / 1e9`` (float microseconds
keep nanosecond-scale structure visible in the viewer).
"""

from __future__ import annotations

import json
import typing

from repro.obs.sinks import TraceEvent

#: Trace-event pid for the one simulated process.
_PID = 1
FS_PER_US = 1_000_000_000


def _track_order(track: str) -> typing.Tuple[int, str]:
    """Stable viewer ordering: agents first, shared resources after."""
    if track.startswith("cpu."):
        return (0, track)
    if track.startswith("gpu"):
        return (1, track)
    return (2, track)


def chrome_trace_events(
    events: typing.Sequence[TraceEvent],
) -> typing.List[typing.Dict[str, object]]:
    """Convert recorder events to a ``traceEvents`` array."""
    tracks: typing.Dict[str, int] = {}
    for _name, _ts, track, _args in events:
        tracks.setdefault(track, 0)
    ordered = sorted(tracks, key=_track_order)
    tids = {track: tid for tid, track in enumerate(ordered, start=1)}

    out: typing.List[typing.Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "simulated SoC"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
        out.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for name, ts_fs, track, args in events:
        record: typing.Dict[str, object] = {
            "name": name,
            "pid": _PID,
            "tid": tids[track],
            "ts": ts_fs / FS_PER_US,
            "cat": name.split(".", 1)[0],
        }
        if args and "dur_fs" in args:
            record["ph"] = "X"
            record["dur"] = typing.cast(float, args["dur_fs"]) / FS_PER_US
            payload = {k: v for k, v in args.items() if k != "dur_fs"}
        else:
            record["ph"] = "i"
            record["s"] = "t"
            payload = dict(args) if args else {}
        if payload:
            record["args"] = payload
        out.append(record)
    return out


def export_chrome_trace(
    events: typing.Sequence[TraceEvent],
    path: str,
    metadata: typing.Optional[typing.Dict[str, object]] = None,
) -> int:
    """Write the Chrome-trace JSON file; returns the event count."""
    document = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ns",
        "otherData": dict(metadata or {}),
    }
    with open(path, "w", encoding="utf-8") as fileobj:
        json.dump(document, fileobj)
    return len(events)


def track_names(events: typing.Sequence[TraceEvent]) -> typing.List[str]:
    """Distinct tracks present in a recorded event stream."""
    seen: typing.Dict[str, None] = {}
    for _name, _ts, track, _args in events:
        seen.setdefault(track)
    return sorted(seen, key=_track_order)
