"""Random pointer chasing (§IV, CPU side of the contention channel).

The contention Spy walks its buffer "in a random pointer chasing manner to
lower prefetching effects".  We build a single random cycle over the
buffer's cache lines (Sattolo's algorithm) so every line is visited once
per pass and the next address is data-dependent — the classic
prefetch-defeating layout.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.errors import MemoryModelError
from repro.soc.mmu import Buffer

if typing.TYPE_CHECKING:
    from repro.cpu.core import CpuProgram


class PointerChaseBuffer:
    """A buffer threaded into one random cyclic permutation of its lines."""

    def __init__(self, buffer: Buffer, line_bytes: int, rng: np.random.Generator) -> None:
        paddrs = buffer.line_paddrs(line_bytes)
        self.buffer = buffer
        self.line_bytes = line_bytes
        self._chain = self._sattolo(paddrs, rng)
        self._cursor = 0

    @staticmethod
    def _sattolo(
        paddrs: typing.Sequence[int], rng: np.random.Generator
    ) -> typing.List[int]:
        if len(paddrs) < 2:
            raise MemoryModelError("pointer chase needs at least two lines")
        order = list(range(len(paddrs)))
        # Sattolo's algorithm: a uniformly random single-cycle permutation.
        for i in range(len(order) - 1, 0, -1):
            j = int(rng.integers(0, i))
            order[i], order[j] = order[j], order[i]
        return [paddrs[i] for i in order]

    @classmethod
    def from_lines(
        cls, lines: typing.Sequence[int], rng: np.random.Generator
    ) -> "PointerChaseBuffer":
        """Chase over an explicit set of line addresses (no Buffer needed)."""
        instance = cls.__new__(cls)
        instance.buffer = None  # type: ignore[assignment]
        instance.line_bytes = 0
        instance._chain = cls._sattolo(lines, rng)
        instance._cursor = 0
        return instance

    def state_dict(self) -> typing.Dict[str, object]:
        """The threaded cycle and walk position (checkpoint contract).

        The backing :class:`Buffer` is not captured — a chase restored
        from state walks the recorded physical addresses directly, which
        is all :meth:`next_paddrs` ever consults.
        """
        return {"chain": list(self._chain), "cursor": self._cursor}

    @classmethod
    def from_state(cls, state: typing.Mapping[str, object]) -> "PointerChaseBuffer":
        """Rebuild a chase captured by :meth:`state_dict`."""
        chain = [int(p) for p in typing.cast(typing.List[int], state["chain"])]
        if len(chain) < 2:
            raise MemoryModelError("pointer chase needs at least two lines")
        instance = cls.__new__(cls)
        instance.buffer = None  # type: ignore[assignment]
        instance.line_bytes = 0
        instance._chain = chain
        instance._cursor = int(typing.cast(int, state["cursor"]))
        return instance

    @property
    def n_lines(self) -> int:
        return len(self._chain)

    def reset(self) -> None:
        """Restart the chase from the head of the cycle."""
        self._cursor = 0

    def next_paddrs(self, count: int) -> typing.List[int]:
        """The next ``count`` chase addresses, wrapping around the cycle."""
        out = []
        for _ in range(count):
            out.append(self._chain[self._cursor])
            self._cursor = (self._cursor + 1) % len(self._chain)
        return out

    def all_paddrs(self) -> typing.List[int]:
        """Every line in chase order (one full pass)."""
        return list(self._chain)

    def chase(
        self, program: "CpuProgram", count: int
    ) -> typing.Generator[object, object, int]:
        """Issue ``count`` chase loads; returns total elapsed fs.

        Serial by construction (each address is data-dependent on the
        previous load); the burst path folds runs of private hits.
        """
        start = program.soc.now_fs
        yield from program.read_series(self.next_paddrs(count))
        return program.soc.now_fs - start
