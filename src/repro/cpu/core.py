"""A user-level CPU program pinned to one core.

Wraps the SoC access paths with the measurement verbs the Spy/Trojan use:
``rdtsc``-style cycle timestamps (the CPU, unlike the GPU, has a usable
user-level timer), timed loads, serial set probes, batched (MLP) fills,
and ``clflush``.  Timestamp reads carry a fixed serialization overhead and
a small jitter, modeling out-of-order effects around ``rdtscp``.
"""

from __future__ import annotations

import typing

from repro.obs.recorder import recorder as _recorder
from repro.sim import AllOf, Timeout
from repro.sim.process import Process
from repro.soc.mmu import AddressSpace

if typing.TYPE_CHECKING:
    from repro.soc.machine import SoC

#: Cost of one serialized timestamp read, in CPU cycles (rdtscp + lfence).
RDTSC_CYCLES = 24
#: Half-width of the uniform out-of-order jitter on a measurement, cycles.
RDTSC_JITTER_CYCLES = 2
#: Outstanding misses one core sustains (line fill buffers).
CPU_MEM_PARALLELISM = 8


class CpuProgram:
    """An unprivileged process executing on a fixed core."""

    def __init__(self, soc: "SoC", core: int, space: typing.Optional[AddressSpace] = None,
                 name: str = "cpu-prog") -> None:
        self.soc = soc
        self.core = core
        self.name = name
        self.space = space if space is not None else soc.new_process(name)
        self._rng = soc.rng.stream(f"cpu-timer-{name}-{core}")
        # Resolved once; `None` keeps the measurement verbs' off path to
        # a single check per timed operation.
        self._trace = _recorder.sink_for("cpu.probe")

    # ------------------------------------------------------------------
    # Plain accesses

    def read(self, paddr: int) -> typing.Generator[object, object, int]:
        """One load; returns its latency in fs."""
        latency = yield from self.soc.cpu_access(self.core, paddr)
        return latency

    def write(self, paddr: int) -> typing.Generator[object, object, int]:
        """One write-allocate store; returns its latency in fs."""
        latency = yield from self.soc.cpu_access(self.core, paddr)
        return latency

    def clflush(self, paddr: int) -> typing.Generator[object, object, int]:
        """Flush a line from the CPU-coherent domain."""
        latency = yield from self.soc.clflush(self.core, paddr)
        return latency

    def read_series(
        self, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, typing.List[int]]:
        """Serial loads (the CPU probes a set one way at a time, §III-E)."""
        latencies = []
        for paddr in paddrs:
            latency = yield from self.read(paddr)
            latencies.append(latency)
        return latencies

    def _issue_after(self, delay_fs: int, paddr: int) -> typing.Generator:
        if delay_fs:
            yield Timeout(self.soc.engine, delay_fs)
        latency = yield from self.soc.cpu_access(self.core, paddr)
        return latency

    def read_batch(
        self,
        paddrs: typing.Sequence[int],
        parallelism: int = CPU_MEM_PARALLELISM,
    ) -> typing.Generator[object, object, typing.List[int]]:
        """Independent loads with memory-level parallelism (for priming).

        Out-of-order cores keep several line fills in flight when the
        addresses carry no data dependency; eviction-set priming is the
        textbook case.  Timed *probes* use :meth:`read_series` instead —
        the measurement depends on the serial pointer-chase latency.
        """
        engine = self.soc.engine
        issue_fs = self.soc.cpu_cycles_fs(2)
        latencies: typing.List[int] = []
        for start in range(0, len(paddrs), max(1, parallelism)):
            batch = paddrs[start : start + max(1, parallelism)]
            children = [
                Process(engine, self._issue_after(i * issue_fs, paddr))
                for i, paddr in enumerate(batch)
            ]
            results = yield AllOf(engine, children)
            latencies.extend(typing.cast(typing.List[int], results))
        return latencies

    # ------------------------------------------------------------------
    # Timing

    def rdtsc(self) -> typing.Generator[object, object, int]:
        """Serialized timestamp; returns the time in CPU cycles."""
        yield from self.soc.stall_if_preempted(self.core)
        yield Timeout(self.soc.engine, self.soc.cpu_cycles_fs(RDTSC_CYCLES))
        cycles = self.soc.now_fs / self.soc.config.cpu_clock.cycle_fs
        jitter = self._rng.integers(-RDTSC_JITTER_CYCLES, RDTSC_JITTER_CYCLES + 1)
        return int(cycles) + int(jitter)

    def timed_read(self, paddr: int) -> typing.Generator[object, object, int]:
        """Measure one load; returns measured CPU cycles (incl. overhead)."""
        start = yield from self.rdtsc()
        start_fs = self.soc.engine.now
        yield from self.read(paddr)
        end = yield from self.rdtsc()
        if self._trace is not None:
            self._trace.emit(
                "cpu.probe",
                start_fs,
                f"cpu.core{self.core}",
                {
                    "program": self.name,
                    "n_lines": 1,
                    "cycles": end - start,
                    "dur_fs": self.soc.engine.now - start_fs,
                },
            )
        return end - start

    def timed_probe(
        self, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, int]:
        """Measure a serial probe over a whole eviction set.

        Returns total measured cycles for the loop — the quantity the Spy
        thresholds to distinguish a primed set from an untouched one.
        """
        start = yield from self.rdtsc()
        start_fs = self.soc.engine.now
        yield from self.read_series(paddrs)
        end = yield from self.rdtsc()
        if self._trace is not None:
            self._trace.emit(
                "cpu.probe",
                start_fs,
                f"cpu.core{self.core}",
                {
                    "program": self.name,
                    "n_lines": len(paddrs),
                    "cycles": end - start,
                    "dur_fs": self.soc.engine.now - start_fs,
                },
            )
        return end - start

    def wait_cycles(self, cycles: float) -> typing.Generator:
        """Spin for a number of CPU cycles."""
        yield Timeout(self.soc.engine, self.soc.cpu_cycles_fs(cycles))

    # ------------------------------------------------------------------
    # Allocation convenience

    def alloc_lines(self, n_lines: int, huge: bool = False) -> typing.List[int]:
        """Allocate a buffer of ``n_lines`` cache lines; returns paddrs."""
        line = self.soc.config.llc.line_bytes
        if huge:
            buffer = self.space.mmap_huge(n_lines * line)
        else:
            buffer = self.space.mmap(n_lines * line)
        return buffer.line_paddrs(line)
