"""A user-level CPU program pinned to one core.

Wraps the SoC access paths with the measurement verbs the Spy/Trojan use:
``rdtsc``-style cycle timestamps (the CPU, unlike the GPU, has a usable
user-level timer), timed loads, serial set probes, batched (MLP) fills,
and ``clflush``.  Timestamp reads carry a fixed serialization overhead and
a small jitter, modeling out-of-order effects around ``rdtscp``.
"""

from __future__ import annotations

import typing

from repro.obs.recorder import recorder as _recorder
from repro.sim import AllOf
from repro.sim.process import Process
from repro.soc.mmu import AddressSpace

if typing.TYPE_CHECKING:
    from repro.soc.machine import SoC

#: Cost of one serialized timestamp read, in CPU cycles (rdtscp + lfence).
RDTSC_CYCLES = 24
#: Half-width of the uniform out-of-order jitter on a measurement, cycles.
RDTSC_JITTER_CYCLES = 2
#: Outstanding misses one core sustains (line fill buffers).
CPU_MEM_PARALLELISM = 8


class CpuProgram:
    """An unprivileged process executing on a fixed core."""

    def __init__(self, soc: "SoC", core: int, space: typing.Optional[AddressSpace] = None,
                 name: str = "cpu-prog") -> None:
        self.soc = soc
        self.core = core
        self.name = name
        self.space = space if space is not None else soc.new_process(name)
        self._rng = soc.rng.stream(f"cpu-timer-{name}-{core}")
        # Resolved once; `None` keeps the measurement verbs' off path to
        # a single check per timed operation.
        self._trace = _recorder.sink_for("cpu.probe")

    # ------------------------------------------------------------------
    # Plain accesses

    def read(self, paddr: int) -> typing.Generator[object, object, int]:
        """One load; returns its latency in fs."""
        latency = yield from self.soc.cpu_access(self.core, paddr)
        return latency

    def write(self, paddr: int) -> typing.Generator[object, object, int]:
        """One write-allocate store; returns its latency in fs."""
        latency = yield from self.soc.cpu_access(self.core, paddr)
        return latency

    def clflush(self, paddr: int) -> typing.Generator[object, object, int]:
        """Flush a line from the CPU-coherent domain."""
        latency = yield from self.soc.clflush(self.core, paddr)
        return latency

    def read_series(
        self, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, typing.List[int]]:
        """Serial loads (the CPU probes a set one way at a time, §III-E).

        Routed through :meth:`SoC.cpu_access_burst`, which folds runs of
        private-cache hits into one timed wait per run.
        """
        latencies = yield from self.soc.cpu_access_burst(self.core, paddrs)
        return latencies

    def _issue_after(self, delay_fs: int, paddr: int) -> typing.Generator:
        if delay_fs:
            yield delay_fs
        latency = yield from self.soc.cpu_access(self.core, paddr)
        return latency

    def read_batch(
        self,
        paddrs: typing.Sequence[int],
        parallelism: int = CPU_MEM_PARALLELISM,
    ) -> typing.Generator[object, object, typing.List[int]]:
        """Independent loads with memory-level parallelism (for priming).

        Out-of-order cores keep several line fills in flight when the
        addresses carry no data dependency; eviction-set priming is the
        textbook case.  Timed *probes* use :meth:`read_series` instead —
        the measurement depends on the serial pointer-chase latency.
        """
        soc = self.soc
        engine = soc.engine
        issue_fs = soc.cpu_cycles_fs(2)
        step = max(1, parallelism)
        fast = soc._fastpath
        latencies: typing.List[int] = []
        for start in range(0, len(paddrs), step):
            batch = paddrs[start : start + step]
            if fast:
                folded = yield from self._read_batch_fast(batch, issue_fs)
                if folded is not None:
                    latencies.extend(folded)
                    continue
            children = [
                Process(engine, self._issue_after(i * issue_fs, paddr))
                for i, paddr in enumerate(batch)
            ]
            results = yield AllOf(engine, children)
            latencies.extend(typing.cast(typing.List[int], results))
        return latencies

    def _read_batch_fast(
        self, batch: typing.Sequence[int], issue_fs: int
    ) -> typing.Generator[object, object, typing.Optional[typing.List[int]]]:
        """Analytic fast path for an all-private-hit MLP batch.

        When every line of the batch sits in the private caches and no
        queued event (or preemption window) falls inside the batch's time
        span, the fan-out of child processes is pure bookkeeping: commit
        the cache state changes in issue order, emit the trace/metrics
        records in *completion* order (Welford accumulation is
        order-sensitive) and sleep once until the last completion.
        Returns ``None`` — without yielding — when the batch must fall
        back to the event-mode fan-out.
        """
        soc = self.soc
        engine = soc.engine
        core = self.core
        t0 = engine._now
        if soc._core_stall_until[core] > t0:
            return None
        caches = soc.cpu_caches[core]
        l1 = caches.l1
        l2 = caches.l2
        d1 = soc._l1_hit_fs
        d2 = soc._l2_hit_fs
        n = len(batch)
        t_bound = t0 + (n - 1) * issue_fs + (d1 if d1 > d2 else d2)
        queue = engine._queue
        if queue and queue[0][0] <= t_bound:
            return None
        # L1 ⊆ L2 (back-invalidation keeps inclusivity), so membership in
        # L2 is the stable all-hit predicate: hits never evict L2 lines.
        for paddr in batch:
            if not l2.contains(paddr):
                return None
        trace = soc._trace_cache
        hist = soc._lat_cpu[core] if soc._lat_cpu is not None else None
        track = soc._core_tracks[core]
        pending: typing.List[typing.Tuple[int, int, str, int, int]] = []
        latencies: typing.List[int] = []
        t_end = t0
        for k, paddr in enumerate(batch):
            if l1.contains(paddr):
                l1.access(paddr)
                d = d1
                level = "l1"
            else:
                l1.access(paddr)  # install; the L1 victim drops cleanly
                result = l2.access(paddr)
                if result.evicted is not None:
                    l1.invalidate(result.evicted)
                d = d2
                level = "l2"
            done = t0 + k * issue_fs + d
            if done > t_end:
                t_end = done
            latencies.append(d)
            pending.append((done, k, level, paddr, d))
        # Children with a 2-cycle issue stagger can complete out of order
        # (L1 vs L2 hits); ties resolve by issue index, matching the
        # event queue's sequence-number tie-break.
        pending.sort()
        for done, _k, level, paddr, d in pending:
            if trace is not None:
                trace.emit("cache.access", done, track,
                           {"level": level, "hit": True, "paddr": paddr})
            if hist is not None:
                hist.add(d / 1e6)
        yield t_end - t0
        return latencies

    # ------------------------------------------------------------------
    # Timing

    def rdtsc(self) -> typing.Generator[object, object, int]:
        """Serialized timestamp; returns the time in CPU cycles."""
        yield from self.soc.stall_if_preempted(self.core)
        yield self.soc.cpu_cycles_fs(RDTSC_CYCLES)
        cycles = self.soc.now_fs / self.soc.config.cpu_clock.cycle_fs
        jitter = self._rng.integers(-RDTSC_JITTER_CYCLES, RDTSC_JITTER_CYCLES + 1)
        return int(cycles) + int(jitter)

    def timed_read(self, paddr: int) -> typing.Generator[object, object, int]:
        """Measure one load; returns measured CPU cycles (incl. overhead)."""
        start = yield from self.rdtsc()
        start_fs = self.soc.engine.now
        yield from self.read(paddr)
        end = yield from self.rdtsc()
        if self._trace is not None:
            self._trace.emit(
                "cpu.probe",
                start_fs,
                f"cpu.core{self.core}",
                {
                    "program": self.name,
                    "n_lines": 1,
                    "cycles": end - start,
                    "dur_fs": self.soc.engine.now - start_fs,
                },
            )
        return end - start

    def timed_probe(
        self, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, int]:
        """Measure a serial probe over a whole eviction set.

        Returns total measured cycles for the loop — the quantity the Spy
        thresholds to distinguish a primed set from an untouched one.
        """
        start = yield from self.rdtsc()
        start_fs = self.soc.engine.now
        yield from self.read_series(paddrs)
        end = yield from self.rdtsc()
        if self._trace is not None:
            self._trace.emit(
                "cpu.probe",
                start_fs,
                f"cpu.core{self.core}",
                {
                    "program": self.name,
                    "n_lines": len(paddrs),
                    "cycles": end - start,
                    "dur_fs": self.soc.engine.now - start_fs,
                },
            )
        return end - start

    def wait_cycles(self, cycles: float) -> typing.Generator:
        """Spin for a number of CPU cycles."""
        yield self.soc.cpu_cycles_fs(cycles)

    # ------------------------------------------------------------------
    # Allocation convenience

    def alloc_lines(self, n_lines: int, huge: bool = False) -> typing.List[int]:
        """Allocate a buffer of ``n_lines`` cache lines; returns paddrs."""
        line = self.soc.config.llc.line_bytes
        if huge:
            buffer = self.space.mmap_huge(n_lines * line)
        else:
            buffer = self.space.mmap(n_lines * line)
        return buffer.line_paddrs(line)
