"""CPU-side execution: user-level programs, timing, pointer chasing, noise."""

from repro.cpu.core import CpuProgram
from repro.cpu.noise import BurstyNoiseAgent
from repro.cpu.pointer_chase import PointerChaseBuffer

__all__ = ["BurstyNoiseAgent", "CpuProgram", "PointerChaseBuffer"]
