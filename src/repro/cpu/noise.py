"""Additional CPU-side noise models.

The SoC's built-in background agent (Poisson LLC traffic) models the
paper's "generally quiet" system.  For robustness experiments beyond the
paper we also provide a bursty on/off agent: quiet phases alternating with
intense bursts, the worst realistic case for a threshold-based channel.
"""

from __future__ import annotations

import typing

from repro.sim import FS_PER_S
from repro.sim.process import Process

if typing.TYPE_CHECKING:
    from repro.soc.machine import SoC


class BurstyNoiseAgent:
    """Markov on/off LLC traffic from a non-attack process."""

    def __init__(
        self,
        soc: "SoC",
        core: int,
        burst_rate_per_s: float = 2.0e7,
        mean_burst_s: float = 50e-6,
        mean_quiet_s: float = 200e-6,
        footprint_bytes: int = 128 * 1024,
    ) -> None:
        self.soc = soc
        self.core = core
        self.burst_rate_per_s = burst_rate_per_s
        self.mean_burst_s = mean_burst_s
        self.mean_quiet_s = mean_quiet_s
        self._rng = soc.rng.stream(f"bursty-noise-{core}")
        space = soc.new_process(f"bursty-noise-{core}")
        buffer = space.mmap(footprint_bytes)
        self._lines = buffer.line_paddrs(soc.config.llc.line_bytes)
        self._process: typing.Optional[Process] = None

    def start(self) -> None:
        """Begin emitting noise."""
        if self._process is not None and self._process.alive:
            return
        self._process = self.soc.engine.process(self._loop())

    def stop(self) -> None:
        """Silence the agent."""
        if self._process is not None:
            self._process.interrupt("stop")
            self._process = None

    def _loop(self) -> typing.Generator:
        rng = self._rng
        while True:
            quiet_fs = max(1, int(rng.exponential(self.mean_quiet_s) * FS_PER_S))
            yield quiet_fs
            burst_end = self.soc.now_fs + max(
                1, int(rng.exponential(self.mean_burst_s) * FS_PER_S)
            )
            while self.soc.now_fs < burst_end:
                gap_fs = max(1, int(rng.exponential(1.0 / self.burst_rate_per_s) * FS_PER_S))
                yield gap_fs
                paddr = self._lines[int(rng.integers(0, len(self._lines)))]
                yield from self.soc.cpu_access(self.core, paddr)
