"""Geometric hit/miss model of the LLC prime+probe channel (Figs. 7-8).

Predicts the per-bit critical path and the bit error rate of the
handshaked prime+probe protocol from config alone, mirroring the
endpoints' own cost estimators (``estimate_prime_fs`` and friends in
:mod:`repro.core.llc_channel.protocol`) so the model and the protocol
can never disagree about eviction-set sizes or batch shapes.

**Timing.**  One steady-state bit is a handshake phase ``A`` followed by
a data phase ``B`` that the two agents overlap::

    A = prime_s(RS) + poll_r + settle + prime_r(RS) + prime_r(RR)
    B = max(t_data + W_avg,  poll_s + prime_s(DATA) + settle + prime_s(RR))

``poll_x`` is one light-probe period (detection lag of a handshake
prime), ``settle`` the peer-prime settle window (0.75x the largest peer
prime, the protocol's auto value), ``t_data`` the protocol's own
``derive_t_data_fs`` closed form and ``W_avg`` the average DATA window:
a transmitted 1 latches on the first (all-miss) probe while a 0 burns
all ``data_window_polls`` probes plus their gaps.

**Error.**  Three geometric terms, each tied to a mechanism the DES
resolves event-by-event:

* a GPU receiver mis-reads a primed 1 when an SLM read glitches stale
  on any of its per-set probes — ``1 - (1-glitch)^n_sets``;
* an under-polluted L3 (pollute rounds below the pLRU eviction bound,
  i.e. FULL_L3_CLEAR) lets primed lines survive, deflating the miss
  delta — a survival penalty proportional to the round deficit;
* a single-set plan loses the all-sets majority vote, so ambient noise
  flips bits in both directions (the ``n_sets == 1`` floor terms).
"""

from __future__ import annotations

import math
import typing

from repro.config import SoCConfig, kaby_lake_model
from repro.core.channel import ChannelDirection
from repro.core.llc_channel.plan import EvictionStrategy
from repro.core.llc_channel.protocol import ProtocolTuning

from repro.model.queueing import FS_PER_NS, latency_profile_ns

#: Mirrors :data:`repro.cpu.core.CPU_MEM_PARALLELISM` (imported lazily
#: there by the protocol for the same constant).
CPU_MEM_PARALLELISM = 8

#: BER points a single-set plan adds on the GPU side (no cross-set
#: majority to reject a noisy probe) and the CPU-side residual floors.
SINGLE_SET_GPU_BER = 3.5
SINGLE_SET_CPU_BER = 1.0
CPU_RECEIVER_FLOOR_BER = 0.1
#: Survival penalty scale: a pollute-round deficit of ``d`` rounds below
#: the pLRU eviction bound leaves roughly ``SURVIVAL_BER_SCALE * d/bound``
#: of primed 1-bits readable as hits.
SURVIVAL_BER_SCALE = 0.25

_STRATEGIES = {s.value: s for s in EvictionStrategy}


def _strategy(value: typing.Union[str, EvictionStrategy]) -> EvictionStrategy:
    if isinstance(value, EvictionStrategy):
        return value
    try:
        return _STRATEGIES[str(value)]
    except KeyError:
        raise ValueError(f"unknown eviction strategy: {value!r}") from None


def _direction(
    value: typing.Union[str, ChannelDirection],
) -> ChannelDirection:
    if isinstance(value, ChannelDirection):
        return value
    return ChannelDirection(str(value))


def pollute_geometry(
    config: SoCConfig, strategy: EvictionStrategy
) -> typing.Tuple[int, int]:
    """``(lines_per_location, rounds)`` of the strategy's pollute plan."""
    l3 = config.gpu_l3
    if strategy is EvictionStrategy.PRECISE_L3:
        return l3.ways, l3.plru_rounds_for_eviction
    if strategy is EvictionStrategy.LLC_ONLY:
        return 2 * l3.ways, l3.plru_rounds_for_eviction + 2
    return l3.total_sets * l3.ways, 2


class _CpuCosts:
    """Config-only mirror of ``CpuEndpoint``'s estimators (nanoseconds)."""

    def __init__(self, config: SoCConfig, n_sets: int) -> None:
        profile = latency_profile_ns(config)
        self.hit_ns = profile["cpu_llc_ns"]
        self.miss_ns = profile["cpu_dram_ns"]
        self.n_sets = n_sets
        self.n_lines = n_sets * config.llc.ways

    def prime_ns(self) -> float:
        batches = math.ceil(self.n_lines / CPU_MEM_PARALLELISM)
        return batches * 1.5 * self.miss_ns

    def probe_ns(self, all_miss: bool) -> float:
        return self.n_lines * (self.miss_ns if all_miss else self.hit_ns)

    def light_probe_ns(self, handshake_lines: int) -> float:
        return self.n_sets * handshake_lines * self.miss_ns


class _GpuCosts:
    """Config-only mirror of ``GpuEndpoint``'s estimators (nanoseconds)."""

    def __init__(
        self, config: SoCConfig, n_sets: int, strategy: EvictionStrategy
    ) -> None:
        profile = latency_profile_ns(config)
        issue_ns = config.gpu_clock.cycles_fs(config.gpu.issue_cycles) / FS_PER_NS
        self.serial_ns = max(issue_ns, profile["ring_hold_ns"])
        self.hit_base_ns = profile["gpu_llc_ns"]
        self.dram_extra_ns = profile["gpu_dram_ns"] - profile["gpu_llc_ns"]
        self.parallelism = config.gpu.mem_parallelism
        self.n_sets = n_sets
        self.prime_lines = config.llc.ways
        self.strategy = strategy
        self.pollute_lines, self.pollute_rounds = pollute_geometry(
            config, strategy
        )

    def batch_hit_ns(self, n_addrs: int) -> float:
        return self.hit_base_ns + (n_addrs - 1) * self.serial_ns

    def pollute_cost_ns(self) -> float:
        per_location = self.pollute_lines * self.pollute_rounds
        batches = math.ceil(per_location / self.parallelism)
        per_batch = self.batch_hit_ns(self.parallelism)
        if self.strategy is EvictionStrategy.FULL_L3_CLEAR:
            per_batch += 0.3 * self.dram_extra_ns
        return self.n_sets * batches * per_batch

    def prime_ns(self) -> float:
        target = self.n_sets * (
            self.batch_hit_ns(self.prime_lines) + 0.5 * self.dram_extra_ns
        )
        return self.pollute_cost_ns() + target

    def probe_ns(self, all_miss: bool) -> float:
        estimate = self.prime_ns()
        if not all_miss:
            estimate -= 0.5 * self.dram_extra_ns * self.n_sets
        return estimate

    def light_probe_ns(self, handshake_lines: int) -> float:
        probe = self.n_sets * (
            self.batch_hit_ns(handshake_lines) + self.dram_extra_ns
        )
        return self.pollute_cost_ns() + probe


def predict_llc_channel(
    config: typing.Optional[SoCConfig] = None,
    strategy: typing.Union[str, EvictionStrategy] = EvictionStrategy.PRECISE_L3,
    direction: typing.Union[str, ChannelDirection] = ChannelDirection.GPU_TO_CPU,
    n_sets_per_role: int = 2,
    tuning: typing.Optional[ProtocolTuning] = None,
) -> typing.Dict[str, float]:
    """Bandwidth (kb/s) and BER (%) of one prime+probe operating point."""
    if config is None:
        config = kaby_lake_model(scale=16)
    strategy = _strategy(strategy)
    direction = _direction(direction)
    tuning = tuning or ProtocolTuning()
    n_sets = int(n_sets_per_role)
    if n_sets < 1:
        raise ValueError("n_sets_per_role must be >= 1")

    gpu_sends = direction is ChannelDirection.GPU_TO_CPU
    sender: typing.Union[_CpuCosts, _GpuCosts]
    receiver: typing.Union[_CpuCosts, _GpuCosts]
    if gpu_sends:
        sender = _GpuCosts(config, n_sets, strategy)
        receiver = _CpuCosts(config, n_sets)
    else:
        sender = _CpuCosts(config, n_sets)
        receiver = _GpuCosts(config, n_sets, strategy)

    recv_gap_ns = tuning.receiver_poll_gap_fs / FS_PER_NS
    send_gap_ns = tuning.sender_poll_gap_fs / FS_PER_NS
    handshake = tuning.handshake_probe_lines
    # Every role has the same geometry, so the peer-prime settle auto
    # value (0.75x the largest peer prime) reduces to one prime cost.
    settle_ns = 0.75 * sender.prime_ns()
    poll_r_ns = receiver.light_probe_ns(handshake) + recv_gap_ns
    poll_s_ns = sender.light_probe_ns(handshake) + send_gap_ns

    handshake_ns = (
        sender.prime_ns()  # READY_SEND
        + poll_r_ns  # receiver detection lag
        + settle_ns + receiver.prime_ns()  # consume: settle + re-prime RS
        + receiver.prime_ns()  # READY_RECV
    )
    # The protocol's own derive_t_data_fs closed form.
    t_data_ns = 2 * poll_s_ns + sender.prime_ns() + 500.0
    window_one_ns = receiver.probe_ns(all_miss=True)
    window_zero_ns = (
        tuning.data_window_polls * receiver.probe_ns(all_miss=False)
        + (tuning.data_window_polls - 1) * recv_gap_ns
    )
    window_avg_ns = 0.5 * (window_one_ns + window_zero_ns)
    sender_tail_ns = (
        poll_s_ns + sender.prime_ns() + settle_ns + sender.prime_ns()
    )
    data_ns = max(t_data_ns + window_avg_ns, sender_tail_ns)
    t_bit_ns = handshake_ns + data_ns
    bandwidth_kbps = 1e6 / t_bit_ns

    # -- error terms ----------------------------------------------------
    glitch = config.slm.read_glitch_probability
    error = 0.0
    if gpu_sends:
        # CPU receiver: pointer-chase probes are deterministic; only the
        # single-set plan (no majority) picks up ambient flips.
        error = SINGLE_SET_CPU_BER if n_sets == 1 else CPU_RECEIVER_FLOOR_BER
    else:
        p_glitch = 1.0 - (1.0 - glitch) ** n_sets
        bound = config.gpu_l3.plru_rounds_for_eviction
        _, rounds = pollute_geometry(config, strategy)
        p_survive = 0.0
        if rounds < bound:
            p_survive = SURVIVAL_BER_SCALE * (bound - rounds) / bound
        error = 50.0 * (p_glitch + p_survive)
        if n_sets == 1:
            error += SINGLE_SET_GPU_BER
    return {
        "t_bit_ns": t_bit_ns,
        "handshake_ns": handshake_ns,
        "t_data_ns": t_data_ns,
        "window_avg_ns": window_avg_ns,
        "sender_tail_ns": sender_tail_ns,
        "settle_ns": settle_ns,
        "bandwidth_kbps": bandwidth_kbps,
        "error_percent": min(50.0, error),
    }
