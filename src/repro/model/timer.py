"""Timer-resolution/quantization model of the SLM counter (Fig. 4).

The GPU-resident timer is a shared-local-memory counter incremented by
``n`` spinning threads; a timed memory access reads the counter before
and after.  Two quantization effects set what the attacker can resolve:

* the counter advances at the SLM's saturating rate
  ``n / (n + half_rate_threads)`` increments per GPU cycle, so a latency
  of ``L`` nanoseconds spans ``(L / t_gpu + slm_access) * rate(n)``
  ticks (the two SLM reads bracket the access, adding one SLM round
  trip of quantization overhead);
* two latency levels are distinguishable only when their predicted tick
  medians sit at least :data:`SEPARATION_TICKS` apart — the same margin
  Algorithm 1's level classifier uses on the measured medians.
"""

from __future__ import annotations

import typing

from repro.config import SoCConfig, kaby_lake

from repro.model.queueing import FS_PER_NS, latency_profile_ns

#: Median tick margin Algorithm 1 requires between adjacent levels.
SEPARATION_TICKS = 2.0


def counter_rate(config: SoCConfig, counter_threads: int) -> float:
    """SLM increments per GPU cycle with ``n`` counter threads spinning."""
    slm = config.slm
    n = max(0, int(counter_threads))
    return slm.saturated_rate_per_cycle * n / (n + slm.half_rate_threads)


def ticks_for_latency_ns(
    config: SoCConfig, latency_ns: float, counter_threads: int
) -> float:
    """Expected tick delta a timed access of ``latency_ns`` reads."""
    gpu_cycle_ns = config.gpu_clock.cycle_fs / FS_PER_NS
    cycles = latency_ns / gpu_cycle_ns + config.slm.access_cycles
    return cycles * counter_rate(config, counter_threads)


def default_counter_threads(config: SoCConfig) -> int:
    """The characterization default: every thread minus one wavefront."""
    return config.gpu.max_threads_per_workgroup - config.gpu.wavefront_size


def predict_timer(
    config: typing.Optional[SoCConfig] = None,
    counter_threads: typing.Optional[int] = None,
) -> typing.Dict[str, float]:
    """Predicted tick medians per level plus the separation verdict.

    Matches ``characterize_timer``'s defaults: the full-scale machine
    and ``max_threads - wavefront`` counter threads.
    """
    if config is None:
        config = kaby_lake()
    if counter_threads is None:
        counter_threads = default_counter_threads(config)
    profile = latency_profile_ns(config)
    levels = {
        "l3_ticks": ticks_for_latency_ns(
            config, profile["gpu_l3_ns"], counter_threads
        ),
        "llc_ticks": ticks_for_latency_ns(
            config, profile["gpu_llc_ns"], counter_threads
        ),
        "memory_ticks": ticks_for_latency_ns(
            config, profile["gpu_dram_ns"], counter_threads
        ),
    }
    separated = (
        levels["l3_ticks"] + SEPARATION_TICKS <= levels["llc_ticks"]
        and levels["llc_ticks"] + SEPARATION_TICKS <= levels["memory_ticks"]
    )
    return {
        **levels,
        "counter_threads": float(counter_threads),
        "rate_per_cycle": counter_rate(config, counter_threads),
        "levels_separated": 1.0 if separated else 0.0,
    }
