"""Analytical calculator tier: closed-form channel predictions.

Where the DES *simulates* a covert-channel operating point in seconds,
this package *calculates* it in microseconds: a queueing approximation
of ring/DRAM contention (:mod:`repro.model.queueing`), a geometric
hit/miss model of the LLC / GPU-L3 prime-and-probe protocol
(:mod:`repro.model.hitmiss`), and a timer-resolution/quantization model
(:mod:`repro.model.timer`), composed behind one dispatch entry point
(:func:`predict_point`).  Predictions consume the same ``SoCConfig`` /
params objects the DES consumes and emit machine-readable reports
(:class:`ModelPrediction`), validated per figure against the committed
DES baselines (:mod:`repro.model.validate`).

The tier's production role is **pre-screening**
(:mod:`repro.model.prescreen`): ``analysis.sweep.run_sweep(predict=...)``
simulates only the predicted Pareto frontier (plus a margin band, audit
probes, and everything the model does not support) and carries the
model's answers for the rest, provenance-tagged ``source="model"``.

CLI: ``python -m repro.model --validate fig09`` / ``--all`` /
``--point FAMILY --params JSON``.
"""

from repro.model.predictor import FAMILIES, predict_point
from repro.model.prescreen import (
    PrescreenBudget,
    PrescreenPlan,
    pareto_frontier,
    plan_prescreen,
)
from repro.model.report import ModelPrediction
from repro.model.validate import (
    FIGURE_CEILINGS,
    FIGURES,
    validate_figure,
    validate_figures,
)

__all__ = [
    "FAMILIES",
    "FIGURE_CEILINGS",
    "FIGURES",
    "ModelPrediction",
    "PrescreenBudget",
    "PrescreenPlan",
    "pareto_frontier",
    "plan_prescreen",
    "predict_point",
    "validate_figure",
    "validate_figures",
]
