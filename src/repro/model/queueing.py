"""Queueing approximation of ring/DRAM contention latency.

The DES resolves every ring reservation FIFO by logical request time;
this module replaces that event-by-event resolution with closed forms
over the same :class:`~repro.config.SoCConfig` objects:

* **Uncontended path latencies** mirror the machine's own
  ``cpu_latency_profile``/``gpu_latency_profile`` precomputation, so the
  model and the simulator can never disagree about the quiet baseline.
* **GPU streaming passes** (Fig. 9's iteration factor, Fig. 10's slot
  sizing) are modeled as back-to-back batches of ``mem_parallelism``
  loads: an all-hit batch costs the issue pipeline plus one L3 hit; an
  all-miss batch is ring-bound — every line transfer of every workgroup
  serializes on the shared ring (the Eq. (3) contention term with the
  trojan as its own sole competitor) before the leading LLC round trip.
* **Replacement-policy survival** on the GPU L3 is a piecewise-linear
  miss fraction in the buffer/L3 capacity ratio: below 3/4 of capacity
  a streaming pass keeps hitting, past 5/4 it thrashes completely, and
  the transition is anchored at the committed Fig. 9 midpoint (a
  pseudo-LRU tree retains ~24% of a working set that exactly matches
  capacity).

All constants that are not read from config are module-level and
documented; ``validate`` re-checks them against the committed figures.
"""

from __future__ import annotations

import math
import typing

from repro.config import SoCConfig, scale_bytes

FS_PER_NS = 1e6

#: pLRU survival anchors for the streaming miss fraction m(r) where
#: ``r = buffer_bytes / L3 capacity``: hits until HIT_EDGE, full thrash
#: past THRASH_EDGE, and MISS_AT_CAPACITY at r=1.0 (anchored so the
#: committed Fig. 9 1 MB iteration factor lands within 1%).
PLRU_HIT_EDGE = 0.75
PLRU_THRASH_EDGE = 1.25
PLRU_MISS_AT_CAPACITY = 0.76

#: Fraction of the nominal slot rate the contention channel delivers
#: after framing (calibration preamble + slot phase alignment); the
#: committed Fig. 10 band is 373-380 kb/s against a 384.6 kb/s slot rate.
FRAMING_EFFICIENCY = 0.975

#: Fig. 10 BER heuristic terms (percentage points): a residual floor,
#: a capacity-ratio-scaled noise slope, a weak-trojan term for a single
#: workgroup (too little traffic per slot to clear the decode margin
#: when the buffer thrashes), and an inter-slot-interference term once
#: eight or more workgroups' serialized bursts bleed across slots.
CONTENTION_BER_FLOOR = 0.35
CONTENTION_BER_SLOPE = 2.1
WEAK_TROJAN_BER = 4.0
ISI_BER = 3.0


def latency_profile_ns(config: SoCConfig) -> typing.Dict[str, float]:
    """Uncontended per-level latencies, mirroring the machine's own."""
    cpu = config.cpu_clock.cycles_fs
    gpu = config.gpu_clock.cycles_fs
    line_slots = 1 + config.ring.slots_per_line(config.llc.line_bytes)
    hold_fs = cpu(line_slots * config.ring.slot_cycles)
    traverse_fs = cpu(config.ring.traverse_cycles)
    cpu_ring_fs = 2 * traverse_fs + hold_fs
    gpu_ring_fs = (
        2 * traverse_fs * config.ring.gpu_traverse_multiplier + hold_fs
    )
    dram_mean_ns = config.dram.base_ns + (
        (1.0 - config.dram.row_hit_probability) * config.dram.row_miss_extra_ns
    )
    cpu_llc_fs = (
        cpu(config.cpu_cache.l2_hit_cycles + config.llc.lookup_cycles)
        + cpu_ring_fs
    )
    gpu_l3_fs = gpu(config.gpu_l3.hit_cycles)
    gpu_llc_fs = gpu_l3_fs + gpu_ring_fs + cpu(config.llc.lookup_cycles)
    return {
        "ring_hold_ns": hold_fs / FS_PER_NS,
        "cpu_llc_ns": cpu_llc_fs / FS_PER_NS,
        "cpu_dram_ns": cpu_llc_fs / FS_PER_NS + dram_mean_ns,
        "gpu_l3_ns": gpu_l3_fs / FS_PER_NS,
        "gpu_llc_ns": gpu_llc_fs / FS_PER_NS,
        "gpu_dram_ns": gpu_llc_fs / FS_PER_NS + dram_mean_ns,
        "dram_mean_ns": dram_mean_ns,
    }


def gpu_l3_capacity_bytes(config: SoCConfig) -> int:
    l3 = config.gpu_l3
    return l3.total_sets * l3.ways * config.llc.line_bytes


def streaming_miss_fraction(capacity_ratio: float) -> float:
    """Steady-state L3 miss fraction of a streaming pass at ratio ``r``."""
    r = float(capacity_ratio)
    if r <= PLRU_HIT_EDGE:
        return 0.0
    if r >= PLRU_THRASH_EDGE:
        return 1.0
    if r <= 1.0:
        span = 1.0 - PLRU_HIT_EDGE
        return PLRU_MISS_AT_CAPACITY * (r - PLRU_HIT_EDGE) / span
    span = PLRU_THRASH_EDGE - 1.0
    return PLRU_MISS_AT_CAPACITY + (1.0 - PLRU_MISS_AT_CAPACITY) * (
        (r - 1.0) / span
    )


def gpu_pass_ns(
    config: SoCConfig,
    gpu_buffer_paper_bytes: int,
    n_workgroups: int = 2,
) -> typing.Dict[str, float]:
    """One workgroup's streaming pass over its stripe, in nanoseconds.

    The calibration trial times workgroup 0's stripe (``lines[0::n_wg]``)
    while the other workgroups stream theirs concurrently; hit batches
    pipeline on the GPU's issue port, miss batches serialize every
    workgroup's line transfers on the ring ahead of the leading LLC
    round trip.
    """
    profile = latency_profile_ns(config)
    scaled = scale_bytes(config, gpu_buffer_paper_bytes)
    lines = scaled // config.llc.line_bytes
    stripe = (lines + n_workgroups - 1) // n_workgroups
    parallelism = config.gpu.mem_parallelism
    batches = max(1, math.ceil(stripe / parallelism))
    issue_ns = config.gpu_clock.cycles_fs(config.gpu.issue_cycles) / FS_PER_NS
    hit_batch_ns = (parallelism - 1) * issue_ns + profile["gpu_l3_ns"]
    miss_batch_ns = (
        n_workgroups * parallelism * profile["ring_hold_ns"]
        + profile["gpu_llc_ns"]
    )
    ratio = scaled / gpu_l3_capacity_bytes(config)
    miss_fraction = streaming_miss_fraction(ratio)
    pass_ns = batches * (
        (1.0 - miss_fraction) * hit_batch_ns + miss_fraction * miss_batch_ns
    )
    return {
        "pass_ns": pass_ns,
        "batches": float(batches),
        "hit_batch_ns": hit_batch_ns,
        "miss_batch_ns": miss_batch_ns,
        "miss_fraction": miss_fraction,
        "capacity_ratio": ratio,
    }


def iteration_factor(
    config: SoCConfig,
    gpu_buffer_paper_bytes: int,
    n_workgroups: int = 2,
    slot_us: float = 2.6,
) -> typing.Dict[str, float]:
    """Fig. 9: how many trojan passes fit in one contention slot."""
    detail = gpu_pass_ns(config, gpu_buffer_paper_bytes, n_workgroups)
    detail["slot_us"] = slot_us
    detail["iteration_factor"] = slot_us * 1e3 / detail["pass_ns"]
    return detail


def contention_channel_point(
    config: SoCConfig,
    gpu_buffer_paper_bytes: int,
    n_workgroups: int,
    slot_us: float = 2.6,
) -> typing.Dict[str, float]:
    """Fig. 10: bandwidth and BER of one contention-channel point."""
    detail = gpu_pass_ns(config, gpu_buffer_paper_bytes, n_workgroups)
    ratio = detail["capacity_ratio"]
    miss = detail["miss_fraction"]
    error = CONTENTION_BER_FLOOR + CONTENTION_BER_SLOPE * miss
    if n_workgroups <= 1:
        error += WEAK_TROJAN_BER * ratio * ratio
    if n_workgroups >= 8:
        error += ISI_BER * (n_workgroups / 8.0) * ratio * ratio
    detail["slot_us"] = slot_us
    detail["bandwidth_kbps"] = (1e3 / slot_us) * FRAMING_EFFICIENCY
    detail["error_percent"] = min(50.0, error)
    return detail
