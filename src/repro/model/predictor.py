"""Family dispatch: one entry point from (family, params) to a prediction.

Families mirror the DES trial families one-to-one:

``timer``
    Fig. 4 SLM counter resolution (:mod:`repro.model.timer`).
``llc_channel``
    Figs. 7-8 handshaked prime+probe (:mod:`repro.model.hitmiss`).
``iteration_factor``
    Fig. 9 trojan pass count per slot (:mod:`repro.model.queueing`).
``contention_channel``
    Fig. 10 full contention channel (:mod:`repro.model.queueing`).
``contention_trial``
    The ``analysis.contention_sweep`` trial family — the pre-screening
    workhorse.  Its closed form is calibrated against the DES on the
    default probe schedule: a trojan burst occupies the ring for
    ``accesses * BURST_PACE_NS``; the spy detects a slot's bit iff that
    occupancy reaches past the first probe offset; and once the burst's
    *recovery* footprint ``accesses * DECAY_NS_PER_ACCESS`` exceeds the
    slot, the spy's probe schedule slips and neighboring 1-bits
    contaminate 0-slots — an error that rises linearly in the ratio
    ``rho = footprint / slot`` (:func:`contamination_error_percent`)
    until it saturates near 45%.

Every family returns a :class:`~repro.model.report.ModelPrediction`;
points outside a family's calibrated envelope come back with
``supported=False`` so pre-screening never trusts them.
"""

from __future__ import annotations

import typing

from repro.config import SoCConfig, kaby_lake, kaby_lake_model
from repro.errors import AttackError

from repro.model import hitmiss, queueing, timer
from repro.model.report import ModelPrediction

#: Ring occupancy one trojan burst access adds (ns) — four ring slot
#: pairs at the scale-8 contention clock; calibrated so detection
#: (occupancy > first probe offset) flips between 12 and 24 accesses,
#: where the DES flips.
BURST_PACE_NS = 5.714
#: Slot time one burst access "uses up" before the spy's probe schedule
#: fully recovers (ns); the DES contamination knee sits at
#: ``slot ~= 22.9 * accesses`` across 2-16 workgroups.
DECAY_NS_PER_ACCESS = 22.9
#: Piecewise-linear contamination curve anchors (rho, error %).
CONTAMINATION_ONSET_RHO = 0.85
CONTAMINATION_KNEE_RHO = 1.1
CONTAMINATION_KNEE_ERR = 27.0
CONTAMINATION_SLOPE = 23.0
CONTAMINATION_SATURATION_ERR = 45.0

FAMILIES = (
    "timer",
    "llc_channel",
    "iteration_factor",
    "contention_channel",
    "contention_trial",
)

Params = typing.Mapping[str, object]


def contamination_error_percent(rho: float) -> float:
    """Slot-slip contamination error (%) at footprint/slot ratio ``rho``."""
    if rho <= CONTAMINATION_ONSET_RHO:
        return 0.0
    if rho <= CONTAMINATION_KNEE_RHO:
        span = CONTAMINATION_KNEE_RHO - CONTAMINATION_ONSET_RHO
        return CONTAMINATION_KNEE_ERR * (rho - CONTAMINATION_ONSET_RHO) / span
    err = CONTAMINATION_KNEE_ERR + CONTAMINATION_SLOPE * (
        rho - CONTAMINATION_KNEE_RHO
    )
    return min(CONTAMINATION_SATURATION_ERR, err)


def _predict_timer(
    params: Params, config: typing.Optional[SoCConfig]
) -> ModelPrediction:
    config = config or kaby_lake()
    threads = params.get("counter_threads")
    detail = timer.predict_timer(
        config, None if threads is None else int(typing.cast(int, threads))
    )
    # The timer is an instrument, not a channel: bandwidth is zero and
    # "error" is whether the three latency levels resolve.
    return ModelPrediction(
        family="timer",
        bandwidth_kbps=0.0,
        error_percent=0.0 if detail["levels_separated"] else 50.0,
        breakdown=detail,
    )


def _predict_llc_channel(
    params: Params, config: typing.Optional[SoCConfig]
) -> ModelPrediction:
    config = config or kaby_lake_model(scale=16)
    detail = hitmiss.predict_llc_channel(
        config,
        strategy=typing.cast(str, params.get("strategy", "precise-l3")),
        direction=typing.cast(str, params.get("direction", "gpu-to-cpu")),
        n_sets_per_role=int(typing.cast(int, params.get("n_sets_per_role", 2))),
    )
    return ModelPrediction(
        family="llc_channel",
        bandwidth_kbps=detail.pop("bandwidth_kbps"),
        error_percent=detail.pop("error_percent"),
        breakdown=detail,
    )


def _predict_iteration_factor(
    params: Params, config: typing.Optional[SoCConfig]
) -> ModelPrediction:
    config = config or kaby_lake_model(scale=16)
    detail = queueing.iteration_factor(
        config,
        int(typing.cast(int, params["gpu_buffer_bytes"])),
        n_workgroups=int(typing.cast(int, params.get("n_workgroups", 2))),
        slot_us=float(typing.cast(float, params.get("slot_us", 2.6))),
    )
    return ModelPrediction(
        family="iteration_factor",
        bandwidth_kbps=0.0,
        error_percent=0.0,
        breakdown=detail,
    )


def _predict_contention_channel(
    params: Params, config: typing.Optional[SoCConfig]
) -> ModelPrediction:
    config = config or kaby_lake_model(scale=16)
    detail = queueing.contention_channel_point(
        config,
        int(typing.cast(int, params["gpu_buffer_bytes"])),
        n_workgroups=int(typing.cast(int, params.get("n_workgroups", 2))),
        slot_us=float(typing.cast(float, params.get("slot_us", 2.6))),
    )
    return ModelPrediction(
        family="contention_channel",
        bandwidth_kbps=detail.pop("bandwidth_kbps"),
        error_percent=detail.pop("error_percent"),
        breakdown=detail,
    )


def _predict_contention_trial(
    params: Params, config: typing.Optional[SoCConfig]
) -> ModelPrediction:
    from repro.analysis.contention_sweep import DEFAULTS, merged_params

    p = merged_params(dict(params))
    slot_ns = float(typing.cast(float, p["slot_ns"]))
    offset_ns = float(typing.cast(float, p["probe_offset_ns"]))
    accesses = (
        int(typing.cast(int, p["n_workgroups"]))
        * int(typing.cast(int, p["trojan_sets"]))
        * int(typing.cast(int, p["trojan_lines_per_set"]))
    )
    occupancy_ns = accesses * BURST_PACE_NS
    footprint_ns = accesses * DECAY_NS_PER_ACCESS
    rho = footprint_ns / slot_ns
    detected = occupancy_ns > offset_ns
    error = contamination_error_percent(rho) if detected else 50.0
    # Calibrated envelope: the GPU trojan on the default probe schedule,
    # no fault injection, no mid-trial divergence, detectable bursts.
    supported = (
        detected
        and p["trojan"] == "gpu"
        and float(typing.cast(float, p["fault_intensity"])) == 0.0
        and float(typing.cast(float, p["dram_jitter_ns"])) == 0.0
        and p["divergence_slot"] is None
        and p["probe_offset_ns"] == DEFAULTS["probe_offset_ns"]
        and p["probe_gap_ns"] == DEFAULTS["probe_gap_ns"]
        and p["probes_per_slot"] == DEFAULTS["probes_per_slot"]
        and p["spy_lines"] == DEFAULTS["spy_lines"]
    )
    return ModelPrediction(
        family="contention_trial",
        bandwidth_kbps=1e6 / slot_ns,  # one bit per slot
        error_percent=error,
        breakdown={
            "slot_ns": slot_ns,
            "burst_accesses": float(accesses),
            "occupancy_ns": occupancy_ns,
            "footprint_ns": footprint_ns,
            "rho": rho,
            "detected": 1.0 if detected else 0.0,
        },
        supported=supported,
    )


_DISPATCH: typing.Dict[str, typing.Callable[..., ModelPrediction]] = {
    "timer": _predict_timer,
    "llc_channel": _predict_llc_channel,
    "iteration_factor": _predict_iteration_factor,
    "contention_channel": _predict_contention_channel,
    "contention_trial": _predict_contention_trial,
}


def predict_point(
    family: str,
    params: typing.Optional[Params] = None,
    config: typing.Optional[SoCConfig] = None,
) -> ModelPrediction:
    """Closed-form prediction for one operating point of ``family``."""
    try:
        fn = _DISPATCH[family]
    except KeyError:
        raise AttackError(
            f"unknown model family {family!r}; expected one of {FAMILIES}"
        ) from None
    return fn(params or {}, config)
