"""CLI for the analytical tier: config in, JSON report out.

Two modes:

* ``--point FAMILY [--params JSON]`` — predict one operating point and
  print its report.
* ``--validate FIGURE`` (repeatable) or ``--all`` — compare predictions
  against the committed DES figure baselines and print the per-figure
  prediction-error report; exits non-zero when any figure exceeds its
  ceiling.

``--json PATH`` additionally writes the report to a file (the CI leg
uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import typing

from repro.errors import AttackError
from repro.model import FIGURES, predict_point, validate_figures


def _parse_params(raw: typing.Optional[str]) -> typing.Dict[str, object]:
    if not raw:
        return {}
    try:
        params = json.loads(raw)
    except ValueError as exc:
        raise AttackError(f"--params is not valid JSON: {exc}") from exc
    if not isinstance(params, dict):
        raise AttackError("--params must be a JSON object")
    return params


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.model", description=__doc__.splitlines()[0]
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--point",
        metavar="FAMILY",
        help="predict one operating point of the given model family",
    )
    mode.add_argument(
        "--validate",
        metavar="FIGURE",
        action="append",
        choices=FIGURES,
        help="validate predictions against a committed figure baseline "
        "(repeatable)",
    )
    mode.add_argument(
        "--all",
        action="store_true",
        help="validate against every supported figure baseline",
    )
    parser.add_argument(
        "--params",
        metavar="JSON",
        help="JSON object of family parameters for --point",
    )
    parser.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory holding BENCH_*.json baselines (falls back to "
        "git HEAD when absent)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        dest="json_path",
        help="also write the report to this file",
    )
    args = parser.parse_args(argv)

    try:
        if args.point:
            started = time.perf_counter()
            prediction = predict_point(args.point, _parse_params(args.params))
            report: typing.Dict[str, object] = prediction.as_dict()
            report["prediction_us"] = round(
                1e6 * (time.perf_counter() - started), 2
            )
            ok = True
        else:
            figures = tuple(args.validate) if args.validate else FIGURES
            report = validate_figures(figures, args.results_dir)
            ok = bool(report["pass"])
    except AttackError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.json_path:
        path = pathlib.Path(args.json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
