"""Machine-readable prediction reports emitted by the analytical tier.

Every sub-model funnels into one :class:`ModelPrediction`: the predicted
raw bandwidth, bit error rate, the BSC goodput implied by the two (via
:mod:`repro.analysis.capacity`), and a per-component breakdown of where
the prediction came from.  The shape deliberately mirrors the channel
health dicts the DES benches commit (``bandwidth_kbps`` /
``error_percent``), so a prediction can sit next to a measurement in a
``BENCH_*.json`` channels block, a sweep row, or a ledger record without
translation.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class ModelPrediction:
    """One operating point's closed-form prediction.

    ``bandwidth_kbps``/``error_percent`` use the exact units the DES
    figures report; ``breakdown`` holds the sub-model's intermediate
    terms (latencies, hit/miss fractions, flip probabilities) so a
    surprising prediction can be audited without re-deriving it.
    """

    family: str
    bandwidth_kbps: float
    error_percent: float
    #: Sub-model intermediates, all JSON-able scalars.
    breakdown: typing.Dict[str, float] = dataclasses.field(default_factory=dict)
    #: False when the point's params fall outside the model's validity
    #: envelope; the prediction is then a best-effort extrapolation and
    #: pre-screening must not skip the point on its strength.
    supported: bool = True

    @property
    def error_rate(self) -> float:
        return self.error_percent / 100.0

    @property
    def goodput_kbps(self) -> float:
        """BSC-capacity-weighted information rate (kb/s)."""
        from repro.analysis.capacity import bsc_capacity

        rate = min(max(self.error_rate, 0.0), 1.0)
        return self.bandwidth_kbps * bsc_capacity(rate)

    def as_dict(self) -> typing.Dict[str, object]:
        """JSON shape: prediction next to measured channel health."""
        return {
            "family": self.family,
            "predicted_bandwidth_kbps": round(self.bandwidth_kbps, 4),
            "predicted_error_percent": round(self.error_percent, 4),
            "predicted_goodput_kbps": round(self.goodput_kbps, 4),
            "supported": self.supported,
            "breakdown": {
                key: round(float(value), 6)
                for key, value in self.breakdown.items()
            },
        }

    def as_aggregate(self) -> "typing.Any":
        """An :class:`~repro.analysis.metrics.AggregateResult` view.

        ``n_runs=0`` is the provenance marker: a zero-run aggregate can
        only have come from the model tier, never from the DES.
        """
        from repro.analysis.metrics import AggregateResult

        return AggregateResult(
            n_runs=0,
            bandwidth_kbps=self.bandwidth_kbps,
            bandwidth_ci=0.0,
            error_percent=self.error_percent,
            error_ci=0.0,
        )
