"""Model-guided sweep budgets: which grid points earn DES time.

The planner takes one closed-form prediction per grid point and keeps
the DES for the interesting ones:

* every point whose prediction is missing or ``supported=False``
  (outside the model's calibrated envelope — the model must never veto
  what it cannot explain);
* the predicted Pareto frontier over (bandwidth up, error down);
* near-frontier points: anything whose prediction, boosted by the
  budget's margins, would itself be non-dominated — the model's error
  bars expressed as a keep-zone around the frontier.  Both frontier and
  margin selection collapse points with *identical* predicted values to
  one representative (identical predictions cannot order each other);
* a seeded random sample of the remainder, so a systematically wrong
  model still gets audited by fresh DES evidence every sweep.

Everything else is skipped and carries its prediction (tagged
``source="model"``) into the sweep result.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.model.report import ModelPrediction

#: Why a point was selected for (or exempted from) simulation.
FRONTIER = "frontier"
MARGIN = "margin"
PROBE = "probe"
UNSUPPORTED = "unsupported"
SKIPPED = "model"


@dataclasses.dataclass(frozen=True)
class PrescreenBudget:
    """How far from the predicted frontier DES time may be spent."""

    #: Fractional bandwidth slack: a point within this much of a
    #: frontier point's bandwidth (at no worse predicted error) stays.
    bandwidth_margin: float = 0.10
    #: Absolute error slack in percentage points (clamped at zero so an
    #: error-free frontier cannot be undercut into negative territory).
    error_margin_points: float = 2.0
    #: Seeded random audit probes drawn from the skipped remainder.
    random_probes: int = 2
    probe_seed: int = 0


@dataclasses.dataclass
class PrescreenPlan:
    """Per-point verdicts; ``simulate[i]`` gates point ``i``'s DES run."""

    simulate: typing.List[bool]
    #: Per-point reason tag (:data:`FRONTIER` .. :data:`SKIPPED`).
    reasons: typing.List[str]
    predictions: typing.List[typing.Optional[ModelPrediction]]

    @property
    def n_simulated(self) -> int:
        return sum(self.simulate)

    @property
    def n_skipped(self) -> int:
        return len(self.simulate) - self.n_simulated


def _dominates(
    a: typing.Tuple[float, float], b: typing.Tuple[float, float]
) -> bool:
    """True when value pair ``a`` (bw, err) Pareto-dominates ``b``."""
    return a[0] >= b[0] and a[1] <= b[1] and (a[0] > b[0] or a[1] < b[1])


def pareto_frontier(
    values: typing.Sequence[typing.Tuple[float, float]],
) -> typing.List[typing.Tuple[float, float]]:
    """Non-dominated (bandwidth, error) value pairs, deduplicated."""
    unique = sorted(set(values))
    return [
        v for v in unique if not any(_dominates(o, v) for o in unique if o != v)
    ]


def plan_prescreen(
    predictions: typing.Sequence[typing.Optional[ModelPrediction]],
    budget: typing.Optional[PrescreenBudget] = None,
) -> PrescreenPlan:
    """Decide per point whether the DES runs or the prediction stands."""
    budget = budget or PrescreenBudget()
    n = len(predictions)
    simulate = [False] * n
    reasons = [SKIPPED] * n

    values: typing.List[typing.Optional[typing.Tuple[float, float]]] = []
    for i, pred in enumerate(predictions):
        if pred is None or not pred.supported:
            simulate[i] = True
            reasons[i] = UNSUPPORTED
            values.append(None)
        else:
            values.append(
                (round(pred.bandwidth_kbps, 6), round(pred.error_percent, 6))
            )

    frontier = pareto_frontier([v for v in values if v is not None])
    frontier_set = set(frontier)
    claimed: typing.Set[typing.Tuple[float, float]] = set()
    for i, value in enumerate(values):
        if value is None:
            continue
        if value in frontier_set:
            if value in claimed:
                continue  # identical prediction: one representative runs
            claimed.add(value)
            simulate[i] = True
            reasons[i] = FRONTIER
            continue
        if value in claimed:
            continue  # identical near-frontier prediction: one rep runs
        boosted = (
            value[0] * (1.0 + budget.bandwidth_margin),
            max(0.0, value[1] - budget.error_margin_points),
        )
        if not any(_dominates(f, boosted) for f in frontier):
            claimed.add(value)
            simulate[i] = True
            reasons[i] = MARGIN

    remainder = [i for i in range(n) if not simulate[i]]
    rng = random.Random(budget.probe_seed)
    for i in rng.sample(remainder, min(budget.random_probes, len(remainder))):
        simulate[i] = True
        reasons[i] = PROBE
    return PrescreenPlan(
        simulate=simulate, reasons=reasons, predictions=list(predictions)
    )
