"""Validate the analytical tier against the committed DES figures.

For each supported figure this module re-derives every committed channel
point from config alone, compares prediction to measurement, and emits a
machine-readable error report (committed as
``benchmarks/results/BENCH_model_validation.json`` next to the figure
baselines).  Bandwidth errors are relative; BER errors are absolute
percentage points (several figure channels measure 0.00% BER, where a
relative error is undefined).

Per-figure ceilings are part of the report, so downstream enforcement
(``check_bench_regression.py``, the CI model-validation leg) needs no
second copy of the envelope.  The ceilings encode the tier's *calibrated
accuracy with headroom* — tight where the closed forms are exact (Fig. 9
streaming passes: 10%), loose where the DES resolves genuinely emergent
behavior the model only bounds (the single-set and whole-L3-clear
protocol points of Figs. 7-8, whose measured bandwidths also carry the
widest confidence intervals).
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.errors import AttackError
from repro.obs.drift import channels_of, committed_bench_doc

from repro.model.predictor import predict_point

#: figure name -> enforcement ceilings (also embedded in the report).
FIGURE_CEILINGS: typing.Dict[str, typing.Dict[str, float]] = {
    "fig04": {"metric_rel": 0.15},
    "fig07": {"bandwidth_rel": 0.50, "ber_abs_points": 10.0},
    "fig08": {"bandwidth_rel": 0.55, "ber_abs_points": 10.0},
    "fig09": {"metric_rel": 0.10},
    "fig10": {"bandwidth_rel": 0.20, "ber_abs_points": 15.0},
}

FIGURES = tuple(sorted(FIGURE_CEILINGS))


def _load_baseline(
    figure: str,
    results_dir: typing.Union[str, pathlib.Path, None],
) -> typing.Optional[typing.Dict[str, typing.Mapping[str, object]]]:
    """Per-channel baseline: working-tree artifact first, then git."""
    if results_dir is not None:
        path = pathlib.Path(results_dir) / f"BENCH_{figure}.json"
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            doc = None
        channels = channels_of(doc)
        if channels:
            return channels
    return channels_of(committed_bench_doc(figure))


def _predict_for(figure: str, channel: str) -> typing.Dict[str, object]:
    """Map one committed channel key back to model-family params."""
    if figure == "fig04":
        n = int(channel.replace("timer", ""))
        return {"family": "timer", "params": {"counter_threads": n}}
    if figure == "fig07":
        strategy, direction = channel.split(":")
        return {
            "family": "llc_channel",
            "params": {
                "strategy": strategy,
                "direction": direction,
                "n_sets_per_role": 2,
            },
        }
    if figure == "fig08":
        sets, direction = channel.split(":")
        return {
            "family": "llc_channel",
            "params": {
                "strategy": "precise-l3",
                "direction": direction,
                "n_sets_per_role": int(sets.replace("sets", "")),
            },
        }
    if figure == "fig09":
        kib = int(channel.replace("gpu", "").replace("KB", ""))
        return {
            "family": "iteration_factor",
            "params": {"gpu_buffer_bytes": kib * 1024},
        }
    if figure == "fig10":
        wg, buf = channel.split(":")
        mib = int(buf.replace("gpu", "").replace("MB", ""))
        return {
            "family": "contention_channel",
            "params": {
                "gpu_buffer_bytes": mib * 1024 * 1024,
                "n_workgroups": int(wg.replace("wg", "")),
            },
        }
    raise AttackError(f"no model mapping for figure {figure!r}")


def _metric_row(
    figure: str,
    measured: typing.Mapping[str, object],
    prediction: typing.Mapping[str, object],
    ceiling: float,
) -> typing.Dict[str, object]:
    """Scalar-metric figures (fig04 ticks, fig09 iteration factor)."""
    breakdown = typing.cast(
        typing.Mapping[str, float], prediction.get("breakdown", {})
    )
    if figure == "fig04":
        meas = float(typing.cast(float, measured["memory_mean_ticks"]))
        pred = float(breakdown["memory_ticks"])
        row: typing.Dict[str, object] = {
            "measured_memory_mean_ticks": meas,
            "predicted_memory_mean_ticks": round(pred, 4),
            "measured_levels_separated": measured.get("levels_separated"),
            "predicted_levels_separated": breakdown.get("levels_separated"),
        }
        separation_ok = bool(measured.get("levels_separated")) == bool(
            breakdown.get("levels_separated")
        )
    else:
        meas = float(typing.cast(float, measured["iteration_factor"]))
        pred = float(breakdown["iteration_factor"])
        row = {
            "measured_iteration_factor": meas,
            "predicted_iteration_factor": round(pred, 4),
        }
        separation_ok = True
    rel = abs(pred - meas) / meas if meas else 0.0
    row["rel_error"] = round(rel, 4)
    row["pass"] = bool(rel <= ceiling and separation_ok)
    return row


def _channel_row(
    measured: typing.Mapping[str, object],
    prediction: typing.Mapping[str, object],
    ceilings: typing.Mapping[str, float],
) -> typing.Dict[str, object]:
    """Bandwidth/BER figures (fig07, fig08, fig10)."""
    bw = float(typing.cast(float, measured["bandwidth_kbps"]))
    ber = float(typing.cast(float, measured["error_percent"]))
    bw_pred = float(typing.cast(float, prediction["predicted_bandwidth_kbps"]))
    ber_pred = float(typing.cast(float, prediction["predicted_error_percent"]))
    bw_rel = abs(bw_pred - bw) / bw if bw else 0.0
    ber_abs = abs(ber_pred - ber)
    return {
        "measured_bandwidth_kbps": bw,
        "predicted_bandwidth_kbps": bw_pred,
        "bandwidth_rel_error": round(bw_rel, 4),
        "measured_error_percent": ber,
        "predicted_error_percent": ber_pred,
        "ber_abs_error_points": round(ber_abs, 4),
        "pass": bool(
            bw_rel <= ceilings["bandwidth_rel"]
            and ber_abs <= ceilings["ber_abs_points"]
        ),
    }


def validate_figure(
    figure: str,
    results_dir: typing.Union[str, pathlib.Path, None] = "benchmarks/results",
) -> typing.Dict[str, object]:
    """Prediction-error report for one figure's committed channels."""
    if figure not in FIGURE_CEILINGS:
        raise AttackError(
            f"unknown figure {figure!r}; expected one of {FIGURES}"
        )
    baseline = _load_baseline(figure, results_dir)
    if not baseline:
        raise AttackError(
            f"no committed baseline found for {figure!r} "
            f"(missing BENCH_{figure}.json in {results_dir} and git HEAD)"
        )
    ceilings = FIGURE_CEILINGS[figure]
    channels: typing.Dict[str, object] = {}
    family = ""
    for name in sorted(baseline):
        mapping = _predict_for(figure, name)
        family = typing.cast(str, mapping["family"])
        prediction = predict_point(
            family, typing.cast(typing.Dict[str, object], mapping["params"])
        ).as_dict()
        measured = baseline[name]
        if "metric_rel" in ceilings:
            channels[name] = _metric_row(
                figure, measured, prediction, ceilings["metric_rel"]
            )
        else:
            channels[name] = _channel_row(measured, prediction, ceilings)
    rows = [typing.cast(typing.Dict[str, object], r) for r in channels.values()]
    report: typing.Dict[str, object] = {
        "family": family,
        "ceilings": dict(ceilings),
        "channels": channels,
        "pass": all(bool(r["pass"]) for r in rows),
    }
    if "metric_rel" in ceilings:
        report["max_rel_error"] = max(
            float(typing.cast(float, r["rel_error"])) for r in rows
        )
    else:
        report["max_bandwidth_rel_error"] = max(
            float(typing.cast(float, r["bandwidth_rel_error"])) for r in rows
        )
        report["max_ber_abs_error_points"] = max(
            float(typing.cast(float, r["ber_abs_error_points"])) for r in rows
        )
    return report


def validate_figures(
    figures: typing.Sequence[str] = FIGURES,
    results_dir: typing.Union[str, pathlib.Path, None] = "benchmarks/results",
) -> typing.Dict[str, object]:
    """The full prediction-error document (``BENCH_model_validation``)."""
    per_figure = {
        figure: validate_figure(figure, results_dir) for figure in figures
    }
    return {
        "name": "model_validation",
        "figures": per_figure,
        "pass": all(
            bool(typing.cast(dict, report)["pass"])
            for report in per_figure.values()
        ),
    }
