"""Global switch for the simulator's coalesced fast paths.

Layer 1 of the fast path — integer-delay yields in
:class:`~repro.sim.process.Process` — is *unconditionally* equivalent to
yielding a :class:`~repro.sim.events.Timeout` (same resume time, same
tie-breaking sequence number) and is therefore always on.  Layers 2 and 3
— coalesced access paths, the ring reservation ledger and the burst APIs
— change how many engine events a simulated access costs, so they sit
behind this switch: the equivalence suite (``tests/test_fastpath.py``)
runs every scenario with the switch forced on and off and pins the
outcomes to each other.

The flag is sampled **once, at construction time**, by every component
that owns a fast path (:class:`~repro.soc.machine.SoC`,
:class:`~repro.soc.ring.Ring`), so one machine is consistently fast or
consistently slow for its whole lifetime; flipping the switch mid-run
only affects machines built afterwards.  Default is on; set
``REPRO_FASTPATH=0`` in the environment to build slow-path machines.
"""

from __future__ import annotations

import contextlib
import os
import typing

_ENABLED = os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)


def enabled() -> bool:
    """Whether machines built now use the coalesced fast paths."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Set the construction-time default for new machines."""
    global _ENABLED
    _ENABLED = bool(flag)


@contextlib.contextmanager
def forced(flag: bool) -> typing.Iterator[None]:
    """Temporarily force the flag (the equivalence suite's lever)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        _ENABLED = previous
