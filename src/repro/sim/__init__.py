"""Minimal deterministic discrete-event simulation (DES) kernel.

The covert channels in this reproduction are *emergent* behaviours: a Trojan
and a Spy agent run as independent coroutines that interact only through the
shared microarchitectural state (caches, ring bus).  This package provides
the scheduling substrate for that: an integer-femtosecond event queue,
generator-based processes, composable events, and FIFO resources used to
model time-multiplexed hardware (the ring bus, LLC ports).

Time is kept as an integer number of femtoseconds so that two clock domains
with a non-integer frequency ratio (4.2 GHz CPU vs 1.1 GHz GPU) can coexist
without floating-point drift.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import FifoResource, TokenBucket
from repro.sim.rng import RngStreams
from repro.sim.stats import OnlineStats, confidence_interval_95

FS_PER_PS = 1_000
FS_PER_NS = 1_000_000
FS_PER_US = 1_000_000_000
FS_PER_MS = 1_000_000_000_000
FS_PER_S = 1_000_000_000_000_000


def fs_to_seconds(fs: int) -> float:
    """Convert an integer femtosecond timestamp to seconds."""
    return fs / FS_PER_S


def fs_to_ns(fs: int) -> float:
    """Convert an integer femtosecond timestamp to nanoseconds."""
    return fs / FS_PER_NS


def seconds_to_fs(seconds: float) -> int:
    """Convert seconds to the integer femtosecond unit used by the engine."""
    return round(seconds * FS_PER_S)


__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "FifoResource",
    "FS_PER_MS",
    "FS_PER_NS",
    "FS_PER_PS",
    "FS_PER_S",
    "FS_PER_US",
    "OnlineStats",
    "Process",
    "RngStreams",
    "Timeout",
    "TokenBucket",
    "confidence_interval_95",
    "fs_to_ns",
    "fs_to_seconds",
    "seconds_to_fs",
]
