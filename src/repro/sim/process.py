"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Yielding suspends the process until the event triggers, at which
point the event's value is sent back into the generator.  Sub-operations
compose with ``yield from`` (e.g. a CPU load is a generator that acquires
the ring, waits a cache latency, and *returns* the measured latency).

A :class:`Process` is itself an event that triggers with the generator's
return value, so processes can wait on each other and :class:`AllOf` can
act as a barrier across a batch of parallel memory requests.

The advance/wake cycle is the hottest control path in the simulator: every
yield costs one ``_advance`` plus one ``_on_event``.  Both are plain bound
methods (no closures allocated per yield) and the generator's ``send`` is
cached at spawn time.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event

if typing.TYPE_CHECKING:
    from repro.sim.engine import Engine


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Drives a generator, suspending on the events it yields."""

    __slots__ = ("_generator", "_send", "_waiting_on", "_alive")

    def __init__(self, engine: "Engine", generator: typing.Generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.engine = engine
        self._value = _PENDING
        self._callbacks = []
        self._generator = generator
        self._send = generator.send
        self._waiting_on: typing.Optional[Event] = None
        self._alive = True
        # Start on the next scheduling round so the caller can subscribe
        # before the first step runs.
        engine.schedule(0, self._start)

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            return
        self._waiting_on = None
        exc = Interrupt(cause)
        self.engine.schedule(0, lambda: self._advance(None, exc))

    def _start(self) -> None:
        self._advance(None, None)

    def _advance(self, value: object, exc: typing.Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as a clean
            # termination with no value.
            self._alive = False
            self.succeed(None)
            return
        if not isinstance(yielded, Event):
            raise SimulationError(
                f"process yielded {type(yielded).__name__}; processes must "
                "yield Event objects (Timeout, Process, AllOf, ...)"
            )
        self._waiting_on = yielded
        yielded.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup after an interrupt
        self._waiting_on = None
        self._advance(event._value, None)
