"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects **or plain non-negative integers**.  Yielding an event suspends the
process until the event triggers, at which point the event's value is sent
back into the generator.  Yielding an ``int`` is a pure timed wait: the
process's bound resume callback is scheduled directly on the engine,
skipping the ``Timeout``/``Event`` allocation, the callback list and the
subscribe step — the resume lands at exactly the time, and with exactly
the tie-breaking sequence number, the equivalent ``Timeout`` yield would
have produced.  Sub-operations compose with ``yield from`` (e.g. a CPU
load is a generator that acquires the ring, waits a cache latency, and
*returns* the measured latency).

A :class:`Process` is itself an event that triggers with the generator's
return value, so processes can wait on each other and :class:`AllOf` can
act as a barrier across a batch of parallel memory requests.

The advance/wake cycle is the hottest control path in the simulator: every
yield costs one ``_advance`` plus one ``_on_event`` (or ``_on_timed``).
All of them are plain bound methods — the module's contract is that **no
closures are allocated per yield or per interrupt** — and the generator's
``send`` is cached at spawn time.
"""

from __future__ import annotations

import typing
from heapq import heappush as _heappush

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event

if typing.TYPE_CHECKING:
    from repro.sim.engine import Engine

#: Sentinel stored in ``_waiting_on`` while a process sits in an
#: integer-delay timed wait (there is no event object to point at).
_TIMED = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Drives a generator, suspending on the events (or delays) it yields."""

    __slots__ = (
        "_generator",
        "_send",
        "_waiting_on",
        "_alive",
        "_resume_at",
        "_stale_times",
        "_interrupts",
    )

    def __init__(self, engine: "Engine", generator: typing.Generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.engine = engine
        self._value = _PENDING
        self._callbacks = []
        self._generator = generator
        self._send = generator.send
        self._waiting_on: typing.Optional[object] = None
        self._alive = True
        self._resume_at = 0
        # Lazily allocated: only processes that are interrupted mid-wait
        # ever pay for these.
        self._stale_times: typing.Optional[typing.List[int]] = None
        self._interrupts: typing.Optional[typing.List[Interrupt]] = None
        # Start on the next scheduling round so the caller can subscribe
        # before the first step runs.
        engine.schedule(0, self._start)

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Delivery goes through the prebound :meth:`_deliver_interrupt` —
        no closure is allocated per interrupt.  Multiple interrupts queue
        FIFO, one delivery per scheduled callback, matching the old
        one-closure-per-interrupt semantics exactly.
        """
        if not self._alive:
            return
        if self._waiting_on is _TIMED:
            # The already-scheduled timed resume must become a no-op; its
            # callback is identified by the time it will fire at.
            if self._stale_times is None:
                self._stale_times = []
            self._stale_times.append(self._resume_at)
        self._waiting_on = None
        if self._interrupts is None:
            self._interrupts = []
        self._interrupts.append(Interrupt(cause))
        self.engine.schedule(0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        pending = self._interrupts
        if not pending:
            return
        if self._waiting_on is _TIMED:
            # A queued interrupt can land while a fresh timed wait is in
            # flight (the previous interrupt's handler re-entered one);
            # orphan that resume exactly like interrupt() does.
            if self._stale_times is None:
                self._stale_times = []
            self._stale_times.append(self._resume_at)
            self._waiting_on = None
        self._advance(None, pending.pop(0))

    def _start(self) -> None:
        self._advance(None, None)

    def _advance(self, value: object, exc: typing.Optional[BaseException]) -> None:
        if not self._alive:
            return
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as a clean
            # termination with no value.
            self._alive = False
            self.succeed(None)
            return
        if type(yielded) is int:
            # Pure timed wait: schedule the bound resume directly.  The
            # inline push mirrors Engine.schedule (same time, same
            # sequence counter) without the attribute round-trips.
            if yielded < 0:
                raise SimulationError(f"cannot schedule in the past: {yielded}")
            engine = self.engine
            at = engine._now + yielded
            sequence = engine._sequence
            engine._sequence = sequence + 1
            _heappush(engine._queue, (at, sequence, self._on_timed))
            self._waiting_on = _TIMED
            self._resume_at = at
            return
        if not isinstance(yielded, Event):
            raise SimulationError(
                f"process yielded {type(yielded).__name__}; processes must "
                "yield Event objects (Timeout, Process, AllOf, ...) or a "
                "non-negative int delay in femtoseconds"
            )
        self._waiting_on = yielded
        yielded.subscribe(self._on_event)

    def _on_timed(self) -> None:
        stale = self._stale_times
        if stale:
            # A resume orphaned by an interrupt fires before any timed
            # wait scheduled after it (earlier sequence number wins ties),
            # so consuming one matching entry per firing is exact even
            # when a stale and a live resume share the same timestamp.
            now = self.engine._now
            if now in stale:
                stale.remove(now)
                return
        if self._waiting_on is not _TIMED:
            return  # stale wakeup after an interrupt
        self._waiting_on = None
        self._advance(None, None)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup after an interrupt
        self._waiting_on = None
        self._advance(event._value, None)
