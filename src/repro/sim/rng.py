"""Seeded, named random-number streams.

Every stochastic element of the simulation (DRAM latency jitter, page-frame
allocation, timer jitter, payload generation, background noise) draws from
its own named substream so that adding a new noise source never perturbs
the draws of an existing one.  All streams derive deterministically from a
single root seed.
"""

from __future__ import annotations

import typing

import numpy as np


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._root = np.random.SeedSequence(self.root_seed)
        self._streams: typing.Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream for a given ``(root_seed, name)`` pair is always seeded
        identically, regardless of creation order.
        """
        if name not in self._streams:
            # Hash the name into the spawn key so ordering is irrelevant.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
            )[0]
            seq = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(int(digest),)
            )
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def fork(self, salt: int) -> "RngStreams":
        """Derive a new independent stream family (e.g. per repeated run)."""
        return RngStreams(root_seed=(self.root_seed * 1_000_003 + salt) & 0x7FFFFFFF)
