"""Seeded, named random-number streams.

Every stochastic element of the simulation (DRAM latency jitter, page-frame
allocation, timer jitter, payload generation, background noise) draws from
its own named substream so that adding a new noise source never perturbs
the draws of an existing one.  All streams derive deterministically from a
single root seed.

Stream-naming contract (see DESIGN.md §9):

* ``stream(name)`` keys the substream on a SHA-256 digest of the *entire*
  UTF-8 name.  Two distinct names — however long their common prefix —
  yield statistically independent generators.  (An earlier revision hashed
  only the first 8 bytes, which silently collapsed ``cpu-timer-spy-0`` and
  ``cpu-timer-trojan-1`` onto one generator and perfectly correlated the
  Trojan's and Spy's timer jitter.)
* ``fork(salt)`` derives a child family ``SeedSequence.spawn``-style: the
  salt extends the spawn-key path instead of being folded into a narrow
  integer seed, so arbitrarily many forks (and forks of forks) never
  collide.
"""

from __future__ import annotations

import hashlib
import typing

import numpy as np

#: How many 32-bit words of the SHA-256 digest feed the spawn key.  128
#: bits is far beyond birthday range for any realistic stream count.
_KEY_WORDS = 4


def _digest_words(material: bytes) -> typing.Tuple[int, ...]:
    """The leading 32-bit big-endian words of SHA-256 over ``material``."""
    digest = hashlib.sha256(material).digest()
    return tuple(
        int.from_bytes(digest[4 * i : 4 * i + 4], "big") for i in range(_KEY_WORDS)
    )


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(
        self,
        root_seed: int = 0,
        fork_path: typing.Tuple[int, ...] = (),
    ) -> None:
        self.root_seed = int(root_seed)
        #: Spawn-key path accumulated by :meth:`fork` (empty at the root).
        self.fork_path = tuple(int(word) for word in fork_path)
        self._root = np.random.SeedSequence(
            entropy=self.root_seed, spawn_key=self.fork_path
        )
        self._streams: typing.Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream for a given ``(root_seed, fork path, name)`` triple is
        always seeded identically, regardless of creation order.  The
        spawn key is derived from a SHA-256 digest of the full name, so
        names sharing a prefix (``slm-timer-wg0`` vs ``slm-timer-wg1``)
        never alias.
        """
        if name not in self._streams:
            seq = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=self.fork_path + _digest_words(name.encode("utf-8")),
            )
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def state_dict(self) -> dict:
        """Positions of every stream created so far (pickle-free).

        numpy's PCG64 exposes its state as a plain dict of ints and
        strings, so the whole family serializes to JSON.  Streams not yet
        created need no entry: they are a pure function of
        ``(root_seed, fork_path, name)`` and a restored family creates
        them at position zero exactly like the original would have.
        """
        return {
            "root_seed": self.root_seed,
            "fork_path": list(self.fork_path),
            "streams": {
                name: generator.bit_generator.state
                for name, generator in self._streams.items()
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore stream positions captured by :meth:`state_dict`."""
        if int(state["root_seed"]) != self.root_seed or tuple(
            int(w) for w in state["fork_path"]
        ) != self.fork_path:
            from repro.errors import CheckpointError

            raise CheckpointError(
                "RNG state belongs to a different (root_seed, fork_path) family"
            )
        for name, generator_state in state["streams"].items():
            self.stream(name).bit_generator.state = generator_state

    def fork(self, salt: int) -> "RngStreams":
        """Derive a new independent stream family (e.g. per repeated run).

        The salt is hashed onto the spawn-key path (``SeedSequence.spawn``
        semantics) rather than folded into a small integer seed, so two
        distinct salts — or distinct fork *paths* — can never produce
        identically seeded families.
        """
        salt_words = _digest_words(repr(int(salt)).encode("ascii"))
        return RngStreams(self.root_seed, self.fork_path + salt_words)
