"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot future: it is *pending* until something
calls :meth:`Event.succeed`, at which point every registered callback runs
(synchronously, in registration order) and late subscribers are invoked
immediately.  Processes (see :mod:`repro.sim.process`) suspend themselves by
yielding events.

Millions of these objects are created per channel trial, so every class in
the hierarchy declares ``__slots__`` (no per-instance ``__dict__``) and the
hot :class:`Timeout` path schedules a bound method instead of a closure.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:
    from repro.sim.engine import Engine

Callback = typing.Callable[["Event"], None]

_PENDING = object()


class Event:
    """A one-shot future tied to an :class:`~repro.sim.engine.Engine`."""

    __slots__ = ("engine", "_value", "_callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._value: object = _PENDING
        self._callbacks: typing.List[Callback] = []

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._value is not _PENDING

    @property
    def value(self) -> object:
        """The payload passed to :meth:`succeed`.

        Raises :class:`SimulationError` if the event is still pending.
        """
        if self._value is _PENDING:
            raise SimulationError("event value read before it triggered")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event, delivering ``value`` to all subscribers."""
        if self._value is not _PENDING:
            raise SimulationError("event triggered twice")
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(self)
        return self

    def subscribe(self, callback: Callback) -> None:
        """Run ``callback(self)`` when the event triggers.

        If the event already triggered, the callback runs immediately; this
        lets processes yield events that completed in the past.
        """
        if self._value is not _PENDING:
            callback(self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that triggers ``delay_fs`` femtoseconds after creation."""

    __slots__ = ("delay_fs", "_payload")

    def __init__(self, engine: "Engine", delay_fs: int, value: object = None) -> None:
        if delay_fs < 0:
            raise SimulationError(f"negative timeout: {delay_fs}")
        self.engine = engine
        self._value = _PENDING
        self._callbacks = []
        self.delay_fs = int(delay_fs)
        self._payload = value
        engine.schedule(self.delay_fs, self._fire)

    def _fire(self) -> None:
        self.succeed(self._payload)


class AllOf(Event):
    """Triggers when every child event has triggered.

    The value is the list of child values, in the order the children were
    given (not completion order).
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: "Engine", events: typing.Sequence[Event]) -> None:
        super().__init__(engine)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            # An empty barrier completes on the next scheduling round so
            # that subscribers registered after construction still fire.
            engine.schedule(0, self._succeed_empty)
            return
        for event in self._events:
            event.subscribe(self._on_child)

    def _succeed_empty(self) -> None:
        self.succeed([])

    def _on_child(self, _event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([event.value for event in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    The value is a ``(index, value)`` pair identifying the winning child.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", events: typing.Sequence[Event]) -> None:
        super().__init__(engine)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(events):
            event.subscribe(self._make_callback(index))

    def _make_callback(self, index: int) -> Callback:
        def callback(event: Event) -> None:
            if not self.triggered:
                self.succeed((index, event.value))

        return callback
