"""Grouping and dispatch for the lockstep batch tier.

:func:`plan_groups` partitions an executor run's pending trials into
*batch groups* — trials whose params share one kernel shape digest — and
a leftover list for everything the kernels cannot take (no registered
kernel, unsupported params, singleton groups).  :func:`run_batch_group`
is the module-level unit of dispatch (picklable, so a parallel executor
can ship whole groups to pool workers): it runs the group's kernel once
and serially re-runs every lane the kernel ejected, so a group always
comes back with a definite per-trial answer.

The tier is purely an accelerator: any group or lane it cannot handle
falls back to the ordinary serial/parallel path, and the outcomes are
byte-identical either way (``tests/test_batch_lockstep.py``).
"""

from __future__ import annotations

import os
import time
import typing

from repro.errors import ConfigError

Params = typing.Dict[str, object]

#: Widest lockstep group one kernel launch will take, override or not.
#: Wider groups are chunked: chunking bounds per-launch memory and gives
#: a parallel executor units it can spread across workers.
DEFAULT_WIDTH = 256

#: Per-launch state-array budget the auto-tuner divides by the group's
#: worst-case per-lane footprint.  Small enough that a launch stays
#: cache-friendly and cheap to ship to a pool worker, large enough that
#: every current kernel shape reaches ``DEFAULT_WIDTH`` lanes anyway —
#: the budget exists for future shapes whose lanes are megabytes.
AUTO_WIDTH_BUDGET_BYTES = 64 << 20

#: Narrowest group worth batching (a lone lane gains nothing).
MIN_WIDTH = 2


def batch_width() -> typing.Optional[int]:
    """The explicit lane-width override, or ``None`` for auto-tuning.

    ``REPRO_BATCH_WIDTH`` must be a positive integer when set; zero,
    negative, or non-integer values raise :class:`ConfigError` rather
    than silently falling back to a default the user did not ask for.
    (A width of 1 is accepted and effectively disables batching: every
    chunk becomes a singleton and falls to the serial path.)
    """
    raw = os.environ.get("REPRO_BATCH_WIDTH", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value <= 0:
        raise ConfigError(
            f"REPRO_BATCH_WIDTH must be a positive integer, got {raw!r}"
        )
    return value


def width_for(kernel: typing.Any, params_list: typing.Sequence[Params]) -> int:
    """Deterministic auto-tuned lane width for one shape group.

    Divides :data:`AUTO_WIDTH_BUDGET_BYTES` by the group's worst-case
    per-lane state footprint (``kernel.lane_footprint_bytes`` over every
    lane's params — variable keys like ``n_slots`` change the footprint
    within a shape).  Pure arithmetic over the trial inputs, so the same
    sweep always gets the same widths; kernels without a footprint probe
    get :data:`DEFAULT_WIDTH`.
    """
    probe = getattr(kernel, "lane_footprint_bytes", None)
    if probe is None:
        return DEFAULT_WIDTH
    footprint = 0
    for params in params_list:
        try:
            footprint = max(footprint, int(probe(params)))
        except Exception:
            return DEFAULT_WIDTH
    if footprint <= 0:
        return DEFAULT_WIDTH
    return max(MIN_WIDTH, min(DEFAULT_WIDTH, AUTO_WIDTH_BUDGET_BYTES // footprint))


def plan_groups(
    specs: typing.Sequence[typing.Any],
    pending: typing.Sequence[int],
    effective: typing.Mapping[int, Params],
    plans_out: typing.Optional[typing.List[typing.Dict[str, object]]] = None,
) -> typing.Tuple[typing.List[typing.List[int]], typing.List[int]]:
    """Partition pending trial indices into ``(batch groups, leftovers)``.

    Grouping is by the kernel's shape digest over the trial's *effective*
    params (prefix-doc injection included, so warm and cold trials of the
    same shape land in the same group).  Only groups of two or more lanes
    batch — a lone trial gains nothing from lockstep and the serial path
    is already optimal for it.

    Each shape group is chunked at its lane width — the explicit
    ``REPRO_BATCH_WIDTH`` override when set, else :func:`width_for`'s
    footprint-based auto-tune.  When ``plans_out`` is given, one record
    ``{"kernel", "group", "width", "source", "lanes"}`` is appended per
    emitted chunk (``source`` is ``"env"`` or ``"auto"``) and the same
    payload is emitted as a ``batch.plan`` trace event, so ledgers and
    traces can reproduce exactly how a run was batched.
    """
    from repro.obs import recorder
    from repro.sim.batch.kernels import kernel_for

    groups: typing.Dict[str, typing.List[int]] = {}
    kernels: typing.Dict[str, typing.Any] = {}
    leftover: typing.List[int] = []
    for index in pending:
        spec = specs[index]
        kernel = kernel_for(spec.fn)
        if kernel is None:
            leftover.append(index)
            continue
        params = effective.get(index, spec.params)
        try:
            if not kernel.supports(params):
                leftover.append(index)
                continue
            key = kernel.group_key(params)
        except Exception:
            leftover.append(index)
            continue
        groups.setdefault(key, []).append(index)
        kernels.setdefault(key, kernel)
    batches: typing.List[typing.List[int]] = []
    override = batch_width()
    sink = recorder.sink_for("batch.plan")
    for key, indices in groups.items():  # insertion order: deterministic
        if len(indices) < 2:
            leftover.extend(indices)
            continue
        if override is not None:
            width, source = override, "env"
        else:
            width = width_for(
                kernels[key],
                [effective.get(i, specs[i].params) for i in indices],
            )
            source = "auto"
        for start in range(0, len(indices), width):
            chunk = indices[start : start + width]
            if len(chunk) >= 2:
                batches.append(chunk)
                plan = {
                    "kernel": getattr(kernels[key], "fn_key", "?"),
                    "group": key,
                    "width": width,
                    "source": source,
                    "lanes": len(chunk),
                }
                if plans_out is not None:
                    plans_out.append(plan)
                if sink is not None:
                    sink.emit("batch.plan", 0, "batch", plan)
            else:
                leftover.extend(chunk)
    leftover.sort()
    return batches, leftover


def _merge(total: typing.Dict[str, int], part: typing.Mapping[str, int]) -> None:
    total["engines_created"] += int(part.get("engines_created", 0))
    total["events_executed"] += int(part.get("events_executed", 0))
    total["final_now_fs"] = max(
        total["final_now_fs"], int(part.get("final_now_fs", 0))
    )


def run_batch_group(
    payload: typing.Tuple[
        typing.Callable, typing.Sequence[typing.Tuple[int, Params, int]]
    ],
) -> typing.Tuple[typing.List[typing.Tuple[int, str, object, dict, float]], dict]:
    """Run one batch group to completion; module-level for pool dispatch.

    ``payload`` is ``(fn, [(index, effective_params, seed), ...])``.
    Returns ``(results, group_sim)`` where each result is ``(index, kind,
    value, trial_sim, wall_s)`` in the executor's outcome vocabulary.
    Lanes the kernel ejects (divergence, failed disjointness check,
    unsupported warm state) — or every lane, if the kernel itself raises
    — are re-run through the ordinary serial trial path right here, so
    ejection costs one serial trial, never a lost result.

    The kernel's own work is credited to any armed
    :class:`~repro.obs.EngineCensus` via
    :func:`~repro.obs.census.note_external_sim` (per-trial shares, summed
    exactly); serial re-runs create real engines that announce
    themselves.
    """
    fn, entries = payload
    from repro.exec.executor import run_one_trial
    from repro.obs.census import note_external_sim
    from repro.sim.batch.kernels import kernel_for

    group_sim = {"engines_created": 0, "events_executed": 0, "final_now_fs": 0}
    kernel = kernel_for(fn)
    outcomes: typing.List[typing.Optional[Params]] = [None] * len(entries)
    kernel_wall = 0.0
    kernel_sim: typing.Dict[str, int] = {}
    if kernel is not None:
        start = time.perf_counter()
        try:
            outcomes, kernel_sim = kernel.run(
                [(params, seed) for _index, params, seed in entries]
            )
        except Exception:
            outcomes = [None] * len(entries)
            kernel_sim = {}
        kernel_wall = time.perf_counter() - start
    if kernel_sim:
        _merge(group_sim, kernel_sim)
        note_external_sim(kernel_sim)

    # Distribute the kernel's census over its completed lanes so per-trial
    # telemetry sums to the true total (remainder goes to the first lane).
    done = [i for i, outcome in enumerate(outcomes) if outcome is not None]
    shares: typing.Dict[int, typing.Dict[str, int]] = {}
    walls: typing.Dict[int, float] = {}
    if done:
        events = int(kernel_sim.get("events_executed", 0))
        final = int(kernel_sim.get("final_now_fs", 0))
        share, remainder = divmod(events, len(done))
        for position, i in enumerate(done):
            shares[i] = {
                "engines_created": 0,
                "events_executed": share + (remainder if position == 0 else 0),
                "final_now_fs": final,
            }
            walls[i] = kernel_wall / len(done)

    results: typing.List[typing.Tuple[int, str, object, dict, float]] = []
    for position, (index, params, seed) in enumerate(entries):
        outcome = outcomes[position] if position < len(outcomes) else None
        if outcome is not None:
            results.append(
                (index, "ok", outcome, shares[position], walls[position])
            )
            continue
        start = time.perf_counter()
        kind, value, trial_sim = run_one_trial((fn, params, seed))
        _merge(group_sim, trial_sim)
        results.append(
            (index, kind, value, trial_sim, time.perf_counter() - start)
        )
    return results, group_sim
