"""Lockstep kernel for the ring-contention trial family.

Replays :func:`repro.analysis.contention_sweep.contention_trial` over
``[trial, ...]`` numpy arrays.  Unlike the probe family, the trojan and
spy *interleave* inside a slot — the ring queueing they inflict on each
other is the covert signal — so the kernel cannot fold a slot into
straight-line updates.  Instead it merges the trial's three event
streams (trojan accesses, spy probes, fault bursts) by minimum logical
ring-request time, which is exact on the fast path because:

* every ring reservation's effective request time is ``t1 = t0 + pre``
  and the machine's fold guard keeps reservations FIFO in ``t1`` (a
  coalesced reservation never jumps a pending earlier event), and
  request times are nondecreasing in engine order — so "always advance
  the stream with the smallest next ``t1``" reproduces the serial
  reservation order exactly;
* equal request times across two streams are ordered by engine
  insertion sequence, which the kernel cannot know — lanes with a tie
  are *ejected* to the serial oracle, never guessed;
* all shared cache state is per-agent disjoint by construction (the
  family places spy and trojan lines in different LLC set-index
  classes), so per-set access order is per-agent program order and only
  the commutative counters cross agents;
* every DRAM draw happens inside the family's single-process warm-up
  prologue, which the kernel replays straight-line from a pre-drawn
  uniform block; a lane that misses the LLC *after* warm-up would need
  an engine-ordered draw, so it ejects.

GPU-trojan L3 hits touch no shared state and are consumed greedily
between merge steps; CPU agents' private caches are elided outright
(the family's line counts per set exceed both private ways counts, so
every private access provably misses — the probe kernel's spacing
argument, applied to both agents).  Warm checkpoint-forked lanes are
restored once through the checkpoint layer and extracted into the same
arrays, exactly like the probe kernel's.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro import checkpoint as _checkpoint
from repro.analysis import contention_sweep as _cs
from repro.config import SoCConfig
from repro.exec.seeds import stable_digest
from repro.sim.batch.kernels import _arange, _install
from repro.sim.batch.state import EMPTY, GroupConstants, LockstepState
from repro.sim.rng import RngStreams
from repro.soc.mmu import Mmu

Params = typing.Dict[str, object]

#: Sentinel request time for an exhausted stream (beyond any simulated fs).
_HORIZON = np.int64(1) << 62

_PLRU_TABLES: typing.Dict[
    int, typing.Tuple[np.ndarray, np.ndarray]
] = {}


def _plru_tables(ways: int) -> typing.Tuple[np.ndarray, np.ndarray]:
    """``(victim, touch)`` lookup tables over packed tree-pLRU states.

    A set's ``ways - 1`` direction bits pack into one integer (node
    ``j``'s bit at position ``j``, the flattened heap layout of
    :class:`~repro.sim.batch.state.PlruArrays`), so the per-access tree
    walk of ``kernels._plru_victim`` / ``kernels._plru_touch`` collapses
    to a single table gather: ``victim[state]`` is the way the walk
    lands on, ``touch[state, way]`` the state after steering every node
    on ``way``'s path away from it.  Built once per ways count,
    vectorized over all ``2**(ways-1)`` states.
    """
    cached = _PLRU_TABLES.get(ways)
    if cached is not None:
        return cached
    levels = ways.bit_length() - 1
    states = np.arange(1 << max(0, ways - 1), dtype=np.int64)
    node = np.zeros_like(states)
    way = np.zeros_like(states)
    for _ in range(levels):
        side = (states >> node) & 1
        way = (way << 1) | side
        node = 2 * node + 1 + side
    victim = way
    touch = np.empty((len(states), ways), dtype=np.int64)
    for w in range(ways):
        s = states.copy()
        at = 0  # the node path depends only on the way, not the state
        for level in range(levels):
            side = (w >> (levels - 1 - level)) & 1
            s = (s & ~(1 << at)) | np.int64((1 - side) << at)
            at = 2 * at + 1 + side
        touch[:, w] = s
    _PLRU_TABLES[ways] = (victim, touch)
    return victim, touch


class _Lane:
    """One trial's scalar setup: placement, payload, schedule, prefix."""

    def __init__(
        self,
        params: Params,
        seed: int,
        config_template: typing.Optional[SoCConfig] = None,
    ) -> None:
        self.params = _cs.merged_params(params)
        self.seed = seed
        if config_template is None:
            self.config = _cs.soc_config(self.params, seed)
        else:
            # Within a shape group the seed is the only config field that
            # varies (``soc_config`` threads it into ``SoCConfig.seed``
            # verbatim and nowhere else), so one template serves all lanes.
            self.config = dataclasses.replace(config_template, seed=seed)
        self.n_slots = int(typing.cast(int, self.params["n_slots"]))
        self.bits = _cs.payload_bits(seed, self.n_slots)
        self.workgroups = int(typing.cast(int, self.params["n_workgroups"]))
        self.unsupported = False
        doc = _checkpoint.resolve_state(params)
        if doc is None:
            rng = RngStreams(self.config.seed)
            mmu = Mmu(self.config.mmu, rng.stream("mmu"))
            layout = _cs.resolve_layout(self.config, self.params, mmu)
            self.spy_lines = layout.spy_lines
            self.trojan_lines = layout.trojan_lines
            self.targets = layout.targets
            self.dram_rng = rng.stream("dram")
            self.start_slot = 0
            self.probe_prefix: typing.List[typing.List[int]] = []
            self.trojan_fs0 = 0
            self.clock0 = 0
            self.soc = None
        else:
            # Warm fork: restore the machine once (the checkpoint layer's
            # own path) and extract its arrays; the doc carries the lines.
            plan = _cs.plan_from_doc(params, seed, doc)
            self.soc = plan.soc
            self.spy_lines = plan.spy_lines
            self.trojan_lines = plan.trojan_lines
            self.targets = plan.targets
            self.dram_rng = plan.soc.rng.stream("dram")
            self.start_slot = plan.start_slot
            self.probe_prefix = [list(row) for row in plan.probe]
            self.trojan_fs0 = plan.trojan_fs
            self.clock0 = plan.soc.engine.now
            if plan.soc.llc_partition is not None or any(
                until > self.clock0 for until in plan.soc._core_stall_until
            ):
                self.unsupported = True
        self.fault_sched = _cs.fault_schedule(self.params, seed, self.config)


class ContentionKernel:
    """Vectorized replay of ``contention_sweep.contention_trial``."""

    fn_key = "repro.analysis.contention_sweep:contention_trial"

    @staticmethod
    def supports(params: Params) -> bool:
        """Whether a trial with these params is lockstep-replayable.

        Beyond jitter (see the probe kernel), the private-cache elision
        must hold for *both* agents: each agent's per-set line count has
        to exceed both private ways counts, the set-index classes must
        stay distinct through the private index masks, and the two CPU
        agents must sit on different cores.
        """
        try:
            p = _cs.merged_params(dict(params))
            config = _cs.soc_config(p, 0)
        except Exception:
            return False
        if float(typing.cast(float, p["dram_jitter_ns"])) != 0.0:
            return False
        if p["trojan"] == "cpu" and p["trojan_core"] == p["spy_core"]:
            return False
        l1_sets = config.cpu_cache.l1_sets
        l2_sets = config.cpu_cache.l2_sets
        max_ways = max(config.cpu_cache.l1_ways, config.cpu_cache.l2_ways)
        sets_per_slice = config.llc.sets_per_slice
        n_classes = int(typing.cast(int, p["trojan_sets"])) + 1
        if sets_per_slice % l1_sets or sets_per_slice % l2_sets:
            return False
        if n_classes > min(l1_sets, l2_sets):
            return False
        if int(typing.cast(int, p["spy_lines"])) <= max_ways:
            return False
        if int(typing.cast(int, p["trojan_lines_per_set"])) <= max_ways:
            return False
        return True

    @staticmethod
    def group_key(params: Params) -> str:
        """Shape digest: everything but the registered per-trial keys."""
        p = _cs.merged_params(dict(params))
        shape = {k: v for k, v in p.items() if k not in _cs.VARIABLE_KEYS}
        return stable_digest((ContentionKernel.fn_key, sorted(shape.items())))

    @staticmethod
    def lane_footprint_bytes(params: Params) -> int:
        """Per-lane state-array bytes (drives lane-width auto-tuning).

        Sums the int64 arrays ``run`` allocates per trial: compact LLC,
        GPU L3 (tags + pLRU bits), the three event streams, the DRAM
        block and the accumulators.  An estimate of allocation, not a
        promise — auto-tuning only needs it deterministic and roughly
        proportional to the real footprint.
        """
        p = _cs.merged_params(dict(params))
        config = _cs.soc_config(p, 0)
        n_classes = int(typing.cast(int, p["trojan_sets"])) + 1
        n_trojan = n_classes - 1
        lines = int(typing.cast(int, p["trojan_lines_per_set"]))
        spy = int(typing.cast(int, p["spy_lines"]))
        probes = int(typing.cast(int, p["probes_per_slot"]))
        n_slots = int(typing.cast(int, p["n_slots"]))
        workgroups = int(typing.cast(int, p["n_workgroups"]))
        bursts = int(
            round(
                float(typing.cast(float, p["fault_intensity"]))
                * float(typing.cast(float, p["fault_bursts_per_slot"]))
                * n_slots
            )
        )
        cells = 2 * n_classes * config.llc.ways  # compact LLC tags + ages
        if p["trojan"] == "gpu":
            cells += config.gpu_l3.total_sets * (2 * config.gpu_l3.ways - 1)
        cells += n_slots * workgroups * n_trojan * lines  # trojan floors
        cells += n_slots * probes * spy  # spy schedule share
        cells += bursts  # fault schedule
        cells += n_trojan * lines * 3 + spy  # line paddrs + set indices
        cells += n_trojan * lines + spy  # DRAM uniform block
        cells += n_slots * probes + n_slots  # probe sums + payload
        cells += 32  # clocks, cursors, counters
        return 8 * cells

    def run(
        self, trials: typing.Sequence[typing.Tuple[Params, int]]
    ) -> typing.Tuple[typing.List[typing.Optional[Params]], typing.Dict[str, int]]:
        """Advance all trials in lockstep.

        Returns ``(outcomes, sim)`` where ``outcomes[i]`` is the trial's
        outcome dict or ``None`` if the lane was ejected (request-time
        tie, post-warm-up LLC miss, forced divergence, unsupported warm
        state); ``sim`` credits the work in census terms (one event per
        simulated access or fault burst — a strict lower bound on the
        serial engine's count).
        """
        lanes: typing.List[_Lane] = []
        template: typing.Optional[SoCConfig] = None
        for p0, s0 in trials:
            lane = _Lane(dict(p0), s0, template)
            if template is None:
                template = lane.config
            lanes.append(lane)
        n = len(lanes)
        first = lanes[0]
        config = first.config
        const = GroupConstants.from_config(config)
        p = first.params
        use_gpu = p["trojan"] == "gpu"
        probes = int(typing.cast(int, p["probes_per_slot"]))
        n_spy = int(typing.cast(int, p["spy_lines"]))
        lines_per_set = int(typing.cast(int, p["trojan_lines_per_set"]))
        n_classes = int(typing.cast(int, p["trojan_sets"])) + 1
        n_troj = (n_classes - 1) * lines_per_set
        per_probe = n_spy
        per_slot = probes * per_probe
        base_fs, slot_fs, off_fs, gap_fs = _cs._plan_schedule(p, config)
        fault_hold = config.cpu_clock.cycles_fs(
            int(typing.cast(int, p["fault_slots"])) * config.ring.slot_cycles
        )
        hold = const.ring_hold_fs
        if use_gpu:
            t_pre, t_tail, t_domain = (
                const.gpu_pre_fs, const.gpu_tail_base_fs, "gpu",
            )
        else:
            t_pre, t_tail, t_domain = (
                const.cpu_pre_fs, const.cpu_tail_base_fs, "cpu",
            )
        cpu_pre, cpu_tail = const.cpu_pre_fs, const.cpu_tail_base_fs
        l3_victim, l3_touch = _plru_tables(const.l3_ways)

        n_slots = np.array([lane.n_slots for lane in lanes], dtype=np.int64)
        start_slot = np.array([lane.start_slot for lane in lanes], dtype=np.int64)
        max_slots = int(n_slots.max()) if n else 0
        bits = np.zeros((n, max_slots), dtype=bool)
        diverge = np.full(n, -1, dtype=np.int64)
        for i, lane in enumerate(lanes):
            bits[i, : lane.n_slots] = lane.bits
            div = lane.params["divergence_slot"]
            if div is not None:
                diverge[i] = int(typing.cast(int, div))

        # Line placement.  Compact LLC set indices are the set-index
        # *classes* themselves: spy lines are class 0, trojan line j is
        # class 1 + j // lines_per_set — the family's layout guarantees
        # one global set per class.
        spy_p = np.array([lane.spy_lines for lane in lanes], dtype=np.int64)
        troj_p = np.array([lane.trojan_lines for lane in lanes], dtype=np.int64)
        troj_cset = 1 + _arange(max(1, n_troj))[:n_troj] // max(1, lines_per_set)
        off_bits = const.offset_bits
        if use_gpu and n_troj:
            troj_l3 = (troj_p >> off_bits) & (const.l3_sets - 1)
        else:
            troj_l3 = None
        llc_maps: typing.List[typing.Dict[int, int]] = []
        for lane in lanes:
            llc_maps.append({
                int(b) * const.llc_sets_per_slice + int(a): int(a)
                for a, b in lane.targets
            })

        # Trojan stream: per-lane floors (ragged — payload, n_slots and
        # n_workgroups all vary per lane), line index is position mod
        # the line list (a burst tiles the list ``workgroups`` times).
        t_end = np.zeros(n, dtype=np.int64)
        floors: typing.List[np.ndarray] = []
        for i, lane in enumerate(lanes):
            burst = lane.workgroups * n_troj
            starts = [
                base_fs + s * slot_fs
                for s in range(lane.start_slot, lane.n_slots)
                if lane.bits[s]
            ]
            floor = np.repeat(np.array(starts, dtype=np.int64), burst)
            floors.append(floor)
            t_end[i] = len(floor)
        t_max = int(t_end.max()) if n else 0
        troj_floor = np.zeros((n, max(1, t_max)), dtype=np.int64)
        for i, floor in enumerate(floors):
            troj_floor[i, : len(floor)] = floor

        # Fault stream: seeded absolute times inside the resumed span.
        f_end = np.zeros(n, dtype=np.int64)
        scheds: typing.List[typing.List[int]] = []
        for i, lane in enumerate(lanes):
            lo = base_fs + lane.start_slot * slot_fs
            hi = base_fs + lane.n_slots * slot_fs
            sched = [t for t in lane.fault_sched if lo <= t < hi]
            scheds.append(sched)
            f_end[i] = len(sched)
        f_max = int(f_end.max()) if n else 0
        fsched = np.full((n, max(1, f_max)), _HORIZON, dtype=np.int64)
        for i, sched in enumerate(scheds):
            fsched[i, : len(sched)] = sched

        state = LockstepState(
            const,
            n,
            cores=(),  # both CPU agents' private caches are elided
            model_gpu=use_gpu,
            dram_budget=n_troj + n_spy,
            llc_sets=n_classes,
            ring_domains=("cpu", "gpu", "fault"),
        )
        cold = np.zeros(n, dtype=bool)
        for i, lane in enumerate(lanes):
            if lane.soc is None:
                cold[i] = True
                state.dram_draws[i, : n_troj + n_spy] = lane.dram_rng.random(
                    n_troj + n_spy
                )
            elif not lane.unsupported:
                if not state.load_soc(i, lane.soc, (), llc_maps[i]):
                    lane.unsupported = True
            state.ejected[i] = lane.unsupported
        self._ops = 0

        # Pack the GPU L3's tree-pLRU direction bits (warm lanes loaded
        # them above) into one integer per set; from here on victim/touch
        # are single gathers into the ``_plru_tables`` LUTs.
        l3 = state.l3
        if use_gpu:
            weights = np.int64(1) << _arange(max(1, const.l3_ways - 1))
            l3_state = (l3.bits * weights).sum(axis=2)
        else:
            l3_state = np.zeros((n, 1), dtype=np.int64)

        clk = np.array([lane.clock0 for lane in lanes], dtype=np.int64)
        self._warmup(state, cold, clk, spy_p, troj_p, troj_cset, troj_l3,
                     use_gpu, t_pre, t_tail, t_domain, l3_state, l3_victim,
                     l3_touch)
        clk_t = clk.copy()
        clk_s = clk.copy()
        clk_f = clk.copy()

        # Cursors into the three streams.
        si = start_slot * per_slot
        s_end = n_slots * per_slot
        ti = np.zeros(n, dtype=np.int64)
        fi = np.zeros(n, dtype=np.int64)

        trojan_acc = np.zeros(n, dtype=np.int64)
        probe_sums = np.zeros((n, max(1, max_slots), probes), dtype=np.int64)
        llc = state.llc
        busy = state.ring_busy_until
        rows = _arange(n)

        # After warm-up the compact LLC's *tags* are frozen: a surviving
        # access must hit (a post-warm-up miss ejects), hits only touch
        # ages, and fault bursts never install lines.  So each line's
        # way — and whether it is resident at all — resolves once, here,
        # instead of per merge pass.  A lane whose remaining stream
        # would touch a non-resident line ejects now; that is the same
        # lane set that would eject at the access itself, because every
        # remaining access index is provably reached unless the lane
        # ejects anyway.
        m_s = llc.tags[:, 0, None, :] == spy_p[:, :, None]
        spy_way = m_s.argmax(axis=2)
        state.ejected |= (si < s_end) & ~m_s.any(axis=2).all(axis=1)
        if n_troj:
            m_t = llc.tags[:, troj_cset, :] == troj_p[:, :, None]
            troj_way = m_t.argmax(axis=2)
            used = np.minimum(t_end, n_troj)[:, None] > _arange(n_troj)
            state.ejected |= (used & ~m_t.any(axis=2)).any(axis=1)
        else:
            troj_way = np.zeros((n, 1), dtype=np.int64)

        # Candidate logical ring-request times (HORIZON = stream done),
        # maintained *incrementally*: a stream's candidate moves only
        # when that stream itself commits, so each pass refreshes only
        # the lanes that advanced instead of recomputing three
        # full-width arrays.
        cand_s = np.full(n, _HORIZON, dtype=np.int64)
        cand_t = np.full(n, _HORIZON, dtype=np.int64)
        cand_f = np.full(n, _HORIZON, dtype=np.int64)

        def _upd_s(sel: np.ndarray) -> None:
            sis = si[sel]
            rem = sis % per_slot
            floor = np.where(
                rem % per_probe == 0,
                base_fs + (sis // per_slot) * slot_fs + off_fs
                + (rem // per_probe) * gap_fs,
                0,
            )
            cand_s[sel] = np.where(
                sis < s_end[sel],
                np.maximum(clk_s[sel], floor) + cpu_pre,
                _HORIZON,
            )

        def _upd_t(sel: np.ndarray) -> None:
            if not t_max:
                return
            tis = ti[sel]
            floor = troj_floor[sel, np.minimum(tis, t_max - 1)]
            cand_t[sel] = np.where(
                tis < t_end[sel],
                np.maximum(clk_t[sel], floor) + t_pre,
                _HORIZON,
            )

        def _upd_f(sel: np.ndarray) -> None:
            if not f_max:
                return
            fis = fi[sel]
            sched = fsched[sel, np.minimum(fis, f_max - 1)]
            cand_f[sel] = np.where(
                fis < f_end[sel], np.maximum(clk_f[sel], sched), _HORIZON
            )

        _upd_s(rows)
        _upd_f(rows)
        # Lanes whose trojan may be sitting on L3 hits; only a trojan
        # commit can create new ones, so it's a dirty set, not a rescan.
        tdirty = np.ones(n, dtype=bool)

        # ---- the merge loop: one ring event per live lane per pass ----
        max_steps = int((s_end - si).sum() + t_end.sum() + f_end.sum()) + n + 16
        steps = 0
        while True:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("contention merge loop failed to converge")
            if tdirty.any():
                # GPU L3 hits occupy no ring and touch no shared state:
                # consume runs of them before refreshing the candidates.
                while use_gpu and n_troj:
                    open_t = tdirty & ~state.ejected & (ti < t_end)
                    idx = np.nonzero(open_t)[0]
                    if not len(idx):
                        break
                    lj = ti[idx] % n_troj
                    paddr = troj_p[idx, lj]
                    s3 = troj_l3[idx, lj]
                    tags3 = l3.tags[idx, s3]
                    match3 = tags3 == paddr[:, None]
                    hit3 = match3.any(axis=1)
                    if not hit3.any():
                        break
                    h = idx[hit3]
                    sh = s3[hit3]
                    st = l3_state[h, sh]
                    l3_state[h, sh] = l3_touch[st, match3[hit3].argmax(axis=1)]
                    floor = troj_floor[h, ti[h]]
                    clk_t[h] = np.maximum(clk_t[h], floor) + const.d3_fs
                    trojan_acc[h] += const.d3_fs
                    ti[h] += 1
                    self._ops += len(h)
                _upd_t(np.nonzero(tdirty)[0])
                tdirty[:] = False

            merged = np.minimum(np.minimum(cand_s, cand_t), cand_f)
            live = ~state.ejected & (merged < _HORIZON)
            if not live.any():
                break
            # Equal request times are ordered by engine insertion
            # sequence, which the kernel cannot replay: eject the lane.
            ways_tied = (
                (cand_s == merged).astype(np.int64)
                + (cand_t == merged)
                + (cand_f == merged)
            )
            tie = live & (ways_tied >= 2)
            state.ejected |= tie
            live &= ~tie

            pick_s = live & (cand_s == merged)
            if pick_s.any():
                idx = np.nonzero(pick_s)[0]
                slot = si[idx] // per_slot
                p_i = (si[idx] % per_slot) // per_probe
                div = diverge[idx] == slot
                if div.any():
                    state.ejected[idx[div]] = True
                    idx = idx[~div]
                    slot = slot[~div]
                    p_i = p_i[~div]
                if len(idx):
                    # Bulk-commit the tail of the probe burst.  Within a
                    # probe only the first access carries the gap floor,
                    # so access ``j`` requests at ``t1_j = c0 + pre +
                    # (j-1)*step`` with ``step = pre + hold + tail`` and
                    # ``c0`` the first access's completion; the spy never
                    # queues behind itself (``t1_j`` always clears its own
                    # busy horizon).  Every ``t1_j`` strictly below both
                    # competitors' request times — which cannot move while
                    # the spy runs — commits in serial FIFO order too; an
                    # exact tie surfaces on the next pass and ejects
                    # there, just as in single-step replay.
                    g = si[idx] % per_probe
                    t1 = cand_s[idx]
                    waited = np.maximum(busy[idx] - t1, 0)
                    step = cpu_pre + hold + cpu_tail
                    c0 = t1 + waited + hold + cpu_tail
                    limit = np.minimum(cand_t[idx], cand_f[idx])
                    extra = (limit - c0 - cpu_pre - 1) // step + 1
                    k = 1 + np.clip(extra, 0, per_probe - 1 - g)
                    for j in range(int(k.max())):
                        sub = k > j
                        rows_j = idx[sub]
                        llc.age[rows_j, 0, spy_way[rows_j, g[sub] + j]] = (
                            state.next_tick()
                        )
                    state.llc_hits[idx] += k
                    busy[idx] = c0 + (k - 1) * step - cpu_tail
                    state.ring_transfers["cpu"][idx] += k
                    state.ring_waited["cpu"][idx] += waited
                    probe_sums[idx, slot, p_i] += waited + k * step
                    clk_s[idx] = c0 + (k - 1) * step
                    si[idx] += k
                    self._ops += int(k.sum())
                    _upd_s(idx)

            pick_t = live & (cand_t == merged)
            if pick_t.any():
                idx = np.nonzero(pick_t)[0]
                lj = ti[idx] % n_troj
                cset = troj_cset[lj]
                if use_gpu:
                    # The greedy pass above established an L3 miss:
                    # install (non-inclusive, victim dropped) + touch.
                    s3 = troj_l3[idx, lj]
                    tags3 = l3.tags[idx, s3]
                    empty = tags3 == EMPTY
                    st = l3_state[idx, s3]
                    way = np.where(
                        empty.any(axis=1),
                        empty.argmax(axis=1),
                        l3_victim[st],
                    )
                    l3.tags[idx, s3, way] = troj_p[idx, lj]
                    l3_state[idx, s3] = l3_touch[st, way]
                t1 = cand_t[idx]
                waited = np.maximum(busy[idx] - t1, 0)
                busy[idx] = t1 + waited + hold
                state.ring_transfers[t_domain][idx] += 1
                state.ring_waited[t_domain][idx] += waited
                state.llc_hits[idx] += 1
                llc.age[idx, cset, troj_way[idx, lj]] = state.next_tick()
                lat = waited + (t_pre + hold + t_tail)
                trojan_acc[idx] += lat
                clk_t[idx] = t1 + waited + hold + t_tail
                ti[idx] += 1
                self._ops += len(idx)
                tdirty[idx] = True

            pick_f = live & (cand_f == merged)
            if pick_f.any():
                idx = np.nonzero(pick_f)[0]
                t1 = cand_f[idx]
                waited = np.maximum(busy[idx] - t1, 0)
                busy[idx] = t1 + waited + fault_hold
                state.ring_transfers["fault"][idx] += 1
                state.ring_waited["fault"][idx] += waited
                clk_f[idx] = t1 + waited + fault_hold
                fi[idx] += 1
                self._ops += len(idx)
                _upd_f(idx)

        # The trojan waits at every slot start, transmitting or not, so
        # its final event is at least the last slot boundary.
        ran = n_slots > start_slot
        clk_t_final = np.where(
            ran, np.maximum(clk_t, base_fs + (n_slots - 1) * slot_fs), clk_t
        )
        final = np.maximum(np.maximum(clk_s, clk_t_final), clk_f)

        outcomes: typing.List[typing.Optional[Params]] = []
        final_max = 0
        threshold = _cs.decode_threshold_fs(config, p)
        for i, lane in enumerate(lanes):
            if state.ejected[i]:
                outcomes.append(None)
                continue
            probe_rows = lane.probe_prefix + [
                [int(v) for v in probe_sums[i, s]]
                for s in range(lane.start_slot, lane.n_slots)
            ]
            final_now = int(final[i])
            final_max = max(final_max, final_now)
            ring_transfers = {
                d: int(state.ring_transfers[d][i]) for d in ("cpu", "gpu")
            }
            ring_waited = {
                d: int(state.ring_waited[d][i]) for d in ("cpu", "gpu")
            }
            if state.ring_transfers["fault"][i]:
                ring_transfers["fault"] = int(state.ring_transfers["fault"][i])
                ring_waited["fault"] = int(state.ring_waited["fault"][i])
            outcomes.append({
                "bits": list(lane.bits),
                "rx_bits": _cs.decode_slots(probe_rows, threshold),
                "probe_fs": probe_rows,
                "trojan_fs": int(lane.trojan_fs0 + trojan_acc[i]),
                "final_now_fs": final_now,
                "targets": [list(t) for t in lane.targets],
                "llc": {
                    "hits": int(state.llc_hits[i]),
                    "misses": int(state.llc_misses[i]),
                    "evictions": int(state.llc_evictions[i]),
                },
                "dram": {
                    "accesses": int(state.dram_accesses[i]),
                    "row_misses": int(state.dram_row_misses[i]),
                    "total_latency_fs": int(state.dram_total_fs[i]),
                },
                "ring": {
                    "transfers": ring_transfers,
                    "waited_fs": ring_waited,
                },
            })
        sim = {
            "engines_created": 0,
            "events_executed": int(self._ops),
            "final_now_fs": final_max,
        }
        return outcomes, sim

    # ------------------------------------------------------------------

    def _warmup(
        self,
        state: LockstepState,
        cold: np.ndarray,
        clk: np.ndarray,
        spy_p: np.ndarray,
        troj_p: np.ndarray,
        troj_cset: np.ndarray,
        troj_l3: typing.Optional[np.ndarray],
        use_gpu: bool,
        t_pre: int,
        t_tail: int,
        t_domain: str,
        l3_state: np.ndarray,
        l3_victim: np.ndarray,
        l3_touch: np.ndarray,
    ) -> None:
        """Straight-line replay of the single-process warm-up prologue.

        Cold lanes only (warm forks restored a machine that already ran
        it).  Every access misses everything — the lines are fresh and
        distinct — so each is: ring reserve at ``t1``, LLC install, one
        DRAM draw, advance the one clock.
        """
        if not cold.any():
            return
        idx = np.nonzero(cold)[0]
        const = state.constants
        llc = state.llc
        l3 = state.l3
        busy = state.ring_busy_until
        n_troj = troj_p.shape[1] if troj_p.size else 0
        plans = [(troj_p, n_troj, t_pre, t_tail, t_domain, True)]
        plans.append(
            (spy_p, spy_p.shape[1], const.cpu_pre_fs, const.cpu_tail_base_fs,
             "cpu", False)
        )
        for paddrs, count, pre, tail, domain, is_trojan in plans:
            for j in range(count):
                paddr = paddrs[idx, j]
                if is_trojan and use_gpu:
                    s3 = troj_l3[idx, j]
                    tags3 = l3.tags[idx, s3]
                    empty = tags3 == EMPTY
                    st = l3_state[idx, s3]
                    way = np.where(
                        empty.any(axis=1),
                        empty.argmax(axis=1),
                        l3_victim[st],
                    )
                    l3.tags[idx, s3, way] = paddr
                    l3_state[idx, s3] = l3_touch[st, way]
                t1 = clk[idx] + pre
                waited = np.maximum(busy[idx] - t1, 0)
                busy[idx] = t1 + waited + const.ring_hold_fs
                state.ring_transfers[domain][idx] += 1
                state.ring_waited[domain][idx] += waited
                cset = int(troj_cset[j]) if is_trojan else 0
                state.llc_misses[idx] += 1
                _, victim = _install(
                    llc, idx, np.full(len(idx), cset, dtype=np.int64), paddr,
                    state.next_tick(),
                )
                state.llc_evictions[idx] += victim
                draw = state.dram_draws[idx, state.dram_cursor[idx]]
                state.dram_cursor[idx] += 1
                row_miss = draw >= const.row_hit_probability
                dram_fs = np.where(
                    row_miss, const.dram_miss_fs, const.dram_hit_fs
                )
                state.dram_accesses[idx] += 1
                state.dram_row_misses[idx] += row_miss
                state.dram_total_fs[idx] += dram_fs
                clk[idx] += pre + waited + const.ring_hold_fs + tail + dram_fs
                self._ops += len(idx)
