"""Array-of-trials state for the lockstep batch engine.

Every piece of per-trial simulator state the probe kernel touches lives
here as a numpy array indexed ``[trial, ...]``:

* cache tags as ``int64`` line addresses (``EMPTY == -1``),
* true-LRU recency as monotonically increasing *touch ticks* (victim =
  ``argmin`` over a full set — identical to the serial LRU stack because
  a full set has every way touched, and last-touch order is stack order),
* tree-pLRU node bits as an ``[trial, set, ways-1]`` 0/1 array,
* the ring reservation ledger (``busy_until`` plus per-domain counters),
* DRAM row-mix state: a pre-drawn block of uniforms per trial (drawing a
  block consumes the PCG64 stream exactly like single draws) and the
  running counters,
* per-agent clocks and accumulators.

The LLC arrays are *compacted*: a trial only ever touches its target
sets (a handful of the thousands of global sets), so the kernel remaps
each lane's global set indices to a dense ``[0, n_used)`` range and the
arrays are allocated at ``n_used`` — a few hundred bytes per lane
instead of a megabyte, which is both the memory and the gather/scatter
speed win.  L1/L2/L3 keep their real geometry (they are small, and
back-invalidation needs to derive their set index from a line address).

Cold trials start from empty arrays and never build a machine at all —
placement comes from :func:`repro.analysis.probe_sweep.resolve_layout`
over a bare MMU on the trial's own RNG stream.  Warm (prefix-forked)
trials restore the machine once via the checkpoint layer and are
*extracted* into the same arrays; the synthetic ages assigned from the
restored LRU stacks are ``-(position+1)`` so stack order and tick order
agree and every fresh tick outranks them.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.config import SoCConfig
from repro.sim import FS_PER_NS

if typing.TYPE_CHECKING:
    from repro.soc.cache import SetAssocCache
    from repro.soc.machine import SoC

EMPTY = np.int64(-1)


@dataclasses.dataclass(frozen=True)
class GroupConstants:
    """Config-derived fixed latencies and geometry, shared by one group.

    Mirrors the precomputation in :class:`repro.soc.machine.SoC.__init__`
    — every field is derived through the same config methods the machine
    uses, so the two can never disagree on rounding.
    """

    l1_sets: int
    l1_ways: int
    l2_sets: int
    l2_ways: int
    llc_global_sets: int
    llc_ways: int
    llc_sets_per_slice: int
    l3_sets: int
    l3_ways: int
    offset_bits: int
    d1_fs: int
    d2_fs: int
    d3_fs: int
    cpu_pre_fs: int
    cpu_tail_base_fs: int
    gpu_pre_fs: int
    gpu_tail_base_fs: int
    ring_hold_fs: int
    dram_hit_fs: int
    dram_miss_fs: int
    row_hit_probability: float

    @classmethod
    def from_config(cls, config: SoCConfig) -> "GroupConstants":
        cpu = config.cpu_clock.cycles_fs
        gpu = config.gpu_clock.cycles_fs
        d1 = cpu(config.cpu_cache.l1_hit_cycles)
        d2 = cpu(config.cpu_cache.l2_hit_cycles)
        d3 = gpu(config.gpu_l3.hit_cycles)
        traverse = cpu(config.ring.traverse_cycles)
        gpu_traverse = traverse * config.ring.gpu_traverse_multiplier
        lookup = cpu(config.llc.lookup_cycles)
        line_slots = 1 + config.ring.slots_per_line(config.llc.line_bytes)
        hold = cpu(line_slots * config.ring.slot_cycles)
        base_ns = config.dram.base_ns
        miss_ns = base_ns + config.dram.row_miss_extra_ns
        return cls(
            l1_sets=config.cpu_cache.l1_sets,
            l1_ways=config.cpu_cache.l1_ways,
            l2_sets=config.cpu_cache.l2_sets,
            l2_ways=config.cpu_cache.l2_ways,
            llc_global_sets=config.llc.slices * config.llc.sets_per_slice,
            llc_ways=config.llc.ways,
            llc_sets_per_slice=config.llc.sets_per_slice,
            l3_sets=config.gpu_l3.total_sets,
            l3_ways=config.gpu_l3.ways,
            offset_bits=config.llc.line_bytes.bit_length() - 1,
            d1_fs=d1,
            d2_fs=d2,
            d3_fs=d3,
            cpu_pre_fs=d2 + traverse,
            cpu_tail_base_fs=lookup + traverse,
            gpu_pre_fs=d3 + gpu_traverse,
            gpu_tail_base_fs=lookup + gpu_traverse,
            ring_hold_fs=hold,
            dram_hit_fs=max(1, round(base_ns * FS_PER_NS)),
            dram_miss_fs=max(1, round(miss_ns * FS_PER_NS)),
            row_hit_probability=config.dram.row_hit_probability,
        )


class UnmappedSet(Exception):
    """A restored machine occupies a set outside the lane's compact map."""


class CacheArrays:
    """Tags + recency for one cache level across all trials."""

    def __init__(self, n_trials: int, n_sets: int, ways: int) -> None:
        self.tags = np.full((n_trials, n_sets, ways), EMPTY, dtype=np.int64)
        self.age = np.zeros((n_trials, n_sets, ways), dtype=np.int64)

    def load_from(
        self,
        trial: int,
        cache: "SetAssocCache",
        set_map: typing.Optional[typing.Mapping[int, int]] = None,
    ) -> None:
        """Extract one restored serial cache into lane ``trial``.

        Only occupied sets need tags; recency comes from the LRU stack
        (``-(position+1)`` keeps stack order and lets fresh ticks win).
        Sets that were touched and then fully invalidated need no
        extraction: refilling consults recency only once the set is full,
        by which point every way has been re-touched.  ``set_map``
        translates the serial cache's set indices into this array's
        (compact) indices; an occupied set outside the map raises
        :class:`UnmappedSet` — the caller ejects that lane.
        """
        occupied = {set_index for set_index, _way in cache._where.values()}
        for set_index in occupied:
            if set_map is None:
                dest = set_index
            else:
                mapped = set_map.get(set_index)
                if mapped is None:
                    raise UnmappedSet(set_index)
                dest = mapped
            for way, tag in enumerate(cache._tags[set_index]):
                if tag is not None:
                    self.tags[trial, dest, way] = tag
            stack = typing.cast(list, cache._meta[set_index])
            for position, way in enumerate(stack):
                self.age[trial, dest, way] = -(position + 1)


class PlruArrays:
    """Tags + tree-pLRU node bits for the GPU L3 across all trials."""

    def __init__(self, n_trials: int, n_sets: int, ways: int) -> None:
        self.tags = np.full((n_trials, n_sets, ways), EMPTY, dtype=np.int64)
        self.bits = np.zeros((n_trials, n_sets, max(1, ways - 1)), dtype=np.int64)

    def load_from(self, trial: int, cache: "SetAssocCache") -> None:
        """Extract one restored L3.  L3 lines are never invalidated, so a
        set with non-default pLRU bits is always still occupied."""
        occupied = {set_index for set_index, _way in cache._where.values()}
        for set_index in occupied:
            for way, tag in enumerate(cache._tags[set_index]):
                if tag is not None:
                    self.tags[trial, set_index, way] = tag
            bits = typing.cast(list, cache._meta[set_index])
            self.bits[trial, set_index, : len(bits)] = bits


class LockstepState:
    """The full mutable state of one batch group, ``[trial, ...]``-major."""

    def __init__(
        self,
        constants: GroupConstants,
        n_trials: int,
        cores: typing.Sequence[int],
        model_gpu: bool,
        dram_budget: int,
        llc_sets: int,
        ring_domains: typing.Sequence[str] = ("cpu", "gpu"),
    ) -> None:
        self.constants = constants
        self.n = n_trials
        self.ring_domains = tuple(ring_domains)
        self.l1 = {
            core: CacheArrays(n_trials, constants.l1_sets, constants.l1_ways)
            for core in cores
        }
        self.l2 = {
            core: CacheArrays(n_trials, constants.l2_sets, constants.l2_ways)
            for core in cores
        }
        self.l3 = (
            PlruArrays(n_trials, constants.l3_sets, constants.l3_ways)
            if model_gpu
            else None
        )
        self.llc = CacheArrays(n_trials, llc_sets, constants.llc_ways)
        self.llc_hits = np.zeros(n_trials, dtype=np.int64)
        self.llc_misses = np.zeros(n_trials, dtype=np.int64)
        self.llc_evictions = np.zeros(n_trials, dtype=np.int64)
        self.ring_busy_until = np.zeros(n_trials, dtype=np.int64)
        self.ring_transfers = {
            domain: np.zeros(n_trials, dtype=np.int64)
            for domain in self.ring_domains
        }
        self.ring_waited = {
            domain: np.zeros(n_trials, dtype=np.int64)
            for domain in self.ring_domains
        }
        self.dram_draws = np.zeros((n_trials, max(1, dram_budget)))
        self.dram_cursor = np.zeros(n_trials, dtype=np.int64)
        self.dram_accesses = np.zeros(n_trials, dtype=np.int64)
        self.dram_row_misses = np.zeros(n_trials, dtype=np.int64)
        self.dram_total_fs = np.zeros(n_trials, dtype=np.int64)
        # Monotonic touch counter shared by every LRU structure; relative
        # order per (trial, set) is all that matters.
        self.tick = 1
        self.ejected = np.zeros(n_trials, dtype=bool)

    def next_tick(self) -> int:
        tick = self.tick
        self.tick += 1
        return tick

    def load_soc(
        self,
        trial: int,
        soc: "SoC",
        cores: typing.Sequence[int],
        llc_global_map: typing.Mapping[int, int],
    ) -> bool:
        """Extract one restored machine into lane ``trial`` (warm fork).

        ``llc_global_map`` maps global LLC set indices to the lane's
        compact indices.  Returns ``False`` (caller ejects the lane,
        its half-written arrays are masked garbage) if the restored
        machine occupies an LLC set the lane's access pattern never
        touches — the compact arrays cannot represent it.
        """
        for core in cores:
            self.l1[core].load_from(trial, soc.cpu_caches[core].l1)
            self.l2[core].load_from(trial, soc.cpu_caches[core].l2)
        if self.l3 is not None:
            self.l3.load_from(trial, soc.gpu_l3._cache)
        sets_per_slice = soc.config.llc.sets_per_slice
        try:
            for slice_index in range(soc.config.llc.slices):
                base = slice_index * sets_per_slice
                slice_map = {
                    gset - base: compact
                    for gset, compact in llc_global_map.items()
                    if base <= gset < base + sets_per_slice
                }
                self.llc.load_from(
                    trial, soc.llc.slice_cache(slice_index), slice_map
                )
        except UnmappedSet:
            return False
        self.llc_hits[trial] = soc.llc.hits
        self.llc_misses[trial] = soc.llc.misses
        self.llc_evictions[trial] = sum(
            soc.llc.slice_cache(i).evictions
            for i in range(soc.config.llc.slices)
        )
        self.ring_busy_until[trial] = soc.ring._resource._busy_until
        for domain in self.ring_domains:
            self.ring_transfers[domain][trial] = soc.ring.transfers.get(domain, 0)
            self.ring_waited[domain][trial] = soc.ring.waited_fs.get(domain, 0)
        self.dram_accesses[trial] = soc.dram.accesses
        self.dram_row_misses[trial] = soc.dram.row_misses
        self.dram_total_fs[trial] = soc.dram.total_latency_fs
        return True
