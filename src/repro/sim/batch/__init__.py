"""Vectorized lockstep batch engine (see DESIGN §14).

Advances N near-identical trials in lockstep over ``[trial, ...]`` numpy
arrays instead of running each through its own discrete-event engine.
The serial engine remains the bit-exact reference oracle: every kernel's
outcomes are pinned byte-identical to it by the equivalence suite, and
``REPRO_BATCH=0`` (see :mod:`repro.sim.batch.gate`) routes everything
back through the serial path.

Only the gate is imported eagerly: the kernels pull in the analysis and
checkpoint layers, which themselves import :mod:`repro.exec` — so the
executor (which imports this package for its gate) loads the rest
lazily, and so does this ``__init__``.
"""

import typing

from repro.sim.batch.gate import enabled, forced, set_enabled

__all__ = [
    "REGISTRY",
    "batch_width",
    "enabled",
    "forced",
    "kernel_for",
    "kernel_key",
    "plan_groups",
    "run_batch_group",
    "set_enabled",
]

_LAZY = {
    "batch_width": "repro.sim.batch.engine",
    "plan_groups": "repro.sim.batch.engine",
    "run_batch_group": "repro.sim.batch.engine",
    "REGISTRY": "repro.sim.batch.kernels",
    "kernel_for": "repro.sim.batch.kernels",
    "kernel_key": "repro.sim.batch.kernels",
}


def __getattr__(name: str) -> typing.Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
