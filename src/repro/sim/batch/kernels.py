"""Lockstep kernels: vectorized replays of specific trial functions.

A kernel advances every trial of one *shape group* (identical params up
to the registered per-trial keys) through the same logical timeline the
serial engine would execute, but over ``[trial, ...]`` numpy arrays.
The contract is byte-exactness: for every trial the kernel completes,
its outcome dict must equal the serial oracle's bit for bit — the
equivalence suite (``tests/test_batch_lockstep.py``) pins this, and any
trial the kernel cannot prove it can replay faithfully is *ejected*
(returned as ``None``) for the caller to re-run serially.

The one kernel shipped here replays
:func:`repro.analysis.probe_sweep.probe_trial`.  Its legality argument:

* The trial's schedule is temporally disjoint — the trojan burst ends
  before the spy probe starts and the probe ends before the next slot —
  so within a trial the two agents never interleave and a slot folds
  into straight-line updates (trojan burst, then probe).  The kernel
  checks the disjointness *per trial per slot* from the actual clocks
  (strict inequalities; the equal-time boundary cases are bookkeeping
  only) and ejects any lane where it fails, so the assumption is
  enforced, never trusted.
* Trials are mutually independent, so lanes advance in lockstep with
  boolean masks carrying per-trial divergence (payload bits, ragged
  ``n_slots``, warm starts) and ejected lanes simply stop participating
  — their half-updated arrays are garbage no other lane can see.
* Every latency constant, rounding and state-update order is taken from
  the same config methods and replicated from the same access-path
  code the machine executes (see :mod:`repro.sim.batch.state`).

Two structural shortcuts make the kernel fast without bending the
contract:

* **Trojan private-cache elision (CPU trojan only).**  When the CPU
  trojan runs on its own core and touches more distinct lines per
  target set than either private level has ways, every one of its
  accesses provably misses L1 and L2: lines of one target set share an
  L1/L2 set (their set index is a low-bit mask of the same shifted
  address, gated on ``l1_sets``/``l2_sets`` dividing the LLC's
  ``sets_per_slice``), and between two accesses of the same line the
  burst issues ``T - 1 >= ways`` distinct same-set installs, each of
  which ages the line by one true-LRU rank — it is evicted before it
  recurs.  The trojan's private-cache state is then unobservable — no
  access ever hits it, nothing else reads it, and invalidations of it
  have no counters — so the kernel skips the arrays entirely and sends
  each trojan access straight down the miss path.  This holds across
  warm forks too: the serial prefix ran the same burst pattern, so the
  spacing argument spans the boundary.  The GPU L3's tree-pLRU gets no
  such theorem (its victim chain after the empty-fill phase revisits
  ways out of age order, so old lines *can* survive a full burst and
  hit) — GPU trojans keep their modeled L3.
* **Compact LLC.**  A trial only ever touches its target sets (a
  handful of the thousands of global sets), so per-lane global set
  indices are remapped to a dense range and the LLC arrays are sized at
  the handful.  Warm forks translate the restored machine's occupied
  sets through the same map and eject if anything falls outside it.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro import checkpoint as _checkpoint
from repro.analysis import probe_sweep as _ps
from repro.config import SoCConfig
from repro.exec.seeds import stable_digest
from repro.sim.batch.state import EMPTY, CacheArrays, GroupConstants, LockstepState
from repro.sim.rng import RngStreams
from repro.soc.mmu import Mmu

Params = typing.Dict[str, object]


# ----------------------------------------------------------------------
# Vectorized cache primitives (shared by every level)

_ARANGE = np.arange(0, dtype=np.int64)


def _arange(n: int) -> np.ndarray:
    """A cached ``arange`` prefix (row indices for fancy gathers)."""
    global _ARANGE
    if len(_ARANGE) < n:
        _ARANGE = np.arange(max(n, 1024), dtype=np.int64)
    return _ARANGE[:n]


def _fill(
    cache: CacheArrays,
    lanes: np.ndarray,
    sets: np.ndarray,
    paddr: np.ndarray,
    tick: int,
) -> None:
    """Fill one line per lane, dropping any victim silently (L1 path)."""
    tags = cache.tags[lanes, sets]
    empty = tags == EMPTY
    has_empty = empty.any(axis=1)
    if has_empty.all():
        way = empty.argmax(axis=1)
    elif not has_empty.any():
        way = cache.age[lanes, sets].argmin(axis=1)
    else:
        way = np.where(
            has_empty,
            empty.argmax(axis=1),
            cache.age[lanes, sets].argmin(axis=1),
        )
    cache.tags[lanes, sets, way] = paddr
    cache.age[lanes, sets, way] = tick


def _install(
    cache: CacheArrays,
    lanes: np.ndarray,
    sets: np.ndarray,
    paddr: np.ndarray,
    tick: int,
) -> typing.Tuple[np.ndarray, np.ndarray]:
    """Fill one line per lane; returns ``(evicted tags, victim-path mask)``.

    Replicates :meth:`repro.soc.cache.SetAssocCache._install`: first
    empty way in way order, else the true-LRU victim (``argmin`` age —
    valid because a full set has every way touched; see state module).
    The eviction counter increments only on the victim path, where the
    displaced tag is always valid.
    """
    m = len(lanes)
    tags = cache.tags[lanes, sets]
    empty = tags == EMPTY
    has_empty = empty.any(axis=1)
    if has_empty.all():
        way = empty.argmax(axis=1)
        evicted = np.full(m, EMPTY)
        victim = np.zeros(m, dtype=bool)
    elif not has_empty.any():
        way = cache.age[lanes, sets].argmin(axis=1)
        evicted = tags[_arange(m), way]
        victim = np.ones(m, dtype=bool)
    else:
        way = np.where(
            has_empty,
            empty.argmax(axis=1),
            cache.age[lanes, sets].argmin(axis=1),
        )
        evicted = np.where(has_empty, EMPTY, tags[_arange(m), way])
        victim = ~has_empty
    cache.tags[lanes, sets, way] = paddr
    cache.age[lanes, sets, way] = tick
    return evicted, victim


def _invalidate(
    cache: CacheArrays,
    lanes: np.ndarray,
    lines: np.ndarray,
    n_sets: int,
    offset_bits: int,
) -> None:
    """Drop ``lines`` from per-lane sets (ages untouched, like the oracle)."""
    live = lines != EMPTY
    if not live.any():
        return
    lanes = lanes[live]
    lines = lines[live]
    sets = (lines >> offset_bits) & (n_sets - 1)
    tags = cache.tags[lanes, sets]
    match = tags == lines[:, None]
    cache.tags[lanes, sets] = np.where(match, EMPTY, tags)


def _plru_touch(
    bits: np.ndarray, lanes: np.ndarray, sets: np.ndarray, ways: np.ndarray,
    levels: int,
) -> None:
    node = np.zeros(len(lanes), dtype=np.int64)
    for level in range(levels):
        side = (ways >> (levels - 1 - level)) & 1
        bits[lanes, sets, node] = 1 - side
        node = 2 * node + 1 + side


def _plru_victim(
    bits: np.ndarray, lanes: np.ndarray, sets: np.ndarray, levels: int
) -> np.ndarray:
    node = np.zeros(len(lanes), dtype=np.int64)
    way = np.zeros(len(lanes), dtype=np.int64)
    for _level in range(levels):
        side = bits[lanes, sets, node]
        way = (way << 1) | side
        node = 2 * node + 1 + side
    return way


# ----------------------------------------------------------------------
# Per-trial setup


class _TrialLane:
    """One trial's scalar setup: placement, payload, prefix, RNG."""

    def __init__(
        self,
        params: Params,
        seed: int,
        config_template: typing.Optional[SoCConfig] = None,
    ) -> None:
        self.params = _ps.merged_params(params)
        self.seed = seed
        if config_template is None:
            self.config = _ps.soc_config(self.params, seed)
        else:
            # Within a shape group the seed is the only config field that
            # varies (``soc_config`` threads it into ``SoCConfig.seed``
            # verbatim and nowhere else), so one template serves all lanes.
            self.config = dataclasses.replace(config_template, seed=seed)
        self.n_slots = int(typing.cast(int, self.params["n_slots"]))
        self.bits = _ps.payload_bits(seed, self.n_slots)
        self.unsupported = False
        doc = _checkpoint.resolve_state(params)
        if doc is None:
            rng = RngStreams(self.config.seed)
            mmu = Mmu(self.config.mmu, rng.stream("mmu"))
            layout = _ps.resolve_layout(self.config, self.params, mmu)
            self.trojan_lines = layout.trojan_lines
            self.spy_sets = layout.spy_sets
            self.targets = layout.targets
            self.dram_rng = rng.stream("dram")
            self.start_slot = 0
            self.probe_prefix: typing.List[typing.List[int]] = []
            self.trojan_fs0 = 0
            self.clock0 = 0
            self.soc = None
        else:
            # Warm fork: restore the machine once (the checkpoint layer's
            # own path) and extract its arrays; the doc carries the lines.
            plan = _ps.plan_from_doc(params, seed, doc)
            self.soc = plan.soc
            self.trojan_lines = plan.trojan_lines
            self.spy_sets = plan.spy_sets
            self.targets = plan.targets
            self.dram_rng = plan.soc.rng.stream("dram")
            self.start_slot = plan.start_slot
            self.probe_prefix = [list(row) for row in plan.probe]
            self.trojan_fs0 = plan.trojan_fs
            self.clock0 = plan.soc.engine.now
            if plan.soc.llc_partition is not None or any(
                until > self.clock0 for until in plan.soc._core_stall_until
            ):
                self.unsupported = True


# ----------------------------------------------------------------------
# The probe-sweep kernel


class ProbeSweepKernel:
    """Vectorized replay of ``probe_sweep.probe_trial`` (see module doc)."""

    fn_key = "repro.analysis.probe_sweep:probe_trial"

    @staticmethod
    def supports(params: Params) -> bool:
        """Whether a trial with these params is lockstep-replayable.

        Gaussian DRAM jitter draws are latency-dependent in count, which
        would couple lanes to their own history in ways the pre-drawn
        uniform block cannot express — those trials stay serial.
        """
        try:
            p = _ps.merged_params(dict(params))
        except Exception:
            return False
        return float(typing.cast(float, p["dram_jitter_ns"])) == 0.0

    @staticmethod
    def group_key(params: Params) -> str:
        """Shape digest: everything but the registered per-trial keys."""
        p = _ps.merged_params(dict(params))
        shape = {k: v for k, v in p.items() if k not in _ps.VARIABLE_KEYS}
        return stable_digest((ProbeSweepKernel.fn_key, sorted(shape.items())))

    @staticmethod
    def lane_footprint_bytes(params: Params) -> int:
        """Per-lane state-array bytes (drives lane-width auto-tuning).

        Sums the int64 arrays ``run`` allocates per trial — private
        caches, GPU L3, compact LLC, the DRAM uniform block, probe
        accumulators.  An estimate of allocation, not a promise.
        """
        p = _ps.merged_params(dict(params))
        config = _ps.soc_config(p, 0)
        n_sets = int(typing.cast(int, p["target_sets"]))
        t_per = int(typing.cast(int, p["trojan_lines_per_set"]))
        s_per = int(typing.cast(int, p["spy_lines_per_set"]))
        n_slots = int(typing.cast(int, p["n_slots"]))
        cpu = config.cpu_cache
        cells = 2 * 2 * (  # two cores' L1+L2, tags + ages
            cpu.l1_sets * cpu.l1_ways + cpu.l2_sets * cpu.l2_ways
        )
        if p["trojan"] == "gpu":
            cells += config.gpu_l3.total_sets * (2 * config.gpu_l3.ways - 1)
        cells += 2 * n_sets * config.llc.ways  # compact LLC tags + ages
        cells += n_slots * n_sets * (t_per + s_per)  # DRAM uniform block
        cells += n_slots * (n_sets + 1)  # probe values + payload
        cells += n_sets * (t_per + s_per) * 3  # line paddrs + set indices
        cells += 32  # clocks, cursors, counters
        return 8 * cells

    def run(
        self, trials: typing.Sequence[typing.Tuple[Params, int]]
    ) -> typing.Tuple[typing.List[typing.Optional[Params]], typing.Dict[str, int]]:
        """Advance all trials in lockstep.

        Returns ``(outcomes, sim)`` where ``outcomes[i]`` is the trial's
        outcome dict or ``None`` if the lane was ejected (divergence, a
        failed disjointness check, an unsupported warm state); ``sim``
        credits the work done in census terms (one event per simulated
        access — a strict lower bound on the serial engine's count).
        """
        lanes: typing.List[_TrialLane] = []
        template: typing.Optional[SoCConfig] = None
        for p0, s0 in trials:
            lane = _TrialLane(dict(p0), s0, template)
            if template is None:
                template = lane.config
            lanes.append(lane)
        n = len(lanes)
        first = lanes[0]
        config = first.config
        const = GroupConstants.from_config(config)
        p = first.params
        n_sets = int(typing.cast(int, p["target_sets"]))
        n_spy = int(typing.cast(int, p["spy_lines_per_set"]))
        use_gpu = p["trojan"] == "gpu"
        trojan_core = int(typing.cast(int, p["trojan_core"]))
        spy_core = int(typing.cast(int, p["spy_core"]))
        slot_fs = round(float(typing.cast(float, p["slot_ns"])) * _ps.FS_PER_NS)
        off_fs = round(
            float(typing.cast(float, p["spy_offset_ns"])) * _ps.FS_PER_NS
        )

        n_slots = np.array([lane.n_slots for lane in lanes], dtype=np.int64)
        start_slot = np.array([lane.start_slot for lane in lanes], dtype=np.int64)
        max_slots = int(n_slots.max()) if n else 0
        bits = np.zeros((n, max_slots), dtype=bool)
        diverge = np.full(n, -1, dtype=np.int64)
        for i, lane in enumerate(lanes):
            bits[i, : lane.n_slots] = lane.bits
            div = lane.params["divergence_slot"]
            if div is not None:
                diverge[i] = int(typing.cast(int, div))

        # Line placement and precomputed per-line set indices.
        troj = np.array([lane.trojan_lines for lane in lanes], dtype=np.int64)
        spy = np.array([lane.spy_sets for lane in lanes], dtype=np.int64)
        off = const.offset_bits
        t_per_set = troj.shape[1] // n_sets

        def l1_set(a: np.ndarray) -> np.ndarray:
            return (a >> off) & (const.l1_sets - 1)

        def l2_set(a: np.ndarray) -> np.ndarray:
            return (a >> off) & (const.l2_sets - 1)

        def llc_gset(a: np.ndarray) -> np.ndarray:
            slices = _ps.slice_of_lines(config, a)
            local = (a >> off) & (const.llc_sets_per_slice - 1)
            return slices * const.llc_sets_per_slice + local

        def l3_set(a: np.ndarray) -> np.ndarray:
            return (a >> off) & (const.l3_sets - 1)

        troj_llc = llc_gset(troj)
        spy_llc = llc_gset(spy)
        spy_l1 = l1_set(spy)
        spy_l2 = l2_set(spy)

        # Trojan private-cache elision (see module docstring for the
        # always-miss proof).  With it, the trojan's side of the machine
        # reduces to the miss path and its cache arrays vanish.
        elide_trojan = (
            not use_gpu
            and trojan_core != spy_core
            and t_per_set > const.l1_ways
            and t_per_set > const.l2_ways
            and const.l1_sets <= const.llc_sets_per_slice
            and const.l2_sets <= const.llc_sets_per_slice
        )
        if use_gpu or elide_trojan:
            cores: typing.List[int] = sorted({spy_core})
        else:
            cores = sorted({trojan_core, spy_core})
        if not elide_trojan:
            if use_gpu:
                troj_l3 = l3_set(troj)
                troj_l1 = troj_l2 = None
            else:
                troj_l1 = l1_set(troj)
                troj_l2 = l2_set(troj)
                troj_l3 = None

        # Compact LLC: remap each lane's global set indices onto a dense
        # range so the arrays hold only the touched sets.
        troj_cset = np.empty_like(troj_llc)
        spy_cset = np.empty_like(spy_llc)
        llc_maps: typing.List[typing.Dict[int, int]] = []
        n_used = 1
        for i in range(n):
            uniq = np.unique(
                np.concatenate((troj_llc[i], spy_llc[i].ravel()))
            )
            llc_maps.append({int(g): k for k, g in enumerate(uniq)})
            troj_cset[i] = np.searchsorted(uniq, troj_llc[i])
            spy_cset[i] = np.searchsorted(uniq, spy_llc[i].ravel()).reshape(
                spy_llc[i].shape
            )
            n_used = max(n_used, len(uniq))

        # Per-trial DRAM uniforms: one block draw consumes PCG64 exactly
        # like the oracle's single draws; over-drawing is unobservable
        # because nothing reads the stream after the trial.
        budget = np.maximum(
            (n_slots - start_slot) * n_sets * (t_per_set + n_spy),
            1,
        )
        state = LockstepState(
            const,
            n,
            cores,
            use_gpu and not elide_trojan,
            int(budget.max()),
            n_used,
        )
        for i, lane in enumerate(lanes):
            state.dram_draws[i, : budget[i]] = lane.dram_rng.random(int(budget[i]))
            if lane.soc is not None and not lane.unsupported:
                if not state.load_soc(i, lane.soc, cores, llc_maps[i]):
                    lane.unsupported = True
            state.ejected[i] = lane.unsupported
        clk_t = np.array([lane.clock0 for lane in lanes], dtype=np.int64)
        clk_s = clk_t.copy()
        trojan_acc = np.zeros(n, dtype=np.int64)
        probe_vals = np.zeros((n, max_slots, n_sets), dtype=np.int64)
        self._ops = 0
        if use_gpu:
            t_pre, t_tail = const.gpu_pre_fs, const.gpu_tail_base_fs
            t_domain = "gpu"
        else:
            t_pre, t_tail = const.cpu_pre_fs, const.cpu_tail_base_fs
            t_domain = "cpu"

        for s in range(max_slots):
            live = ~state.ejected & (s >= start_slot) & (s < n_slots)
            if not live.any():
                continue
            state.ejected |= live & (diverge == s)
            live &= diverge != s
            t_slot = s * slot_fs
            np.maximum(clk_t, t_slot, out=clk_t, where=live)
            transmit = live & bits[:, s]
            # Disjointness check, trojan side: the spy must have finished
            # its previous probe before a transmitting trojan starts.
            overlap = transmit & (clk_t < clk_s)
            state.ejected |= overlap
            live &= ~overlap
            transmit &= ~overlap
            if transmit.any():
                lanes_t = np.nonzero(transmit)[0]
                for j in range(troj.shape[1]):
                    if elide_trojan:
                        self._ops += len(lanes_t)
                        lat = self._miss_path(
                            state, lanes_t, troj[lanes_t, j],
                            troj_cset[lanes_t, j], t_domain, t_pre, t_tail,
                            cores, clk_t,
                        )
                        clk_t[lanes_t] += lat
                    elif use_gpu:
                        lat = self._gpu_access(
                            state, lanes_t, troj[lanes_t, j],
                            troj_l3[lanes_t, j], troj_cset[lanes_t, j],
                            cores, clk_t,
                        )
                    else:
                        lat = self._cpu_access(
                            state, lanes_t, troj[lanes_t, j],
                            troj_l1[lanes_t, j], troj_l2[lanes_t, j],
                            troj_cset[lanes_t, j], trojan_core, cores, clk_t,
                        )
                    trojan_acc[lanes_t] += lat
            np.maximum(clk_s, t_slot + off_fs, out=clk_s, where=live)
            # Disjointness check, spy side: the trojan burst must have
            # ended before the probe starts.
            overlap = live & (clk_s < clk_t)
            state.ejected |= overlap
            live &= ~overlap
            if not live.any():
                continue
            lanes_s = np.nonzero(live)[0]
            for set_i in range(n_sets):
                row = np.zeros(len(lanes_s), dtype=np.int64)
                for j in range(n_spy):
                    row += self._cpu_access(
                        state, lanes_s, spy[lanes_s, set_i, j],
                        spy_l1[lanes_s, set_i, j], spy_l2[lanes_s, set_i, j],
                        spy_cset[lanes_s, set_i, j], spy_core, cores, clk_s,
                    )
                probe_vals[lanes_s, s, set_i] = row

        outcomes: typing.List[typing.Optional[Params]] = []
        final_max = 0
        threshold = _ps.decode_threshold_fs(config)
        for i, lane in enumerate(lanes):
            if state.ejected[i]:
                outcomes.append(None)
                continue
            probe_rows = lane.probe_prefix + [
                [int(v) for v in probe_vals[i, s]]
                for s in range(lane.start_slot, lane.n_slots)
            ]
            final_now = int(max(clk_t[i], clk_s[i]))
            final_max = max(final_max, final_now)
            outcomes.append({
                "bits": list(lane.bits),
                "rx_bits": _ps.decode_probe(probe_rows, n_spy, threshold),
                "probe_fs": probe_rows,
                "trojan_fs": int(lane.trojan_fs0 + trojan_acc[i]),
                "final_now_fs": final_now,
                "targets": [list(t) for t in lane.targets],
                "llc": {
                    "hits": int(state.llc_hits[i]),
                    "misses": int(state.llc_misses[i]),
                    "evictions": int(state.llc_evictions[i]),
                },
                "dram": {
                    "accesses": int(state.dram_accesses[i]),
                    "row_misses": int(state.dram_row_misses[i]),
                    "total_latency_fs": int(state.dram_total_fs[i]),
                },
                "ring": {
                    "transfers": {
                        d: int(state.ring_transfers[d][i]) for d in ("cpu", "gpu")
                    },
                    "waited_fs": {
                        d: int(state.ring_waited[d][i]) for d in ("cpu", "gpu")
                    },
                },
            })
        sim = {
            "engines_created": 0,
            "events_executed": int(self._ops),
            "final_now_fs": final_max,
        }
        return outcomes, sim

    # ------------------------------------------------------------------
    # One access per lane, vectorized across lanes

    def _miss_path(
        self,
        state: LockstepState,
        lanes: np.ndarray,
        paddr: np.ndarray,
        cset: np.ndarray,
        domain: str,
        pre_fs: int,
        tail_base_fs: int,
        cores: typing.Sequence[int],
        clk: np.ndarray,
    ) -> np.ndarray:
        """Ring → LLC → DRAM for lanes whose private caches missed.

        Mirrors ``SoC._miss_path_fast``: the ring is reserved at the
        logical time t1 = t0 + pre; the LLC mutates at t3 = grant + hold;
        a DRAM draw happens only on an LLC miss.  Returns the total
        access latency per lane (``clk`` is *not* advanced here).
        """
        const = state.constants
        t1 = clk[lanes] + pre_fs
        waited = state.ring_busy_until[lanes] - t1
        np.maximum(waited, 0, out=waited)
        state.ring_busy_until[lanes] = t1 + waited + const.ring_hold_fs
        state.ring_transfers[domain][lanes] += 1
        state.ring_waited[domain][lanes] += waited
        lat = waited + (pre_fs + const.ring_hold_fs + tail_base_fs)
        tags = state.llc.tags[lanes, cset]
        match = tags == paddr[:, None]
        hit = match.any(axis=1)
        if hit.any():
            hl = lanes[hit]
            state.llc_hits[hl] += 1
            state.llc.age[hl, cset[hit], match[hit].argmax(axis=1)] = (
                state.next_tick()
            )
            if hit.all():
                return lat
        miss = ~hit
        nzm = np.nonzero(miss)[0]
        ml = lanes[nzm]
        state.llc_misses[ml] += 1
        evicted, victim = _install(
            state.llc, ml, cset[nzm], paddr[nzm], state.next_tick()
        )
        state.llc_evictions[ml] += victim
        # Inclusive back-invalidation into every core's private caches
        # (the GPU L3 is non-inclusive and keeps its copy).
        for core in cores:
            _invalidate(
                state.l1[core], ml, evicted, const.l1_sets, const.offset_bits
            )
            _invalidate(
                state.l2[core], ml, evicted, const.l2_sets, const.offset_bits
            )
        draw = state.dram_draws[ml, state.dram_cursor[ml]]
        state.dram_cursor[ml] += 1
        row_miss = draw >= const.row_hit_probability
        dram_fs = np.where(row_miss, const.dram_miss_fs, const.dram_hit_fs)
        state.dram_accesses[ml] += 1
        state.dram_row_misses[ml] += row_miss
        state.dram_total_fs[ml] += dram_fs
        lat[nzm] += dram_fs
        return lat

    def _cpu_access(
        self,
        state: LockstepState,
        lanes: np.ndarray,
        paddr: np.ndarray,
        s1: np.ndarray,
        s2: np.ndarray,
        cset: np.ndarray,
        core: int,
        cores: typing.Sequence[int],
        clk: np.ndarray,
    ) -> np.ndarray:
        """One CPU load per lane; advances ``clk`` and returns latencies."""
        const = state.constants
        self._ops += len(lanes)
        l1 = state.l1[core]
        tags1 = l1.tags[lanes, s1]
        match1 = tags1 == paddr[:, None]
        hit1 = match1.any(axis=1)
        if hit1.all():
            l1.age[lanes, s1, match1.argmax(axis=1)] = state.next_tick()
            lat = np.full(len(lanes), const.d1_fs, dtype=np.int64)
            clk[lanes] += lat
            return lat
        lat = np.empty(len(lanes), dtype=np.int64)
        if hit1.any():
            l1.age[lanes[hit1], s1[hit1], match1[hit1].argmax(axis=1)] = (
                state.next_tick()
            )
            lat[hit1] = const.d1_fs
        nz1 = np.nonzero(~hit1)[0]
        ml = lanes[nz1]
        mp = paddr[nz1]
        # The L1 fill happens before the L2 lookup (burst-path order);
        # its victim is silently dropped, exactly like l1.access().
        _fill(l1, ml, s1[nz1], mp, state.next_tick())
        l2 = state.l2[core]
        ms2 = s2[nz1]
        tags2 = l2.tags[ml, ms2]
        match2 = tags2 == mp[:, None]
        hit2 = match2.any(axis=1)
        if hit2.any():
            l2.age[ml[hit2], ms2[hit2], match2[hit2].argmax(axis=1)] = (
                state.next_tick()
            )
            lat[nz1[hit2]] = const.d2_fs
        miss2 = ~hit2
        if miss2.any():
            rl = ml[miss2]
            evicted, _ = _install(
                l2, rl, ms2[miss2], mp[miss2], state.next_tick()
            )
            # L2 eviction invalidates the same core's L1 copy only.
            _invalidate(l1, rl, evicted, const.l1_sets, const.offset_bits)
            lat[nz1[miss2]] = self._miss_path(
                state, rl, mp[miss2], cset[nz1[miss2]], "cpu",
                const.cpu_pre_fs, const.cpu_tail_base_fs, cores, clk,
            )
        clk[lanes] += lat
        return lat

    def _gpu_access(
        self,
        state: LockstepState,
        lanes: np.ndarray,
        paddr: np.ndarray,
        s3: np.ndarray,
        cset: np.ndarray,
        cores: typing.Sequence[int],
        clk: np.ndarray,
    ) -> np.ndarray:
        """One GPU load per lane through L3 → ring → LLC → DRAM."""
        const = state.constants
        self._ops += len(lanes)
        l3 = state.l3
        assert l3 is not None
        levels = const.l3_ways.bit_length() - 1
        lat = np.empty(len(lanes), dtype=np.int64)
        tags = l3.tags[lanes, s3]
        match = tags == paddr[:, None]
        hit = match.any(axis=1)
        if hit.any():
            _plru_touch(
                l3.bits, lanes[hit], s3[hit], match[hit].argmax(axis=1), levels
            )
            lat[hit] = const.d3_fs
        miss = ~hit
        if miss.any():
            ml = lanes[miss]
            ms = s3[miss]
            mtags = tags[miss]
            empty = mtags == EMPTY
            has_empty = empty.any(axis=1)
            way = np.where(
                has_empty,
                empty.argmax(axis=1),
                _plru_victim(l3.bits, ml, ms, levels),
            )
            # Non-inclusive: the displaced L3 line is silently dropped.
            l3.tags[ml, ms, way] = paddr[miss]
            _plru_touch(l3.bits, ml, ms, way, levels)
            lat[miss] = self._miss_path(
                state, ml, paddr[miss], cset[miss], "gpu",
                const.gpu_pre_fs, const.gpu_tail_base_fs, cores, clk,
            )
        clk[lanes] += lat
        return lat


def _contention_kernel() -> typing.Any:
    # Deferred: contention.py imports this module's primitives.
    from repro.sim.batch.contention import ContentionKernel

    return ContentionKernel()


#: Registry keyed by ``module:qualname`` of the trial function — string
#: keys so the executor can look kernels up without importing analysis
#: modules it does not need.
REGISTRY: typing.Dict[str, typing.Callable[[], typing.Any]] = {
    ProbeSweepKernel.fn_key: ProbeSweepKernel,
    "repro.analysis.contention_sweep:contention_trial": _contention_kernel,
}


def kernel_key(fn: typing.Callable) -> str:
    """The registry key of a trial function."""
    return f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', '?')}"


def kernel_for(fn: typing.Callable) -> typing.Optional[typing.Any]:
    """Instantiate the registered kernel for ``fn``, if any."""
    factory = REGISTRY.get(kernel_key(fn))
    return factory() if factory is not None else None
