"""Global switch for the vectorized lockstep batch engine.

The batch engine (:mod:`repro.sim.batch`) advances many near-identical
trials in lockstep over numpy arrays instead of running each through its
own discrete-event engine.  Its outcomes are pinned byte-identical to
the serial engine by the equivalence suite
(``tests/test_batch_lockstep.py``), mirroring the ``REPRO_FASTPATH=0``
contract: the per-trial engine stays the bit-exact reference oracle and
``REPRO_BATCH=0`` routes every trial back through it.

The flag is sampled by :class:`~repro.exec.TrialExecutor` at the start
of each :meth:`~repro.exec.TrialExecutor.run` call, so one executor run
is consistently batched or consistently serial; flipping the switch
mid-run only affects runs started afterwards.  Default is on; set
``REPRO_BATCH=0`` in the environment to disable batching.
"""

from __future__ import annotations

import contextlib
import os
import typing

_ENABLED = os.environ.get("REPRO_BATCH", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)


def enabled() -> bool:
    """Whether executor runs started now may batch trials in lockstep."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Set the default for executor runs started after this call."""
    global _ENABLED
    _ENABLED = bool(flag)


@contextlib.contextmanager
def forced(flag: bool) -> typing.Iterator[None]:
    """Temporarily force the flag (the equivalence suite's lever)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        _ENABLED = previous
