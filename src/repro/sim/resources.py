"""Time-multiplexed hardware resources.

The ring bus and the LLC slice ports are modeled as FIFO resources: a
request is granted immediately if the resource is idle, otherwise it queues.
The queueing delay a requester experiences is exactly the "contention" the
paper's second covert channel modulates (§IV).
"""

from __future__ import annotations

import collections
import typing

from repro.errors import SimulationError
from repro.sim.events import Event

if typing.TYPE_CHECKING:
    from repro.sim.engine import Engine


class FifoResource:
    """A single-server FIFO resource with occupancy accounting."""

    def __init__(self, engine: "Engine", name: str = "resource") -> None:
        self.engine = engine
        self.name = name
        self._busy = False
        # Each waiter is a (grant event, request time) pair; the request
        # time feeds the wait accounting without touching the event object
        # (Event has __slots__, so it cannot carry ad-hoc attributes).
        self._waiters: typing.Deque[typing.Tuple[Event, int]] = collections.deque()
        # Accounting for utilization / contention analysis.
        self.total_grants = 0
        self.total_wait_fs = 0
        self.total_hold_fs = 0
        self._granted_at = 0
        # Reservation ledger (fast path): the time the server frees up.
        self._busy_until = 0

    @property
    def busy(self) -> bool:
        """Whether the resource is currently held."""
        return self._busy or self.engine.now < self._busy_until

    @property
    def queue_length(self) -> int:
        """Number of requests waiting behind the current holder."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for the resource; the returned event triggers when granted."""
        now = self.engine.now
        event = Event(self.engine)
        if not self._busy:
            self._busy = True
            self._granted_at = now
            self.total_grants += 1
            event.succeed(now)
        else:
            self._waiters.append((event, now))
        return event

    def release(self) -> None:
        """Give the resource up, waking the next waiter if any."""
        if not self._busy:
            raise SimulationError(f"release of idle resource {self.name!r}")
        now = self.engine.now
        self.total_hold_fs += now - self._granted_at
        if self._waiters:
            event, requested_at = self._waiters.popleft()
            self.total_wait_fs += now - requested_at
            self._granted_at = now
            self.total_grants += 1
            event.succeed(now)
        else:
            self._busy = False

    def occupy(self, hold_fs: int) -> typing.Generator[Event, object, int]:
        """Acquire, hold for ``hold_fs``, release.

        Usable as ``waited = yield from resource.occupy(hold)``; returns the
        femtoseconds spent waiting in the queue (the contention delay).
        """
        requested_at = self.engine.now
        yield self.request()
        waited = self.engine.now - requested_at
        yield hold_fs
        self.release()
        return waited

    def reserve(self, hold_fs: int, at_fs: typing.Optional[int] = None) -> int:
        """Ledger-mode occupancy: grant, hold and release in one call.

        Books a FIFO occupancy of ``hold_fs`` requested at ``at_fs``
        (default: now) without any event traffic, returning the queueing
        delay the requester experiences — exactly what
        ``yield from occupy(hold_fs)`` would have returned, because FIFO
        service order is fully determined by request time.  The caller is
        responsible for simulating the returned wait plus the hold (one
        coalesced yield).  ``at_fs`` may lie in the future (a coalesced
        access path reserving at its logical request time); it must never
        precede an earlier reservation's request time.

        Event-mode (:meth:`request`/:meth:`release`) and ledger-mode use
        must not be mixed on one resource — a machine picks one mode at
        construction.
        """
        at = self.engine._now if at_fs is None else at_fs
        start = self._busy_until
        if start < at:
            start = at
        waited = start - at
        self._busy_until = start + hold_fs
        self.total_grants += 1
        self.total_wait_fs += waited
        self.total_hold_fs += hold_fs
        return waited

    def state_dict(self) -> dict:
        """Serializable ledger + accounting state; requires an idle server.

        Waiter events reference live process frames, so snapshotting is
        only defined when the grant queue is empty and no event-mode hold
        is outstanding (the :mod:`repro.checkpoint` quiescence contract).
        """
        if self._busy or self._waiters:
            raise SimulationError(
                f"resource {self.name!r} is not quiescent "
                f"(busy={self._busy}, waiters={len(self._waiters)})"
            )
        return {
            "total_grants": self.total_grants,
            "total_wait_fs": self.total_wait_fs,
            "total_hold_fs": self.total_hold_fs,
            "granted_at": self._granted_at,
            "busy_until": self._busy_until,
        }

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if self._busy or self._waiters:
            raise SimulationError(
                f"cannot load state into busy resource {self.name!r}"
            )
        self.total_grants = int(state["total_grants"])
        self.total_wait_fs = int(state["total_wait_fs"])
        self.total_hold_fs = int(state["total_hold_fs"])
        self._granted_at = int(state["granted_at"])
        self._busy_until = int(state["busy_until"])

    def utilization(self) -> float:
        """Fraction of elapsed simulation time the resource was held."""
        if self.engine.now == 0:
            return 0.0
        held = self.total_hold_fs
        if self._busy:
            held += self.engine.now - self._granted_at
        # Ledger mode books whole holds up front; exclude the unexpired
        # overhang so mid-hold reads match event-mode partial accounting.
        overhang = self._busy_until - self.engine.now
        if overhang > 0:
            held -= overhang
        return held / self.engine.now


class Semaphore:
    """A counting resource: up to ``capacity`` holders at once, FIFO queue.

    Models structures that host several concurrent occupants — e.g. the
    hardware-thread budget of a GPU subslice across resident work-groups.
    """

    def __init__(self, engine: "Engine", capacity: int, name: str = "semaphore") -> None:
        if capacity < 1:
            raise SimulationError("semaphore capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: typing.Deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for one slot; the returned event triggers when granted."""
        event = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self.engine.now)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle semaphore {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed(self.engine.now)
        else:
            self._in_use -= 1


class TokenBucket:
    """A rate limiter used by background-noise agents.

    Tokens accrue at ``rate_per_s`` and the bucket holds at most ``burst``
    tokens.  :meth:`next_delay_fs` returns how long a caller must wait
    before its next permitted action.
    """

    def __init__(self, engine: "Engine", rate_per_s: float, burst: int = 1) -> None:
        if rate_per_s <= 0:
            raise SimulationError("token rate must be positive")
        self.engine = engine
        self.rate_per_s = rate_per_s
        self.burst = max(1, int(burst))
        self._tokens = float(self.burst)
        self._last_fs = engine.now

    def _refill(self) -> None:
        from repro.sim import FS_PER_S

        elapsed = self.engine.now - self._last_fs
        self._last_fs = self.engine.now
        self._tokens = min(
            float(self.burst), self._tokens + elapsed * self.rate_per_s / FS_PER_S
        )

    def next_delay_fs(self) -> int:
        """Consume one token, returning the wait (0 if one was available)."""
        from repro.sim import FS_PER_S

        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0
        deficit = 1.0 - self._tokens
        self._tokens = 0.0
        return int(deficit * FS_PER_S / self.rate_per_s)
