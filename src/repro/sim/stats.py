"""Small statistics helpers used across the analysis layer."""

from __future__ import annotations

import math
import typing


class OnlineStats:
    """Welford's online mean/variance accumulator."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values: typing.Iterable[float]) -> None:
        """Fold an iterable of observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 when empty, like :attr:`mean`)."""
        return self._minimum if self.count else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 when empty, like :attr:`mean`)."""
        return self._maximum if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = OnlineStats()
        if self.count == 0:
            merged.count, merged._mean, merged._m2 = other.count, other._mean, other._m2
        elif other.count == 0:
            merged.count, merged._mean, merged._m2 = self.count, self._mean, self._m2
        else:
            total = self.count + other.count
            delta = other._mean - self._mean
            merged.count = total
            merged._mean = self._mean + delta * other.count / total
            merged._m2 = (
                self._m2 + other._m2 + delta * delta * self.count * other.count / total
            )
        # Merging two empty accumulators must stay in the empty state
        # (min/max sentinels untouched) rather than leak inf/-inf.
        merged._minimum = min(self._minimum, other._minimum)
        merged._maximum = max(self._maximum, other._maximum)
        return merged

    def state_dict(self) -> typing.Dict[str, typing.Optional[float]]:
        """Exact accumulator state as a JSON-able dict.

        The empty accumulator's ``±inf`` min/max sentinels are encoded as
        ``None`` (JSON has no infinities).
        """
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "min": None if self.count == 0 else self._minimum,
            "max": None if self.count == 0 else self._maximum,
        }

    def load_state(self, state: typing.Dict[str, typing.Optional[float]]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.count = int(state["count"])  # type: ignore[arg-type]
        self._mean = float(state["mean"])  # type: ignore[arg-type]
        self._m2 = float(state["m2"])  # type: ignore[arg-type]
        self._minimum = math.inf if state["min"] is None else float(state["min"])
        self._maximum = -math.inf if state["max"] is None else float(state["max"])

    def snapshot(self) -> typing.Dict[str, float]:
        """The accumulator as a plain dict (metrics-registry export)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }

    #: Alias used by dict-shaped consumers (the metrics registry).
    as_dict = snapshot


def confidence_interval_95(values: typing.Sequence[float]) -> typing.Tuple[float, float]:
    """Return ``(mean, half_width)`` of a normal-approximation 95% CI.

    Matches the paper's presentation ("a confidence interval of 95% over
    1000 runs").  For a single sample the half-width is 0.
    """
    n = len(values)
    if n == 0:
        return (0.0, 0.0)
    mean = sum(values) / n
    if n == 1:
        return (mean, 0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = 1.96 * math.sqrt(variance / n)
    return (mean, half_width)


def percentile(values: typing.Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    frac = position - low
    # a + frac*(b - a) stays inside [a, b] even when a == b; the weighted
    # form a*(1-frac) + b*frac can round just below a for equal values.
    return ordered[low] + frac * (ordered[high] - ordered[low])
