"""The event loop at the heart of the simulator.

The engine owns a priority queue of ``(time_fs, sequence, action)`` entries.
Ties on time break on insertion order, which makes every run fully
deterministic for a given seed — a property the tests rely on.

Every covert-channel trial pays for millions of trips through this loop, so
:meth:`Engine.run` and :meth:`Engine.run_until_complete` inline the work of
:meth:`Engine.step` with the queue, ``heappop`` and the trace sink bound to
locals.  The inlined loops and ``step()`` must stay behaviourally identical:
time never goes backwards (``schedule`` rejects negative delays, so the heap
order guarantees it), ``events_executed`` counts every action, and the
``engine.step`` trace event fires per action when a sink is armed.
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.obs.census import note_engine
from repro.obs.recorder import recorder as _recorder
from repro.sim.events import _PENDING, Event, Timeout

Action = typing.Callable[[], None]


class Engine:
    """A deterministic discrete-event scheduler with femtosecond time."""

    def __init__(self) -> None:
        self._now = 0
        self._sequence = 0
        self._queue: typing.List[typing.Tuple[int, int, Action]] = []
        self._events_executed = 0
        # Observability hooks resolve once, here; the disabled path adds
        # a single `is None` check to step() and nothing else.
        self._trace = _recorder.sink_for("engine.step")
        note_engine(self)

    @property
    def now(self) -> int:
        """Current simulation time in femtoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of scheduled actions executed so far."""
        return self._events_executed

    @property
    def quiescent(self) -> bool:
        """True when no actions are scheduled (a checkpointable barrier)."""
        return not self._queue

    def state_dict(self) -> dict:
        """Serializable scheduler state; only valid at a quiescent point.

        The queue holds bound callbacks into live generator frames, which
        cannot be serialized — snapshotting is only defined when it is
        empty (see :mod:`repro.checkpoint`).
        """
        if self._queue:
            raise SimulationError(
                f"engine is not quiescent: {len(self._queue)} actions pending"
            )
        return {
            "now": self._now,
            "sequence": self._sequence,
            "events_executed": self._events_executed,
        }

    def load_state(self, state: dict) -> None:
        """Restore scheduler state captured by :meth:`state_dict`."""
        if self._queue:
            raise SimulationError(
                f"cannot load state into a busy engine: {len(self._queue)} pending"
            )
        self._now = int(state["now"])
        self._sequence = int(state["sequence"])
        self._events_executed = int(state["events_executed"])

    def schedule(self, delay_fs: int, action: Action) -> None:
        """Run ``action`` after ``delay_fs`` femtoseconds."""
        if delay_fs < 0:
            raise SimulationError(f"cannot schedule in the past: {delay_fs}")
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._queue, (self._now + int(delay_fs), sequence, action))

    def timeout(self, delay_fs: int, value: object = None) -> Timeout:
        """Create a :class:`Timeout` event on this engine."""
        return Timeout(self, delay_fs, value)

    def event(self) -> Event:
        """Create a plain, manually-triggered event on this engine."""
        return Event(self)

    def process(self, generator: typing.Generator) -> "Process":
        """Spawn a :class:`~repro.sim.process.Process` from a generator."""
        from repro.sim.process import Process

        return Process(self, generator)

    def step(self) -> bool:
        """Execute the next scheduled action.  Returns False if none left."""
        if not self._queue:
            return False
        time_fs, _seq, action = heapq.heappop(self._queue)
        if time_fs < self._now:
            raise SimulationError("event queue time went backwards")
        self._now = time_fs
        self._events_executed += 1
        if self._trace is not None:
            self._trace.emit("engine.step", time_fs, "engine", None)
        action()
        return True

    def run(self, until_fs: typing.Optional[int] = None) -> int:
        """Drain the event queue, optionally stopping at ``until_fs``.

        Returns the simulation time when the run stopped.  When ``until_fs``
        is given, time is advanced to exactly ``until_fs`` even if the last
        executed event was earlier.
        """
        queue = self._queue
        heappop = heapq.heappop
        trace = self._trace
        executed = 0
        if until_fs is None:
            try:
                while queue:
                    time_fs, _seq, action = heappop(queue)
                    if time_fs < self._now:
                        raise SimulationError("event queue time went backwards")
                    self._now = time_fs
                    executed += 1
                    if trace is not None:
                        trace.emit("engine.step", time_fs, "engine", None)
                    action()
            finally:
                self._events_executed += executed
            return self._now
        if until_fs < self._now:
            raise SimulationError("run target is in the past")
        try:
            while queue and queue[0][0] <= until_fs:
                time_fs, _seq, action = heappop(queue)
                if time_fs < self._now:
                    raise SimulationError("event queue time went backwards")
                self._now = time_fs
                executed += 1
                if trace is not None:
                    trace.emit("engine.step", time_fs, "engine", None)
                action()
        finally:
            self._events_executed += executed
        self._now = until_fs
        return self._now

    def run_until_complete(self, event: Event, limit_fs: typing.Optional[int] = None) -> object:
        """Run until ``event`` triggers and return its value.

        Raises :class:`SimulationError` if the queue drains (deadlock) or the
        optional time ``limit_fs`` passes before the event triggers.
        """
        queue = self._queue
        heappop = heapq.heappop
        trace = self._trace
        executed = 0
        try:
            while event._value is _PENDING:
                if not queue:
                    from repro.errors import DeadlockError

                    raise DeadlockError("event queue drained before event triggered")
                if limit_fs is not None and queue[0][0] > limit_fs:
                    raise SimulationError(
                        f"event did not trigger before limit ({limit_fs} fs)"
                    )
                time_fs, _seq, action = heappop(queue)
                if time_fs < self._now:
                    raise SimulationError("event queue time went backwards")
                self._now = time_fs
                executed += 1
                if trace is not None:
                    trace.emit("engine.step", time_fs, "engine", None)
                action()
        finally:
            self._events_executed += executed
        return event._value
