"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation entered an invalid state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class ObservabilityError(ReproError):
    """Invalid use of the tracing/metrics layer (double install, ...)."""


class CheckpointError(ReproError):
    """A snapshot/restore operation is invalid (schema, config, quiescence)."""


class MemoryModelError(ReproError):
    """An address, page, or buffer operation is invalid."""


class AllocationError(MemoryModelError):
    """The MMU could not satisfy an allocation request."""


class CacheGeometryError(MemoryModelError):
    """A cache was configured with an impossible geometry."""

class GpuModelError(ReproError):
    """Invalid use of the GPU execution model (dispatch, work-groups...)."""


class KernelLaunchError(GpuModelError):
    """A kernel launch violated device limits."""


class AttackError(ReproError):
    """An attack-layer operation (eviction sets, channels) failed."""


class EvictionSetError(AttackError):
    """An eviction set could not be constructed or verified."""


class CalibrationError(AttackError):
    """Channel calibration (e.g. iteration-factor search) failed."""


class ChannelProtocolError(AttackError):
    """The covert-channel protocol lost synchronization unrecoverably."""


class ReverseEngineeringError(AttackError):
    """A reverse-engineering procedure could not recover the structure."""
