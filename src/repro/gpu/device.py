"""GPU device: topology, the global thread dispatcher, kernel launches.

Launch semantics follow §II-A and the threat model (§II-B):

* the global thread dispatcher assigns work-groups to subslices in
  round-robin order (discovered experimentally by the authors);
* work-groups mapped to the same subslice serialize; distinct subslices
  execute concurrently;
* the device runs a single compute kernel at a time — current iGPUs
  "are not capable of running multiple computation kernels from separate
  contexts concurrently", which is why the GPU side of the attack is
  noise-free.
"""

from __future__ import annotations

import typing

from repro.errors import KernelLaunchError
from repro.gpu.kernel import KernelSpec
from repro.obs.recorder import recorder as _recorder
from repro.gpu.workgroup import WorkGroupCtx
from repro.sim import AllOf
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.resources import Semaphore

if typing.TYPE_CHECKING:
    from repro.soc.machine import SoC


class KernelInstance:
    """A launched kernel: completion event plus per-work-group results."""

    def __init__(self, device: "GpuDevice", spec: KernelSpec, args: tuple) -> None:
        self.device = device
        self.spec = spec
        soc = device.soc
        self.launched_fs = soc.engine.now
        self.assignments: typing.List[int] = []
        processes: typing.List[Process] = []
        for wg_id in range(spec.n_workgroups):
            subslice = device.next_subslice()
            self.assignments.append(subslice)
            ctx = WorkGroupCtx(
                soc,
                workgroup_id=wg_id,
                subslice=subslice,
                threads=spec.threads_per_workgroup,
                extra_timer_jitter=device.extra_timer_jitter,
            )
            processes.append(
                Process(soc.engine, self._run_workgroup(ctx, args))
            )
        self._barrier = AllOf(soc.engine, processes)
        self._barrier.subscribe(lambda _e: device._kernel_finished(self))

    def _run_workgroup(self, ctx: WorkGroupCtx, args: tuple) -> typing.Generator:
        # A subslice hosts a bounded number of resident work-groups
        # (hardware-thread budget); extra ones queue until a slot frees.
        semaphore = self.device.subslice_slots[ctx.subslice]
        yield semaphore.request()
        try:
            result = yield from self.spec.body(ctx, *args)
        finally:
            semaphore.release()
        return result

    @property
    def done(self) -> bool:
        return self._barrier.triggered

    @property
    def completion(self) -> Event:
        """Event triggering when every work-group has returned."""
        return self._barrier

    def results(self) -> typing.List[object]:
        """Per-work-group return values (kernel must be done)."""
        return typing.cast(list, self._barrier.value)

    def wait(self) -> typing.Generator[object, object, typing.List[object]]:
        """Generator form: ``results = yield from instance.wait()``."""
        values = yield self._barrier
        return typing.cast(list, values)


class GpuDevice:
    """The integrated GPU as a kernel-execution engine."""

    def __init__(self, soc: "SoC") -> None:
        self.soc = soc
        self.config = soc.config.gpu
        capacity = self.config.workgroups_per_subslice(
            self.config.max_threads_per_workgroup
        )
        self.subslice_slots = [
            Semaphore(soc.engine, capacity, name=f"subslice{i}")
            for i in range(self.config.total_subslices)
        ]
        self._dispatch_counter = 0
        self._running: typing.Optional[KernelInstance] = None
        #: Raised by the §VI timer-fuzzing mitigation.
        self.extra_timer_jitter = 0.0
        #: Modeled user-level launch overhead (driver + dispatch).
        self.launch_overhead_fs = soc.cpu_cycles_fs(30_000)
        # Resolved once; `None` keeps _kernel_finished's off path to one check.
        self._trace = _recorder.sink_for("gpu.kernel")

    def next_subslice(self) -> int:
        """Round-robin work-group placement (§II-A observation)."""
        subslice = self._dispatch_counter % self.config.total_subslices
        self._dispatch_counter += 1
        return subslice

    @property
    def busy(self) -> bool:
        """Whether a compute kernel is currently resident."""
        return self._running is not None and not self._running.done

    def launch(self, spec: KernelSpec, *args: object) -> KernelInstance:
        """Dispatch a kernel; raises if another kernel is resident."""
        spec.validate(self.config.max_threads_per_workgroup, self.config.wavefront_size)
        if self.busy:
            raise KernelLaunchError(
                "iGPU already runs a compute kernel; concurrent kernels from "
                "separate contexts are not supported (threat model §II-B)"
            )
        instance = KernelInstance(self, spec, args)
        self._running = instance
        return instance

    def launch_after_overhead(
        self, spec: KernelSpec, *args: object
    ) -> typing.Generator[object, object, KernelInstance]:
        """Launch including the host-side overhead; for CPU-process agents."""
        yield self.launch_overhead_fs
        return self.launch(spec, *args)

    def _kernel_finished(self, instance: KernelInstance) -> None:
        if self._running is instance:
            self._running = None
        if self._trace is not None:
            self._trace.emit(
                "gpu.kernel",
                instance.launched_fs,
                "gpu",
                {
                    "name": instance.spec.name,
                    "workgroups": instance.spec.n_workgroups,
                    "dur_fs": self.soc.engine.now - instance.launched_fs,
                },
            )
