"""The custom SLM-counter timer of §III-B.

OpenCL on Intel iGPUs exposes no user-level timestamp, so the paper builds
one: threads above the first wavefront spin incrementing a ``volatile
__local`` counter with ``atomic_add`` while the probing threads read it
before and after a memory access.  Because atomics to one SLM address
serialize, the aggregate increment rate rises with the number of counter
threads but saturates; we model

    rate(n) = saturated_rate * n / (n + half_rate_threads)   [ticks/GPU cycle]

so one wavefront (32 threads) yields a visibly coarser timer than the 224
counter threads the paper settles on — reproducing why a full work-group
was needed (Fig. 4's usable separation).

Reads are quantized (``floor``), carry multiplicative jitter, and are kept
monotonic.  The jitter is the modeled stand-in for the erratic counter
updates the paper works to avoid; the CPU→GPU channel's higher error rate
("misinterprets the misses as hits", §V) emerges from it.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.config import SlmConfig
from repro.errors import GpuModelError

if typing.TYPE_CHECKING:
    from repro.soc.machine import SoC


def counter_rate_per_cycle(config: SlmConfig, n_threads: int) -> float:
    """Aggregate increment rate for ``n_threads`` counter threads."""
    if n_threads <= 0:
        raise GpuModelError("the timer needs at least one counter thread")
    return (
        config.saturated_rate_per_cycle
        * n_threads
        / (n_threads + config.half_rate_threads)
    )


class SlmTimer:
    """A running counter kernel bound to one work-group's SLM."""

    def __init__(
        self,
        soc: "SoC",
        n_counter_threads: int,
        rng: typing.Optional[np.random.Generator] = None,
        extra_jitter_sigma: float = 0.0,
    ) -> None:
        self.soc = soc
        self.config = soc.config.slm
        self.n_counter_threads = n_counter_threads
        self.rate_per_cycle = counter_rate_per_cycle(self.config, n_counter_threads)
        self._rng = rng if rng is not None else soc.rng.stream("slm-timer")
        #: Per-read absolute noise in ticks; mitigations can raise it (§VI).
        self.read_noise_ticks = self.config.read_noise_ticks + extra_jitter_sigma
        self._started_fs = soc.now_fs
        self._last_value = 0
        self.reads = 0
        # Clock-domain drift (see repro.faults): a multiplicative rate
        # error applied piecewise.  The healthy path never touches the
        # accumulator, so simulations without drift are bit-identical to
        # the pre-drift implementation.
        self._drift = 1.0
        self._drift_active = False
        self._drift_accum_ticks = 0.0
        self._drift_mark_fs = self._started_fs
        registry = getattr(soc, "slm_timers", None)
        if registry is not None:
            registry.append(self)

    def restart(self) -> None:
        """Zero the counter (a fresh kernel launch)."""
        self._started_fs = self.soc.now_fs
        self._last_value = 0
        self._drift_accum_ticks = 0.0
        self._drift_mark_fs = self._started_fs

    def set_drift(self, factor: float) -> None:
        """Step the counter's effective rate to ``rate * factor``.

        Models clock-domain drift between the GPU clock feeding the SLM
        counter and the rest of the machine; ticks already accumulated are
        unaffected (the drift integrates piecewise from now on).
        """
        if factor <= 0:
            raise GpuModelError("drift factor must be positive")
        self._integrate_drift()
        self._drift = float(factor)
        self._drift_active = True

    @property
    def drift(self) -> float:
        """The currently applied rate multiplier (1.0 = no drift)."""
        return self._drift

    def _integrate_drift(self) -> None:
        now_fs = self.soc.now_fs
        cycles = (now_fs - self._drift_mark_fs) / self.soc.config.gpu_clock.cycle_fs
        self._drift_accum_ticks += self.rate_per_cycle * self._drift * cycles
        self._drift_mark_fs = now_fs

    def _value_now(self) -> int:
        """Sample the counter.

        The counter itself tracks true elapsed time (atomics to SLM are
        exact); noise enters per *read*: a small Gaussian wobble in when
        the read lands, and occasionally a stale snapshot when the reading
        thread is descheduled mid-read.  A stale end-timestamp shrinks a
        measured delta (a miss misread as a hit) but never inflates one,
        and reads immediately after a glitch see the true value again —
        so pacing loops built on the timer do not accumulate drift.
        """
        if self._drift_active:
            self._integrate_drift()
            value = self._drift_accum_ticks
        else:
            elapsed_fs = self.soc.now_fs - self._started_fs
            cycles = elapsed_fs / self.soc.config.gpu_clock.cycle_fs
            value = self.rate_per_cycle * cycles
        if (
            self.config.read_glitch_probability > 0
            and self._rng.random() < self.config.read_glitch_probability
        ):
            value -= self.config.glitch_lag_ticks
        if self.read_noise_ticks > 0:
            value += self._rng.normal(0.0, self.read_noise_ticks)
        # Monotonic: the underlying counter never runs backwards.
        result = max(self._last_value, int(value))
        self._last_value = result
        return result

    def read(self) -> typing.Generator[object, object, int]:
        """``atomic_add(counter, 0)``: costs one SLM access, returns ticks.

        SLM uses a dedicated data path (§III-D), so this read neither waits
        on nor perturbs the L3/ring traffic being measured.
        """
        self.reads += 1
        yield self.soc.gpu_cycles_fs(self.config.access_cycles)
        return self._value_now()

    def ticks_for_ns(self, ns: float) -> float:
        """Expected tick count for a given wall-clock duration (analysis)."""
        cycles = ns * 1e6 / self.soc.config.gpu_clock.cycle_fs
        return self.rate_per_cycle * cycles
