"""Work-group execution context.

A kernel body receives one of these per work-group.  It exposes the
memory-access primitives the attacks need:

* ``read`` — a single load by one thread;
* ``parallel_read`` — a batch of loads issued with the device's memory
  parallelism (the paper probes all 16 ways of an LLC set with 16 threads,
  §III-B/§III-E — this is the "GPU parallelism matches the CPU's higher
  serial rate" optimization);
* ``start_timer`` — spin up the §III-B SLM counter using the threads above
  the first wavefront.

All methods are generators meant for ``yield from`` inside a kernel body.
"""

from __future__ import annotations

import typing

from repro.errors import GpuModelError
from repro.sim import AllOf
from repro.sim.process import Process

if typing.TYPE_CHECKING:
    from repro.gpu.timer import SlmTimer
    from repro.soc.machine import SoC
    from repro.soc.slm import SharedLocalMemory


class WorkGroupCtx:
    """Execution context handed to a kernel body for one work-group."""

    def __init__(
        self,
        soc: "SoC",
        workgroup_id: int,
        subslice: int,
        threads: int,
        extra_timer_jitter: float = 0.0,
    ) -> None:
        self.soc = soc
        self.workgroup_id = workgroup_id
        self.subslice = subslice
        self.threads = threads
        self.wavefront_size = soc.config.gpu.wavefront_size
        self.mem_parallelism = soc.config.gpu.mem_parallelism
        self._issue_fs = soc.gpu_cycles_fs(soc.config.gpu.issue_cycles)
        self._extra_timer_jitter = extra_timer_jitter
        self.timer: typing.Optional["SlmTimer"] = None

    @property
    def slm(self) -> "SharedLocalMemory":
        """The SLM bank of the subslice this work-group landed on."""
        return self.soc.slm[self.subslice]

    @property
    def wavefronts(self) -> int:
        return (self.threads + self.wavefront_size - 1) // self.wavefront_size

    # ------------------------------------------------------------------
    # Memory primitives

    def read(self, paddr: int) -> typing.Generator[object, object, int]:
        """One load by a single thread; returns the latency in fs."""
        latency = yield from self.soc.gpu_access(paddr)
        return latency

    def _issue_after(self, delay_fs: int, paddr: int) -> typing.Generator:
        if delay_fs:
            yield delay_fs
        latency = yield from self.soc.gpu_access(paddr)
        return latency

    def parallel_read(
        self, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, typing.List[int]]:
        """Load every address, ``mem_parallelism`` at a time.

        Returns per-access latencies (fs).  Requests within one batch issue
        ``issue_cycles`` apart and overlap in the memory system; batches
        run back to back, modeling SIMT lock-step over the wavefronts.
        On a fast-path machine, an all-L3-hit batch commits analytically
        with one timed wait instead of a fan-out of child processes.
        """
        latencies: typing.List[int] = []
        engine = self.soc.engine
        fast = self.soc._fastpath
        for start in range(0, len(paddrs), self.mem_parallelism):
            batch = paddrs[start : start + self.mem_parallelism]
            if fast:
                folded = yield from self._parallel_read_fast(batch)
                if folded is not None:
                    latencies.extend(folded)
                    continue
            children = [
                Process(engine, self._issue_after(i * self._issue_fs, paddr))
                for i, paddr in enumerate(batch)
            ]
            results = yield AllOf(engine, children)
            latencies.extend(typing.cast(typing.List[int], results))
        return latencies

    def _parallel_read_fast(
        self, batch: typing.Sequence[int]
    ) -> typing.Generator[object, object, typing.Optional[typing.List[int]]]:
        """Analytic fast path for an all-L3-hit parallel batch.

        L3 hits never evict, so peeking membership of the whole batch is
        sound; commits then happen in issue order and every completion
        (hence every trace/metrics record) lands strictly ascending in the
        issue index.  Returns ``None`` — without yielding — when any line
        misses or a queued event falls inside the batch's span.
        """
        soc = self.soc
        engine = soc.engine
        l3 = soc.gpu_l3
        hit_fs = soc._l3_hit_fs
        issue_fs = self._issue_fs
        n = len(batch)
        t0 = engine._now
        t_end = t0 + (n - 1) * issue_fs + hit_fs
        queue = engine._queue
        if queue and queue[0][0] <= t_end:
            return None
        for paddr in batch:
            if not l3.contains(paddr):
                return None
        trace = soc._trace_cache
        hist = soc._lat_gpu
        for k, paddr in enumerate(batch):
            l3.access(paddr)
            if trace is not None:
                trace.emit("cache.access", t0 + k * issue_fs + hit_fs, "gpu",
                           {"level": "l3", "hit": True, "paddr": paddr})
            if hist is not None:
                hist.add(hit_fs / 1e6)
        yield t_end - t0
        return [hit_fs] * n

    def wait_cycles(self, cycles: float) -> typing.Generator:
        """Busy-wait for a number of GPU cycles."""
        yield self.soc.gpu_cycles_fs(cycles)

    def barrier(self) -> typing.Generator:
        """Work-group barrier; a few cycles of synchronization cost."""
        yield self.soc.gpu_cycles_fs(4)

    # ------------------------------------------------------------------
    # Custom timer (§III-B)

    def start_timer(
        self, counter_threads: typing.Optional[int] = None
    ) -> "SlmTimer":
        """Dedicate the threads above the first wavefront to the counter.

        With the default 256-thread work-group this leaves 224 counter
        threads, matching the paper.  Threads 0..wavefront-1 remain for
        probing (branch divergence serializes the two groups at the
        wavefront boundary, hence the split point).
        """
        from repro.gpu.timer import SlmTimer

        if counter_threads is None:
            counter_threads = self.threads - self.wavefront_size
        if counter_threads <= 0:
            raise GpuModelError(
                "no threads left for the counter: launch more than one wavefront"
            )
        if counter_threads > self.threads - self.wavefront_size:
            raise GpuModelError(
                f"only {self.threads - self.wavefront_size} threads are beyond "
                f"the first wavefront; cannot run {counter_threads} counters"
            )
        self.timer = SlmTimer(
            self.soc,
            counter_threads,
            rng=self.soc.rng.stream(f"slm-timer-wg{self.workgroup_id}"),
            extra_jitter_sigma=self._extra_timer_jitter,
        )
        return self.timer

    def read_timer(self) -> typing.Generator[object, object, int]:
        """Read the running counter (``atomic_add(counter, 0)``)."""
        if self.timer is None:
            raise GpuModelError("start_timer() before read_timer()")
        value = yield from self.timer.read()
        return value

    def timed_read(self, paddr: int) -> typing.Generator[object, object, int]:
        """Measure one load with the SLM timer; returns the tick delta."""
        start = yield from self.read_timer()
        yield from self.read(paddr)
        end = yield from self.read_timer()
        return end - start

    def timed_parallel_read(
        self, paddrs: typing.Sequence[int]
    ) -> typing.Generator[object, object, int]:
        """Measure a parallel batch with the SLM timer (tick delta)."""
        start = yield from self.read_timer()
        yield from self.parallel_read(paddrs)
        end = yield from self.read_timer()
        return end - start
