"""OpenCL-like user-level veneer.

The attacks are constrained to the user-level OpenCL API surface (§II-B):
buffer allocation with Shared Virtual Memory / zero-copy semantics, kernel
launch, and completion waits.  This module provides exactly those verbs on
top of the device model.  SVM is modeled faithfully: the GPU kernel shares
the launching process's :class:`~repro.soc.mmu.AddressSpace`, so virtual
*and* physical addresses coincide between the CPU and GPU views — the
property §III-C relies on to carry CPU-built eviction sets onto the GPU.
"""

from __future__ import annotations

import typing

from repro.errors import KernelLaunchError
from repro.gpu.device import GpuDevice, KernelInstance
from repro.gpu.kernel import KernelBody, KernelSpec
from repro.soc.mmu import AddressSpace, Buffer

if typing.TYPE_CHECKING:
    from repro.soc.machine import SoC


class OpenClContext:
    """One process's OpenCL context on the integrated device."""

    def __init__(self, soc: "SoC", device: GpuDevice, space: AddressSpace) -> None:
        self.soc = soc
        self.device = device
        self.space = space
        self._kernels: typing.List[KernelInstance] = []

    def svm_alloc(self, size: int, huge: bool = False) -> Buffer:
        """Allocate a zero-copy SVM buffer (same VA/PA on CPU and GPU)."""
        if huge:
            return self.space.mmap_huge(size)
        return self.space.mmap(size)

    def enqueue_nd_range(
        self,
        body: KernelBody,
        n_workgroups: int,
        threads_per_workgroup: int,
        *args: object,
        name: str = "kernel",
    ) -> KernelInstance:
        """Launch a kernel immediately (no host-side queueing model)."""
        spec = KernelSpec(
            body=body,
            n_workgroups=n_workgroups,
            threads_per_workgroup=threads_per_workgroup,
            name=name,
        )
        instance = self.device.launch(spec, *args)
        self._kernels.append(instance)
        return instance

    def finish(self) -> typing.Generator[object, object, None]:
        """Generator: wait for every enqueued kernel (clFinish)."""
        for instance in self._kernels:
            if not instance.done:
                yield instance.completion
        self._kernels.clear()

    def run_kernel_to_completion(
        self,
        body: KernelBody,
        n_workgroups: int,
        threads_per_workgroup: int,
        *args: object,
    ) -> typing.List[object]:
        """Blocking helper for host code outside the simulation: launch and
        drive the engine until the kernel completes, returning per-WG
        results."""
        instance = self.enqueue_nd_range(
            body, n_workgroups, threads_per_workgroup, *args
        )
        self.soc.engine.run_until_complete(instance.completion)
        return instance.results()

    def require_idle(self) -> None:
        """Assert no kernel is resident (used by tests of the threat model)."""
        if self.device.busy:
            raise KernelLaunchError("device still busy")
