"""GPU execution model: Gen9-style topology, dispatch, kernels, timer.

The iGPU is modeled structurally: a global thread dispatcher assigns
work-groups to subslices round-robin (the behaviour the paper discovered
experimentally, §II-A); work-groups on the same subslice serialize while
different subslices run concurrently; within a work-group, memory requests
issue with bounded parallelism (the 16-way parallel set probe of §III-E).

Kernels are written as Python generator functions taking a
:class:`~repro.gpu.workgroup.WorkGroupCtx`; launching them through the
OpenCL-like veneer in :mod:`repro.gpu.opencl` mirrors the user-level API
surface the attack is constrained to.
"""

from repro.gpu.device import GpuDevice, KernelInstance
from repro.gpu.kernel import KernelSpec
from repro.gpu.opencl import OpenClContext
from repro.gpu.timer import SlmTimer
from repro.gpu.workgroup import WorkGroupCtx

__all__ = [
    "GpuDevice",
    "KernelInstance",
    "KernelSpec",
    "OpenClContext",
    "SlmTimer",
    "WorkGroupCtx",
]
