"""Kernel descriptions.

A kernel is a Python generator function with signature
``body(wg: WorkGroupCtx, *args)``; each work-group executes one instance of
the body.  The body expresses *work-group level* behaviour — SIMD execution
within a wavefront is captured by the batch-access primitives of
:class:`~repro.gpu.workgroup.WorkGroupCtx` rather than by simulating every
thread individually.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import KernelLaunchError

KernelBody = typing.Callable[..., typing.Generator]


@dataclasses.dataclass(frozen=True)
class KernelSpec:
    """A kernel body plus its launch geometry."""

    body: KernelBody
    n_workgroups: int
    threads_per_workgroup: int
    name: str = "kernel"

    def validate(self, max_threads: int, wavefront: int) -> None:
        if self.n_workgroups <= 0:
            raise KernelLaunchError("need at least one work-group")
        if self.threads_per_workgroup <= 0:
            raise KernelLaunchError("need at least one thread per work-group")
        if self.threads_per_workgroup > max_threads:
            raise KernelLaunchError(
                f"{self.threads_per_workgroup} threads exceeds the device limit "
                f"of {max_threads} per work-group"
            )
        if self.threads_per_workgroup % wavefront:
            raise KernelLaunchError(
                f"threads per work-group must be a multiple of the wavefront "
                f"size ({wavefront})"
            )

    def wavefronts_per_workgroup(self, wavefront: int) -> int:
        """How many wavefronts one work-group occupies."""
        return (self.threads_per_workgroup + wavefront - 1) // wavefront
