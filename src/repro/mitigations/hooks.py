"""Mitigation hooks (§VI).

A mitigation is a function applied to the freshly wired (SoC, GpuDevice)
pair before a covert transmission starts.  The ablation benchmarks run
each channel with and without these hooks; a working mitigation either
kills the channel outright (the handshake watchdog trips) or drives the
error rate toward 50% (no mutual information).
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.sim import FS_PER_US
from repro.soc.ring import TdmSchedule

if typing.TYPE_CHECKING:
    from repro.gpu.device import GpuDevice
    from repro.soc.machine import SoC

Mitigation = typing.Callable[["SoC", "GpuDevice"], None]


def llc_way_partition(cpu_ways: typing.Optional[int] = None) -> Mitigation:
    """Static way-partitioning of the LLC between CPU and GPU.

    With disjoint fill partitions, a prime from one side can never evict
    the other side's lines — the PRIME+PROBE signal disappears and the
    handshake starves (§VI option 1).
    """

    def apply(soc: "SoC", device: "GpuDevice") -> None:
        total = soc.config.llc.ways
        share = cpu_ways if cpu_ways is not None else total // 2
        if not 0 < share < total:
            raise ConfigError(f"cpu_ways must be in (0, {total})")
        soc.set_llc_partition(
            cpu_ways=tuple(range(share)),
            gpu_ways=tuple(range(share, total)),
        )

    return apply


def ring_tdm(period_us: float = 1.0, cpu_share: float = 0.5) -> Mitigation:
    """Time-division multiplexing of the ring between the two domains.

    Each side only observes its own window's queueing, so the GPU's
    bursts stop modulating the CPU's access latency (§VI option 2).
    """

    def apply(soc: "SoC", device: "GpuDevice") -> None:
        soc.ring.tdm = TdmSchedule(
            period_fs=int(period_us * FS_PER_US), cpu_share=cpu_share
        )

    return apply


def timer_fuzzing(extra_noise_ticks: float = 40.0) -> Mitigation:
    """Degrade the GPU's custom timer (TimeWarp-style [31]).

    The SLM counter itself cannot be disabled — the paper notes this —
    but scheduling-level noise injection can blur every read far beyond
    the L3/LLC/DRAM separation the probes rely on.
    """

    def apply(soc: "SoC", device: "GpuDevice") -> None:
        if extra_noise_ticks < 0:
            raise ConfigError("extra noise must be >= 0")
        device.extra_timer_jitter = extra_noise_ticks

    return apply
