"""§VI mitigations, each with an ``apply`` hook the channels can inject.

* :func:`llc_way_partition` — static LLC partitioning (CAT-style): the
  Spy and Trojan can no longer replace each other's lines;
* :func:`ring_tdm` — time-division isolation of CPU and GPU traffic on
  the ring (the memory-controller isolation idea of [24], [38], [40]
  applied to the bus);
* :func:`timer_fuzzing` — degrade the SLM counter's read precision [31].

Each returns a callable ``(soc, device) -> None`` suitable for the
``mitigation`` field of the channel configs.
"""

from repro.mitigations.hooks import (
    Mitigation,
    llc_way_partition,
    ring_tdm,
    timer_fuzzing,
)

__all__ = ["Mitigation", "llc_way_partition", "ring_tdm", "timer_fuzzing"]
