"""repro — simulation-based reproduction of *Leaky Buddies* (ISCA 2021).

Cross-component covert channels on an integrated CPU-GPU system, rebuilt
on a cycle-approximate discrete-event simulator of the paper's testbed
(Kaby Lake i7-7700k + Gen9 iGPU).  See DESIGN.md for the substitution
rationale and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import LLCChannel, LLCChannelConfig
    result = LLCChannel(LLCChannelConfig()).transmit(n_bits=128)
    print(result.summary())
"""

from repro.config import (
    ObservabilityConfig,
    SoCConfig,
    kaby_lake,
    kaby_lake_model,
    scale_bytes,
)
from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.contention_channel import (
    CalibrationResult,
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.encoding import (
    bit_error_rate,
    bits_to_bytes,
    bytes_to_bits,
    random_bits,
)
from repro.core.evictionset import AddressPool, reduce_eviction_set
from repro.core.framing import decode_frame, encode_frame
from repro.core.llc_channel import (
    EvictionStrategy,
    LLCChannel,
    LLCChannelConfig,
)
from repro.core.llc_channel.bidirectional import BidirectionalLink
from repro.errors import ReproError
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext
from repro.mitigations import llc_way_partition, ring_tdm, timer_fuzzing
from repro.soc.machine import SoC

__version__ = "1.0.0"

__all__ = [
    "AddressPool",
    "BidirectionalLink",
    "CalibrationResult",
    "ChannelDirection",
    "ChannelResult",
    "ContentionChannel",
    "ContentionChannelConfig",
    "EvictionStrategy",
    "GpuDevice",
    "LLCChannel",
    "LLCChannelConfig",
    "ObservabilityConfig",
    "OpenClContext",
    "ReproError",
    "SoC",
    "SoCConfig",
    "bit_error_rate",
    "bits_to_bytes",
    "bytes_to_bits",
    "decode_frame",
    "encode_frame",
    "kaby_lake",
    "kaby_lake_model",
    "llc_way_partition",
    "random_bits",
    "reduce_eviction_set",
    "ring_tdm",
    "scale_bytes",
    "timer_fuzzing",
]
