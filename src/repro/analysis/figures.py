"""Per-figure harnesses: one function per evaluation artifact.

Each function runs the experiment at a configurable (defaulting to
bench-friendly) scale and returns a structured result with ``rows()`` for
text rendering and a ``paper`` dict recording the numbers the paper
reports, so EXPERIMENTS.md comparisons come straight from here.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.metrics import AggregateResult, aggregate_results
from repro.config import SoCConfig, kaby_lake_model
from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.llc_channel import EvictionStrategy, LLCChannel, LLCChannelConfig
from repro.core.reverse_engineering.timer_char import (
    TimerCharacterization,
    characterize_timer,
    resolution_sweep,
)
from repro.errors import ChannelProtocolError

KB = 1024
MB = 1024 * 1024


def _default_config() -> SoCConfig:
    return kaby_lake_model(scale=16)


# ----------------------------------------------------------------------
# Fig. 4 — custom timer characterization


@dataclasses.dataclass
class Fig4Data:
    main: TimerCharacterization
    sweep: typing.List[TimerCharacterization]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "claim": "access times from memory / LLC / L3 are clearly "
            "separated by the SLM-counter timer (224 counter threads)",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        rows: typing.List[typing.Tuple[object, ...]] = []
        for char in [self.main] + self.sweep:
            for level, mean, stdev in char.rows():
                rows.append(
                    (char.counter_threads, level, round(mean, 1), round(stdev, 2))
                )
        return rows


def fig4_timer_characterization(
    samples: int = 24,
    thread_counts: typing.Sequence[int] = (32, 96, 224),
    seed: int = 0,
) -> Fig4Data:
    """Fig. 4 plus the §III-B counter-thread ablation."""
    return Fig4Data(
        main=characterize_timer(samples=samples, seed=seed),
        sweep=resolution_sweep(thread_counts=thread_counts, samples=samples // 2,
                               seed=seed + 1),
    )


# ----------------------------------------------------------------------
# Fig. 7 — LLC channel bandwidth by eviction strategy


@dataclasses.dataclass
class StrategyPoint:
    strategy: EvictionStrategy
    direction: ChannelDirection
    aggregate: AggregateResult


@dataclasses.dataclass
class Fig7Data:
    points: typing.List[StrategyPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "full-l3-clear": "~1 kb/s",
            "llc-only": "70 kb/s (GPU→CPU), 67 kb/s (CPU→GPU)",
            "precise-l3": "120 kb/s @ 2% (GPU→CPU), 118 kb/s @ 6% (CPU→GPU)",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                p.strategy.value,
                p.direction.pretty,
                round(p.aggregate.bandwidth_kbps, 1),
                round(p.aggregate.error_percent, 2),
            )
            for p in self.points
        ]


def fig7_llc_strategies(
    n_bits: int = 96,
    seeds: typing.Sequence[int] = (1, 2),
    directions: typing.Sequence[ChannelDirection] = (
        ChannelDirection.GPU_TO_CPU,
        ChannelDirection.CPU_TO_GPU,
    ),
    soc_config: typing.Optional[SoCConfig] = None,
) -> Fig7Data:
    """Sweep the three L3-eviction strategies in both directions."""
    soc_config = soc_config or _default_config()
    points = []
    for strategy in EvictionStrategy:
        # The naive whole-L3 clear is orders of magnitude slower; a short
        # payload suffices to pin its bandwidth.
        bits = n_bits if strategy is not EvictionStrategy.FULL_L3_CLEAR else max(
            16, n_bits // 4
        )
        for direction in directions:
            channel = LLCChannel(
                LLCChannelConfig(direction=direction, strategy=strategy),
                soc_config=soc_config,
            )
            results = [channel.transmit(n_bits=bits, seed=seed) for seed in seeds]
            points.append(
                StrategyPoint(strategy, direction, aggregate_results(results))
            )
    return Fig7Data(points=points)


# ----------------------------------------------------------------------
# Fig. 8 — error and bandwidth vs number of redundant LLC sets


@dataclasses.dataclass
class SetCountPoint:
    n_sets: int
    direction: ChannelDirection
    aggregate: AggregateResult


@dataclasses.dataclass
class Fig8Data:
    points: typing.List[SetCountPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "1 set": "7% error @128 kb/s (GPU→CPU); 9% @125 (CPU→GPU)",
            "2 sets": "2% error @120 kb/s (GPU→CPU); 6% @118 (CPU→GPU)",
            ">2 sets": "error flat, bandwidth decays steadily",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                p.n_sets,
                p.direction.pretty,
                round(p.aggregate.bandwidth_kbps, 1),
                round(p.aggregate.error_percent, 2),
            )
            for p in self.points
        ]


def fig8_llc_sets(
    set_counts: typing.Sequence[int] = (1, 2, 4, 8),
    n_bits: int = 128,
    seeds: typing.Sequence[int] = (1, 2, 3),
    directions: typing.Sequence[ChannelDirection] = (
        ChannelDirection.GPU_TO_CPU,
        ChannelDirection.CPU_TO_GPU,
    ),
    soc_config: typing.Optional[SoCConfig] = None,
) -> Fig8Data:
    """Sweep the redundant-set count for both directions."""
    soc_config = soc_config or _default_config()
    points = []
    for n_sets in set_counts:
        for direction in directions:
            channel = LLCChannel(
                LLCChannelConfig(direction=direction, n_sets_per_role=n_sets),
                soc_config=soc_config,
            )
            results = []
            for seed in seeds:
                try:
                    results.append(channel.transmit(n_bits=n_bits, seed=seed))
                except ChannelProtocolError:
                    continue
            if results:
                points.append(
                    SetCountPoint(n_sets, direction, aggregate_results(results))
                )
    return Fig8Data(points=points)


# ----------------------------------------------------------------------
# Fig. 9 — iteration factor vs GPU buffer size


@dataclasses.dataclass
class IterationFactorPoint:
    gpu_buffer_paper_bytes: int
    iteration_factor: float
    gpu_pass_us: float
    slot_us: float


@dataclasses.dataclass
class Fig9Data:
    points: typing.List[IterationFactorPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "claim": "with the CPU buffer fixed, the optimal iteration "
            "factor falls as the GPU buffer grows",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                f"{p.gpu_buffer_paper_bytes // KB} KB",
                p.iteration_factor,
                round(p.gpu_pass_us, 2),
                round(p.slot_us, 2),
            )
            for p in self.points
        ]


def fig9_iteration_factor(
    gpu_buffer_sizes: typing.Sequence[int] = (
        256 * KB, 512 * KB, 1 * MB, 2 * MB,
    ),
    soc_config: typing.Optional[SoCConfig] = None,
    seed: int = 1,
) -> Fig9Data:
    """Calibrate I_F across GPU buffer sizes (CPU buffer fixed at 512 KB)."""
    soc_config = soc_config or _default_config()
    points = []
    for size in gpu_buffer_sizes:
        channel = ContentionChannel(
            ContentionChannelConfig(gpu_buffer_paper_bytes=size),
            soc_config=soc_config,
        )
        calibration = channel.calibrate(seed=seed)
        points.append(
            IterationFactorPoint(
                gpu_buffer_paper_bytes=size,
                iteration_factor=calibration.iteration_factor,
                gpu_pass_us=calibration.gpu_pass_fs / 1e9,
                slot_us=calibration.slot_fs / 1e9,
            )
        )
    return Fig9Data(points=points)


# ----------------------------------------------------------------------
# Fig. 10 — contention channel bandwidth & error sweep


@dataclasses.dataclass
class ContentionPoint:
    n_workgroups: int
    gpu_buffer_paper_bytes: int
    aggregate: AggregateResult
    iteration_factor: float


@dataclasses.dataclass
class Fig10Data:
    points: typing.List[ContentionPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "bandwidth": "390-402 kb/s across the swept space",
            "best": "0.82% error at 2 MB GPU buffer, 2 work-groups",
            "claim": "error < 2% over more than 90% of the configuration space",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                p.n_workgroups,
                f"{p.gpu_buffer_paper_bytes // MB} MB",
                round(p.aggregate.bandwidth_kbps, 1),
                round(p.aggregate.error_percent, 2),
                round(p.aggregate.error_ci, 2),
                p.iteration_factor,
            )
            for p in self.points
        ]

    def best(self) -> ContentionPoint:
        return min(self.points, key=lambda p: p.aggregate.error_percent)


def fig10_contention_sweep(
    workgroup_counts: typing.Sequence[int] = (1, 2, 4, 8),
    gpu_buffer_sizes: typing.Sequence[int] = (1 * MB, 2 * MB),
    n_bits: int = 96,
    seeds: typing.Sequence[int] = (1, 2, 3),
    soc_config: typing.Optional[SoCConfig] = None,
) -> Fig10Data:
    """Sweep work-groups x GPU buffer size with repeated runs + 95% CI."""
    soc_config = soc_config or _default_config()
    points = []
    for size in gpu_buffer_sizes:
        for n_workgroups in workgroup_counts:
            channel = ContentionChannel(
                ContentionChannelConfig(
                    n_workgroups=n_workgroups, gpu_buffer_paper_bytes=size
                ),
                soc_config=soc_config,
            )
            calibration = channel.calibrate(seed=seeds[0])
            results: typing.List[ChannelResult] = []
            for seed in seeds:
                try:
                    results.append(
                        channel.transmit(n_bits=n_bits, seed=seed,
                                         calibration=calibration)
                    )
                except ChannelProtocolError:
                    continue
            if results:
                points.append(
                    ContentionPoint(
                        n_workgroups=n_workgroups,
                        gpu_buffer_paper_bytes=size,
                        aggregate=aggregate_results(results),
                        iteration_factor=calibration.iteration_factor,
                    )
                )
    return Fig10Data(points=points)


# ----------------------------------------------------------------------
# Headline numbers (§V text)


@dataclasses.dataclass
class HeadlineData:
    llc: AggregateResult
    contention: AggregateResult
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "llc": "120 kb/s @ 2% error",
            "contention": "400 kb/s @ 0.8% error",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            ("llc-prime+probe", round(self.llc.bandwidth_kbps, 1),
             round(self.llc.error_percent, 2)),
            ("ring-contention", round(self.contention.bandwidth_kbps, 1),
             round(self.contention.error_percent, 2)),
        ]


def headline(
    n_bits: int = 128,
    seeds: typing.Sequence[int] = (1, 2, 3),
    soc_config: typing.Optional[SoCConfig] = None,
) -> HeadlineData:
    """The paper's two headline operating points."""
    soc_config = soc_config or _default_config()
    llc_channel = LLCChannel(LLCChannelConfig(), soc_config=soc_config)
    llc_results = [llc_channel.transmit(n_bits=n_bits, seed=s) for s in seeds]
    contention = ContentionChannel(
        ContentionChannelConfig(), soc_config=soc_config
    )
    calibration = contention.calibrate(seed=seeds[0])
    contention_results = [
        contention.transmit(n_bits=n_bits, seed=s, calibration=calibration)
        for s in seeds
    ]
    return HeadlineData(
        llc=aggregate_results(llc_results),
        contention=aggregate_results(contention_results),
    )
