"""Per-figure harnesses: one function per evaluation artifact.

Each function runs the experiment at a configurable (defaulting to
bench-friendly) scale and returns a structured result with ``rows()`` for
text rendering and a ``paper`` dict recording the numbers the paper
reports, so EXPERIMENTS.md comparisons come straight from here.

Every harness decomposes into independent ``(params, seed)`` trials
dispatched through :class:`repro.exec.TrialExecutor`.  The default
(``workers=0``) runs them serially in-process; pass ``workers=N`` (or a
pre-configured ``executor``) to fan trials across worker processes —
the figure data is bit-identical either way, because seeds and trial
order are fixed before dispatch.  The trial functions are module-level
so they pickle into workers.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.metrics import AggregateResult, aggregate_results
from repro.config import SoCConfig, kaby_lake_model
from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.llc_channel import EvictionStrategy, LLCChannel, LLCChannelConfig
from repro.core.reverse_engineering.timer_char import (
    TimerCharacterization,
    characterize_timer,
)
from repro.errors import ChannelProtocolError

if typing.TYPE_CHECKING:
    from repro.exec import ExecutionReport, TrialExecutor, TrialSpec

KB = 1024
MB = 1024 * 1024

Params = typing.Dict[str, object]


def _default_config() -> SoCConfig:
    return kaby_lake_model(scale=16)


def _execute(
    specs: typing.Sequence["TrialSpec"],
    workers: int,
    executor: typing.Optional["TrialExecutor"],
) -> "ExecutionReport":
    from repro.exec import TrialExecutor

    if executor is None:
        executor = TrialExecutor(workers=workers)
    return executor.run(specs)


# ----------------------------------------------------------------------
# Module-level trial functions (picklable into worker processes)


def _timer_trial(params: Params, seed: int) -> TimerCharacterization:
    return characterize_timer(
        counter_threads=typing.cast(
            typing.Optional[int], params.get("counter_threads")
        ),
        samples=typing.cast(int, params["samples"]),
        seed=seed,
    )


def _llc_strategy_trial(params: Params, seed: int) -> ChannelResult:
    channel = LLCChannel(
        LLCChannelConfig(
            direction=typing.cast(ChannelDirection, params["direction"]),
            strategy=typing.cast(EvictionStrategy, params["strategy"]),
        ),
        soc_config=typing.cast(SoCConfig, params["soc_config"]),
    )
    return channel.transmit(n_bits=typing.cast(int, params["n_bits"]), seed=seed)


def _llc_sets_trial(params: Params, seed: int) -> ChannelResult:
    channel = LLCChannel(
        LLCChannelConfig(
            direction=typing.cast(ChannelDirection, params["direction"]),
            n_sets_per_role=typing.cast(int, params["n_sets"]),
        ),
        soc_config=typing.cast(SoCConfig, params["soc_config"]),
    )
    return channel.transmit(n_bits=typing.cast(int, params["n_bits"]), seed=seed)


def _llc_default_trial(params: Params, seed: int) -> ChannelResult:
    channel = LLCChannel(
        LLCChannelConfig(),
        soc_config=typing.cast(SoCConfig, params["soc_config"]),
    )
    return channel.transmit(n_bits=typing.cast(int, params["n_bits"]), seed=seed)


def _contention_calibrate_trial(params: Params, seed: int):
    channel = ContentionChannel(
        ContentionChannelConfig(
            n_workgroups=typing.cast(int, params.get("n_workgroups", 2)),
            gpu_buffer_paper_bytes=typing.cast(
                int, params.get("gpu_buffer_paper_bytes", 2 * MB)
            ),
        ),
        soc_config=typing.cast(SoCConfig, params["soc_config"]),
    )
    return channel.calibrate(seed=seed)


def _contention_transmit_trial(params: Params, seed: int) -> ChannelResult:
    channel = ContentionChannel(
        ContentionChannelConfig(
            n_workgroups=typing.cast(int, params.get("n_workgroups", 2)),
            gpu_buffer_paper_bytes=typing.cast(
                int, params.get("gpu_buffer_paper_bytes", 2 * MB)
            ),
        ),
        soc_config=typing.cast(SoCConfig, params["soc_config"]),
    )
    return channel.transmit(
        n_bits=typing.cast(int, params["n_bits"]),
        seed=seed,
        calibration=params["calibration"],
    )


# ----------------------------------------------------------------------
# Fig. 4 — custom timer characterization


@dataclasses.dataclass
class Fig4Data:
    main: TimerCharacterization
    sweep: typing.List[TimerCharacterization]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "claim": "access times from memory / LLC / L3 are clearly "
            "separated by the SLM-counter timer (224 counter threads)",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        rows: typing.List[typing.Tuple[object, ...]] = []
        for char in [self.main] + self.sweep:
            for level, mean, stdev in char.rows():
                rows.append(
                    (char.counter_threads, level, round(mean, 1), round(stdev, 2))
                )
        return rows


def fig4_timer_characterization(
    samples: int = 24,
    thread_counts: typing.Sequence[int] = (32, 96, 224),
    seed: int = 0,
    workers: int = 0,
    executor: typing.Optional["TrialExecutor"] = None,
) -> Fig4Data:
    """Fig. 4 plus the §III-B counter-thread ablation."""
    from repro.exec import TrialSpec

    specs = [TrialSpec(fn=_timer_trial, params={"samples": samples}, seed=seed)]
    # The ablation keeps its historical seed schedule (seed+1+i per
    # count) so the recorded figures match the pre-executor harness.
    specs.extend(
        TrialSpec(
            fn=_timer_trial,
            params={"counter_threads": count, "samples": samples // 2},
            seed=seed + 1 + index,
        )
        for index, count in enumerate(thread_counts)
    )
    report = _execute(specs, workers, executor)
    characterizations = [
        typing.cast(TimerCharacterization, outcome.result)
        for outcome in report.outcomes
        if outcome.ok
    ]
    if len(characterizations) != len(specs):
        raise ChannelProtocolError("timer characterization trial failed")
    return Fig4Data(main=characterizations[0], sweep=characterizations[1:])


# ----------------------------------------------------------------------
# Fig. 7 — LLC channel bandwidth by eviction strategy


@dataclasses.dataclass
class StrategyPoint:
    strategy: EvictionStrategy
    direction: ChannelDirection
    aggregate: AggregateResult


@dataclasses.dataclass
class Fig7Data:
    points: typing.List[StrategyPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "full-l3-clear": "~1 kb/s",
            "llc-only": "70 kb/s (GPU→CPU), 67 kb/s (CPU→GPU)",
            "precise-l3": "120 kb/s @ 2% (GPU→CPU), 118 kb/s @ 6% (CPU→GPU)",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                p.strategy.value,
                p.direction.pretty,
                round(p.aggregate.bandwidth_kbps, 1),
                round(p.aggregate.error_percent, 2),
            )
            for p in self.points
        ]


def fig7_llc_strategies(
    n_bits: int = 96,
    seeds: typing.Sequence[int] = (1, 2),
    directions: typing.Sequence[ChannelDirection] = (
        ChannelDirection.GPU_TO_CPU,
        ChannelDirection.CPU_TO_GPU,
    ),
    soc_config: typing.Optional[SoCConfig] = None,
    workers: int = 0,
    executor: typing.Optional["TrialExecutor"] = None,
) -> Fig7Data:
    """Sweep the three L3-eviction strategies in both directions."""
    from repro.exec import TrialSpec

    soc_config = soc_config or _default_config()
    cells: typing.List[typing.Tuple[EvictionStrategy, ChannelDirection]] = []
    specs: typing.List[TrialSpec] = []
    for strategy in EvictionStrategy:
        # The naive whole-L3 clear is orders of magnitude slower; a short
        # payload suffices to pin its bandwidth.
        bits = n_bits if strategy is not EvictionStrategy.FULL_L3_CLEAR else max(
            16, n_bits // 4
        )
        for direction in directions:
            cells.append((strategy, direction))
            specs.extend(
                TrialSpec(
                    fn=_llc_strategy_trial,
                    params={
                        "strategy": strategy,
                        "direction": direction,
                        "n_bits": bits,
                        "soc_config": soc_config,
                    },
                    seed=seed,
                    tag=len(cells) - 1,
                )
                for seed in seeds
            )
    report = _execute(specs, workers, executor)
    points = []
    n_seeds = len(seeds)
    for cell_index, (strategy, direction) in enumerate(cells):
        chunk = report.outcomes[cell_index * n_seeds : (cell_index + 1) * n_seeds]
        results = [typing.cast(ChannelResult, o.result) for o in chunk if o.ok]
        if len(results) != n_seeds:
            raise ChannelProtocolError(
                f"LLC strategy trial failed at {strategy.value}/{direction.pretty}"
            )
        points.append(StrategyPoint(strategy, direction, aggregate_results(results)))
    return Fig7Data(points=points)


# ----------------------------------------------------------------------
# Fig. 8 — error and bandwidth vs number of redundant LLC sets


@dataclasses.dataclass
class SetCountPoint:
    n_sets: int
    direction: ChannelDirection
    aggregate: AggregateResult


@dataclasses.dataclass
class Fig8Data:
    points: typing.List[SetCountPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "1 set": "7% error @128 kb/s (GPU→CPU); 9% @125 (CPU→GPU)",
            "2 sets": "2% error @120 kb/s (GPU→CPU); 6% @118 (CPU→GPU)",
            ">2 sets": "error flat, bandwidth decays steadily",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                p.n_sets,
                p.direction.pretty,
                round(p.aggregate.bandwidth_kbps, 1),
                round(p.aggregate.error_percent, 2),
            )
            for p in self.points
        ]


def fig8_llc_sets(
    set_counts: typing.Sequence[int] = (1, 2, 4, 8),
    n_bits: int = 128,
    seeds: typing.Sequence[int] = (1, 2, 3),
    directions: typing.Sequence[ChannelDirection] = (
        ChannelDirection.GPU_TO_CPU,
        ChannelDirection.CPU_TO_GPU,
    ),
    soc_config: typing.Optional[SoCConfig] = None,
    workers: int = 0,
    executor: typing.Optional["TrialExecutor"] = None,
) -> Fig8Data:
    """Sweep the redundant-set count for both directions."""
    from repro.exec import TrialSpec

    soc_config = soc_config or _default_config()
    cells: typing.List[typing.Tuple[int, ChannelDirection]] = []
    specs: typing.List[TrialSpec] = []
    for n_sets in set_counts:
        for direction in directions:
            cells.append((n_sets, direction))
            specs.extend(
                TrialSpec(
                    fn=_llc_sets_trial,
                    params={
                        "n_sets": n_sets,
                        "direction": direction,
                        "n_bits": n_bits,
                        "soc_config": soc_config,
                    },
                    seed=seed,
                )
                for seed in seeds
            )
    report = _execute(specs, workers, executor)
    points = []
    n_seeds = len(seeds)
    for cell_index, (n_sets, direction) in enumerate(cells):
        chunk = report.outcomes[cell_index * n_seeds : (cell_index + 1) * n_seeds]
        results = [typing.cast(ChannelResult, o.result) for o in chunk if o.ok]
        if results:
            points.append(
                SetCountPoint(n_sets, direction, aggregate_results(results))
            )
    return Fig8Data(points=points)


# ----------------------------------------------------------------------
# Fig. 9 — iteration factor vs GPU buffer size


@dataclasses.dataclass
class IterationFactorPoint:
    gpu_buffer_paper_bytes: int
    iteration_factor: float
    gpu_pass_us: float
    slot_us: float


@dataclasses.dataclass
class Fig9Data:
    points: typing.List[IterationFactorPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "claim": "with the CPU buffer fixed, the optimal iteration "
            "factor falls as the GPU buffer grows",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                f"{p.gpu_buffer_paper_bytes // KB} KB",
                p.iteration_factor,
                round(p.gpu_pass_us, 2),
                round(p.slot_us, 2),
            )
            for p in self.points
        ]


def fig9_iteration_factor(
    gpu_buffer_sizes: typing.Sequence[int] = (
        256 * KB, 512 * KB, 1 * MB, 2 * MB,
    ),
    soc_config: typing.Optional[SoCConfig] = None,
    seed: int = 1,
    workers: int = 0,
    executor: typing.Optional["TrialExecutor"] = None,
) -> Fig9Data:
    """Calibrate I_F across GPU buffer sizes (CPU buffer fixed at 512 KB)."""
    from repro.exec import TrialSpec

    soc_config = soc_config or _default_config()
    specs = [
        TrialSpec(
            fn=_contention_calibrate_trial,
            params={"gpu_buffer_paper_bytes": size, "soc_config": soc_config},
            seed=seed,
        )
        for size in gpu_buffer_sizes
    ]
    report = _execute(specs, workers, executor)
    points = []
    for size, outcome in zip(gpu_buffer_sizes, report.outcomes):
        if not outcome.ok:
            raise ChannelProtocolError(
                f"calibration failed for {size}-byte GPU buffer: {outcome.error}"
            )
        calibration = outcome.result
        points.append(
            IterationFactorPoint(
                gpu_buffer_paper_bytes=size,
                iteration_factor=calibration.iteration_factor,
                gpu_pass_us=calibration.gpu_pass_fs / 1e9,
                slot_us=calibration.slot_fs / 1e9,
            )
        )
    return Fig9Data(points=points)


# ----------------------------------------------------------------------
# Fig. 10 — contention channel bandwidth & error sweep


@dataclasses.dataclass
class ContentionPoint:
    n_workgroups: int
    gpu_buffer_paper_bytes: int
    aggregate: AggregateResult
    iteration_factor: float


@dataclasses.dataclass
class Fig10Data:
    points: typing.List[ContentionPoint]
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "bandwidth": "390-402 kb/s across the swept space",
            "best": "0.82% error at 2 MB GPU buffer, 2 work-groups",
            "claim": "error < 2% over more than 90% of the configuration space",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                p.n_workgroups,
                f"{p.gpu_buffer_paper_bytes // MB} MB",
                round(p.aggregate.bandwidth_kbps, 1),
                round(p.aggregate.error_percent, 2),
                round(p.aggregate.error_ci, 2),
                p.iteration_factor,
            )
            for p in self.points
        ]

    def best(self) -> ContentionPoint:
        return min(self.points, key=lambda p: p.aggregate.error_percent)


def fig10_contention_sweep(
    workgroup_counts: typing.Sequence[int] = (1, 2, 4, 8),
    gpu_buffer_sizes: typing.Sequence[int] = (1 * MB, 2 * MB),
    n_bits: int = 96,
    seeds: typing.Sequence[int] = (1, 2, 3),
    soc_config: typing.Optional[SoCConfig] = None,
    workers: int = 0,
    executor: typing.Optional["TrialExecutor"] = None,
) -> Fig10Data:
    """Sweep work-groups x GPU buffer size with repeated runs + 95% CI.

    Two executor phases: every grid point's calibration runs first (all
    in parallel), then every transmission, with the point's calibration
    carried in the trial params — exactly the calibrate-once-per-point
    schedule of the serial harness.
    """
    from repro.exec import TrialSpec

    soc_config = soc_config or _default_config()
    cells: typing.List[typing.Tuple[int, int]] = [
        (size, n_workgroups)
        for size in gpu_buffer_sizes
        for n_workgroups in workgroup_counts
    ]
    calibration_specs = [
        TrialSpec(
            fn=_contention_calibrate_trial,
            params={
                "n_workgroups": n_workgroups,
                "gpu_buffer_paper_bytes": size,
                "soc_config": soc_config,
            },
            seed=seeds[0],
        )
        for size, n_workgroups in cells
    ]
    calibration_report = _execute(calibration_specs, workers, executor)
    calibrations: typing.Dict[typing.Tuple[int, int], object] = {}
    for cell, outcome in zip(cells, calibration_report.outcomes):
        if not outcome.ok:
            raise ChannelProtocolError(
                f"calibration failed at {cell}: {outcome.error}"
            )
        calibrations[cell] = outcome.result

    transmit_specs = [
        TrialSpec(
            fn=_contention_transmit_trial,
            params={
                "n_workgroups": n_workgroups,
                "gpu_buffer_paper_bytes": size,
                "n_bits": n_bits,
                "calibration": calibrations[(size, n_workgroups)],
                "soc_config": soc_config,
            },
            seed=seed,
        )
        for size, n_workgroups in cells
        for seed in seeds
    ]
    report = _execute(transmit_specs, workers, executor)

    points = []
    n_seeds = len(seeds)
    for cell_index, (size, n_workgroups) in enumerate(cells):
        chunk = report.outcomes[cell_index * n_seeds : (cell_index + 1) * n_seeds]
        results = [typing.cast(ChannelResult, o.result) for o in chunk if o.ok]
        if results:
            calibration = calibrations[(size, n_workgroups)]
            points.append(
                ContentionPoint(
                    n_workgroups=n_workgroups,
                    gpu_buffer_paper_bytes=size,
                    aggregate=aggregate_results(results),
                    iteration_factor=calibration.iteration_factor,
                )
            )
    return Fig10Data(points=points)


# ----------------------------------------------------------------------
# Headline numbers (§V text)


@dataclasses.dataclass
class HeadlineData:
    llc: AggregateResult
    contention: AggregateResult
    paper: typing.Dict[str, str] = dataclasses.field(
        default_factory=lambda: {
            "llc": "120 kb/s @ 2% error",
            "contention": "400 kb/s @ 0.8% error",
        }
    )

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            ("llc-prime+probe", round(self.llc.bandwidth_kbps, 1),
             round(self.llc.error_percent, 2)),
            ("ring-contention", round(self.contention.bandwidth_kbps, 1),
             round(self.contention.error_percent, 2)),
        ]


def headline(
    n_bits: int = 128,
    seeds: typing.Sequence[int] = (1, 2, 3),
    soc_config: typing.Optional[SoCConfig] = None,
    workers: int = 0,
    executor: typing.Optional["TrialExecutor"] = None,
) -> HeadlineData:
    """The paper's two headline operating points."""
    from repro.exec import TrialSpec

    soc_config = soc_config or _default_config()
    calibration_report = _execute(
        [
            TrialSpec(
                fn=_contention_calibrate_trial,
                params={"soc_config": soc_config},
                seed=seeds[0],
            )
        ],
        workers,
        executor,
    )
    calibration_outcome = calibration_report.outcomes[0]
    if not calibration_outcome.ok:
        raise ChannelProtocolError(
            f"headline calibration failed: {calibration_outcome.error}"
        )
    calibration = calibration_outcome.result

    llc_specs = [
        TrialSpec(
            fn=_llc_default_trial,
            params={"n_bits": n_bits, "soc_config": soc_config},
            seed=seed,
        )
        for seed in seeds
    ]
    contention_specs = [
        TrialSpec(
            fn=_contention_transmit_trial,
            params={
                "n_bits": n_bits,
                "calibration": calibration,
                "soc_config": soc_config,
            },
            seed=seed,
        )
        for seed in seeds
    ]
    report = _execute(llc_specs + contention_specs, workers, executor)
    llc_results = [
        typing.cast(ChannelResult, o.result)
        for o in report.outcomes[: len(seeds)]
        if o.ok
    ]
    contention_results = [
        typing.cast(ChannelResult, o.result)
        for o in report.outcomes[len(seeds) :]
        if o.ok
    ]
    if len(llc_results) != len(seeds) or len(contention_results) != len(seeds):
        raise ChannelProtocolError("a headline trial failed")
    return HeadlineData(
        llc=aggregate_results(llc_results),
        contention=aggregate_results(contention_results),
    )
