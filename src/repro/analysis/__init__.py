"""Analysis layer: sweep drivers, aggregate metrics, per-figure harnesses."""

from repro.analysis.metrics import AggregateResult, aggregate_results
from repro.analysis.render import format_table, horizontal_bar
from repro.analysis.sweep import SweepResult, grid, run_sweep

__all__ = [
    "AggregateResult",
    "SweepResult",
    "aggregate_results",
    "format_table",
    "grid",
    "horizontal_bar",
    "run_sweep",
]
