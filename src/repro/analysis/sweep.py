"""Generic parameter-sweep driver.

The figure harnesses hand-roll their loops; this utility generalizes the
pattern for downstream users exploring new operating points: a grid of
configurations, repeated seeded runs per point, aggregation with 95% CIs,
and graceful handling of dead channels (a mitigated or mis-tuned point
simply reports zero runs instead of aborting the sweep).

Trials execute through :class:`repro.exec.TrialExecutor`: serially by
default (``workers=0`` — no picklability requirements, the mode tests
use), or across a process pool with ``workers >= 1`` and optionally an
on-disk result cache.  The aggregates are bit-identical either way —
seeds are fixed up front and outcomes return in submission order.

**Pre-screened sweeps.**  Pass ``predict`` (params → a
:class:`~repro.model.ModelPrediction`, usually a
:func:`repro.model.predict_point` partial) and the analytical tier plans
the sweep: only points on or near the predicted Pareto frontier — plus
every point the model does not support, plus seeded random audit probes
— reach the DES (:mod:`repro.model.prescreen`).  Skipped points carry
their predictions into the result, tagged ``source="model"`` with
``n_runs=0`` aggregates; simulated points stay ``source="des"`` and are
bit-identical to an unscreened sweep of the same grid.  A ``predict``
that raises, or returns unsupported predictions for every point,
degrades to exactly the full-DES sweep.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.analysis.metrics import AggregateResult, aggregate_results
from repro.core.channel import ChannelResult

Params = typing.Dict[str, object]
RunFn = typing.Callable[[Params, int], ChannelResult]

if typing.TYPE_CHECKING:
    from repro.exec import ExecutionReport, TrialExecutor
    from repro.model.prescreen import PrescreenBudget
    from repro.model.report import ModelPrediction

PredictFn = typing.Callable[[Params], "ModelPrediction"]

#: Provenance tags: where a point's aggregate numbers came from.
SOURCE_DES = "des"
SOURCE_MODEL = "model"


@dataclasses.dataclass
class SweepPoint:
    """One grid point: its parameters and aggregated outcome."""

    params: Params
    aggregate: typing.Optional[AggregateResult]
    failures: int
    #: ``"des"`` when the aggregate is simulated evidence, ``"model"``
    #: when a pre-screening planner skipped the point and the aggregate
    #: is the analytical prediction (``n_runs == 0``).
    source: str = SOURCE_DES
    #: The model's report for this point when a predictor ran —
    #: present on *both* skipped and simulated points, so predicted and
    #: measured values can be compared wherever the sweep lands.
    predicted: typing.Optional[typing.Dict[str, object]] = None

    @property
    def alive(self) -> bool:
        return self.aggregate is not None


@dataclasses.dataclass
class SweepResult:
    """All grid points of one sweep."""

    points: typing.List[SweepPoint]
    #: Execution details (cache hits, wall time, merged sim census) when
    #: the sweep ran through a :class:`~repro.exec.TrialExecutor`.
    report: typing.Optional["ExecutionReport"] = None

    def best_by_error(self) -> SweepPoint:
        """The live point with the lowest mean error.

        Simulated (``source="des"``) points always outrank predictions:
        a model-sourced point can win only when nothing was measured.
        """
        from repro.errors import ChannelProtocolError

        live = [p for p in self.points if p.alive]
        measured = [p for p in live if p.source == SOURCE_DES]
        candidates = measured or live
        if not candidates:
            raise ChannelProtocolError("every sweep point was dead")
        return min(candidates, key=lambda p: p.aggregate.error_percent)  # type: ignore[union-attr]

    def param_keys(self) -> typing.List[str]:
        """Sorted union of parameter names across every point."""
        return sorted({key for point in self.points for key in point.params})

    def _mixed_sources(self) -> bool:
        return any(point.source != SOURCE_DES for point in self.points)

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        """Table rows: parameter values, bandwidth, error (or 'dead').

        A pre-screened sweep (any non-DES point) grows a trailing
        ``source`` column; all-DES sweeps keep the legacy shape.
        """
        keys = self.param_keys()
        tag_source = self._mixed_sources()
        rows: typing.List[typing.Tuple[object, ...]] = []
        for point in self.points:
            values = tuple(point.params.get(key, "") for key in keys)
            if point.alive:
                aggregate = typing.cast(AggregateResult, point.aggregate)
                row = values + (
                    round(aggregate.bandwidth_kbps, 1),
                    round(aggregate.error_percent, 2),
                )
            else:
                row = values + ("dead", "dead")
            if tag_source:
                row = row + (point.source,)
            rows.append(row)
        return rows

    def header(self) -> typing.List[str]:
        base = self.param_keys() + ["kb/s", "err %"]
        if self._mixed_sources():
            base.append("source")
        return base


def grid(**axes: typing.Sequence[object]) -> typing.List[Params]:
    """Cartesian product of named parameter axes, in a stable order."""
    names = sorted(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _safe_predictions(
    predict: PredictFn, points: typing.Sequence[Params]
) -> typing.List[typing.Optional["ModelPrediction"]]:
    """One prediction per point; a raising predictor yields ``None``.

    ``None`` routes the point to the DES (the unsupported path), so a
    broken or partially-applicable model can only ever cost simulation
    time, never correctness.
    """
    out: typing.List[typing.Optional["ModelPrediction"]] = []
    for params in points:
        try:
            out.append(predict(dict(params)))
        except Exception:
            out.append(None)
    return out


def run_sweep(
    run: RunFn,
    points: typing.Sequence[Params],
    seeds: typing.Sequence[int] = (1, 2, 3),
    workers: int = 0,
    cache_dir: typing.Optional[str] = None,
    executor: typing.Optional["TrialExecutor"] = None,
    predict: typing.Optional[PredictFn] = None,
    budget: typing.Optional["PrescreenBudget"] = None,
) -> SweepResult:
    """Evaluate ``run(params, seed)`` over the grid with repetitions.

    ``workers``/``cache_dir`` construct a default executor; pass
    ``executor`` to control timeouts, retries or cache policy directly.
    With ``workers >= 1`` the ``run`` callable and its params/results
    must be picklable (module-level functions, plain-data params).

    ``predict`` (+ optional ``budget``) turns the sweep into a
    model-guided one — see the module docstring.  Trial specs for
    simulated points are built identically with or without a predictor,
    so the DES-side outcomes are bit-identical either way.
    """
    from repro.exec import MODEL, TrialExecutor, TrialSpec

    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache_dir)

    predictions: typing.List[typing.Optional["ModelPrediction"]]
    if predict is not None:
        from repro.model.prescreen import plan_prescreen

        predictions = _safe_predictions(predict, points)
        plan = plan_prescreen(predictions, budget)
        simulate = plan.simulate
    else:
        predictions = [None] * len(points)
        simulate = [True] * len(points)

    specs = [
        TrialSpec(
            fn=run,
            params=dict(params),
            seed=seed,
            tag=point_index,
            resolved=None if simulate[point_index] else predictions[point_index],
        )
        for point_index, params in enumerate(points)
        for seed in seeds
    ]
    report = executor.run(specs)

    out: typing.List[SweepPoint] = []
    n_seeds = len(seeds)
    for point_index, params in enumerate(points):
        chunk = report.outcomes[point_index * n_seeds : (point_index + 1) * n_seeds]
        prediction = predictions[point_index]
        predicted = prediction.as_dict() if prediction is not None else None
        if chunk and all(o.kind == MODEL for o in chunk):
            prediction = typing.cast("ModelPrediction", prediction)
            out.append(
                SweepPoint(
                    params=dict(params),
                    aggregate=prediction.as_aggregate(),
                    failures=0,
                    source=SOURCE_MODEL,
                    predicted=predicted,
                )
            )
            continue
        results = [o.result for o in chunk if o.ok]
        failures = sum(1 for o in chunk if not o.ok)
        out.append(
            SweepPoint(
                params=dict(params),
                aggregate=aggregate_results(results) if results else None,
                failures=failures,
                source=SOURCE_DES,
                predicted=predicted,
            )
        )
    return SweepResult(points=out, report=report)
