"""Generic parameter-sweep driver.

The figure harnesses hand-roll their loops; this utility generalizes the
pattern for downstream users exploring new operating points: a grid of
configurations, repeated seeded runs per point, aggregation with 95% CIs,
and graceful handling of dead channels (a mitigated or mis-tuned point
simply reports zero runs instead of aborting the sweep).

Trials execute through :class:`repro.exec.TrialExecutor`: serially by
default (``workers=0`` — no picklability requirements, the mode tests
use), or across a process pool with ``workers >= 1`` and optionally an
on-disk result cache.  The aggregates are bit-identical either way —
seeds are fixed up front and outcomes return in submission order.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.analysis.metrics import AggregateResult, aggregate_results
from repro.core.channel import ChannelResult

Params = typing.Dict[str, object]
RunFn = typing.Callable[[Params, int], ChannelResult]

if typing.TYPE_CHECKING:
    from repro.exec import ExecutionReport, TrialExecutor


@dataclasses.dataclass
class SweepPoint:
    """One grid point: its parameters and aggregated outcome."""

    params: Params
    aggregate: typing.Optional[AggregateResult]
    failures: int

    @property
    def alive(self) -> bool:
        return self.aggregate is not None


@dataclasses.dataclass
class SweepResult:
    """All grid points of one sweep."""

    points: typing.List[SweepPoint]
    #: Execution details (cache hits, wall time, merged sim census) when
    #: the sweep ran through a :class:`~repro.exec.TrialExecutor`.
    report: typing.Optional["ExecutionReport"] = None

    def best_by_error(self) -> SweepPoint:
        """The live point with the lowest mean error."""
        from repro.errors import ChannelProtocolError

        live = [p for p in self.points if p.alive]
        if not live:
            raise ChannelProtocolError("every sweep point was dead")
        return min(live, key=lambda p: p.aggregate.error_percent)  # type: ignore[union-attr]

    def param_keys(self) -> typing.List[str]:
        """Sorted union of parameter names across every point."""
        return sorted({key for point in self.points for key in point.params})

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        """Table rows: parameter values, bandwidth, error (or 'dead')."""
        keys = self.param_keys()
        rows: typing.List[typing.Tuple[object, ...]] = []
        for point in self.points:
            values = tuple(point.params.get(key, "") for key in keys)
            if point.alive:
                aggregate = typing.cast(AggregateResult, point.aggregate)
                rows.append(
                    values
                    + (
                        round(aggregate.bandwidth_kbps, 1),
                        round(aggregate.error_percent, 2),
                    )
                )
            else:
                rows.append(values + ("dead", "dead"))
        return rows

    def header(self) -> typing.List[str]:
        return self.param_keys() + ["kb/s", "err %"]


def grid(**axes: typing.Sequence[object]) -> typing.List[Params]:
    """Cartesian product of named parameter axes, in a stable order."""
    names = sorted(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    run: RunFn,
    points: typing.Sequence[Params],
    seeds: typing.Sequence[int] = (1, 2, 3),
    workers: int = 0,
    cache_dir: typing.Optional[str] = None,
    executor: typing.Optional["TrialExecutor"] = None,
) -> SweepResult:
    """Evaluate ``run(params, seed)`` over the grid with repetitions.

    ``workers``/``cache_dir`` construct a default executor; pass
    ``executor`` to control timeouts, retries or cache policy directly.
    With ``workers >= 1`` the ``run`` callable and its params/results
    must be picklable (module-level functions, plain-data params).
    """
    from repro.exec import TrialExecutor, TrialSpec

    if executor is None:
        executor = TrialExecutor(workers=workers, cache=cache_dir)
    specs = [
        TrialSpec(fn=run, params=dict(params), seed=seed, tag=point_index)
        for point_index, params in enumerate(points)
        for seed in seeds
    ]
    report = executor.run(specs)

    out: typing.List[SweepPoint] = []
    n_seeds = len(seeds)
    for point_index, params in enumerate(points):
        chunk = report.outcomes[point_index * n_seeds : (point_index + 1) * n_seeds]
        results = [o.result for o in chunk if o.ok]
        failures = sum(1 for o in chunk if not o.ok)
        out.append(
            SweepPoint(
                params=dict(params),
                aggregate=aggregate_results(results) if results else None,
                failures=failures,
            )
        )
    return SweepResult(points=out, report=report)
