"""Generic parameter-sweep driver.

The figure harnesses hand-roll their loops; this utility generalizes the
pattern for downstream users exploring new operating points: a grid of
configurations, repeated seeded runs per point, aggregation with 95% CIs,
and graceful handling of dead channels (a mitigated or mis-tuned point
simply reports zero runs instead of aborting the sweep).
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.analysis.metrics import AggregateResult, aggregate_results
from repro.core.channel import ChannelResult
from repro.errors import ChannelProtocolError

Params = typing.Dict[str, object]
RunFn = typing.Callable[[Params, int], ChannelResult]


@dataclasses.dataclass
class SweepPoint:
    """One grid point: its parameters and aggregated outcome."""

    params: Params
    aggregate: typing.Optional[AggregateResult]
    failures: int

    @property
    def alive(self) -> bool:
        return self.aggregate is not None


@dataclasses.dataclass
class SweepResult:
    """All grid points of one sweep."""

    points: typing.List[SweepPoint]

    def best_by_error(self) -> SweepPoint:
        """The live point with the lowest mean error."""
        live = [p for p in self.points if p.alive]
        if not live:
            raise ChannelProtocolError("every sweep point was dead")
        return min(live, key=lambda p: p.aggregate.error_percent)  # type: ignore[union-attr]

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        """Table rows: parameter values, bandwidth, error (or 'dead')."""
        keys = sorted({key for point in self.points for key in point.params})
        rows: typing.List[typing.Tuple[object, ...]] = []
        for point in self.points:
            values = tuple(point.params.get(key, "") for key in keys)
            if point.alive:
                aggregate = typing.cast(AggregateResult, point.aggregate)
                rows.append(
                    values
                    + (
                        round(aggregate.bandwidth_kbps, 1),
                        round(aggregate.error_percent, 2),
                    )
                )
            else:
                rows.append(values + ("dead", "dead"))
        return rows

    def header(self) -> typing.List[str]:
        keys = sorted({key for point in self.points for key in point.params})
        return keys + ["kb/s", "err %"]


def grid(**axes: typing.Sequence[object]) -> typing.List[Params]:
    """Cartesian product of named parameter axes, in a stable order."""
    names = sorted(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    run: RunFn,
    points: typing.Sequence[Params],
    seeds: typing.Sequence[int] = (1, 2, 3),
) -> SweepResult:
    """Evaluate ``run(params, seed)`` over the grid with repetitions."""
    out: typing.List[SweepPoint] = []
    for params in points:
        results: typing.List[ChannelResult] = []
        failures = 0
        for seed in seeds:
            try:
                results.append(run(dict(params), seed))
            except ChannelProtocolError:
                failures += 1
        out.append(
            SweepPoint(
                params=dict(params),
                aggregate=aggregate_results(results) if results else None,
                failures=failures,
            )
        )
    return SweepResult(points=out)
