"""Aggregate metrics over repeated channel runs.

The paper reports each operating point as a mean with a 95% confidence
interval over repeated runs; this module reproduces that presentation.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.channel import ChannelResult
from repro.sim.stats import confidence_interval_95


@dataclasses.dataclass(frozen=True)
class AggregateResult:
    """Mean ± 95% CI of bandwidth and error over repeated runs."""

    n_runs: int
    bandwidth_kbps: float
    bandwidth_ci: float
    error_percent: float
    error_ci: float

    def summary(self) -> str:
        return (
            f"{self.bandwidth_kbps:.1f} ± {self.bandwidth_ci:.1f} kb/s, "
            f"error {self.error_percent:.2f} ± {self.error_ci:.2f}% "
            f"(n={self.n_runs})"
        )

    def as_dict(self) -> typing.Dict[str, float]:
        """Channel-health dict for BENCH artifacts and drift detection."""
        return {
            "n_runs": self.n_runs,
            "bandwidth_kbps": round(self.bandwidth_kbps, 4),
            "bandwidth_ci": round(self.bandwidth_ci, 4),
            "error_percent": round(self.error_percent, 4),
            "error_ci": round(self.error_ci, 4),
        }


def aggregate_results(results: typing.Sequence[ChannelResult]) -> AggregateResult:
    """Fold repeated transmissions into the paper's reporting format."""
    bandwidths = [r.bandwidth_kbps for r in results]
    errors = [r.error_percent for r in results]
    bw_mean, bw_ci = confidence_interval_95(bandwidths)
    err_mean, err_ci = confidence_interval_95(errors)
    return AggregateResult(
        n_runs=len(results),
        bandwidth_kbps=bw_mean,
        bandwidth_ci=bw_ci,
        error_percent=err_mean,
        error_ci=err_ci,
    )
