"""Ring-contention sweep trial: the second lockstep batch family.

One trial is a fixed-schedule covert transmission over the *shared ring
interconnect* (PAPER.md §V, Eq. (3)): whenever its payload bit is 1 the
trojan (the GPU's L3 miss stream, or a second CPU core) floods the ring
with line transfers for the first part of the slot, while the spy times
short probe bursts over its own LLC-resident lines.  A spy probe that
has to queue behind a trojan transfer picks up ring waiting time; on a
quiet slot the spy's latency is *exactly* the uncontended constant, so
any positive wait decodes as a 1.  Optional fault bursts (auxiliary
``"fault"``-domain ring transfers on a seeded schedule) degrade the
channel gracefully for the robustness matrix.

Unlike the prime+probe family the two agents here *interleave* inside a
slot — contention is the signal, not a hazard.  The trial is still
lockstep-replayable because on the fast path every ring reservation is
FIFO by its logical request time ``t1 = t0 + pre`` and request times are
nondecreasing in engine order (the fold guard refuses to reserve past a
pending earlier event), so a kernel can merge the three per-agent event
streams by minimum request time.  ``repro.sim.batch.contention`` does
exactly that; this module stays the bit-exact serial oracle (always used
under ``REPRO_BATCH=0``).

Shared-state disjointness is by construction: the spy's lines live in
LLC set-index class 0 and the trojan's in classes ``1..trojan_sets``, so
no cache set is ever touched by both agents and per-set access order is
per-agent program order.  All DRAM draws happen in a single sequential
warm-up process (both agents' lines become LLC-resident before slot 0),
so the row-mix RNG stream is consumed in straight-line order too.

Checkpoint prefix-forking composes exactly like the probe family:
:func:`prepare_contention_prefix` runs the first ``warm_slots`` slots
once, snapshots the quiescent machine, and forked trials resume from the
snapshot — every wait targets an absolute time, so cold and warm
outcomes are bit-identical.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import checkpoint as _checkpoint
from repro.analysis.probe_sweep import payload_bits
from repro.config import SoCConfig, kaby_lake_model
from repro.errors import SimulationError
from repro.exec.seeds import derive_seed
from repro.sim import FS_PER_NS
from repro.soc.machine import SoC
from repro.soc.mmu import AddressSpace, Mmu

import numpy as np

from repro.analysis.probe_sweep import slice_of_lines

Params = typing.Dict[str, object]

#: Complete parameter surface of one trial; ``contention_trial`` rejects
#: anything else so batch grouping can reason about the full key space.
DEFAULTS: Params = {
    "scale": 8,
    "n_slots": 8,
    "slot_ns": 1800.0,
    # Slot 0 starts at this offset (raised automatically if the warm-up
    # bound exceeds it) so the warm-up prologue never leaks into slot 0.
    "base_ns": 4000.0,
    # Chosen so the spy's probe phase (mod its own uncontended access
    # period) lands inside the trojan's ring-hold window even when the
    # two agents share one clock (CPU trojan): 116 ns ≡ 0.29 ns and
    # 116+309 ns ≡ 0.71 ns mod 12.857 ns, both within the 1.43 ns hold.
    "probe_offset_ns": 116.0,
    "probe_gap_ns": 309.0,
    "probes_per_slot": 2,
    "spy_lines": 12,
    "trojan_sets": 1,
    "trojan_lines_per_set": 12,
    # Burst repeats per transmitting slot: the aggregate traffic of that
    # many GPU workgroups, serialized on the one modeled GPU timeline.
    "n_workgroups": 2,
    "trojan": "gpu",  # "gpu" (L3 miss stream) or "cpu" (a second core)
    "trojan_core": 1,
    "spy_core": 0,
    "dram_jitter_ns": 0.0,
    # Fault model: ``round(intensity * bursts_per_slot * n_slots)`` ring
    # bursts of ``fault_slots`` payload slots each, at seeded times.
    "fault_intensity": 0.0,
    "fault_bursts_per_slot": 1.0,
    "fault_slots": 12,
    "warm_slots": 0,
    # Test-only lever: the batch kernel ejects the trial to the serial
    # engine at this slot.  The serial oracle ignores it entirely, so the
    # outcome is identical either way -- which is the point of the test.
    "divergence_slot": None,
}

#: Params a batch group may vary per trial (everything else must match
#: for two trials to share one lockstep kernel launch).
VARIABLE_KEYS = ("n_slots", "n_workgroups", "divergence_slot", "fault_intensity")

_HUGE_PAGE = 2 * 1024 * 1024


def merged_params(params: Params) -> Params:
    """Defaults + overrides, with unknown keys rejected."""
    clean = _checkpoint.strip_prefix_params(dict(params))
    unknown = set(clean) - set(DEFAULTS)
    if unknown:
        raise SimulationError(f"unknown contention_trial params: {sorted(unknown)}")
    merged = {**DEFAULTS, **clean}
    if merged["trojan"] not in ("cpu", "gpu"):
        raise SimulationError("trojan must be 'cpu' or 'gpu'")
    probes = int(typing.cast(int, merged["probes_per_slot"]))
    if probes < 1:
        raise SimulationError("probes_per_slot must be >= 1")
    offset = float(typing.cast(float, merged["probe_offset_ns"]))
    gap = float(typing.cast(float, merged["probe_gap_ns"]))
    slot = float(typing.cast(float, merged["slot_ns"]))
    if not 0 < offset < slot:
        raise SimulationError("probe_offset_ns must fall inside the slot")
    if probes > 1 and gap <= 0:
        raise SimulationError("probe_gap_ns must be positive")
    if offset + (probes - 1) * gap >= slot:
        raise SimulationError("the last probe must start inside the slot")
    if int(typing.cast(int, merged["n_workgroups"])) < 1:
        raise SimulationError("n_workgroups must be >= 1")
    if float(typing.cast(float, merged["fault_intensity"])) < 0:
        raise SimulationError("fault_intensity must be >= 0")
    return merged


#: Config memo: batch planning asks for the same machine hundreds of
#: times per sweep (``supports``/``group_key``/footprint per trial), and
#: building + validating a model is ~0.5 ms.  Configs are frozen
#: dataclasses, so sharing one instance is safe; the cache is tiny (one
#: entry per distinct scale/jitter/seed) but cleared at a cap anyway.
_CONFIG_CACHE: typing.Dict[typing.Tuple[int, float, int], SoCConfig] = {}


def soc_config(params: Params, seed: int) -> SoCConfig:
    """The trial's machine: scaled model, quiet CPU, fixed-mix DRAM."""
    p = merged_params(params)
    key = (
        int(typing.cast(int, p["scale"])),
        float(typing.cast(float, p["dram_jitter_ns"])),
        seed,
    )
    config = _CONFIG_CACHE.get(key)
    if config is None:
        base = kaby_lake_model(seed, scale=typing.cast(int, p["scale"]))
        config = dataclasses.replace(
            base,
            noise=dataclasses.replace(base.noise, enabled=False),
            dram=dataclasses.replace(
                base.dram,
                jitter_sigma_ns=float(typing.cast(float, p["dram_jitter_ns"])),
            ),
        ).validate()
        if len(_CONFIG_CACHE) >= 1024:
            _CONFIG_CACHE.clear()
        _CONFIG_CACHE[key] = config
    return config


@dataclasses.dataclass(frozen=True)
class PathCosts:
    """Uncontended per-access fixed costs, derived from config alone.

    Mirrors the machine's own precomputation so the oracle, the batch
    kernel and the decoder can never disagree on rounding.
    """

    cpu_access_fs: int  # pre + hold + tail of an LLC-hit CPU load
    gpu_access_fs: int  # pre + hold + tail of an LLC-hit GPU load
    ring_hold_fs: int
    dram_miss_fs: int

    @classmethod
    def from_config(cls, config: SoCConfig) -> "PathCosts":
        cpu = config.cpu_clock.cycles_fs
        gpu = config.gpu_clock.cycles_fs
        d2 = cpu(config.cpu_cache.l2_hit_cycles)
        d3 = gpu(config.gpu_l3.hit_cycles)
        traverse = cpu(config.ring.traverse_cycles)
        gpu_traverse = traverse * config.ring.gpu_traverse_multiplier
        lookup = cpu(config.llc.lookup_cycles)
        line_slots = 1 + config.ring.slots_per_line(config.llc.line_bytes)
        hold = cpu(line_slots * config.ring.slot_cycles)
        miss_ns = config.dram.base_ns + config.dram.row_miss_extra_ns
        return cls(
            cpu_access_fs=(d2 + traverse) + hold + (lookup + traverse),
            gpu_access_fs=(d3 + gpu_traverse) + hold + (lookup + gpu_traverse),
            ring_hold_fs=hold,
            dram_miss_fs=max(1, round(miss_ns * FS_PER_NS)),
        )


def base_offset_fs(config: SoCConfig, params: Params) -> int:
    """Absolute time of slot 0: ``base_ns``, or the warm-up bound if larger.

    The warm-up prologue is a single sequential process (so every access
    rides the ring unqueued), which makes its worst case a closed form:
    every line misses the LLC and draws a DRAM row miss.
    """
    p = merged_params(params)
    costs = PathCosts.from_config(config)
    n_trojan = int(typing.cast(int, p["trojan_sets"])) * int(
        typing.cast(int, p["trojan_lines_per_set"])
    )
    n_spy = int(typing.cast(int, p["spy_lines"]))
    trojan_cost = (
        costs.gpu_access_fs if p["trojan"] == "gpu" else costs.cpu_access_fs
    )
    bound = n_trojan * (trojan_cost + costs.dram_miss_fs) + n_spy * (
        costs.cpu_access_fs + costs.dram_miss_fs
    )
    return max(round(float(typing.cast(float, p["base_ns"])) * FS_PER_NS), bound)


def quiet_slot_fs(config: SoCConfig, params: Params) -> int:
    """Exact per-slot probe latency sum of an uncontended slot."""
    p = merged_params(params)
    costs = PathCosts.from_config(config)
    return (
        int(typing.cast(int, p["probes_per_slot"]))
        * int(typing.cast(int, p["spy_lines"]))
        * costs.cpu_access_fs
    )


def decode_threshold_fs(config: SoCConfig, params: Params) -> int:
    """Per-slot decision point: quiet is *exact*, so the margin is thin.

    Any queued probe adds at least a fraction of one ring hold; an
    eighth of a hold above the quiet constant separates signal from the
    (zero-width) quiet distribution while staying below the smallest
    partial-overlap wait worth detecting.
    """
    costs = PathCosts.from_config(config)
    return quiet_slot_fs(config, params) + max(1, costs.ring_hold_fs // 8)


def decode_slots(
    probe_rows: typing.Sequence[typing.Sequence[int]], threshold_fs: int
) -> typing.List[int]:
    """Per-slot received bits from per-(slot, probe) latency sums."""
    return [1 if sum(row) > threshold_fs else 0 for row in probe_rows]


def fault_schedule(params: Params, seed: int, config: SoCConfig) -> typing.List[int]:
    """Absolute start times of every fault burst (sorted, may be empty).

    A pure function of ``(params, seed)``: burst k's offset into the
    transmission window is a seeded hash, so the serial oracle and the
    batch kernel derive the identical schedule independently.
    """
    p = merged_params(params)
    intensity = float(typing.cast(float, p["fault_intensity"]))
    per_slot = float(typing.cast(float, p["fault_bursts_per_slot"]))
    n_slots = int(typing.cast(int, p["n_slots"]))
    n_bursts = int(round(intensity * per_slot * n_slots))
    if n_bursts <= 0:
        return []
    base = base_offset_fs(config, p)
    slot_fs = round(float(typing.cast(float, p["slot_ns"])) * FS_PER_NS)
    span = n_slots * slot_fs
    return sorted(
        base + derive_seed(seed, "fault-burst", k) % span for k in range(n_bursts)
    )


@dataclasses.dataclass
class ContentionPlan:
    """One trial's machine plus its fully-resolved schedule and lines."""

    soc: SoC
    params: Params
    bits: typing.List[int]
    base_fs: int
    slot_fs: int
    offset_fs: int
    gap_fs: int
    spy_lines: typing.List[int]
    #: Flat trojan list, set-class-major (one burst repeats it
    #: ``n_workgroups`` times).
    trojan_lines: typing.List[int]
    #: ``(set_index, slice_index)`` per set class, spy's class first.
    targets: typing.List[typing.Tuple[int, int]]
    fault_sched: typing.List[int]
    start_slot: int = 0
    #: Per-slot, per-probe latency sums.
    probe: typing.List[typing.List[int]] = dataclasses.field(default_factory=list)
    trojan_fs: int = 0


@dataclasses.dataclass
class ContentionLayout:
    """Line placement of one trial (a pure function of config + MMU stream)."""

    spy_lines: typing.List[int]
    trojan_lines: typing.List[int]
    targets: typing.List[typing.Tuple[int, int]]


def resolve_layout(
    config: SoCConfig, params: Params, mmu: Mmu
) -> ContentionLayout:
    """Allocate both agents' buffers and pick per-set-class lines.

    SoC-free for the same reason as the probe family's: the batch
    kernel's cold path resolves placement over a bare MMU on the trial's
    own ``"mmu"`` RNG stream.  The spy draws from set-index class 0 of
    its buffer, the trojan from classes ``1..trojan_sets`` of its own —
    distinct set-index bits guarantee the two agents' LLC (and private
    cache) footprints are disjoint.
    """
    p = merged_params(params)
    trojan_space = AddressSpace(mmu, "contention-trojan")
    spy_space = AddressSpace(mmu, "contention-spy")
    trojan_base = trojan_space.mmap(_HUGE_PAGE, page_bytes=_HUGE_PAGE).paddr_of(0)
    spy_base = spy_space.mmap(_HUGE_PAGE, page_bytes=_HUGE_PAGE).paddr_of(0)
    line = config.llc.line_bytes
    sets_per_slice = config.llc.sets_per_slice
    n_lines = _HUGE_PAGE // line
    n_spy = int(typing.cast(int, p["spy_lines"]))
    n_trojan = int(typing.cast(int, p["trojan_lines_per_set"]))
    n_classes = int(typing.cast(int, p["trojan_sets"])) + 1
    if n_classes > sets_per_slice:
        raise SimulationError("trojan_sets + 1 must fit in one slice's sets")
    spy_lines: typing.List[int] = []
    trojan_lines: typing.List[int] = []
    targets: typing.List[typing.Tuple[int, int]] = []
    for set_index in range(n_classes):
        base = spy_base if set_index == 0 else trojan_base
        want = n_spy if set_index == 0 else n_trojan
        offsets = np.arange(set_index, n_lines, sets_per_slice, dtype=np.int64)
        candidates = base + offsets * line
        slices = slice_of_lines(config, candidates)
        slice_index = int(slices[0])
        chosen = candidates[slices == slice_index]
        if len(chosen) < want:
            raise SimulationError(
                f"buffer too small for LLC set ({slice_index}, {set_index}); "
                "lower trojan_sets/lines or raise scale"
            )
        if set_index == 0:
            spy_lines = [int(x) for x in chosen[:want]]
        else:
            trojan_lines.extend(int(x) for x in chosen[:want])
        targets.append((set_index, slice_index))
    return ContentionLayout(spy_lines, trojan_lines, targets)


def _plan_schedule(p: Params, config: SoCConfig) -> typing.Tuple[int, int, int, int]:
    base_fs = base_offset_fs(config, p)
    slot_fs = round(float(typing.cast(float, p["slot_ns"])) * FS_PER_NS)
    offset_fs = round(float(typing.cast(float, p["probe_offset_ns"])) * FS_PER_NS)
    gap_fs = round(float(typing.cast(float, p["probe_gap_ns"])) * FS_PER_NS)
    return base_fs, slot_fs, offset_fs, gap_fs


def build_plan(params: Params, seed: int) -> ContentionPlan:
    """Cold-start plan: fresh machine, fresh buffers, resolved line sets."""
    p = merged_params(params)
    soc = SoC(soc_config(p, seed))
    layout = resolve_layout(soc.config, p, soc.mmu)
    n_slots = typing.cast(int, p["n_slots"])
    base_fs, slot_fs, offset_fs, gap_fs = _plan_schedule(p, soc.config)
    return ContentionPlan(
        soc=soc,
        params=p,
        bits=payload_bits(seed, n_slots),
        base_fs=base_fs,
        slot_fs=slot_fs,
        offset_fs=offset_fs,
        gap_fs=gap_fs,
        spy_lines=layout.spy_lines,
        trojan_lines=layout.trojan_lines,
        targets=layout.targets,
        fault_sched=fault_schedule(p, seed, soc.config),
    )


def plan_from_doc(params: Params, seed: int, doc: typing.Mapping) -> ContentionPlan:
    """Warm plan: machine restored from a prefix snapshot, lines from the doc."""
    p = merged_params(params)
    soc = _checkpoint.restore_soc(
        soc_config(p, seed), typing.cast(dict, doc["snapshot"])
    )
    n_slots = typing.cast(int, p["n_slots"])
    warm = int(typing.cast(int, doc["warm_slots"]))
    if warm > n_slots:
        raise SimulationError(
            f"prefix ran {warm} slots but the trial only has {n_slots}"
        )
    base_fs, slot_fs, offset_fs, gap_fs = _plan_schedule(p, soc.config)
    return ContentionPlan(
        soc=soc,
        params=p,
        bits=payload_bits(seed, n_slots),
        base_fs=base_fs,
        slot_fs=slot_fs,
        offset_fs=offset_fs,
        gap_fs=gap_fs,
        spy_lines=[int(x) for x in doc["spy_lines"]],
        trojan_lines=[int(x) for x in doc["trojan_lines"]],
        targets=[(int(a), int(b)) for a, b in doc["targets"]],
        fault_sched=fault_schedule(p, seed, soc.config),
        start_slot=warm,
        probe=[[int(x) for x in row] for row in doc["probe"]],
        trojan_fs=int(typing.cast(int, doc["trojan_fs"])),
    )


def _warmup_proc(plan: ContentionPlan) -> typing.Generator:
    """Sequential prologue: make every line LLC-resident before slot 0.

    Being the only process alive, it never queues on the ring and its
    DRAM draws happen in straight-line program order — which is what
    lets the batch kernel replay them from a pre-drawn block.
    """
    soc = plan.soc
    if plan.params["trojan"] == "gpu":
        yield from soc.gpu_access_burst(plan.trojan_lines)
    else:
        core = typing.cast(int, plan.params["trojan_core"])
        yield from soc.cpu_access_burst(core, plan.trojan_lines)
    spy_core = typing.cast(int, plan.params["spy_core"])
    yield from soc.cpu_access_burst(spy_core, plan.spy_lines)


def run_warmup(plan: ContentionPlan) -> None:
    plan.soc.engine.process(_warmup_proc(plan))
    plan.soc.engine.run()


def _trojan_proc(plan: ContentionPlan, start: int, end: int) -> typing.Generator:
    soc = plan.soc
    core = typing.cast(int, plan.params["trojan_core"])
    use_gpu = plan.params["trojan"] == "gpu"
    burst = plan.trojan_lines * typing.cast(int, plan.params["n_workgroups"])
    for s in range(start, end):
        target = plan.base_fs + s * plan.slot_fs
        now = soc.engine.now
        if target > now:
            yield target - now
        if plan.bits[s]:
            if use_gpu:
                latencies = yield from soc.gpu_access_burst(burst)
            else:
                latencies = yield from soc.cpu_access_burst(core, burst)
            plan.trojan_fs += sum(latencies)


def _spy_proc(plan: ContentionPlan, start: int, end: int) -> typing.Generator:
    soc = plan.soc
    core = typing.cast(int, plan.params["spy_core"])
    probes = typing.cast(int, plan.params["probes_per_slot"])
    for s in range(start, end):
        row = []
        for p_i in range(probes):
            target = (
                plan.base_fs + s * plan.slot_fs + plan.offset_fs
                + p_i * plan.gap_fs
            )
            now = soc.engine.now
            if target > now:
                yield target - now
            latencies = yield from soc.cpu_access_burst(core, plan.spy_lines)
            row.append(sum(latencies))
        plan.probe.append(row)


def _fault_proc(plan: ContentionPlan, start: int, end: int) -> typing.Generator:
    soc = plan.soc
    slots = typing.cast(int, plan.params["fault_slots"])
    lo = plan.base_fs + start * plan.slot_fs
    hi = plan.base_fs + end * plan.slot_fs
    for target in plan.fault_sched:
        if not lo <= target < hi:
            continue
        now = soc.engine.now
        if target > now:
            yield target - now
        yield from soc.ring.transfer(slots, "fault")


def run_span(plan: ContentionPlan, start: int, end: int) -> None:
    """Advance the plan's machine through slots ``[start, end)``."""
    if start >= end:
        return
    plan.soc.engine.process(_trojan_proc(plan, start, end))
    plan.soc.engine.process(_spy_proc(plan, start, end))
    lo = plan.base_fs + start * plan.slot_fs
    hi = plan.base_fs + end * plan.slot_fs
    if any(lo <= t < hi for t in plan.fault_sched):
        plan.soc.engine.process(_fault_proc(plan, start, end))
    plan.soc.engine.run()


def outcome_from_plan(plan: ContentionPlan) -> Params:
    """The trial's pure outcome dict (ints and lists only)."""
    soc = plan.soc
    rx_bits = decode_slots(
        plan.probe, decode_threshold_fs(soc.config, plan.params)
    )
    evictions = sum(
        soc.llc.slice_cache(i).evictions for i in range(soc.config.llc.slices)
    )
    return {
        "bits": list(plan.bits),
        "rx_bits": rx_bits,
        "probe_fs": [list(row) for row in plan.probe],
        "trojan_fs": plan.trojan_fs,
        "final_now_fs": soc.engine.now,
        "targets": [list(t) for t in plan.targets],
        "llc": {
            "hits": soc.llc.hits,
            "misses": soc.llc.misses,
            "evictions": evictions,
        },
        "dram": soc.dram.state_dict(),
        "ring": {
            "transfers": dict(soc.ring.transfers),
            "waited_fs": dict(soc.ring.waited_fs),
        },
    }


def contention_trial(params: Params, seed: int) -> Params:
    """One ring-contention transmission; the batch engine's serial oracle.

    Forks from an injected checkpoint doc when one is present (the
    executor's prefix scheduling), cold-starts otherwise; both paths
    produce byte-identical outcomes.
    """
    doc = _checkpoint.resolve_state(typing.cast(dict, params))
    if doc is not None:
        plan = plan_from_doc(params, seed, doc)
    else:
        plan = build_plan(params, seed)
        run_warmup(plan)
    run_span(plan, plan.start_slot, typing.cast(int, plan.params["n_slots"]))
    return outcome_from_plan(plan)


def prepare_contention_prefix(params: Params, seed: int) -> typing.Dict[str, object]:
    """Shared prefix: warm-up plus the first ``warm_slots`` slots, snapshotted.

    The doc carries the resolved line sets alongside the machine
    snapshot: re-allocating after a restore would advance the MMU's RNG
    stream past its captured position and land the lines elsewhere.
    """
    p = merged_params(params)
    warm = typing.cast(int, p["warm_slots"])
    plan = build_plan(p, seed)
    run_warmup(plan)
    run_span(plan, 0, warm)
    plan.soc.quiesce()
    return {
        "snapshot": _checkpoint.snapshot_soc(plan.soc),
        "warm_slots": warm,
        "spy_lines": list(plan.spy_lines),
        "trojan_lines": list(plan.trojan_lines),
        "targets": [list(t) for t in plan.targets],
        "probe": [list(row) for row in plan.probe],
        "trojan_fs": plan.trojan_fs,
    }


def contention_run(params: Params, seed: int) -> "ChannelResult":
    """One contention transmission as a :class:`ChannelResult`.

    The sweep-facing face of :func:`contention_trial`: the payload spans
    exactly ``n_slots`` slots, so the result's bandwidth is the slot
    rate (``1e6 / slot_ns`` kb/s) and its error rate is the decoded
    slot-flip fraction — the same two scalars the analytical tier's
    ``contention_trial`` family predicts.
    """
    from repro.core.channel import ChannelDirection, ChannelResult

    p = merged_params(params)
    outcome = contention_trial(p, seed)
    n_slots = typing.cast(int, p["n_slots"])
    slot_fs = round(float(typing.cast(float, p["slot_ns"])) * FS_PER_NS)
    return ChannelResult(
        direction=ChannelDirection.GPU_TO_CPU,
        sent=list(typing.cast(list, outcome["bits"])),
        received=list(typing.cast(list, outcome["rx_bits"])),
        elapsed_fs=n_slots * slot_fs,
        meta={
            "family": "contention_trial",
            "llc": outcome["llc"],
            "ring": outcome["ring"],
        },
    )
