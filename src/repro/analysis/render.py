"""Plain-text rendering for benchmark output (no plotting dependencies)."""

from __future__ import annotations

import typing


def format_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
) -> str:
    """A fixed-width text table."""
    columns = [
        [str(header)] + [str(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def horizontal_bar(
    value: float, maximum: float, width: int = 40, fill: str = "#"
) -> str:
    """A proportional ASCII bar for quick visual comparison."""
    if maximum <= 0:
        return ""
    filled = int(round(width * min(1.0, value / maximum)))
    return fill * filled + "." * (width - filled)
