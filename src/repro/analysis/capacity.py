"""Channel-capacity analysis (extension).

A covert channel with bit error rate ``p`` behaves as a binary symmetric
channel; its Shannon capacity is ``1 - H(p)`` bits per symbol.  The paper
reports raw bandwidth and error separately — these helpers combine them
into the information-theoretic goodput, which is the fair single number
for comparing operating points (e.g. Fig. 8's redundancy trade-off).
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.channel import ChannelResult
from repro.errors import AttackError


def binary_entropy(p: float) -> float:
    """H(p) in bits; defined as 0 at the endpoints."""
    if not 0.0 <= p <= 1.0:
        raise AttackError(f"probability out of range: {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def bsc_capacity(error_rate: float) -> float:
    """Capacity of a binary symmetric channel, bits per channel bit.

    Validates like :func:`binary_entropy`: an out-of-range ``error_rate``
    raises :class:`~repro.errors.AttackError` rather than being silently
    clamped — a rate outside [0, 1] is always an upstream bug, and
    clamping here used to let it masquerade as a 0%/100% channel.
    """
    return 1.0 - binary_entropy(error_rate)


@dataclasses.dataclass(frozen=True)
class CapacityReport:
    """Raw rate, error, and the implied information rate."""

    raw_bandwidth_bps: float
    error_rate: float

    @property
    def capacity_per_bit(self) -> float:
        return bsc_capacity(self.error_rate)

    @property
    def information_bps(self) -> float:
        """Shannon-capacity-weighted goodput."""
        return self.raw_bandwidth_bps * self.capacity_per_bit

    @property
    def information_kbps(self) -> float:
        return self.information_bps / 1e3

    def summary(self) -> str:
        return (
            f"raw {self.raw_bandwidth_bps / 1e3:.1f} kb/s @ "
            f"{100 * self.error_rate:.2f}% -> "
            f"{self.information_kbps:.1f} kb/s of information"
        )


def capacity_of(result: ChannelResult) -> CapacityReport:
    """Capacity view of one transmission result."""
    return CapacityReport(
        raw_bandwidth_bps=result.bandwidth_bps, error_rate=result.error_rate
    )
