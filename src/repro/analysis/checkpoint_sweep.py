"""Slot-length sweep of the contention channel, forked from one prefix.

The sweep answers a question the paper's Fig. 9/10 leave implicit: how
does the pre-agreed slot length trade bandwidth against error on one
machine?  Every point shares the identical expensive prefix — the wired
machine at the t=0 barrier and the 0.5 s joint calibration measurement —
because the slot length only binds in the *derivation* step
(``slot_fs = slot_us * 1e9``; the measurement itself never reads it).

That makes the sweep the checkpoint subsystem's showcase workload:

* the prepared machine is captured once per ``(config, seed)`` group by
  :func:`repro.core.contention_channel.fork.prepare_doc` and forked into
  every slot point through the executor's :class:`~repro.exec.PrefixSpec`
  scheduling;
* the joint measurement is shared through the calibration memo
  (:mod:`repro.core.contention_channel.calibration`).

Both layers are gated on ``REPRO_CHECKPOINT``; with the gate off every
point cold-starts and re-measures.  The rows are bit-identical either
way — ``benchmarks/bench_checkpoint_fork.py`` asserts exactly that while
recording the wall-time ratio.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import checkpoint as _checkpoint
from repro.config import SoCConfig, kaby_lake_model
from repro.core.channel import ChannelResult
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.contention_channel import fork as contention_fork
from repro.core.contention_channel.calibration import CalibrationResult
from repro.errors import ChannelProtocolError

if typing.TYPE_CHECKING:
    from repro.exec import ExecutionReport, TrialExecutor

Params = typing.Dict[str, object]

#: Slot lengths (µs) swept by default: the paper's 2.6 µs operating point
#: bracketed on both sides.
DEFAULT_SLOT_LENGTHS_US = (1.8, 2.2, 2.6, 3.0, 3.4, 3.8, 4.2, 4.6)


def _channel_for(params: Params, slot_us: typing.Optional[float] = None) -> ContentionChannel:
    config = ContentionChannelConfig(
        n_workgroups=typing.cast(int, params.get("n_workgroups", 2)),
    )
    if slot_us is not None:
        config = dataclasses.replace(config, slot_us=slot_us)
    return ContentionChannel(
        config, soc_config=typing.cast(SoCConfig, params["soc_config"])
    )


def _slot_prefix(params: Params, seed: int) -> typing.Dict[str, object]:
    """Shared prefix: the wired machine at t=0 (slot-length independent)."""
    return contention_fork.prepare_doc(_channel_for(params), seed)


@dataclasses.dataclass(frozen=True)
class SlotPoint:
    """One slot-length operating point of the sweep."""

    slot_us: float
    iteration_factor: float
    bandwidth_kbps: float
    error_percent: float
    n_bits: int


def _slot_pilot_trial(params: Params, seed: int) -> SlotPoint:
    """One pilot transmission at one slot length.

    Forks the prepared machine from the injected checkpoint doc when one
    is present; cold-starts otherwise.  Both paths produce bit-identical
    results — the doc only removes the shared prefix from the wall time.
    """
    slot_us = typing.cast(float, params["slot_us"])
    n_bits = typing.cast(int, params["n_bits"])
    channel = _channel_for(params, slot_us=slot_us)
    # Every operating point rests on one joint measurement, so the sweep
    # buys a higher-fidelity median than a single transmission would;
    # warm runs pay for it exactly once through the calibration memo.
    calibration: CalibrationResult = channel.calibrate(
        seed=seed + 10_000, n_passes=typing.cast(int, params["cal_passes"])
    )
    doc = _checkpoint.resolve_state(params)
    if doc is not None:
        result: ChannelResult = contention_fork.transmit_from_doc(
            channel, doc, n_bits=n_bits, seed=seed, calibration=calibration
        )
    else:
        result = channel.transmit(n_bits=n_bits, seed=seed, calibration=calibration)
    return SlotPoint(
        slot_us=slot_us,
        iteration_factor=calibration.iteration_factor,
        bandwidth_kbps=round(result.bandwidth_kbps, 3),
        error_percent=round(result.error_percent, 3),
        n_bits=n_bits,
    )


@dataclasses.dataclass
class SlotSweepData:
    """Sweep rows plus the execution report they came from."""

    points: typing.List[SlotPoint]
    report: typing.Optional["ExecutionReport"] = None

    def rows(self) -> typing.List[typing.Tuple[object, ...]]:
        return [
            (
                p.slot_us,
                p.iteration_factor,
                round(p.bandwidth_kbps, 1),
                round(p.error_percent, 2),
            )
            for p in self.points
        ]


def slot_length_sweep(
    slot_lengths_us: typing.Sequence[float] = DEFAULT_SLOT_LENGTHS_US,
    n_bits: int = 8,
    cal_passes: int = 24,
    seed: int = 1,
    soc_config: typing.Optional[SoCConfig] = None,
    workers: int = 0,
    executor: typing.Optional["TrialExecutor"] = None,
) -> SlotSweepData:
    """Sweep the slot length; all points fork one shared warm prefix.

    Every trial uses the *same* machine seed on purpose: the points
    differ only in the derived slot, so they form one prefix group and
    the prepared machine plus the joint measurement are paid for once.
    """
    from repro.exec import PrefixSpec, TrialExecutor, TrialSpec

    soc_config = soc_config or kaby_lake_model(scale=16)
    base: Params = {"soc_config": soc_config, "n_workgroups": 2}
    prefix = PrefixSpec(
        fn=_slot_prefix, params=base, seed=seed, label="contention-slot-sweep"
    )
    specs = [
        TrialSpec(
            fn=_slot_pilot_trial,
            params={**base, "slot_us": slot_us, "n_bits": n_bits,
                    "cal_passes": cal_passes},
            seed=seed,
            tag=slot_us,
            prefix=prefix,
        )
        for slot_us in slot_lengths_us
    ]
    if executor is None:
        executor = TrialExecutor(workers=workers)
    report = executor.run(specs)
    points: typing.List[SlotPoint] = []
    for slot_us, outcome in zip(slot_lengths_us, report.outcomes):
        if not outcome.ok:
            raise ChannelProtocolError(
                f"slot sweep failed at {slot_us} us: {outcome.error}"
            )
        points.append(typing.cast(SlotPoint, outcome.result))
    return SlotSweepData(points=points, report=report)
