"""LLC prime+probe sweep trial: the batch engine's reference workload.

One trial is a fixed-schedule covert transmission: a trojan (CPU core or
GPU) primes a handful of target LLC sets with more lines than the set
holds whenever its payload bit is 1, and a spy probes its own resident
lines in those sets once per slot, reading evictions (slow probes) as
1-bits.  The schedule is *temporally disjoint* — the trojan burst ends
before the spy probe starts, and the probe ends before the next trojan
slot — which is exactly the property that lets the vectorized lockstep
engine (:mod:`repro.sim.batch`) advance many trials without an event
queue: within one trial the two agents never interleave, so the whole
slot folds into straight-line state updates.

The trial function is deliberately *pure*: its outcome dict is a
function of ``(params, seed)`` only, contains nothing but ints and
lists, and is byte-compared across engines by the equivalence suite.
``repro.sim.batch.kernels.ProbeSweepKernel`` replays the identical
logical timeline over numpy arrays; this module stays the bit-exact
serial oracle (always used under ``REPRO_BATCH=0``).

Checkpoint prefix-forking composes the same way as the slot-length
sweep: :func:`prepare_probe_prefix` runs the first ``warm_slots`` slots
once, snapshots the quiescent machine, and every forked trial resumes
from the snapshot — cold and warm outcomes are bit-identical because
every wait targets an absolute slot time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

import numpy as np

from repro import checkpoint as _checkpoint
from repro.config import SoCConfig, kaby_lake_model
from repro.errors import SimulationError
from repro.exec.seeds import derive_seed
from repro.sim import FS_PER_NS
from repro.soc.machine import SoC
from repro.soc.mmu import AddressSpace, Mmu

Params = typing.Dict[str, object]

#: Complete parameter surface of one trial; ``probe_trial`` rejects
#: anything else so batch grouping can reason about the full key space.
DEFAULTS: Params = {
    "scale": 8,
    "n_slots": 8,
    "target_sets": 2,
    "trojan_lines_per_set": 10,
    "spy_lines_per_set": 4,
    "llc_ways": 8,
    "slot_ns": 6000.0,
    "spy_offset_ns": 4000.0,
    "trojan": "cpu",  # "cpu" (a second core) or "gpu" (L3 path)
    "trojan_core": 1,
    "spy_core": 0,
    "dram_jitter_ns": 0.0,
    "warm_slots": 0,
    # Test-only lever: the batch kernel ejects the trial to the serial
    # engine at this slot.  The serial oracle ignores it entirely, so the
    # outcome is identical either way -- which is the point of the test.
    "divergence_slot": None,
}

#: Params a batch group may vary per trial (everything else must match
#: for two trials to share one lockstep kernel launch).
VARIABLE_KEYS = ("n_slots", "divergence_slot")

_HUGE_PAGE = 2 * 1024 * 1024


def merged_params(params: Params) -> Params:
    """Defaults + overrides, with unknown keys rejected."""
    clean = _checkpoint.strip_prefix_params(dict(params))
    unknown = set(clean) - set(DEFAULTS)
    if unknown:
        raise SimulationError(f"unknown probe_trial params: {sorted(unknown)}")
    merged = {**DEFAULTS, **clean}
    if merged["trojan"] not in ("cpu", "gpu"):
        raise SimulationError("trojan must be 'cpu' or 'gpu'")
    if not 0 < float(typing.cast(float, merged["spy_offset_ns"])) < float(
        typing.cast(float, merged["slot_ns"])
    ):
        raise SimulationError("spy_offset_ns must fall inside the slot")
    return merged


def soc_config(params: Params, seed: int) -> SoCConfig:
    """The trial's machine: scaled model, quiet CPU, fixed-mix DRAM."""
    p = merged_params(params)
    base = kaby_lake_model(seed, scale=typing.cast(int, p["scale"]))
    config = dataclasses.replace(
        base,
        noise=dataclasses.replace(base.noise, enabled=False),
        dram=dataclasses.replace(
            base.dram,
            jitter_sigma_ns=float(typing.cast(float, p["dram_jitter_ns"])),
        ),
        llc=dataclasses.replace(base.llc, ways=typing.cast(int, p["llc_ways"])),
    )
    return config.validate()


def payload_bits(seed: int, n_slots: int) -> typing.List[int]:
    """Per-slot payload: pure function of the seed (shared with the kernel).

    Inlines ``derive_seed(seed, "payload", s) & 1``: the hash material is
    the same canonical tuple rendering, and the low bit of the 63-bit
    seed is the low bit of byte 7 of the digest (big-endian first eight
    bytes).  Sweep setup derives one bit per slot per trial, so skipping
    the per-call ceremony is a measurable share of batch-lane startup.
    """
    sha256 = hashlib.sha256
    prefix = f"({seed!r},'payload',"
    return [
        sha256(f"{prefix}{s},)".encode("utf-8")).digest()[7] & 1
        for s in range(n_slots)
    ]


def decode_threshold_fs(config: SoCConfig) -> int:
    """Per-probe-line fast/slow decision point, in fs.

    Fast probes are private-cache hits (~l2 cost at worst); slow probes
    cross the ring and at least hit the LLC.  The midpoint of those two
    fixed costs separates them with a wide margin.  Derived from config
    alone so the batch kernel shares it without building a machine.
    """
    d2 = config.cpu_clock.cycles_fs(config.cpu_cache.l2_hit_cycles)
    traverse = config.cpu_clock.cycles_fs(config.ring.traverse_cycles)
    lookup = config.cpu_clock.cycles_fs(config.llc.lookup_cycles)
    return (d2 + (d2 + traverse) + (lookup + traverse)) // 2


def decode_probe(
    probe_rows: typing.Sequence[typing.Sequence[int]],
    spy_lines_per_set: int,
    threshold_fs: int,
) -> typing.List[int]:
    """Per-slot received bits from per-(slot, set) probe latency sums."""
    bits = []
    for row in probe_rows:
        total = sum(row)
        bits.append(1 if total > len(row) * spy_lines_per_set * threshold_fs else 0)
    return bits


@dataclasses.dataclass
class ProbePlan:
    """One trial's machine plus its fully-resolved schedule and lines."""

    soc: SoC
    params: Params
    bits: typing.List[int]
    slot_fs: int
    spy_offset_fs: int
    #: Flat trojan prime list, set-major (the burst order).
    trojan_lines: typing.List[int]
    #: Per-target-set spy probe lists (probed one burst per set).
    spy_sets: typing.List[typing.List[int]]
    #: ``(set_index, slice_index)`` of each target set, for reporting.
    targets: typing.List[typing.Tuple[int, int]]
    start_slot: int = 0
    probe: typing.List[typing.List[int]] = dataclasses.field(default_factory=list)
    trojan_fs: int = 0


def slice_of_lines(config: SoCConfig, paddrs: np.ndarray) -> np.ndarray:
    """Vectorized LLC slice hash: output bit i = parity(paddr & mask[i]).

    Matches :meth:`repro.soc.slice_hash.SliceHash.slice_of` bit for bit
    (the equivalence suite cross-checks them on real placements).
    """
    out = np.zeros(paddrs.shape, dtype=np.int64)
    used_bits = max(0, config.llc.slices.bit_length() - 1)
    masks = (config.llc.hash_s0_mask, config.llc.hash_s1_mask)
    values = paddrs.astype(np.uint64)
    for position in range(used_bits):
        v = values & np.uint64(masks[position])
        for shift in (32, 16, 8, 4, 2, 1):
            v = v ^ (v >> np.uint64(shift))
        out |= (v.astype(np.int64) & 1) << position
    return out


@dataclasses.dataclass
class ProbeLayout:
    """Line placement of one trial (a pure function of config + MMU stream)."""

    trojan_lines: typing.List[int]
    spy_sets: typing.List[typing.List[int]]
    targets: typing.List[typing.Tuple[int, int]]


def resolve_layout(config: SoCConfig, params: Params, mmu: Mmu) -> ProbeLayout:
    """Allocate both agents' buffers and pick the target-set lines.

    Deliberately SoC-free: the serial oracle passes ``soc.mmu``, while
    the batch kernel's cold path builds a bare :class:`Mmu` over the
    trial's own ``"mmu"`` RNG stream — the draws (and therefore the
    placements) are identical because the stream is a pure function of
    ``(root seed, stream name)``.
    """
    p = merged_params(params)
    trojan_space = AddressSpace(mmu, "probe-trojan")
    spy_space = AddressSpace(mmu, "probe-spy")
    trojan_base = trojan_space.mmap(_HUGE_PAGE, page_bytes=_HUGE_PAGE).paddr_of(0)
    spy_base = spy_space.mmap(_HUGE_PAGE, page_bytes=_HUGE_PAGE).paddr_of(0)
    line = config.llc.line_bytes
    sets_per_slice = config.llc.sets_per_slice
    n_lines = _HUGE_PAGE // line
    n_trojan = typing.cast(int, p["trojan_lines_per_set"])
    n_spy = typing.cast(int, p["spy_lines_per_set"])
    trojan_lines: typing.List[int] = []
    spy_sets: typing.List[typing.List[int]] = []
    targets: typing.List[typing.Tuple[int, int]] = []
    for set_index in range(typing.cast(int, p["target_sets"])):
        offsets = np.arange(set_index, n_lines, sets_per_slice, dtype=np.int64)
        trojan_cand = trojan_base + offsets * line
        spy_cand = spy_base + offsets * line
        # The buffers are huge-page backed, so every candidate already has
        # the right set-index bits; the slice hash thins them further.
        # One fused hash call covers both agents (elementwise, so the
        # per-candidate results are unchanged).
        slices = slice_of_lines(config, np.concatenate((trojan_cand, spy_cand)))
        t_slices = slices[: len(trojan_cand)]
        s_slices = slices[len(trojan_cand) :]
        slice_index = int(t_slices[0])
        chosen_t = trojan_cand[t_slices == slice_index]
        chosen_s = spy_cand[s_slices == slice_index]
        if len(chosen_t) < n_trojan or len(chosen_s) < n_spy:
            raise SimulationError(
                f"buffer too small for LLC set ({slice_index}, {set_index}); "
                "lower target_sets/lines or raise scale"
            )
        trojan_lines.extend(int(x) for x in chosen_t[:n_trojan])
        spy_sets.append([int(x) for x in chosen_s[:n_spy]])
        targets.append((set_index, slice_index))
    return ProbeLayout(trojan_lines, spy_sets, targets)


def build_plan(params: Params, seed: int) -> ProbePlan:
    """Cold-start plan: fresh machine, fresh buffers, resolved line sets."""
    p = merged_params(params)
    soc = SoC(soc_config(p, seed))
    layout = resolve_layout(soc.config, p, soc.mmu)
    n_slots = typing.cast(int, p["n_slots"])
    return ProbePlan(
        soc=soc,
        params=p,
        bits=payload_bits(seed, n_slots),
        slot_fs=round(float(typing.cast(float, p["slot_ns"])) * FS_PER_NS),
        spy_offset_fs=round(
            float(typing.cast(float, p["spy_offset_ns"])) * FS_PER_NS
        ),
        trojan_lines=layout.trojan_lines,
        spy_sets=layout.spy_sets,
        targets=layout.targets,
    )


def plan_from_doc(params: Params, seed: int, doc: typing.Mapping) -> ProbePlan:
    """Warm plan: machine restored from a prefix snapshot, lines from the doc."""
    p = merged_params(params)
    soc = _checkpoint.restore_soc(
        soc_config(p, seed), typing.cast(dict, doc["snapshot"])
    )
    n_slots = typing.cast(int, p["n_slots"])
    warm = int(typing.cast(int, doc["warm_slots"]))
    if warm > n_slots:
        raise SimulationError(
            f"prefix ran {warm} slots but the trial only has {n_slots}"
        )
    return ProbePlan(
        soc=soc,
        params=p,
        bits=payload_bits(seed, n_slots),
        slot_fs=round(float(typing.cast(float, p["slot_ns"])) * FS_PER_NS),
        spy_offset_fs=round(
            float(typing.cast(float, p["spy_offset_ns"])) * FS_PER_NS
        ),
        trojan_lines=[int(x) for x in doc["trojan_lines"]],
        spy_sets=[[int(x) for x in group] for group in doc["spy_sets"]],
        targets=[(int(a), int(b)) for a, b in doc["targets"]],
        start_slot=warm,
        probe=[[int(x) for x in row] for row in doc["probe"]],
        trojan_fs=int(typing.cast(int, doc["trojan_fs"])),
    )


def _trojan_proc(plan: ProbePlan, start: int, end: int) -> typing.Generator:
    soc = plan.soc
    core = typing.cast(int, plan.params["trojan_core"])
    use_gpu = plan.params["trojan"] == "gpu"
    for s in range(start, end):
        target = s * plan.slot_fs
        now = soc.engine.now
        if target > now:
            yield target - now
        if plan.bits[s]:
            if use_gpu:
                latencies = yield from soc.gpu_access_burst(plan.trojan_lines)
            else:
                latencies = yield from soc.cpu_access_burst(
                    core, plan.trojan_lines
                )
            plan.trojan_fs += sum(latencies)


def _spy_proc(plan: ProbePlan, start: int, end: int) -> typing.Generator:
    soc = plan.soc
    core = typing.cast(int, plan.params["spy_core"])
    for s in range(start, end):
        target = s * plan.slot_fs + plan.spy_offset_fs
        now = soc.engine.now
        if target > now:
            yield target - now
        row = []
        for lines in plan.spy_sets:
            latencies = yield from soc.cpu_access_burst(core, lines)
            row.append(sum(latencies))
        plan.probe.append(row)


def run_span(plan: ProbePlan, start: int, end: int) -> None:
    """Advance the plan's machine through slots ``[start, end)``."""
    if start >= end:
        return
    plan.soc.engine.process(_trojan_proc(plan, start, end))
    plan.soc.engine.process(_spy_proc(plan, start, end))
    plan.soc.engine.run()


def outcome_from_plan(plan: ProbePlan) -> Params:
    """The trial's pure outcome dict (ints and lists only)."""
    soc = plan.soc
    rx_bits = decode_probe(
        plan.probe,
        typing.cast(int, plan.params["spy_lines_per_set"]),
        decode_threshold_fs(soc.config),
    )
    evictions = sum(
        soc.llc.slice_cache(i).evictions for i in range(soc.config.llc.slices)
    )
    return {
        "bits": list(plan.bits),
        "rx_bits": rx_bits,
        "probe_fs": [list(row) for row in plan.probe],
        "trojan_fs": plan.trojan_fs,
        "final_now_fs": soc.engine.now,
        "targets": [list(t) for t in plan.targets],
        "llc": {
            "hits": soc.llc.hits,
            "misses": soc.llc.misses,
            "evictions": evictions,
        },
        "dram": soc.dram.state_dict(),
        "ring": {
            "transfers": dict(soc.ring.transfers),
            "waited_fs": dict(soc.ring.waited_fs),
        },
    }


def probe_trial(params: Params, seed: int) -> Params:
    """One prime+probe transmission; the batch engine's serial oracle.

    Forks from an injected checkpoint doc when one is present (the
    executor's prefix scheduling), cold-starts otherwise; both paths
    produce byte-identical outcomes.
    """
    doc = _checkpoint.resolve_state(typing.cast(dict, params))
    if doc is not None:
        plan = plan_from_doc(params, seed, doc)
    else:
        plan = build_plan(params, seed)
    run_span(plan, plan.start_slot, typing.cast(int, plan.params["n_slots"]))
    return outcome_from_plan(plan)


def prepare_probe_prefix(params: Params, seed: int) -> typing.Dict[str, object]:
    """Shared prefix: the first ``warm_slots`` slots, snapshotted quiescent.

    The doc carries the resolved line sets alongside the machine
    snapshot: re-allocating after a restore would advance the MMU's RNG
    stream past its captured position and land the lines elsewhere.
    """
    p = merged_params(params)
    warm = typing.cast(int, p["warm_slots"])
    plan = build_plan(p, seed)
    run_span(plan, 0, warm)
    plan.soc.quiesce()
    return {
        "snapshot": _checkpoint.snapshot_soc(plan.soc),
        "warm_slots": warm,
        "trojan_lines": list(plan.trojan_lines),
        "spy_sets": [list(group) for group in plan.spy_sets],
        "targets": [list(t) for t in plan.targets],
        "probe": [list(row) for row in plan.probe],
        "trojan_fs": plan.trojan_fs,
    }
