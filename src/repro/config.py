"""Hardware configuration for the simulated integrated CPU-GPU SoC.

Two presets are provided:

``kaby_lake()``
    The full published geometry of the paper's testbed (i7-7700k + Gen9 HD
    Graphics Neo): 8 MB LLC in 4 slices, the Eq. (1)/(2) slice hash, the
    banked GPU L3 with the 16-bit placement function, a 4.2 GHz CPU clock
    and a 1.1 GHz GPU clock.

``kaby_lake_model()``
    The same machine with every capacity divided by ``scale`` (default 8)
    while preserving line size, associativity, slice count and clock ratio.
    The covert-channel figure harnesses run at model scale so that a full
    parameter sweep stays tractable in a Python discrete-event simulation;
    structural experiments (reverse engineering, eviction sets) run at full
    scale.  EXPERIMENTS.md records which scale each experiment used.

All latencies are expressed in the owning component's clock cycles and
converted to femtoseconds by the SoC wiring.  The values were set once from
public latency figures for Skylake-class parts and then left alone; no
per-figure fitting is done.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigError
from repro.obs.recorder import TRACE_EVENT_NAMES

FS_PER_S = 1_000_000_000_000_000

#: XOR-reduction bit masks of the LLC slice hash, exactly Eq. (1) and
#: Eq. (2) of the paper.  Bit ``i`` set in the mask means physical-address
#: bit ``i`` participates in that output bit.
SLICE_HASH_S0_BITS: typing.Tuple[int, ...] = (
    6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33, 35, 36,
)
SLICE_HASH_S1_BITS: typing.Tuple[int, ...] = (
    7, 11, 13, 15, 17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33, 34, 35, 37,
)


def _bits_to_mask(bits: typing.Iterable[int]) -> int:
    mask = 0
    for bit in bits:
        mask |= 1 << bit
    return mask


SLICE_HASH_S0_MASK = _bits_to_mask(SLICE_HASH_S0_BITS)
SLICE_HASH_S1_MASK = _bits_to_mask(SLICE_HASH_S1_BITS)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclasses.dataclass(frozen=True)
class ClockConfig:
    """A fixed-frequency clock domain."""

    freq_hz: float

    @property
    def cycle_fs(self) -> int:
        """Length of one cycle in femtoseconds (rounded)."""
        return round(FS_PER_S / self.freq_hz)

    def cycles_fs(self, cycles: float) -> int:
        """Femtoseconds for a (possibly fractional) number of cycles."""
        return round(cycles * FS_PER_S / self.freq_hz)

    def validate(self) -> None:
        _require(self.freq_hz > 0, "clock frequency must be positive")


@dataclasses.dataclass(frozen=True)
class CpuCacheConfig:
    """Per-core inclusive L1/L2 hierarchy of the CPU."""

    line_bytes: int = 64
    l1_sets: int = 64
    l1_ways: int = 8
    l1_hit_cycles: int = 4
    l2_sets: int = 1024
    l2_ways: int = 4
    l2_hit_cycles: int = 12

    def validate(self) -> None:
        _require(_is_pow2(self.line_bytes), "line size must be a power of two")
        for name in ("l1_sets", "l1_ways", "l2_sets", "l2_ways"):
            _require(getattr(self, name) > 0, f"{name} must be positive")
        _require(_is_pow2(self.l1_sets), "l1_sets must be a power of two")
        _require(_is_pow2(self.l2_sets), "l2_sets must be a power of two")

    @property
    def l1_bytes(self) -> int:
        return self.line_bytes * self.l1_sets * self.l1_ways

    @property
    def l2_bytes(self) -> int:
        return self.line_bytes * self.l2_sets * self.l2_ways


@dataclasses.dataclass(frozen=True)
class LlcConfig:
    """The shared, sliced last-level cache."""

    slices: int = 4
    sets_per_slice: int = 2048
    ways: int = 16
    line_bytes: int = 64
    lookup_cycles: int = 20  # tag + data array access, in CPU cycles
    hash_s0_mask: int = SLICE_HASH_S0_MASK
    hash_s1_mask: int = SLICE_HASH_S1_MASK

    def validate(self) -> None:
        _require(self.slices in (1, 2, 4, 8), "LLC slice count must be 1/2/4/8")
        _require(_is_pow2(self.sets_per_slice), "sets_per_slice must be a power of two")
        _require(self.ways > 0, "LLC ways must be positive")
        _require(_is_pow2(self.line_bytes), "line size must be a power of two")
        _require(self.lookup_cycles > 0, "lookup_cycles must be positive")

    @property
    def total_bytes(self) -> int:
        return self.slices * self.sets_per_slice * self.ways * self.line_bytes

    @property
    def set_index_bits(self) -> int:
        return self.sets_per_slice.bit_length() - 1

    @property
    def offset_bits(self) -> int:
        return self.line_bytes.bit_length() - 1


@dataclasses.dataclass(frozen=True)
class GpuL3Config:
    """The GPU's banked, non-inclusive L3 data cache.

    The placement function follows §III-D: the low address bits select
    (in order above the byte offset) the set, the bank, and the sub-bank.
    With the published full-scale geometry that is 6 + 5 + 2 + 3 = 16 bits.
    Associativity defaults to 8 so the data capacity matches the 512 KB the
    paper reports for the GT2 part (see DESIGN.md for the known
    inconsistency in §III-D's way count).
    """

    banks: int = 4
    subbanks: int = 8
    sets_per_bank: int = 32
    ways: int = 8
    line_bytes: int = 64
    hit_cycles: int = 16  # in GPU cycles
    plru_rounds_for_eviction: int = 5  # §III-D: ">= 5 accesses" for stable eviction

    def validate(self) -> None:
        for name in ("banks", "subbanks", "sets_per_bank", "ways"):
            _require(_is_pow2(getattr(self, name)), f"{name} must be a power of two")
        _require(_is_pow2(self.line_bytes), "line size must be a power of two")
        _require(self.hit_cycles > 0, "hit_cycles must be positive")
        _require(self.plru_rounds_for_eviction >= 1, "eviction rounds must be >= 1")

    @property
    def total_sets(self) -> int:
        """Distinct placement groups (set x bank x sub-bank)."""
        return self.sets_per_bank * self.banks * self.subbanks

    @property
    def total_bytes(self) -> int:
        return self.total_sets * self.ways * self.line_bytes

    @property
    def offset_bits(self) -> int:
        return self.line_bytes.bit_length() - 1

    @property
    def placement_bits(self) -> int:
        """Number of low address bits that fix L3 placement (incl. offset)."""
        return self.offset_bits + (self.total_sets.bit_length() - 1)


@dataclasses.dataclass(frozen=True)
class RingConfig:
    """The bidirectional ring interconnect between cores, iGPU and LLC.

    A cache-line transfer occupies the ring for ``line / width`` slots of
    ``slot_cycles`` ring-clock cycles each; ``traverse_cycles`` models the
    propagation latency that does *not* occupy the shared resource.  The
    ring clock is tied to the CPU clock domain, as on client parts.
    """

    width_bytes: int = 32
    slot_cycles: int = 2
    traverse_cycles: int = 8
    #: The iGPU sits at the far end of the ring, so its requests cross more
    #: stops than a core's; its traverse latency is scaled by this factor.
    gpu_traverse_multiplier: int = 2

    def validate(self) -> None:
        _require(_is_pow2(self.width_bytes), "ring width must be a power of two")
        _require(self.slot_cycles > 0, "slot_cycles must be positive")
        _require(self.traverse_cycles >= 0, "traverse_cycles must be >= 0")
        _require(self.gpu_traverse_multiplier >= 1, "gpu multiplier must be >= 1")

    def slots_per_line(self, line_bytes: int) -> int:
        return max(1, (line_bytes + self.width_bytes - 1) // self.width_bytes)


@dataclasses.dataclass(frozen=True)
class DramConfig:
    """A flat DRAM model with row-buffer behaviour folded into a latency mix."""

    base_ns: float = 62.0
    row_miss_extra_ns: float = 24.0
    row_hit_probability: float = 0.65
    jitter_sigma_ns: float = 3.0

    def validate(self) -> None:
        _require(self.base_ns > 0, "DRAM base latency must be positive")
        _require(self.row_miss_extra_ns >= 0, "row-miss penalty must be >= 0")
        _require(
            0.0 <= self.row_hit_probability <= 1.0,
            "row hit probability must be in [0, 1]",
        )
        _require(self.jitter_sigma_ns >= 0, "jitter sigma must be >= 0")


@dataclasses.dataclass(frozen=True)
class SlmConfig:
    """Shared Local Memory and the atomic counter used as a custom timer.

    The counter rate model follows §III-B: atomics to one SLM address
    serialize, so the aggregate increment rate rises with the number of
    counter threads but saturates.  We model
    ``rate(n) = saturated_rate * n / (n + half_rate_threads)`` increments
    per GPU cycle, plus multiplicative jitter on each read.  With one
    wavefront (32 threads) the achieved resolution is visibly poorer than
    with the paper's 224 threads — reproducing why the authors used a full
    work-group.
    """

    bytes_per_subslice: int = 64 * 1024
    access_cycles: int = 10
    saturated_rate_per_cycle: float = 1.0
    half_rate_threads: float = 96.0
    #: Absolute Gaussian noise on each counter read, in ticks: the atomic
    #: read itself is exact, but *when* it lands wobbles by a few cycles.
    read_noise_ticks: float = 2.0
    #: Probability that one counter read observes a stale value (the
    #: reading thread was descheduled between its atomic load and its
    #: use).  The counter itself keeps running; only that read lags.  This
    #: is the modeled source of the paper's "misinterprets the misses as
    #: hits" errors on the GPU-receiving side (§V).
    read_glitch_probability: float = 0.04
    #: How stale a glitched read is, in counter ticks.
    glitch_lag_ticks: int = 60

    def validate(self) -> None:
        _require(self.bytes_per_subslice > 0, "SLM size must be positive")
        _require(self.access_cycles > 0, "SLM access latency must be positive")
        _require(self.saturated_rate_per_cycle > 0, "counter rate must be positive")
        _require(self.half_rate_threads > 0, "half_rate_threads must be positive")
        _require(self.read_noise_ticks >= 0, "read noise must be >= 0")
        _require(
            0.0 <= self.read_glitch_probability <= 1.0,
            "glitch probability must be in [0, 1]",
        )
        _require(self.glitch_lag_ticks >= 0, "glitch lag must be >= 0")


@dataclasses.dataclass(frozen=True)
class GpuConfig:
    """Execution topology of the Gen9 iGPU."""

    slices: int = 1
    subslices_per_slice: int = 3
    eus_per_subslice: int = 8
    #: Hardware threads per EU (Gen9: 7); bounds resident work-groups.
    threads_per_eu: int = 7
    wavefront_size: int = 32
    max_threads_per_workgroup: int = 256
    mem_parallelism: int = 16  # concurrent outstanding loads per work-group
    issue_cycles: int = 2  # per-request issue overhead within a batch

    def validate(self) -> None:
        for name in ("slices", "subslices_per_slice", "eus_per_subslice",
                     "threads_per_eu"):
            _require(getattr(self, name) > 0, f"{name} must be positive")
        _require(_is_pow2(self.wavefront_size), "wavefront size must be a power of two")
        _require(
            self.max_threads_per_workgroup % self.wavefront_size == 0,
            "work-group limit must be a multiple of the wavefront size",
        )
        _require(self.mem_parallelism > 0, "mem_parallelism must be positive")
        _require(self.issue_cycles >= 0, "issue_cycles must be >= 0")

    @property
    def total_subslices(self) -> int:
        return self.slices * self.subslices_per_slice

    def workgroups_per_subslice(self, threads_per_workgroup: int) -> int:
        """How many work-groups of a given size one subslice can host."""
        hw_items = self.eus_per_subslice * self.threads_per_eu * self.wavefront_size
        return max(1, hw_items // max(1, threads_per_workgroup))


@dataclasses.dataclass(frozen=True)
class NoiseConfig:
    """System noise on the CPU side of the attack (§II-B: "generally quiet").

    ``background_llc_rate_per_s`` is the Poisson rate of stray LLC accesses
    from other processes; each lands in a uniformly random LLC set.
    """

    background_llc_rate_per_s: float = 2.0e6
    enabled: bool = True
    #: Interrupt-type events (timer ticks, IPIs, kworkers) stall a random
    #: core for a few microseconds; a probe spanning one reads wildly long
    #: and can flip a bit.  This is the dominant CPU-receiving error
    #: source in the model; the period is the *system-wide* event gap.
    os_tick_period_us: float = 70.0
    os_tick_duration_us: float = 2.5
    os_tick_jitter_us: float = 25.0

    def validate(self) -> None:
        _require(self.background_llc_rate_per_s >= 0, "noise rate must be >= 0")
        _require(self.os_tick_period_us > 0, "tick period must be positive")
        _require(self.os_tick_duration_us >= 0, "tick duration must be >= 0")
        _require(self.os_tick_jitter_us >= 0, "tick jitter must be >= 0")


@dataclasses.dataclass(frozen=True)
class MmuConfig:
    """Physical memory and page allocation."""

    phys_bits: int = 39
    page_bytes: int = 4096
    huge_page_bytes: int = 1 << 30  # 1 GB pages, as used in §III-C

    def validate(self) -> None:
        _require(30 <= self.phys_bits <= 52, "phys_bits out of range")
        _require(_is_pow2(self.page_bytes), "page size must be a power of two")
        _require(_is_pow2(self.huge_page_bytes), "huge page size must be a power of two")
        _require(
            self.huge_page_bytes >= self.page_bytes,
            "huge pages must not be smaller than base pages",
        )


@dataclasses.dataclass(frozen=True)
class FaultsConfig:
    """Deterministic fault injection (see :mod:`repro.faults`).

    Each field parameterizes one injector; ``intensity`` is a global
    multiplier applied to every rate and probability via :meth:`scaled`,
    which is how the robustness matrix sweeps fault pressure with a
    single knob.  All injectors draw from their own named RNG streams
    (``fault-dram``, ``fault-ring``, ...), so enabling one never perturbs
    the draws of another — or of the simulation proper.
    """

    enabled: bool = False
    #: DRAM latency spikes: per-access probability and magnitude.
    dram_spike_probability: float = 0.01
    dram_spike_extra_ns: float = 180.0
    #: Ring back-pressure bursts: Poisson burst rate and burst length.
    ring_burst_rate_per_s: float = 2.0e3
    ring_burst_duration_us: float = 6.0
    #: Adversarial preemption windows on the attack cores.
    preempt_rate_per_s: float = 1.5e3
    preempt_duration_us: float = 12.0
    #: Clock-domain drift: the SLM counter rate random-walks in steps of
    #: up to ``clock_drift_step`` (fractional) every period, bounded to
    #: ``1 +- clock_drift_max``.
    clock_drift_step: float = 0.02
    clock_drift_period_us: float = 40.0
    clock_drift_max: float = 0.08
    #: Handshake probe faults: a light poll's observation is lost (drop)
    #: or the poll executes twice (duplicate), per-poll probabilities.
    probe_drop_probability: float = 0.02
    probe_duplicate_probability: float = 0.01

    def validate(self) -> None:
        for name in (
            "dram_spike_probability",
            "probe_drop_probability",
            "probe_duplicate_probability",
        ):
            _require(
                0.0 <= getattr(self, name) <= 1.0, f"{name} must be in [0, 1]"
            )
        _require(
            self.probe_drop_probability + self.probe_duplicate_probability <= 1.0,
            "probe drop + duplicate probabilities must not exceed 1",
        )
        for name in (
            "dram_spike_extra_ns",
            "ring_burst_rate_per_s",
            "ring_burst_duration_us",
            "preempt_rate_per_s",
            "preempt_duration_us",
            "clock_drift_step",
            "clock_drift_period_us",
            "clock_drift_max",
        ):
            _require(getattr(self, name) >= 0, f"{name} must be >= 0")
        _require(self.clock_drift_max < 1.0, "clock_drift_max must be < 1")

    def scaled(self, intensity: float) -> "FaultsConfig":
        """This config with every rate/probability scaled by ``intensity``.

        Probabilities are clamped to 1 (respecting the drop+duplicate
        budget); rates and drift scale linearly.  ``intensity=0`` yields a
        config whose injectors are all no-ops, which keeps a fault sweep's
        baseline point on the exact same code path as its stressed points.
        """
        if intensity < 0:
            raise ConfigError("fault intensity must be >= 0")
        drop = min(1.0, self.probe_drop_probability * intensity)
        dup = min(
            max(0.0, 1.0 - drop), self.probe_duplicate_probability * intensity
        )
        return dataclasses.replace(
            self,
            enabled=True,
            dram_spike_probability=min(1.0, self.dram_spike_probability * intensity),
            ring_burst_rate_per_s=self.ring_burst_rate_per_s * intensity,
            preempt_rate_per_s=self.preempt_rate_per_s * intensity,
            clock_drift_step=self.clock_drift_step * intensity,
            clock_drift_max=min(0.9, self.clock_drift_max * intensity),
            probe_drop_probability=drop,
            probe_duplicate_probability=dup,
        )


@dataclasses.dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing/metrics knobs for one simulated machine.

    ``enabled`` arms the SoC's latency histograms even when no trace sink
    is installed; installing a sink on :data:`repro.obs.recorder` arms
    them regardless.  ``event_allowlist`` restricts which event names a
    component resolves a sink for (``None`` = the recorder's default);
    ``trace_path`` is where the CLI writes the Chrome trace.
    """

    enabled: bool = False
    trace_path: typing.Optional[str] = None
    event_allowlist: typing.Optional[typing.Tuple[str, ...]] = None
    histogram_reservoir: int = 256

    def validate(self) -> None:
        _require(
            self.histogram_reservoir >= 2,
            "histogram reservoir must hold at least 2 samples",
        )
        _require(
            self.trace_path is None or bool(self.trace_path),
            "trace_path must be None or a non-empty path",
        )
        if self.event_allowlist is not None:
            unknown = set(self.event_allowlist) - set(TRACE_EVENT_NAMES)
            _require(
                not unknown,
                f"unknown trace events in allowlist: {sorted(unknown)}",
            )


@dataclasses.dataclass(frozen=True)
class ExecutionConfig:
    """How a batch of trials is executed (see :mod:`repro.exec`).

    ``workers=0`` (the default) runs trials serially in-process — the
    mode tests use, with no picklability requirements.  ``workers >= 1``
    fans trials across that many worker processes.  ``cache_dir`` enables
    the on-disk result cache; ``trial_timeout_s`` and ``retries`` bound
    how long one wedged or crashed trial can hold up a sweep.
    """

    workers: int = 0
    cache_dir: typing.Optional[str] = None
    use_cache: bool = True
    trial_timeout_s: float = 300.0
    retries: int = 1

    def validate(self) -> "ExecutionConfig":
        _require(self.workers >= 0, "workers must be >= 0")
        _require(self.trial_timeout_s > 0, "trial timeout must be positive")
        _require(self.retries >= 0, "retries must be >= 0")
        _require(
            self.cache_dir is None or bool(self.cache_dir),
            "cache_dir must be None or a non-empty path",
        )
        return self


@dataclasses.dataclass(frozen=True)
class SoCConfig:
    """Complete description of the simulated machine."""

    name: str = "kaby-lake-i7-7700k"
    cpu_clock: ClockConfig = dataclasses.field(default_factory=lambda: ClockConfig(4.2e9))
    gpu_clock: ClockConfig = dataclasses.field(default_factory=lambda: ClockConfig(1.1e9))
    cpu_cores: int = 4
    cpu_cache: CpuCacheConfig = dataclasses.field(default_factory=CpuCacheConfig)
    llc: LlcConfig = dataclasses.field(default_factory=LlcConfig)
    gpu: GpuConfig = dataclasses.field(default_factory=GpuConfig)
    gpu_l3: GpuL3Config = dataclasses.field(default_factory=GpuL3Config)
    slm: SlmConfig = dataclasses.field(default_factory=SlmConfig)
    ring: RingConfig = dataclasses.field(default_factory=RingConfig)
    dram: DramConfig = dataclasses.field(default_factory=DramConfig)
    mmu: MmuConfig = dataclasses.field(default_factory=MmuConfig)
    noise: NoiseConfig = dataclasses.field(default_factory=NoiseConfig)
    obs: ObservabilityConfig = dataclasses.field(default_factory=ObservabilityConfig)
    faults: FaultsConfig = dataclasses.field(default_factory=FaultsConfig)
    seed: int = 0

    def validate(self) -> "SoCConfig":
        """Check cross-field consistency; returns self for chaining."""
        _require(self.cpu_cores >= 1, "need at least one CPU core")
        for section in (
            self.cpu_clock, self.gpu_clock, self.cpu_cache, self.llc, self.gpu,
            self.gpu_l3, self.slm, self.ring, self.dram, self.mmu, self.noise,
            self.obs, self.faults,
        ):
            section.validate()
        _require(
            self.cpu_cache.line_bytes == self.llc.line_bytes == self.gpu_l3.line_bytes,
            "all caches must share one line size",
        )
        _require(
            self.llc.total_bytes > self.cpu_cache.l2_bytes,
            "LLC must be larger than L2",
        )
        _require(
            (1 << self.mmu.phys_bits) >= 4 * self.llc.total_bytes,
            "physical memory must comfortably exceed the LLC",
        )
        return self

    def replace(self, **kwargs: object) -> "SoCConfig":
        """Return a validated copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs).validate()

    @property
    def clock_ratio(self) -> float:
        """CPU frequency over GPU frequency (the paper's ~4x disparity)."""
        return self.cpu_clock.freq_hz / self.gpu_clock.freq_hz


def kaby_lake(seed: int = 0) -> SoCConfig:
    """The paper's testbed at full published geometry."""
    return SoCConfig(seed=seed).validate()


def kaby_lake_model(seed: int = 0, scale: int = 8) -> SoCConfig:
    """Capacity-scaled variant used by the channel figure harnesses.

    Every set count is divided by ``scale`` (associativity, line size,
    slice/bank structure and clock ratio are preserved), which divides the
    event count of a channel run by roughly the same factor while keeping
    the geometry relationships the attacks depend on.
    """
    if scale < 1 or (scale & (scale - 1)) != 0:
        raise ConfigError("scale must be a power of two >= 1")
    base = SoCConfig(seed=seed)
    scaled = dataclasses.replace(
        base,
        name=f"kaby-lake-model-1/{scale}",
        cpu_cache=dataclasses.replace(
            base.cpu_cache,
            l1_sets=max(16, base.cpu_cache.l1_sets // scale),
            l2_sets=max(64, base.cpu_cache.l2_sets // scale),
        ),
        llc=dataclasses.replace(
            base.llc, sets_per_slice=max(64, base.llc.sets_per_slice // scale)
        ),
        gpu_l3=dataclasses.replace(
            base.gpu_l3, sets_per_bank=max(4, base.gpu_l3.sets_per_bank // scale)
        ),
    )
    return scaled.validate()


def scale_bytes(config: SoCConfig, paper_bytes: int, paper_config: typing.Optional[SoCConfig] = None) -> int:
    """Convert a paper-quoted buffer size to the config's capacity scale.

    E.g. the paper's 2 MB GPU buffer becomes 256 KB on a 1/8 model-scale
    machine, preserving the buffer/LLC capacity ratio the experiments
    depend on.
    """
    reference = paper_config or kaby_lake()
    ratio = config.llc.total_bytes / reference.llc.total_bytes
    line = config.llc.line_bytes
    scaled = max(line, int(paper_bytes * ratio))
    return (scaled // line) * line
