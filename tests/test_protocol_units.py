"""Unit-level tests of LLC-protocol helpers and endpoint mechanics."""

import pytest

from repro.core.llc_channel import LLCChannel, LLCChannelConfig
from repro.core.llc_channel.plan import Role
from repro.core.llc_channel.protocol import (
    CpuEndpoint,
    GpuEndpoint,
    ProtocolTuning,
    robust_center,
    wait_for_signal,
)
from repro.errors import ChannelProtocolError


def test_robust_center_plain_median_for_small_samples():
    assert robust_center([5]) == 5
    assert robust_center([1, 9]) == 9  # median of two = upper middle
    assert robust_center([1, 5, 9]) == 5


def test_robust_center_trims_extremes():
    # One wild outlier on each side must not move the center.
    assert robust_center([100, 101, 102, 103, 104, 9999]) in (102, 103)
    assert robust_center([-5000, 100, 101, 102, 103, 104]) in (101, 102)


def test_robust_center_double_corruption():
    samples = [27, 29, 87, 26, 88, 28]  # two glitched reads among six
    assert robust_center(samples) <= 29


@pytest.fixture(scope="module")
def quiet_session():
    return LLCChannel(LLCChannelConfig(system_effects=False)).build_session(seed=77)


def _drive(session, generator):
    return session.soc.engine.run_until_complete(
        session.soc.engine.process(generator)
    )


def test_light_probe_nondestructive(quiet_session):
    """A light probe must not destroy a peer prime it observed."""
    session = quiet_session
    soc = session.soc
    endpoint = CpuEndpoint(session.spy, session.plan.cpu, session.tuning)

    def scenario():
        yield from endpoint.calibrate()
        yield from endpoint.prime(Role.DATA)
        # Peer prime: fill with GPU lines.
        for location in session.plan.gpu.roles[Role.DATA].locations:
            for paddr in session.plan.gpu.roles[Role.DATA].prime[location]:
                soc.llc.access(paddr)
                for caches in soc.cpu_caches:
                    caches.invalidate(paddr)
        for location in session.plan.cpu.roles[Role.DATA].locations:
            for paddr in session.plan.cpu.roles[Role.DATA].prime[location]:
                for caches in soc.cpu_caches:
                    caches.invalidate(paddr)
        first = yield from endpoint.probe_light(Role.DATA, salt=0)
        second = yield from endpoint.probe_light(Role.DATA, salt=2)
        return first, second

    first, second = _drive(session, scenario())
    assert first == [True, True]
    # The signal survives the first poll: a second (different-line) poll
    # still sees the eviction.
    assert second == [True, True]


def test_wait_for_signal_detects_prime(quiet_session):
    session = quiet_session
    soc = session.soc
    endpoint = CpuEndpoint(session.spy, session.plan.cpu, session.tuning)
    tuning = session.tuning

    def scenario():
        yield from endpoint.calibrate()
        yield from endpoint.prime(Role.READY_SEND)
        # Simulated peer prime lands after a few polls.
        def peer():
            from repro.sim import Timeout

            yield Timeout(soc.engine, 2_000_000_000)  # 2 us
            for location in session.plan.gpu.roles[Role.READY_SEND].locations:
                for paddr in session.plan.gpu.roles[Role.READY_SEND].prime[location]:
                    soc.llc.access(paddr)
                    for caches in soc.cpu_caches:
                        caches.invalidate(paddr)
            for location in session.plan.cpu.roles[Role.READY_SEND].locations:
                for paddr in session.plan.cpu.roles[Role.READY_SEND].prime[location]:
                    if not soc.llc.contains(paddr):
                        for caches in soc.cpu_caches:
                            caches.invalidate(paddr)
            return None

        soc.engine.process(peer())
        polls = yield from wait_for_signal(
            endpoint, Role.READY_SEND, tuning, tuning.receiver_poll_gap_fs
        )
        return polls

    polls = _drive(session, scenario())
    assert polls >= 1  # had to wait for the peer
    assert polls < 200


def test_wait_for_signal_times_out_without_peer():
    session = LLCChannel(LLCChannelConfig(system_effects=False)).build_session(seed=78)
    endpoint = CpuEndpoint(session.spy, session.plan.cpu, session.tuning)
    tuning = ProtocolTuning(max_poll_iterations=30, peer_prime_settle_fs=0)

    def scenario():
        yield from endpoint.calibrate()
        yield from endpoint.prime(Role.READY_SEND)
        yield from wait_for_signal(
            endpoint, Role.READY_SEND, tuning, tuning.receiver_poll_gap_fs
        )

    with pytest.raises(ChannelProtocolError):
        _drive(session, scenario())


def test_gpu_endpoint_probe_roundtrip(quiet_session):
    """GPU probe detects a CPU prime and recovers after consuming it."""
    session = quiet_session
    tuning = session.tuning

    def kernel(wg):
        endpoint = GpuEndpoint(wg, session.plan.gpu, tuning)
        yield from endpoint.calibrate()
        yield from endpoint.prime(Role.READY_RECV)
        before = yield from endpoint.probe_light(Role.READY_RECV, salt=0)
        # CPU peer primes B.
        cpu_plan = session.plan.cpu.roles[Role.READY_RECV]
        for location in cpu_plan.locations:
            for paddr in cpu_plan.prime[location]:
                session.soc.llc.access(paddr)
        after = yield from endpoint.probe_light(Role.READY_RECV, salt=2)
        yield from endpoint.prime(Role.READY_RECV)  # consume
        restored = yield from endpoint.probe_light(Role.READY_RECV, salt=4)
        return before, after, restored

    results = session.cl.run_kernel_to_completion(kernel, 1, 256)
    before, after, restored = results[0]
    assert before == [False, False]
    assert after == [True, True]
    assert restored == [False, False]


def test_tuning_defaults_sane():
    tuning = ProtocolTuning()
    assert tuning.handshake_probe_lines >= 1
    assert tuning.data_window_polls >= 1
    assert 0 < tuning.threshold_fraction < 1
    assert tuning.threshold_fraction < tuning.light_threshold_fraction < 1
