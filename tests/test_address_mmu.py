"""Address helpers, regions, and the MMU/buffer layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import MmuConfig
from repro.errors import AllocationError, MemoryModelError
from repro.sim.rng import RngStreams
from repro.soc.address import (
    AddressRegion,
    extract_bits,
    line_address,
    line_index,
    offset_in_line,
    parity,
)
from repro.soc.mmu import AddressSpace, Mmu


@given(st.integers(min_value=0, max_value=2**40))
def test_line_address_aligns(paddr):
    aligned = line_address(paddr, 64)
    assert aligned % 64 == 0
    assert aligned <= paddr < aligned + 64


@given(st.integers(min_value=0, max_value=2**40))
def test_line_decomposition_roundtrip(paddr):
    assert line_index(paddr, 64) * 64 + offset_in_line(paddr, 64) == paddr


def test_extract_bits():
    assert extract_bits(0b1011_0100, 2, 4) == 0b1101


@given(st.integers(min_value=0, max_value=2**40))
def test_parity_matches_bit_count(value):
    assert parity(value) == bin(value).count("1") % 2


def test_parity_xor_linearity():
    a, b = 0b1010, 0b0110
    assert parity(a ^ b) == parity(a) ^ parity(b)


def test_region_contains_and_end():
    region = AddressRegion(100, 50)
    assert region.end == 150
    assert region.contains(100)
    assert region.contains(149)
    assert not region.contains(150)


def test_region_overlap():
    a = AddressRegion(0, 100)
    assert a.overlaps(AddressRegion(50, 100))
    assert not a.overlaps(AddressRegion(100, 10))


def test_region_rejects_empty():
    with pytest.raises(MemoryModelError):
        AddressRegion(0, 0)


def test_region_lines_iteration():
    region = AddressRegion(130, 130)
    lines = list(region.lines(64))
    assert lines == [128, 192, 256]


@pytest.fixture
def mmu():
    return Mmu(MmuConfig(), RngStreams(3).stream("mmu"))


def test_frames_are_distinct_and_aligned(mmu):
    frames = mmu.allocate_frames(32, 4096)
    assert len(set(frames)) == 32
    assert all(f % 4096 == 0 for f in frames)


def test_block_alignment(mmu):
    region = mmu.allocate_block(1 << 30, 1 << 30)
    assert region.base % (1 << 30) == 0


def test_allocations_never_overlap(mmu):
    regions = [mmu.allocate_block(1 << 20, 1 << 20) for _ in range(20)]
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            assert not a.overlaps(b)


def test_oversized_allocation_fails(mmu):
    with pytest.raises(AllocationError):
        mmu.allocate_block(1 << 45, 4096)


def test_free_returns_region(mmu):
    region = mmu.allocate_block(1 << 20, 1 << 20)
    mmu.free(region)
    mmu._claim(region.base, region.size)  # reusable now


def test_free_unknown_region_raises(mmu):
    with pytest.raises(MemoryModelError):
        mmu.free(AddressRegion(12345 * 4096, 4096))


@pytest.fixture
def space(mmu):
    return AddressSpace(mmu, name="proc")


def test_buffer_paddr_offsets_consistent(space):
    buffer = space.mmap(4096 * 4)
    for offset in (0, 1, 4095, 4096, 8191, 16383):
        paddr = buffer.paddr_of(offset)
        assert paddr % 4096 == offset % 4096


def test_buffer_out_of_range_offset(space):
    buffer = space.mmap(4096)
    with pytest.raises(MemoryModelError):
        buffer.paddr_of(4096)


def test_small_pages_not_contiguous_usually(space):
    buffer = space.mmap(4096 * 16)
    assert not buffer.is_physically_contiguous


def test_huge_pages_are_contiguous(space):
    buffer = space.mmap_huge(1 << 30)
    assert buffer.is_physically_contiguous
    base = buffer.paddr_of(0)
    assert base % (1 << 30) == 0
    assert buffer.paddr_of(123456) == base + 123456


def test_translate_virtual_addresses(space):
    buffer = space.mmap(8192)
    vaddr = buffer.vaddr_of(5000)
    assert space.translate(vaddr) == buffer.paddr_of(5000)


def test_translate_unmapped_raises(space):
    with pytest.raises(MemoryModelError):
        space.translate(0xDEAD)


def test_vaddr_offset_roundtrip(space):
    buffer = space.mmap(8192)
    assert buffer.offset_of_vaddr(buffer.vaddr_of(777)) == 777


def test_distinct_buffers_disjoint_va(space):
    a = space.mmap(4096)
    b = space.mmap(4096)
    assert a.va_end <= b.va_base or b.va_end <= a.va_base


def test_line_paddrs_count(space):
    buffer = space.mmap(64 * 100)
    assert len(buffer.line_paddrs(64)) == 100


def test_zero_size_buffer_rejected(space):
    with pytest.raises(MemoryModelError):
        space.mmap(0)


def test_svm_shares_address_space(space):
    """Two views of one AddressSpace see identical translations (SVM)."""
    buffer = space.mmap(4096)
    # The GPU "borrows" the same space object; translation must agree.
    assert space.translate(buffer.vaddr_of(100)) == buffer.paddr_of(100)
