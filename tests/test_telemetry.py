"""Telemetry, run ledger and drift detection (repro.obs.telemetry etc.).

Covers the cross-process telemetry pipeline end to end: event builders,
the SweepTelemetry aggregator (including the online BER CUSUM), the
merge_snapshots degenerate cases the worker path relies on, the
determinism contract (sweep outcomes bit-identical with telemetry on or
off at any worker count), the worker-queue census crediting, the
append-only run ledger + its CLI, channel-health drift warnings, the
Prometheus exporter and the shared bench footer assembly.
"""

import io
import json
import pickle
import queue as queue_module

import pytest

from repro.exec import OK, TIMEOUT, TrialExecutor, TrialSpec
from repro.exec.demo import synthetic_trial
from repro.exec.executor import _TelemetryDrainer, run_one_trial
from repro.errors import ObservabilityError
from repro.obs.drift import (
    channel_drift_warnings,
    channels_of,
    committed_channels,
    zscore,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    append_record,
    default_ledger_path,
    format_record,
    make_record,
    read_records,
    validate_record,
)
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.prometheus import prometheus_text, sanitize_metric_name
from repro.obs.telemetry import (
    Cusum,
    SweepTelemetry,
    bench_run_record,
    emit_from_worker,
    install_worker_queue,
    telemetry_from_env,
    trial_finish_event,
    trial_start_event,
)


def _specs(n=4, noise=0.1):
    return [
        TrialSpec(fn=synthetic_trial, params={"n_bits": 24, "noise": noise},
                  seed=seed)
        for seed in range(1, n + 1)
    ]


def _outcome_fingerprint(report):
    # One pickle per outcome (a joint dump would compare object identity).
    return [
        pickle.dumps((o.kind, o.result, o.error)) for o in report.outcomes
    ]


# ----------------------------------------------------------------------
# merge_snapshots degenerate inputs


def test_merge_snapshots_empty_sequence():
    assert merge_snapshots([]) == {}


def test_merge_snapshots_single_snapshot_is_identity():
    snap = {"a": {"b": 3}, "hist": {"count": 1, "mean": 5.0}}
    assert merge_snapshots([snap]) == snap


def test_merge_snapshots_single_sample_histograms():
    a = {"h": {"count": 1, "mean": 2.0, "min": 2.0, "max": 2.0, "stdev": 0.0}}
    b = {"h": {"count": 1, "mean": 4.0, "min": 4.0, "max": 4.0, "stdev": 0.0}}
    merged = merge_snapshots([a, b])["h"]
    assert merged["count"] == 2
    assert merged["mean"] == pytest.approx(3.0)
    assert merged["min"] == 2.0 and merged["max"] == 4.0
    assert merged["stdev"] == pytest.approx(2.0 ** 0.5)


def test_merge_snapshots_disjoint_names():
    merged = merge_snapshots([{"only_a": 1}, {"only_b": {"deep": 2}}])
    assert merged == {"only_a": 1, "only_b": {"deep": 2}}


def test_merge_snapshots_sums_counters():
    merged = merge_snapshots([{"n": 2}, {"n": 3}, {"n": 5}])
    assert merged == {"n": 10}


# ----------------------------------------------------------------------
# Event builders


def test_trial_events_shape():
    start = trial_start_event(token=7, index=2)
    assert start == {"ev": "trial.start", "token": 7, "index": 2}

    class FakeResult:
        error_rate = 0.25
        bandwidth_kbps = 100.5

    finish = trial_finish_event(
        7, 2, OK, FakeResult(), {"events_executed": 10}, wall_s=0.5
    )
    assert finish["ev"] == "trial.finish"
    assert finish["ber_percent"] == pytest.approx(25.0)
    assert finish["bandwidth_kbps"] == pytest.approx(100.5)
    assert finish["sim"] == {"events_executed": 10}
    assert "metrics" not in finish  # no meta["metrics"] on the result
    assert json.dumps(finish)  # JSON-able contract


def test_trial_finish_event_without_health_fields():
    finish = trial_finish_event(1, 0, "crash", "traceback...", {}, 0.1)
    assert "ber_percent" not in finish and "bandwidth_kbps" not in finish


# ----------------------------------------------------------------------
# CUSUM drift detector


def test_cusum_stable_series_never_alarms():
    detector = Cusum(slack=1.0, threshold=5.0, warmup=3)
    assert not any(detector.update(2.0 + 0.1 * (i % 3)) for i in range(50))


def test_cusum_flags_injected_ber_regression():
    detector = Cusum(slack=1.0, threshold=5.0, warmup=4)
    flags = [detector.update(2.0) for _ in range(8)]
    assert not any(flags)
    # Channel goes noisy mid-sweep: BER jumps from ~2% to ~10%.
    flagged_at = None
    for i in range(10):
        if detector.update(10.0):
            flagged_at = i
            break
    assert flagged_at is not None
    assert detector.alarmed
    # Alarm fires once, not on every subsequent sample.
    assert not detector.update(10.0)


def test_cusum_explicit_target_skips_warmup():
    detector = Cusum(slack=0.5, threshold=1.0, warmup=4, target=1.0)
    assert detector.update(3.0)  # (3-1) - 0.5 = 1.5 >= 1.0


# ----------------------------------------------------------------------
# SweepTelemetry aggregation


def _feed_sweep(telemetry, bers=(1.0, 1.2), cached=0):
    telemetry.handle({"ev": "sweep.start", "trials": len(bers) + cached,
                      "workers": 2, "label": "t"})
    for i, ber in enumerate(bers):
        telemetry.handle(trial_start_event(i, i))
        telemetry.handle({
            "ev": "trial.finish", "token": i, "index": i, "kind": OK,
            "wall_s": 0.25, "ber_percent": ber, "bandwidth_kbps": 100.0,
            "sim": {"events_executed": 50, "engines_created": 1},
        })
    for i in range(cached):
        telemetry.handle({"ev": "trial.cached", "index": len(bers) + i,
                          "kind": OK})
    telemetry.handle({
        "ev": "sweep.finish", "wall_s": 1.0, "ok": len(bers) + cached,
        "dead": 0, "crash": 0, "timeout": 0, "cached": cached,
        "sim": {}, "cache": {"hits": cached, "misses": len(bers)},
    })


def test_sweep_telemetry_aggregates_counts_and_histograms():
    telemetry = SweepTelemetry(label="unit")
    _feed_sweep(telemetry, bers=(1.0, 3.0), cached=1)
    counts = telemetry.registry.counters()
    assert counts["sweep.trials"] == 3
    assert counts["sweep.started"] == 2
    assert counts["sweep.attempts"] == 2
    assert counts["sweep.ok"] == 3  # 2 finishes + 1 cached
    assert counts["sweep.cached"] == 1
    assert counts["sweep.events_executed"] == 100
    assert counts["exec.cache.hits"] == 1
    assert telemetry.done == 3
    snap = telemetry.snapshot()
    ber = snap["sweep"]["ber_percent"]
    assert ber["count"] == 2 and ber["mean"] == pytest.approx(2.0)
    assert "unit" in telemetry.summary()
    assert "3/3" in telemetry.summary()


def test_sweep_telemetry_retries_count_attempts_not_done():
    telemetry = SweepTelemetry()
    telemetry.handle({"ev": "sweep.start", "trials": 1, "workers": 0})
    for kind in (TIMEOUT, OK):  # same index retried
        telemetry.handle({"ev": "trial.finish", "token": 0, "index": 0,
                          "kind": kind, "wall_s": 0.1, "sim": {}})
    assert telemetry.done == 1
    counts = telemetry.registry.counters()
    assert counts["sweep.attempts"] == 2
    assert counts["sweep.timeout"] == 1 and counts["sweep.ok"] == 1


def test_sweep_telemetry_jsonl_stream_and_progress():
    stream, progress = io.StringIO(), io.StringIO()
    telemetry = SweepTelemetry(label="s", stream=stream, progress=progress)
    _feed_sweep(telemetry)
    lines = [json.loads(l) for l in stream.getvalue().splitlines()]
    assert [l["ev"] for l in lines[:2]] == ["sweep.start", "trial.start"]
    assert all("t" in l for l in lines)  # relative timestamps
    # Non-tty progress prints only the final line.
    assert progress.getvalue().count("[s]") == 1
    assert "2/2" in progress.getvalue()


def test_sweep_telemetry_cusum_warning_lands_in_snapshot():
    telemetry = SweepTelemetry(cusum=Cusum(slack=0.5, threshold=2.0,
                                           warmup=2))
    bers = (1.0, 1.0, 9.0, 9.0, 9.0)
    _feed_sweep(telemetry, bers=bers)
    assert telemetry.warnings and "CUSUM" in telemetry.warnings[0]
    assert telemetry.registry.counters()["sweep.drift_alarms"] == 1
    assert telemetry.snapshot()["warnings"] == telemetry.warnings


def test_sweep_telemetry_merges_worker_soc_metrics():
    telemetry = SweepTelemetry()
    for value in (2, 3):
        telemetry.handle({
            "ev": "trial.finish", "token": value, "index": value, "kind": OK,
            "wall_s": 0.1, "sim": {},
            "metrics": {"cache": {"llc": {"hits": value}}},
        })
    assert telemetry.snapshot()["soc"] == {"cache": {"llc": {"hits": 5}}}


def test_sweep_telemetry_prom_flush(tmp_path):
    prom = tmp_path / "sweep.prom"
    telemetry = SweepTelemetry(prom_path=prom)
    _feed_sweep(telemetry)
    telemetry.flush()
    text = prom.read_text()
    assert "# TYPE repro_sweep_trials gauge" in text
    assert "repro_sweep_trial_wall_s_count 2" in text


def test_telemetry_from_env_off_by_default():
    assert telemetry_from_env(environ={}) is None
    assert telemetry_from_env(environ={"REPRO_TELEMETRY": "0"}) is None


def test_telemetry_from_env_knobs(tmp_path):
    jsonl = tmp_path / "watch.jsonl"
    telemetry = telemetry_from_env(
        label="envy",
        environ={
            "REPRO_TELEMETRY": "1",
            "REPRO_TELEMETRY_JSONL": str(jsonl),
            "REPRO_TELEMETRY_PROM": str(tmp_path / "m.prom"),
        },
    )
    assert telemetry is not None and telemetry.label == "envy"
    telemetry.handle({"ev": "sweep.start", "trials": 1, "workers": 0})
    telemetry.stream.close()
    assert json.loads(jsonl.read_text().splitlines()[0])["ev"] == "sweep.start"


# ----------------------------------------------------------------------
# Worker queue plumbing


def test_emit_from_worker_without_queue_is_noop():
    install_worker_queue(None)
    emit_from_worker({"ev": "trial.start"})  # must not raise


def test_run_one_trial_emits_on_installed_queue():
    sink = queue_module.Queue()
    install_worker_queue(sink)
    try:
        kind, value, sim = run_one_trial(
            (synthetic_trial, {"n_bits": 24, "noise": 0.1}, 1, 42, 0)
        )
    finally:
        install_worker_queue(None)
    assert kind == OK
    start = sink.get_nowait()
    finish = sink.get_nowait()
    assert start == {"ev": "trial.start", "token": 42, "index": 0}
    assert finish["token"] == 42 and finish["kind"] == OK
    assert finish["sim"]["events_executed"] == sim["events_executed"] > 0
    assert "ber_percent" in finish


def test_run_one_trial_without_token_emits_nothing():
    sink = queue_module.Queue()
    install_worker_queue(sink)
    try:
        kind, _, _ = run_one_trial(
            (synthetic_trial, {"n_bits": 24, "noise": 0.1}, 1)
        )
    finally:
        install_worker_queue(None)
    assert kind == OK
    assert sink.empty()


def test_drainer_keeps_orphan_sims_and_forwards_events():
    telemetry = SweepTelemetry()
    q = queue_module.Queue()
    drainer = _TelemetryDrainer(q, telemetry)
    drainer.start()
    q.put({"ev": "trial.finish", "token": 5, "index": 0, "kind": OK,
           "wall_s": 0.1, "sim": {"events_executed": 9}})
    q.put("garbage")  # non-dict events are skipped, not fatal
    q.put({"ev": "trial.finish", "token": 6, "index": 1, "kind": OK,
           "wall_s": 0.1, "sim": {"events_executed": 4}})
    drainer.stop()
    assert not drainer.is_alive()
    # Token 5's handle was merged by the executor; 6 was abandoned.
    orphans = drainer.orphan_sims(claimed={5})
    assert orphans == [(6, {"events_executed": 4})]
    assert telemetry.registry.counters()["sweep.attempts"] == 2


# ----------------------------------------------------------------------
# Determinism: telemetry and worker count never change sweep results


@pytest.mark.parametrize("workers", [0, 2, 8])
def test_sweep_bit_identical_with_telemetry_on_and_off(workers):
    specs = _specs(n=4)
    plain = TrialExecutor(workers=workers, telemetry=False).run(specs)
    telemetry = SweepTelemetry()
    watched = TrialExecutor(workers=workers, telemetry=telemetry).run(specs)
    assert _outcome_fingerprint(plain) == _outcome_fingerprint(watched)
    assert telemetry.done == len(specs)
    assert telemetry.registry.counters()["sweep.ok"] == len(specs)


def test_sweep_bit_identical_across_worker_counts_with_streaming():
    specs = _specs(n=4)
    baseline = TrialExecutor(workers=0, telemetry=False).run(specs)
    for workers in (0, 2):
        stream = io.StringIO()
        report = TrialExecutor(
            workers=workers, telemetry=SweepTelemetry(stream=stream)
        ).run(specs)
        assert _outcome_fingerprint(report) == _outcome_fingerprint(baseline)
        events = [json.loads(l)["ev"] for l in stream.getvalue().splitlines()]
        assert events.count("trial.finish") == len(specs)
        assert events[-1] == "sweep.finish"


def test_parallel_sim_totals_match_serial_with_telemetry():
    specs = _specs(n=3)
    serial = TrialExecutor(workers=0).run(specs)
    parallel = TrialExecutor(workers=2, telemetry=SweepTelemetry()).run(specs)
    assert parallel.sim["events_executed"] == serial.sim["events_executed"]


# ----------------------------------------------------------------------
# Run ledger


def _run():
    return bench_run_record(workers=0, wall_s=2.0,
                            sim={"events_executed": 100,
                                 "engines_created": 2})


def test_make_record_is_schema_valid():
    record = make_record("fig99", "figure", _run(), fingerprint="abc123",
                         seeds={"root": 1, "count": 4})
    assert validate_record(record) == []
    assert record["schema"] == LEDGER_SCHEMA
    assert record["run"]["events_per_sec"] == pytest.approx(50.0)


def test_validate_record_rejects_bad_shapes():
    assert validate_record("nope") == ["record is not an object"]
    problems = validate_record({"schema": "1", "name": 3})
    assert any("schema" in p for p in problems)
    assert any("missing required field" in p for p in problems)
    # bool must not satisfy an int field.
    record = make_record("x", "figure", {}, fingerprint="f")
    record["ts"] = True
    assert any("'ts'" in p for p in validate_record(record))
    # Newer schema than this reader understands.
    record = make_record("x", "figure", {}, fingerprint="f")
    record["schema"] = LEDGER_SCHEMA + 1
    assert any("newer" in p for p in validate_record(record))


def test_append_and_read_records_roundtrip(tmp_path):
    path = tmp_path / "ledger" / "LEDGER.jsonl"  # parent dir auto-created
    for name in ("fig1", "fig2", "fig1"):
        append_record(path, make_record(name, "figure", _run(),
                                        fingerprint="f" * 8))
    records, problems = read_records(path)
    assert problems == [] and len(records) == 3
    only_fig1, _ = read_records(path, name="fig1")
    assert [r["name"] for r in only_fig1] == ["fig1", "fig1"]
    last, _ = read_records(path, last=1)
    assert len(last) == 1 and last[0]["name"] == "fig1"


def test_append_record_refuses_invalid():
    with pytest.raises(ObservabilityError):
        append_record("/dev/null", {"schema": LEDGER_SCHEMA})


def test_read_records_reports_bad_lines_without_hiding_good(tmp_path):
    path = tmp_path / "LEDGER.jsonl"
    good = make_record("ok", "figure", _run(), fingerprint="f")
    path.write_text(
        "not json\n"
        + json.dumps({"schema": LEDGER_SCHEMA}) + "\n"
        + json.dumps(good) + "\n"
    )
    records, problems = read_records(path)
    assert [r["name"] for r in records] == ["ok"]
    assert len(problems) == 2
    assert problems[0].startswith("line 1:")


def test_read_records_missing_file(tmp_path):
    records, problems = read_records(tmp_path / "absent.jsonl")
    assert records == [] and "not found" in problems[0]


def test_default_ledger_path_knob():
    assert default_ledger_path({"REPRO_LEDGER": "off"}) is None
    assert default_ledger_path({"REPRO_LEDGER": "0"}) is None
    assert str(default_ledger_path({"REPRO_LEDGER": "/tmp/x.jsonl"})) == (
        "/tmp/x.jsonl"
    )
    assert default_ledger_path({}).name == "LEDGER.jsonl"


def test_format_record_flags_drift():
    record = make_record("fig1", "figure", _run(), fingerprint="f" * 16,
                         warnings=["llc: BER drift"])
    line = format_record(record)
    assert "figure:fig1" in line and "drift!=1" in line


def test_ledger_cli(tmp_path, capsys):
    from repro.obs.__main__ import main

    path = tmp_path / "LEDGER.jsonl"
    append_record(path, make_record("fig1", "figure", _run(),
                                    fingerprint="f" * 16))
    assert main(["ledger", "--ledger", str(path)]) == 0
    out = capsys.readouterr().out
    assert "figure:fig1" in out
    assert main(["ledger", "--ledger", str(path), "--json",
                 "--name", "fig1"]) == 0
    assert json.loads(capsys.readouterr().out.splitlines()[-1])["name"] == (
        "fig1"
    )
    # --strict turns parse problems into a failing exit.
    path.write_text(path.read_text() + "garbage\n")
    assert main(["ledger", "--ledger", str(path), "--strict"]) == 1


# ----------------------------------------------------------------------
# Channel-health drift detection


_BASE = {"llc": {"bandwidth_kbps": 100.0, "bandwidth_ci": 2.0,
                 "error_percent": 2.0, "error_ci": 0.5}}


def test_drift_quiet_when_within_allowance():
    current = {"llc": {"bandwidth_kbps": 99.0, "error_percent": 2.4}}
    assert channel_drift_warnings(current, _BASE) == []


def test_drift_flags_ber_regression():
    current = {"llc": {"bandwidth_kbps": 100.0, "error_percent": 9.0}}
    warnings = channel_drift_warnings(current, _BASE)
    assert len(warnings) == 1 and "BER drift" in warnings[0]


def test_drift_flags_bandwidth_drop_not_gain():
    assert channel_drift_warnings(
        {"llc": {"bandwidth_kbps": 150.0, "error_percent": 2.0}}, _BASE
    ) == []
    warnings = channel_drift_warnings(
        {"llc": {"bandwidth_kbps": 70.0, "error_percent": 2.0}}, _BASE
    )
    assert len(warnings) == 1 and "bandwidth drift" in warnings[0]


def test_drift_ber_floor_protects_noiseless_baselines():
    base = {"c": {"error_percent": 0.0, "error_ci": 0.0}}
    assert channel_drift_warnings({"c": {"error_percent": 0.5}}, base) == []
    assert channel_drift_warnings({"c": {"error_percent": 1.0}}, base)


def test_drift_ignores_unmatched_channels_and_non_numeric():
    current = {"new_point": {"error_percent": 99.0}, "llc": "not-a-dict"}
    assert channel_drift_warnings(current, _BASE) == []


def test_zscore():
    assert zscore(12.0, 10.0, 1.0) == pytest.approx(2.0)
    assert zscore(12.0, 10.0, 0.0) == 0.0


def test_channels_of_prefers_requested_worker_entry():
    doc = {"runs": {
        "0": {"channels": {"llc": {"error_percent": 1.0}}},
        "4": {"channels": {"llc": {"error_percent": 2.0}}},
    }}
    assert channels_of(doc, workers=4)["llc"]["error_percent"] == 2.0
    assert channels_of(doc, workers=0)["llc"]["error_percent"] == 1.0
    # Falls back to any run carrying channels.
    assert channels_of(doc, workers=9)["llc"]["error_percent"] == 1.0
    assert channels_of({"runs": {"0": {}}}) is None
    assert channels_of(None) is None


def test_committed_channels_handles_missing_baseline(tmp_path):
    # Not a git repo -> no baseline, never an exception.
    assert committed_channels("nope", repo_root=tmp_path) is None


# ----------------------------------------------------------------------
# Prometheus exporter


def test_sanitize_metric_name():
    assert sanitize_metric_name("repro", "sweep.ok") == "repro_sweep_ok"
    assert sanitize_metric_name("9lives")[0] == "_"


def test_prometheus_text_counters_and_summaries():
    registry = MetricsRegistry()
    registry.counter("sweep.ok").inc(3)
    hist = registry.histogram("sweep.wall")
    hist.add(1.0)
    hist.add(3.0)
    text = prometheus_text(registry.as_dict())
    assert "# TYPE repro_sweep_ok gauge\nrepro_sweep_ok 3" in text
    assert "# TYPE repro_sweep_wall summary" in text
    assert 'repro_sweep_wall{quantile="0.5"}' in text
    assert "repro_sweep_wall_count 2" in text
    assert "repro_sweep_wall_sum 4" in text
    assert text.endswith("\n")


def test_prometheus_text_skips_non_numeric_leaves():
    text = prometheus_text({"warnings": ["drift"], "ok": 1})
    assert "warnings" not in text and "repro_ok 1" in text


# ----------------------------------------------------------------------
# Shared bench footer assembly


def test_bench_run_record_from_census_like_and_stats():
    class FakeCensus:
        engines_created = 2
        events_executed = 1000

    class FakeStats:
        def as_dict(self):
            return {"hits": 1, "misses": 2}

    record = bench_run_record(
        workers=4, wall_s=2.0, census=FakeCensus(), cache=FakeStats(),
        checkpoints={"stores": 3}, channels={"llc": {"error_percent": 1.0}},
        extra={"speedup_vs_cold": 2.5},
    )
    assert record["workers"] == 4 and record["engines"] == 2
    assert record["events_per_sec"] == pytest.approx(500.0)
    assert record["cache"] == {"hits": 1, "misses": 2}
    assert record["checkpoints"] == {"stores": 3}
    assert record["channels"]["llc"]["error_percent"] == 1.0
    assert record["speedup_vs_cold"] == 2.5
    assert json.dumps(record)


def test_bench_run_record_zero_wall_and_sim_fallback():
    record = bench_run_record(workers=0, wall_s=0.0,
                              sim={"events_executed": 7})
    assert record["events_per_sec"] == 0.0
    assert record["events_executed"] == 7
    assert "cache" not in record and "channels" not in record
