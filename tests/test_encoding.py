"""Bit-stream utilities and error metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoding import (
    bit_error_rate,
    bits_to_bytes,
    bytes_to_bits,
    edit_distance,
    hamming_errors,
    random_bits,
)
from repro.errors import AttackError
from repro.sim.rng import RngStreams

bits = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=120)


def test_random_bits_length_and_values():
    rng = RngStreams(0).stream("payload")
    payload = random_bits(100, rng)
    assert len(payload) == 100
    assert set(payload) <= {0, 1}


def test_random_bits_rejects_empty():
    with pytest.raises(AttackError):
        random_bits(0, RngStreams(0).stream("x"))


def test_bytes_to_bits_msb_first():
    assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
    assert bytes_to_bits(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]


@given(st.binary(min_size=1, max_size=64))
def test_bytes_bits_roundtrip(data):
    assert bits_to_bytes(bytes_to_bits(data)) == data


def test_bits_to_bytes_pads_tail():
    assert bits_to_bytes([1, 0, 1]) == bytes([0b10100000])


def test_hamming_counts_mismatches():
    assert hamming_errors([1, 0, 1], [1, 1, 1]) == 1
    assert hamming_errors([1, 0], [1, 0, 1, 1]) == 2  # length gap charged


def test_edit_distance_identity():
    assert edit_distance([1, 0, 1, 1], [1, 0, 1, 1]) == 0


def test_edit_distance_substitution():
    assert edit_distance([1, 0, 1], [1, 1, 1]) == 1


def test_edit_distance_insertion_costs_one():
    sent = [1, 0, 1, 1, 0, 0, 1, 0] * 4
    received = [0] + sent  # one slipped bit
    assert edit_distance(sent, received) == 1
    # positional comparison would blame many positions
    assert hamming_errors(sent, received) > 5


def test_edit_distance_deletion():
    sent = [1, 0, 1, 1, 0, 1]
    assert edit_distance(sent, sent[1:]) == 1


@given(bits, bits)
def test_edit_distance_symmetric(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


@given(bits)
def test_edit_distance_self_zero(a):
    assert edit_distance(a, a) == 0


@given(bits, bits)
def test_edit_distance_bounded(a, b):
    distance = edit_distance(a, b)
    assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))


@given(bits, bits)
def test_edit_distance_le_hamming(a, b):
    assert edit_distance(a, b) <= hamming_errors(a, b)


def test_edit_distance_band_fallback():
    # Length gap beyond the band: the Hamming bound stands in, which for
    # an all-equal overlap is the exact Levenshtein distance (190 indels).
    assert edit_distance([0] * 10, [0] * 200, band=16) == 190
    # Mismatches in the overlap are charged too, keeping the bound safe.
    assert edit_distance([1] * 10, [0] * 200, band=16) == 200


def test_ber_perfect_channel():
    assert bit_error_rate([1, 0, 1], [1, 0, 1]) == 0.0


def test_ber_empty_received_is_total_loss():
    assert bit_error_rate([1, 0, 1, 1], []) == 1.0


def test_ber_rejects_empty_sent():
    with pytest.raises(AttackError):
        bit_error_rate([], [1])


def test_ber_capped_at_one():
    assert bit_error_rate([1], [0, 0, 0, 0, 0]) == 1.0


def test_ber_alignment_toggle():
    sent = [1, 0] * 16
    received = [0] + sent
    aligned = bit_error_rate(sent, received, align=True)
    positional = bit_error_rate(sent, received, align=False)
    assert aligned < positional
