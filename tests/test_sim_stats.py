"""Unit and property tests for the statistics helpers."""

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngStreams
from repro.sim.stats import OnlineStats, confidence_interval_95, percentile

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def test_online_stats_empty():
    stats = OnlineStats()
    assert stats.count == 0
    assert stats.mean == 0.0
    assert stats.variance == 0.0


def test_online_stats_single_value():
    stats = OnlineStats()
    stats.add(5.0)
    assert stats.mean == 5.0
    assert stats.variance == 0.0
    assert stats.minimum == stats.maximum == 5.0


def test_online_stats_known_values():
    stats = OnlineStats()
    stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert stats.mean == pytest.approx(5.0)
    assert stats.stdev == pytest.approx(statistics.stdev([2, 4, 4, 4, 5, 5, 7, 9]))


@given(st.lists(finite_floats, min_size=2, max_size=60))
def test_online_stats_matches_statistics_module(values):
    stats = OnlineStats()
    stats.extend(values)
    assert stats.mean == pytest.approx(statistics.fmean(values), rel=1e-9, abs=1e-6)
    assert stats.variance == pytest.approx(
        statistics.variance(values), rel=1e-6, abs=1e-6
    )
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


@given(
    st.lists(finite_floats, min_size=1, max_size=30),
    st.lists(finite_floats, min_size=1, max_size=30),
)
def test_online_stats_merge_equals_concatenation(left, right):
    a = OnlineStats()
    a.extend(left)
    b = OnlineStats()
    b.extend(right)
    merged = a.merge(b)
    reference = OnlineStats()
    reference.extend(left + right)
    assert merged.count == reference.count
    assert merged.mean == pytest.approx(reference.mean, rel=1e-9, abs=1e-6)
    assert merged.variance == pytest.approx(reference.variance, rel=1e-6, abs=1e-5)


def test_merge_with_empty_is_identity():
    stats = OnlineStats()
    stats.extend([1.0, 2.0, 3.0])
    merged = stats.merge(OnlineStats())
    assert merged.mean == stats.mean
    assert merged.count == stats.count


def test_confidence_interval_empty():
    assert confidence_interval_95([]) == (0.0, 0.0)


def test_confidence_interval_single():
    mean, half = confidence_interval_95([4.2])
    assert mean == 4.2
    assert half == 0.0


def test_confidence_interval_known():
    values = [10.0, 12.0, 14.0, 16.0, 18.0]
    mean, half = confidence_interval_95(values)
    assert mean == 14.0
    expected = 1.96 * math.sqrt(statistics.variance(values) / len(values))
    assert half == pytest.approx(expected)


def test_confidence_interval_shrinks_with_samples():
    rng = RngStreams(3).stream("ci")
    small = list(rng.normal(10, 2, size=10))
    large = list(rng.normal(10, 2, size=1000))
    _, half_small = confidence_interval_95(small)
    _, half_large = confidence_interval_95(large)
    assert half_large < half_small


def test_percentile_bounds():
    values = [3.0, 1.0, 2.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 3.0
    assert percentile(values, 50) == 2.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


@given(st.lists(finite_floats, min_size=1, max_size=50),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_data_range(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)


def test_rng_streams_deterministic_per_name():
    a = RngStreams(42).stream("x").integers(0, 1000, 10)
    b = RngStreams(42).stream("x").integers(0, 1000, 10)
    assert list(a) == list(b)


def test_rng_streams_independent_names():
    streams = RngStreams(42)
    a = streams.stream("x").integers(0, 1000, 10)
    b = streams.stream("y").integers(0, 1000, 10)
    assert list(a) != list(b)


def test_rng_streams_order_independent():
    first = RngStreams(1)
    first.stream("a")
    value_b_after_a = first.stream("b").integers(0, 10**6)
    second = RngStreams(1)
    value_b_alone = second.stream("b").integers(0, 10**6)
    assert value_b_after_a == value_b_alone


def test_rng_fork_changes_streams():
    base = RngStreams(5)
    forked = base.fork(1)
    assert list(base.stream("n").integers(0, 10**6, 5)) != list(
        forked.stream("n").integers(0, 10**6, 5)
    )


def test_online_stats_empty_min_max_zero():
    stats = OnlineStats()
    assert stats.minimum == 0.0
    assert stats.maximum == 0.0


def test_merge_of_empties_stays_empty():
    merged = OnlineStats().merge(OnlineStats())
    assert merged.count == 0
    assert merged.minimum == 0.0
    assert merged.maximum == 0.0
    assert not math.isinf(merged.minimum)


def test_merge_empty_with_populated_keeps_extremes():
    stats = OnlineStats()
    stats.extend([3.0, -2.0, 7.0])
    for merged in (OnlineStats().merge(stats), stats.merge(OnlineStats())):
        assert merged.count == 3
        assert merged.minimum == -2.0
        assert merged.maximum == 7.0


@given(st.lists(finite_floats, min_size=1, max_size=30),
       st.lists(finite_floats, min_size=1, max_size=30))
def test_merge_min_max_match_combined(a, b):
    left, right = OnlineStats(), OnlineStats()
    left.extend(a)
    right.extend(b)
    merged = left.merge(right)
    assert merged.minimum == min(a + b)
    assert merged.maximum == max(a + b)


def test_snapshot_and_as_dict():
    stats = OnlineStats()
    stats.extend([1.0, 5.0])
    snap = stats.snapshot()
    assert snap == stats.as_dict()
    assert snap["count"] == 2
    assert snap["mean"] == pytest.approx(3.0)
    assert snap["min"] == 1.0
    assert snap["max"] == 5.0
    assert snap["stdev"] == pytest.approx(statistics.stdev([1.0, 5.0]))


def test_snapshot_empty_is_all_zero():
    assert OnlineStats().snapshot() == {
        "count": 0, "mean": 0.0, "stdev": 0.0, "min": 0.0, "max": 0.0,
    }
