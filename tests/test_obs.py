"""Tests for the repro.obs observability layer.

Covers the recorder lifecycle, the zero-overhead-when-off contract
(bit-for-bit identical channel runs with and without a sink), the metrics
registry, the Chrome-trace exporter and the engine census.
"""

import json

import pytest

from repro.config import ObservabilityConfig, kaby_lake_model
from repro.core.llc_channel.channel import LLCChannel, LLCChannelConfig
from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_EVENT_ALLOWLIST,
    EngineCensus,
    TRACE_EVENT_NAMES,
    recorder,
)
from repro.obs.chrome_trace import (
    chrome_trace_events,
    export_chrome_trace,
    track_names,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.report import event_totals, render_report
from repro.obs.sinks import JsonlSink, MemorySink, TeeSink
from repro.soc.machine import SoC


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Never leak an installed sink across tests."""
    yield
    recorder.uninstall()


# ----------------------------------------------------------------------
# Recorder lifecycle


def test_recorder_disabled_by_default():
    assert not recorder.enabled
    assert recorder.sink_for("cache.access") is None


def test_recorder_install_and_uninstall():
    sink = MemorySink()
    recorder.install(sink)
    assert recorder.enabled
    assert recorder.sink_for("cache.access") is sink
    assert recorder.uninstall() is sink
    assert not recorder.enabled


def test_recorder_double_install_raises():
    recorder.install(MemorySink())
    with pytest.raises(ObservabilityError):
        recorder.install(MemorySink())


def test_recorder_allowlist_filters_sink_resolution():
    sink = MemorySink()
    with recorder.recording(sink, allowlist=("ring.hop",)):
        assert recorder.sink_for("ring.hop") is sink
        assert recorder.sink_for("cache.access") is None
        # A component interested in any allowlisted name gets the sink.
        assert recorder.sink_for("cache.access", "ring.hop") is sink


def test_default_allowlist_drops_only_the_firehose():
    assert "engine.step" not in DEFAULT_EVENT_ALLOWLIST
    assert set(DEFAULT_EVENT_ALLOWLIST) == set(TRACE_EVENT_NAMES) - {"engine.step"}


def test_recording_context_uninstalls_on_error():
    with pytest.raises(RuntimeError):
        with recorder.recording(MemorySink()):
            raise RuntimeError("boom")
    assert not recorder.enabled


# ----------------------------------------------------------------------
# Zero overhead when off


def test_soc_resolves_no_sinks_when_off():
    soc = SoC(kaby_lake_model(scale=16))
    assert soc._trace_cache is None
    assert soc._trace_evict is None
    assert soc._trace_dram is None
    assert soc.ring._trace is None
    assert not soc.obs_enabled
    assert soc._lat_cpu is None


def test_llc_channel_bit_for_bit_parity_on_vs_off():
    """Tracing must not disturb timing, RNG draws or decoded bits."""
    config = LLCChannelConfig()
    baseline = LLCChannel(config).transmit(n_bits=8, seed=3)
    sink = MemorySink()
    with recorder.recording(sink):
        traced = LLCChannel(config).transmit(n_bits=8, seed=3)
    assert traced.received == baseline.received
    assert traced.elapsed_fs == baseline.elapsed_fs
    assert traced.sent == baseline.sent
    assert len(sink) > 0
    # The traced run carries a metrics snapshot; the off run does not.
    assert "metrics" in traced.meta
    assert "metrics" not in baseline.meta


def test_channel_trace_covers_protocol_events():
    sink = MemorySink()
    with recorder.recording(sink, DEFAULT_EVENT_ALLOWLIST):
        LLCChannel(LLCChannelConfig()).transmit(n_bits=4, seed=1)
    totals = event_totals(sink.events)
    for name in ("cache.access", "ring.hop", "dram.access",
                 "channel.bit", "channel.sync", "cpu.probe", "gpu.kernel"):
        assert totals.get(name, 0) > 0, name
    # engine.step is excluded by the default allowlist.
    assert "engine.step" not in totals
    bits = [e for e in sink.by_name("channel.bit")
            if e[3]["role"] == "receiver"]
    assert len(bits) == 4


# ----------------------------------------------------------------------
# Metrics registry


def test_counter_and_registry_get_or_create():
    registry = MetricsRegistry()
    counter = registry.counter("llc.hits")
    counter.inc()
    counter.inc(4)
    assert registry.counter("llc.hits") is counter
    assert registry.counters() == {"llc.hits": 5}


def test_registry_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ObservabilityError):
        registry.histogram("x")


def test_histogram_reservoir_stays_bounded():
    histogram = Histogram("lat", reservoir=16)
    for value in range(10_000):
        histogram.add(float(value))
    assert histogram.count == 10_000
    assert len(histogram._samples) <= 17
    assert histogram.stats.mean == pytest.approx(4999.5)
    assert 0 <= histogram.percentile(50) <= 9999


def test_histogram_snapshot_shape():
    histogram = Histogram("lat")
    histogram.add(1.0)
    histogram.add(3.0)
    snap = histogram.snapshot()
    assert set(snap) == {"count", "mean", "stdev", "min", "max",
                         "p50", "p90", "p99"}
    assert snap["count"] == 2
    assert snap["min"] == 1.0
    assert snap["max"] == 3.0


def test_registry_as_dict_nests_dotted_names():
    registry = MetricsRegistry()
    registry.counter("llc.slice0.hits").set(7)
    registry.counter("llc.misses").set(2)
    registry.histogram("dram.latency_ns").add(70.0)
    nested = registry.as_dict()
    assert nested["llc"]["slice0"]["hits"] == 7
    assert nested["llc"]["misses"] == 2
    assert nested["dram"]["latency_ns"]["count"] == 1


def _drive(soc, generator):
    return soc.engine.run_until_complete(soc.engine.process(generator))


def test_soc_metrics_snapshot_shape():
    config = kaby_lake_model(scale=16)
    soc = SoC(config.replace(obs=ObservabilityConfig(enabled=True)))
    assert soc.obs_enabled
    paddrs = [i * 64 for i in range(64)]
    for paddr in paddrs:
        _drive(soc, soc.cpu_access(0, paddr))
        _drive(soc, soc.gpu_access(paddr))
    snapshot = soc.metrics_snapshot()
    assert snapshot["llc"]["hits"] + snapshot["llc"]["misses"] > 0
    assert snapshot["dram"]["accesses"] > 0
    assert snapshot["engine"]["events_executed"] > 0
    assert snapshot["cpu"]["core0"]["l1"]["misses"] > 0
    assert snapshot["cpu"]["core0"]["access_latency_ns"]["count"] == len(paddrs)
    assert snapshot["gpu"]["access_latency_ns"]["count"] == len(paddrs)
    assert snapshot["ring"]["cpu"]["transfers"] > 0


def test_soc_histograms_dark_when_disabled():
    soc = SoC(kaby_lake_model(scale=16))
    _drive(soc, soc.cpu_access(0, 0))
    snapshot = soc.metrics_snapshot()
    # Structural counters still sync; latency histograms never arm.
    assert snapshot["llc"]["misses"] >= 1
    assert "access_latency_ns" not in snapshot.get("cpu", {}).get("core0", {})


# ----------------------------------------------------------------------
# Exporters


def _record_small_run():
    sink = MemorySink()
    with recorder.recording(sink, DEFAULT_EVENT_ALLOWLIST):
        LLCChannel(LLCChannelConfig()).transmit(n_bits=4, seed=1)
    return sink


def test_chrome_trace_json_is_valid(tmp_path):
    sink = _record_small_run()
    path = tmp_path / "trace.json"
    count = export_chrome_trace(sink.events, str(path), metadata={"k": "v"})
    assert count == len(sink)
    document = json.loads(path.read_text())
    assert document["otherData"] == {"k": "v"}
    events = document["traceEvents"]
    named_threads = [e for e in events if e.get("name") == "thread_name"]
    assert len(named_threads) >= 4  # >= 4 tracks: cpu, gpu, ring, dram, ...
    phases = {e["ph"] for e in events}
    assert "X" in phases  # spans (gpu.kernel / cpu.probe carry dur_fs)
    assert "i" in phases  # instants
    for event in events:
        if event["ph"] in ("X", "i"):
            assert isinstance(event["ts"], float)
            assert event["pid"] == 1
            assert event["tid"] >= 1


def test_chrome_trace_orders_agents_before_resources():
    sink = _record_small_run()
    ordered = track_names(sink.events)
    cpu_tracks = [t for t in ordered if t.startswith("cpu.")]
    assert ordered[: len(cpu_tracks)] == cpu_tracks
    assert ordered.index("gpu") < ordered.index("ring")


def test_jsonl_and_tee_sinks(tmp_path):
    path = tmp_path / "events.jsonl"
    memory = MemorySink()
    with open(path, "w", encoding="utf-8") as fileobj:
        jsonl = JsonlSink(fileobj, flush_every=2)
        tee = TeeSink(memory, jsonl)
        tee.emit("ring.hop", 10, "ring", {"domain": "cpu"})
        tee.emit("cache.access", 20, "llc", None)
        jsonl.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == len(memory) == 2
    assert lines[0] == {"name": "ring.hop", "ts_fs": 10, "track": "ring",
                        "args": {"domain": "cpu"}}
    assert lines[1] == {"name": "cache.access", "ts_fs": 20, "track": "llc"}


def test_render_report_mentions_totals_and_metrics():
    sink = _record_small_run()
    text = render_report("t", sink.events, metrics={"llc": {"hits": 3}})
    assert "events by name:" in text
    assert "channel.bit" in text
    assert "llc: hits=3" in text


# ----------------------------------------------------------------------
# Engine census + CLI


def test_engine_census_counts_channel_engines():
    with EngineCensus() as census:
        LLCChannel(LLCChannelConfig()).transmit(n_bits=2, seed=1)
    assert census.engines_created == 1
    assert census.events_executed > 0
    assert census.final_now_fs > 0
    assert "events_executed" in census.footer()


def test_engine_census_unarmed_is_silent():
    census = EngineCensus()
    LLCChannel(LLCChannelConfig()).transmit(n_bits=1, seed=1)
    assert census.engines_created == 0


def test_cli_trace_smoke(tmp_path, capsys):
    from repro.obs.__main__ import main

    trace = tmp_path / "out.json"
    report = tmp_path / "report.txt"
    code = main([
        "--scenario", "quickstart", "--bits", "4", "--seed", "1",
        "--trace", str(trace), "--report", str(report),
    ])
    assert code == 0
    document = json.loads(trace.read_text())
    tracks = {e["args"]["name"] for e in document["traceEvents"]
              if e.get("name") == "thread_name"}
    assert len(tracks) >= 4
    text = report.read_text()
    assert "bit error rate" in text
    assert "metrics:" in text
    assert not recorder.enabled  # CLI cleaned up after itself


def test_cli_profile_smoke(capsys):
    from repro.obs.__main__ import main

    code = main(["--scenario", "quickstart", "--bits", "2", "--seed", "1",
                 "--profile"])
    assert code == 0
    out = capsys.readouterr().out
    assert "engine events/s" in out
    assert "sim: engines=1" in out


def test_cli_rejects_unknown_event():
    from repro.obs.__main__ import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["--events", "nope.event"])


# ---------------------------------------------------------------------------
# merge_snapshots (per-worker metrics -> one report)


def test_merge_snapshots_sums_counters():
    from repro.obs import merge_snapshots

    merged = merge_snapshots([
        {"llc": {"hits": 3, "misses": 1}},
        {"llc": {"hits": 2, "misses": 4}, "ring": {"hops": 7}},
    ])
    assert merged == {"llc": {"hits": 5, "misses": 5}, "ring": {"hops": 7}}


def test_merge_snapshots_pools_histogram_summaries_exactly():
    from repro.obs import merge_snapshots
    from repro.sim.stats import OnlineStats

    sample_a = [1.0, 2.0, 3.0, 10.0]
    sample_b = [4.0, 5.0, 6.0]
    part_a, part_b, whole = OnlineStats(), OnlineStats(), OnlineStats()
    for value in sample_a:
        part_a.add(value)
        whole.add(value)
    for value in sample_b:
        part_b.add(value)
        whole.add(value)

    merged = merge_snapshots(
        [{"lat": part_a.snapshot()}, {"lat": part_b.snapshot()}]
    )["lat"]
    expected = whole.snapshot()
    assert merged["count"] == expected["count"]
    assert merged["mean"] == pytest.approx(expected["mean"])
    assert merged["stdev"] == pytest.approx(expected["stdev"])
    assert merged["min"] == expected["min"]
    assert merged["max"] == expected["max"]


def test_merge_snapshots_weighted_percentiles_and_empty_side():
    from repro.obs import merge_snapshots

    a = {"count": 3, "mean": 1.0, "p50": 1.0}
    b = {"count": 1, "mean": 5.0, "p50": 5.0}
    merged = merge_snapshots([{"h": a}, {"h": b}])["h"]
    assert merged["count"] == 4
    assert merged["p50"] == pytest.approx(2.0)

    # A worker that never touched the histogram contributes nothing.
    merged = merge_snapshots([{"h": a}, {"h": {"count": 0, "mean": 0.0}}])["h"]
    assert merged["count"] == 3
    assert merged["mean"] == pytest.approx(1.0)


def test_merge_snapshots_shape_mismatch_raises():
    from repro.obs import merge_snapshots

    with pytest.raises(ObservabilityError):
        merge_snapshots([{"x": 1}, {"x": {"nested": 2}}])
