"""Eviction-set construction and the group-testing reduction."""

import pytest

from repro.config import kaby_lake
from repro.core.evictionset import AddressPool, reduce_eviction_set
from repro.errors import EvictionSetError
from repro.soc.llc import LlcLocation
from repro.soc.slice_hash import SliceHash


@pytest.fixture
def pool(soc):
    config = soc.config
    space = soc.new_process("pool")
    buffer = space.mmap_huge(512 * (1 << 17))
    hash_model = SliceHash(
        [config.llc.hash_s0_mask, config.llc.hash_s1_mask], config.llc.slices
    )
    return AddressPool(buffer, config.llc, config.gpu_l3, hash_model)


def test_pool_requires_contiguous_backing(soc):
    config = soc.config
    space = soc.new_process("frag")
    buffer = space.mmap(1 << 20)  # scattered 4 KB pages
    hash_model = SliceHash(
        [config.llc.hash_s0_mask, config.llc.hash_s1_mask], config.llc.slices
    )
    with pytest.raises(EvictionSetError):
        AddressPool(buffer, config.llc, config.gpu_l3, hash_model)


def test_attacker_view_matches_hardware(soc, pool):
    for offset in range(0, 64 * 1024, 4096 + 64):
        paddr = pool.buffer.paddr_of(offset)
        assert pool.llc_location_of(paddr) == soc.llc.location_of(paddr)
        assert pool.l3_set_of(paddr) == soc.gpu_l3.flat_index_of(paddr)


def test_llc_eviction_set_lands_in_target_set(soc, pool):
    location = LlcLocation(2, 100)
    addrs = pool.llc_eviction_set(location, 16)
    assert len(addrs) == 16
    assert len(set(addrs)) == 16
    for paddr in addrs:
        assert soc.llc.location_of(paddr) == location


def test_llc_eviction_set_actually_evicts(soc, pool):
    location = LlcLocation(1, 40)
    addrs = pool.llc_eviction_set(location, 17)
    victim, fillers = addrs[0], addrs[1:]
    soc.llc.access(victim)
    for paddr in fillers:
        soc.llc.access(paddr)
    assert not soc.llc.contains(victim)


def test_llc_eviction_set_respects_exclusions(pool):
    location = LlcLocation(0, 7)
    first = pool.llc_eviction_set(location, 4)
    second = pool.llc_eviction_set(location, 4, exclude=set(first))
    assert not set(first) & set(second)


def test_llc_eviction_set_exhaustion_raises(pool):
    with pytest.raises(EvictionSetError):
        pool.llc_eviction_set(LlcLocation(0, 1), 10_000)


def test_available_llc_sets_have_candidates(pool):
    locations = pool.available_llc_sets(min_candidates=16, limit=8)
    assert len(locations) == 8


def test_l3_pollute_set_shares_l3_not_llc(soc, pool):
    location = LlcLocation(0, 33)
    target = pool.llc_eviction_set(location, 1)[0]
    pollute = pool.l3_pollute_set(target, 8, forbidden=[location])
    assert len(pollute) == 8
    for paddr in pollute:
        assert soc.gpu_l3.same_set(paddr, target)
        assert soc.llc.location_of(paddr) != location


def test_l3_pollute_evicts_target_from_l3(soc, pool):
    location = LlcLocation(0, 34)
    target = pool.llc_eviction_set(location, 1)[0]
    pollute = pool.l3_pollute_set(target, 8, forbidden=[location])
    soc.gpu_l3.access(target)
    for _round in range(5):
        for paddr in pollute:
            soc.gpu_l3.access(paddr)
    assert not soc.gpu_l3.contains(target)


def test_llc_setindex_pollute_strategy(soc, pool):
    location = LlcLocation(0, 35)
    target = pool.llc_eviction_set(location, 1)[0]
    pollute = pool.llc_setindex_pollute_set(target, 16, forbidden=[location])
    target_index = soc.llc.location_of(target).set_index
    for paddr in pollute:
        assert soc.llc.location_of(paddr).set_index == target_index
        assert soc.llc.location_of(paddr) != location


def test_whole_l3_clear_covers_every_set(soc, pool):
    forbidden = [LlcLocation(0, 36)]
    clear = pool.whole_l3_clear_set(forbidden)
    config = soc.config.gpu_l3
    assert len(clear) == config.total_sets * (config.ways + 1)
    covered = {soc.gpu_l3.flat_index_of(p) for p in clear}
    assert len(covered) == config.total_sets
    for paddr in clear:
        assert soc.llc.location_of(paddr) not in forbidden


def test_whole_l3_clear_flushes_l3(soc, pool):
    # As in the channel: the targets' own LLC sets are excluded, so the
    # clear set never re-touches (and thereby re-warms) the targets.
    targets = [pool.buffer.paddr_of(k * 64) for k in range(120, 128)]
    forbidden = [soc.llc.location_of(t) for t in targets]
    clear = pool.whole_l3_clear_set(forbidden)
    assert not set(targets) & set(clear)
    for target in targets:
        soc.gpu_l3.access(target)
    for _round in range(2):
        for paddr in clear:
            soc.gpu_l3.access(paddr)
    survivors = sum(1 for t in targets if soc.gpu_l3.contains(t))
    assert survivors <= 1  # pLRU orbits may spare at most a straggler


# ----------------------------------------------------------------------
# Group-testing reduction (oracle = ground-truth set collision)


def _make_oracle(soc, victim):
    """Exact oracle: does accessing the subset evict the victim?"""

    def oracle(victim_addr, subset):
        soc.llc.flush_all()
        soc.llc.access(victim_addr)
        for paddr in subset:
            soc.llc.access(paddr)
        return not soc.llc.contains(victim_addr)

    return oracle


def test_reduce_to_minimal_set(soc, pool):
    location = LlcLocation(3, 50)
    conflicts = pool.llc_eviction_set(location, 40)
    victim, candidates = conflicts[0], conflicts[1:]
    oracle = _make_oracle(soc, victim)
    minimal = reduce_eviction_set(victim, candidates, oracle, ways=16)
    assert len(minimal) == 16
    assert oracle(victim, minimal)


def test_reduce_mixed_pool(soc, pool):
    """Reduction must cope with non-conflicting filler addresses."""
    location = LlcLocation(3, 51)
    conflicts = pool.llc_eviction_set(location, 20)
    other = pool.llc_eviction_set(LlcLocation(2, 52), 30)
    victim = conflicts[0]
    candidates = []
    for pair in zip(other, conflicts[1:]):
        candidates.extend(pair)
    candidates.extend(other[len(conflicts) - 1:])
    oracle = _make_oracle(soc, victim)
    minimal = reduce_eviction_set(victim, candidates, oracle, ways=16)
    assert oracle(victim, minimal)
    assert len(minimal) <= 20
    for paddr in minimal[:16]:
        assert soc.llc.location_of(paddr) == location


def test_reduce_insufficient_pool_raises(soc, pool):
    location = LlcLocation(3, 53)
    conflicts = pool.llc_eviction_set(location, 10)  # fewer than ways
    oracle = _make_oracle(soc, conflicts[0])
    with pytest.raises(EvictionSetError):
        reduce_eviction_set(conflicts[0], conflicts[1:], oracle, ways=16)
