"""Unit tests for FIFO resources, semaphores and token buckets."""

import pytest

from repro.errors import SimulationError
from repro.sim import FS_PER_S, Timeout
from repro.sim.engine import Engine
from repro.sim.resources import FifoResource, Semaphore, TokenBucket


def test_fifo_grants_immediately_when_idle():
    engine = Engine()
    resource = FifoResource(engine)
    grant = resource.request()
    assert grant.triggered
    assert resource.busy


def test_fifo_queues_second_requester():
    engine = Engine()
    resource = FifoResource(engine)
    resource.request()
    second = resource.request()
    assert not second.triggered
    assert resource.queue_length == 1
    resource.release()
    assert second.triggered
    assert resource.queue_length == 0


def test_fifo_release_idle_raises():
    with pytest.raises(SimulationError):
        FifoResource(Engine()).release()


def test_fifo_wakeups_in_fifo_order():
    engine = Engine()
    resource = FifoResource(engine)
    resource.request()
    order = []
    for tag in "abc":
        resource.request().subscribe(lambda _e, t=tag: order.append(t))
    for _ in range(3):
        resource.release()
    assert order == ["a", "b", "c"]


def test_occupy_returns_queueing_delay():
    engine = Engine()
    resource = FifoResource(engine)

    def holder():
        waited = yield from resource.occupy(100)
        return waited

    def contender():
        yield Timeout(engine, 10)  # arrive while held
        waited = yield from resource.occupy(50)
        return waited

    first = engine.process(holder())
    second = engine.process(contender())
    engine.run()
    assert first.value == 0
    assert second.value == 90  # requested at t=10, granted at t=100


def test_occupy_serializes_hold_times():
    engine = Engine()
    resource = FifoResource(engine)

    def worker():
        yield from resource.occupy(100)
        return engine.now

    processes = [engine.process(worker()) for _ in range(3)]
    engine.run()
    assert [p.value for p in processes] == [100, 200, 300]


def test_utilization_accounts_held_time():
    engine = Engine()
    resource = FifoResource(engine)

    def worker():
        yield from resource.occupy(50)

    engine.process(worker())
    engine.run()
    engine.schedule(50, lambda: None)  # idle stretch to t=100
    engine.run()
    assert resource.utilization() == pytest.approx(0.5)


def test_fifo_grant_statistics():
    engine = Engine()
    resource = FifoResource(engine)

    def worker():
        yield from resource.occupy(10)

    for _ in range(4):
        engine.process(worker())
    engine.run()
    assert resource.total_grants == 4
    assert resource.total_hold_fs == 40
    assert resource.total_wait_fs == 0 + 10 + 20 + 30


def test_semaphore_capacity_respected():
    engine = Engine()
    semaphore = Semaphore(engine, capacity=2)
    first = semaphore.request()
    second = semaphore.request()
    third = semaphore.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert semaphore.in_use == 2
    assert semaphore.queue_length == 1
    semaphore.release()
    assert third.triggered


def test_semaphore_release_idle_raises():
    semaphore = Semaphore(Engine(), capacity=1)
    with pytest.raises(SimulationError):
        semaphore.release()


def test_semaphore_invalid_capacity():
    with pytest.raises(SimulationError):
        Semaphore(Engine(), capacity=0)


def test_semaphore_fifo_wakeup_order():
    engine = Engine()
    semaphore = Semaphore(engine, capacity=1)
    semaphore.request()
    order = []
    for tag in "xyz":
        semaphore.request().subscribe(lambda _e, t=tag: order.append(t))
    for _ in range(3):
        semaphore.release()
    assert order == ["x", "y", "z"]


def test_token_bucket_initial_burst_free():
    engine = Engine()
    bucket = TokenBucket(engine, rate_per_s=1000.0, burst=2)
    assert bucket.next_delay_fs() == 0
    assert bucket.next_delay_fs() == 0
    assert bucket.next_delay_fs() > 0


def test_token_bucket_refills_over_time():
    engine = Engine()
    bucket = TokenBucket(engine, rate_per_s=1000.0, burst=1)
    assert bucket.next_delay_fs() == 0
    # 1 ms of simulated time refills one token at 1000/s.
    engine.schedule(FS_PER_S // 1000, lambda: None)
    engine.run()
    assert bucket.next_delay_fs() == 0


def test_token_bucket_rate_must_be_positive():
    with pytest.raises(SimulationError):
        TokenBucket(Engine(), rate_per_s=0.0)


def test_token_bucket_delay_matches_rate():
    engine = Engine()
    bucket = TokenBucket(engine, rate_per_s=10.0, burst=1)
    bucket.next_delay_fs()
    delay = bucket.next_delay_fs()
    assert delay == pytest.approx(FS_PER_S / 10.0, rel=0.01)
