"""Contention channel: parameters, calibration, end-to-end runs (§IV/§V)."""

import pytest

from repro.config import kaby_lake_model, scale_bytes
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
    calibrate_iteration_factor,
)
from repro.core.contention_channel.calibration import (
    build_gpu_stripes,
    split_lines_by_set_index,
)
from repro.core.contention_channel.params import ContentionParams
from repro.errors import CalibrationError, ConfigError

KB, MB = 1024, 1024 * 1024


# ----------------------------------------------------------------------
# Parameters (Eq. 3-7)


def test_params_validate_llc_budget(model_config):
    params = ContentionParams(
        cpu_buffer_bytes=model_config.llc.total_bytes,
        gpu_buffer_bytes=model_config.llc.total_bytes,
    )
    with pytest.raises(ConfigError):
        params.validate(model_config)  # violates Eq. 5


def test_params_validate_minimums(model_config):
    with pytest.raises(ConfigError):
        ContentionParams(cpu_buffer_bytes=64, gpu_buffer_bytes=64).validate(
            model_config
        )
    with pytest.raises(ConfigError):
        ContentionParams(
            cpu_buffer_bytes=32 * KB, gpu_buffer_bytes=64 * KB, n_workgroups=0
        ).validate(model_config)


def test_num_els_per_thread_eq7(model_config):
    params = ContentionParams(
        cpu_buffer_bytes=32 * KB, gpu_buffer_bytes=128 * KB, n_workgroups=2
    )
    lines = params.gpu_lines(model_config)
    assert params.num_els_per_thread(model_config) == lines / (2 * 256)


def test_channel_scales_paper_buffer_sizes():
    channel = ContentionChannel(ContentionChannelConfig())
    params = channel.params()
    expected_cpu = scale_bytes(channel.soc_config, 512 * KB)
    expected_gpu = scale_bytes(channel.soc_config, 2 * MB)
    assert params.cpu_buffer_bytes == expected_cpu
    assert params.gpu_buffer_bytes == expected_gpu


# ----------------------------------------------------------------------
# Buffer partitioning (Eq. 6)


def test_split_lines_disjoint_set_halves(model_soc):
    space = model_soc.new_process("split")
    buffer = space.mmap_huge(1 << 22)
    low = split_lines_by_set_index(model_soc, buffer, 128, upper_half=False)
    high = split_lines_by_set_index(model_soc, buffer, 128, upper_half=True)
    half = model_soc.config.llc.sets_per_slice // 2
    for paddr in low:
        assert model_soc.llc.location_of(paddr).set_index < half
    for paddr in high:
        assert model_soc.llc.location_of(paddr).set_index >= half
    low_sets = {model_soc.llc.location_of(p) for p in low}
    high_sets = {model_soc.llc.location_of(p) for p in high}
    assert not low_sets & high_sets  # Eq. 6


def test_split_lines_exhaustion_raises(model_soc):
    space = model_soc.new_process("split2")
    buffer = space.mmap_huge(1 << 14)
    with pytest.raises(CalibrationError):
        split_lines_by_set_index(model_soc, buffer, 10_000, upper_half=True)


def test_stripes_partition_lines():
    lines = list(range(0, 64 * 100, 64))
    stripes = build_gpu_stripes(lines, 4)
    assert len(stripes) == 4
    rejoined = sorted(p for stripe in stripes for p in stripe)
    assert rejoined == lines
    assert max(len(s) for s in stripes) - min(len(s) for s in stripes) <= 1


# ----------------------------------------------------------------------
# Calibration (Fig. 9)


@pytest.fixture(scope="module")
def default_calibration():
    channel = ContentionChannel(ContentionChannelConfig())
    return channel, channel.calibrate(seed=2)


def test_calibration_fields(default_calibration):
    channel, calibration = default_calibration
    assert calibration.gpu_pass_fs > 0
    assert calibration.cpu_group_fs > 0
    assert calibration.slot_fs == int(channel.config.slot_us * 1e9)
    assert calibration.iteration_factor == pytest.approx(
        calibration.slot_fs / calibration.gpu_pass_fs, rel=0.01
    )
    assert calibration.nominal_bandwidth_bps == pytest.approx(
        1e15 / calibration.slot_fs
    )


def test_iteration_factor_falls_with_buffer_size():
    """Fig. 9 shape: bigger GPU buffer -> longer pass -> smaller I_F."""
    factors = []
    for size in (512 * KB, 1 * MB, 2 * MB):
        channel = ContentionChannel(
            ContentionChannelConfig(gpu_buffer_paper_bytes=size)
        )
        factors.append(channel.calibrate(seed=2).iteration_factor)
    assert factors[0] > factors[1] > factors[2]


def test_forced_iteration_factor_scales_slot():
    channel = ContentionChannel(ContentionChannelConfig(iteration_factor=3))
    calibration = channel.calibrate(seed=2)
    assert calibration.iteration_factor == 3.0
    assert calibration.slot_fs == int(1.25 * 3 * calibration.gpu_pass_fs)


# ----------------------------------------------------------------------
# End-to-end transmissions


def test_transmission_recovers_payload(default_calibration):
    channel, calibration = default_calibration
    result = channel.transmit(n_bits=64, seed=3, calibration=calibration)
    assert result.error_rate <= 0.06
    assert 200 < result.bandwidth_kbps < 600


def test_transmission_metadata(default_calibration):
    channel, calibration = default_calibration
    result = channel.transmit(n_bits=24, seed=4, calibration=calibration)
    assert result.meta["n_workgroups"] == 2
    assert result.meta["iteration_factor"] == calibration.iteration_factor
    assert result.meta["n_samples"] > 0


def test_transmission_reproducible(default_calibration):
    channel, calibration = default_calibration
    a = channel.transmit(n_bits=24, seed=5, calibration=calibration)
    b = channel.transmit(n_bits=24, seed=5, calibration=calibration)
    assert a.received == b.received
    assert a.elapsed_fs == b.elapsed_fs


def test_transmission_explicit_payload(default_calibration):
    channel, calibration = default_calibration
    payload = [1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1, 0] * 2
    result = channel.transmit(bits=payload, seed=6, calibration=calibration)
    assert result.sent == payload
    assert len(result.received) == len(payload)


def test_quiet_system_low_error(default_calibration):
    channel, _ = default_calibration
    quiet = ContentionChannel(
        ContentionChannelConfig(system_effects=False),
        soc_config=channel.soc_config,
    )
    calibration = quiet.calibrate(seed=2)
    result = quiet.transmit(n_bits=48, seed=7, calibration=calibration)
    assert result.error_rate <= 0.05


def test_single_workgroup_weaker_but_alive():
    # A single work-group is the marginal operating point (Fig. 10): with
    # Trojan/Spy noise streams properly decorrelated, individual seeds
    # swing widely, so assert on the mean over a few runs instead of one
    # golden seed.
    channel = ContentionChannel(ContentionChannelConfig(n_workgroups=1))
    calibration = channel.calibrate(seed=2)
    results = [
        channel.transmit(n_bits=48, seed=seed, calibration=calibration)
        for seed in (5, 6, 7)
    ]
    mean_error = sum(r.error_rate for r in results) / len(results)
    assert mean_error < 0.45  # far from random guessing on average


def test_transmit_calibrates_when_not_given():
    channel = ContentionChannel(ContentionChannelConfig())
    result = channel.transmit(n_bits=16, seed=9)
    assert len(result.received) <= 16 + 4
