"""Replacement policies and the generic set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CacheGeometryError
from repro.sim.rng import RngStreams
from repro.soc.cache import SetAssocCache
from repro.soc.replacement import RandomReplacement, TreePlru, TrueLru, make_policy


# ----------------------------------------------------------------------
# True LRU


def test_lru_victim_is_least_recent():
    policy = TrueLru(4)
    state = policy.new_set_state()
    for way in (0, 1, 2, 3):
        policy.on_fill(state, way)
    assert policy.victim(state) == 0
    policy.on_hit(state, 0)
    assert policy.victim(state) == 1


def test_lru_sequence():
    policy = TrueLru(3)
    state = policy.new_set_state()
    for way in (0, 1, 2, 0, 1):
        policy.on_hit(state, way)
    assert policy.victim(state) == 2


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64))
def test_lru_victim_untouched_longest(touches):
    policy = TrueLru(8)
    state = policy.new_set_state()
    for way in touches:
        policy.on_hit(state, way)
    victim = policy.victim(state)
    last_touch = {way: i for i, way in enumerate(touches)}
    victim_last = last_touch.get(victim, -1)
    for way in range(8):
        assert last_touch.get(way, -1) >= victim_last


# ----------------------------------------------------------------------
# Tree pLRU


def test_plru_requires_pow2_ways():
    with pytest.raises(CacheGeometryError):
        TreePlru(6)


def test_plru_state_has_n_minus_1_nodes():
    # §III-D quotes the PRM: N-1 tree nodes for N ways.
    assert len(TreePlru(8).new_set_state()) == 7
    assert len(TreePlru(16).new_set_state()) == 15


def test_plru_victim_avoids_just_touched():
    policy = TreePlru(8)
    state = policy.new_set_state()
    for way in range(8):
        policy.on_fill(state, way)
    touched = 5
    policy.on_hit(state, touched)
    assert policy.victim(state) != touched


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64))
def test_plru_victim_never_most_recent(touches):
    policy = TreePlru(8)
    state = policy.new_set_state()
    for way in touches:
        policy.on_hit(state, way)
    assert policy.victim(state) != touches[-1]


def test_plru_cyclic_sweep_churns():
    """Sweeping ways+1 logical lines keeps evicting (channel relies on it)."""
    cache = SetAssocCache("plru", 1, 8, 64, TreePlru(8))
    lines = [i * 64 for i in range(9)]
    for _sweep in range(5):
        for line in lines:
            cache.access(line)
    assert cache.evictions >= 5


# ----------------------------------------------------------------------
# Random policy & factory


def test_random_policy_victim_in_range():
    rng = RngStreams(0).stream("r")
    policy = RandomReplacement(4, rng)
    state = policy.new_set_state()
    assert all(0 <= policy.victim(state) < 4 for _ in range(50))


def test_make_policy_factory():
    assert isinstance(make_policy("lru", 4), TrueLru)
    assert isinstance(make_policy("tree-plru", 4), TreePlru)
    rng = RngStreams(0).stream("r")
    assert isinstance(make_policy("random", 4, rng), RandomReplacement)
    with pytest.raises(CacheGeometryError):
        make_policy("random", 4)
    with pytest.raises(CacheGeometryError):
        make_policy("mru", 4)


# ----------------------------------------------------------------------
# SetAssocCache


@pytest.fixture
def cache():
    return SetAssocCache("test", n_sets=4, ways=2, line_bytes=64, policy=TrueLru(2))


def test_cache_miss_then_hit(cache):
    first = cache.access(0x1000)
    second = cache.access(0x1000)
    assert not first.hit
    assert second.hit
    assert cache.hits == 1 and cache.misses == 1


def test_cache_same_line_offsets_hit(cache):
    cache.access(0x1000)
    assert cache.access(0x103F).hit  # same 64-byte line


def test_cache_eviction_reports_victim(cache):
    # Set 0 of 4 sets: addresses stride 4*64.
    stride = 4 * 64
    cache.access(0)
    cache.access(stride)
    result = cache.access(2 * stride)
    assert result.evicted == 0  # LRU
    assert not cache.contains(0)


def test_cache_contains_is_passive(cache):
    cache.access(0)
    hits_before = cache.hits
    assert cache.contains(0)
    assert cache.hits == hits_before


def test_cache_invalidate(cache):
    cache.access(0x40)
    assert cache.invalidate(0x40)
    assert not cache.contains(0x40)
    assert not cache.invalidate(0x40)


def test_cache_lines_in_set(cache):
    cache.access(0)
    cache.access(4 * 64)
    assert set(cache.lines_in_set(0)) == {0, 256}
    assert cache.occupancy(0) == 2


def test_cache_flush_all(cache):
    for i in range(8):
        cache.access(i * 64)
    cache.flush_all()
    assert len(cache) == 0
    assert cache.occupancy(0) == 0


def test_cache_default_index_wraps(cache):
    assert cache.set_index_of(0) == cache.set_index_of(4 * 64)
    assert cache.set_index_of(64) == 1


def test_cache_capacity(cache):
    assert cache.capacity_bytes == 4 * 2 * 64


def test_cache_rejects_bad_geometry():
    with pytest.raises(CacheGeometryError):
        SetAssocCache("bad", 0, 2, 64, TrueLru(2))
    with pytest.raises(CacheGeometryError):
        SetAssocCache("bad", 4, 2, 63, TrueLru(2))
    with pytest.raises(CacheGeometryError):
        SetAssocCache("bad", 4, 4, 64, TrueLru(2))


def test_cache_partitioned_fill_respects_ways(cache):
    stride = 4 * 64
    cache.access(0 * stride, allowed_ways=[0])
    cache.access(1 * stride, allowed_ways=[0])
    result = cache.access(2 * stride, allowed_ways=[0])
    # Way 1 never filled; all evictions happened in way 0.
    assert result.way == 0
    assert cache.occupancy(0) == 1


def test_cache_partition_does_not_limit_hits(cache):
    cache.access(0, allowed_ways=[1])
    assert cache.access(0, allowed_ways=[0]).hit


def test_cache_empty_partition_raises():
    cache = SetAssocCache("p", 1, 2, 64, TrueLru(2))
    cache.access(0, allowed_ways=[0])
    cache.access(128, allowed_ways=[1])
    with pytest.raises(CacheGeometryError):
        cache.access(256, allowed_ways=[])


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_cache_invariants_under_random_traffic(line_numbers):
    """Occupancy never exceeds ways; contains() agrees with accesses."""
    cache = SetAssocCache("prop", n_sets=8, ways=4, line_bytes=64, policy=TrueLru(4))
    for number in line_numbers:
        cache.access(number * 64)
        # Reverse map consistent with per-set tags.
        total = sum(cache.occupancy(s) for s in range(8))
        assert total == len(cache)
        assert cache.occupancy(number % 8) <= 4
        assert cache.contains(number * 64)
    assert cache.hits + cache.misses == len(line_numbers)


@settings(max_examples=20)
@given(
    st.lists(st.integers(min_value=0, max_value=63), min_size=8, max_size=100),
    st.sampled_from(["lru", "tree-plru"]),
)
def test_cache_most_recent_line_always_resident(line_numbers, policy_name):
    cache = SetAssocCache(
        "prop2", n_sets=2, ways=4, line_bytes=64,
        policy=make_policy(policy_name, 4),
    )
    for number in line_numbers:
        cache.access(number * 64)
        assert cache.contains(number * 64)
