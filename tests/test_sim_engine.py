"""Unit tests for the discrete-event engine, events and processes."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Timeout
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import Interrupt, Process


def test_engine_starts_at_time_zero():
    assert Engine().now == 0


def test_schedule_executes_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, lambda: order.append("c"))
    engine.schedule(10, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    engine = Engine()
    order = []
    for tag in "abc":
        engine.schedule(5, lambda t=tag: order.append(t))
    engine.run()
    assert order == ["a", "b", "c"]


def test_now_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule(42, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [42]
    assert engine.now == 42


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_run_until_stops_at_target_time():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: fired.append(10))
    engine.schedule(100, lambda: fired.append(100))
    engine.run(until_fs=50)
    assert fired == [10]
    assert engine.now == 50


def test_run_until_past_target_raises():
    engine = Engine()
    engine.run(until_fs=10)
    with pytest.raises(SimulationError):
        engine.run(until_fs=5)


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_events_executed_counter():
    engine = Engine()
    for _ in range(5):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_executed == 5


def test_event_triggers_callbacks():
    engine = Engine()
    event = engine.event()
    got = []
    event.subscribe(lambda e: got.append(e.value))
    event.succeed(99)
    assert got == [99]


def test_event_value_before_trigger_raises():
    event = Engine().event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_double_trigger_raises():
    event = Engine().event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_late_subscriber_fires_immediately():
    event = Engine().event()
    event.succeed("x")
    got = []
    event.subscribe(lambda e: got.append(e.value))
    assert got == ["x"]


def test_timeout_delivers_value_after_delay():
    engine = Engine()
    timeout = Timeout(engine, 25, value="done")
    engine.run()
    assert timeout.triggered
    assert timeout.value == "done"
    assert engine.now == 25


def test_timeout_negative_delay_raises():
    with pytest.raises(SimulationError):
        Timeout(Engine(), -5)


def test_allof_collects_values_in_given_order():
    engine = Engine()
    late = Timeout(engine, 20, "late")
    early = Timeout(engine, 5, "early")
    barrier = AllOf(engine, [late, early])
    engine.run()
    assert barrier.value == ["late", "early"]


def test_allof_empty_completes():
    engine = Engine()
    barrier = AllOf(engine, [])
    engine.run()
    assert barrier.triggered
    assert barrier.value == []


def test_anyof_reports_first_winner():
    engine = Engine()
    slow = Timeout(engine, 50, "slow")
    fast = Timeout(engine, 5, "fast")
    race = AnyOf(engine, [slow, fast])
    engine.run()
    assert race.value == (1, "fast")


def test_anyof_requires_events():
    with pytest.raises(SimulationError):
        AnyOf(Engine(), [])


def test_process_runs_generator_to_completion():
    engine = Engine()

    def body():
        yield Timeout(engine, 10)
        yield Timeout(engine, 15)
        return "finished"

    process = engine.process(body())
    result = engine.run_until_complete(process)
    assert result == "finished"
    assert engine.now == 25


def test_process_receives_event_values():
    engine = Engine()

    def body():
        value = yield Timeout(engine, 1, value=7)
        return value * 2

    assert engine.run_until_complete(engine.process(body())) == 14


def test_process_yield_from_composition():
    engine = Engine()

    def inner():
        yield Timeout(engine, 5)
        return 3

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert engine.run_until_complete(engine.process(outer())) == 6
    assert engine.now == 10


def test_process_non_event_yield_raises():
    engine = Engine()

    def body():
        yield 4.2

    engine.process(body())
    with pytest.raises(SimulationError):
        engine.run()


def test_process_string_yield_raises():
    engine = Engine()

    def body():
        yield "later"

    engine.process(body())
    with pytest.raises(SimulationError):
        engine.run()


def test_process_negative_int_yield_raises():
    engine = Engine()

    def body():
        yield -1

    engine.process(body())
    with pytest.raises(SimulationError):
        engine.run()


def test_process_int_yield_is_timed_wait():
    engine = Engine()
    seen = []

    def body():
        yield 25
        seen.append(engine.now)
        yield 0
        seen.append(engine.now)
        return "done"

    assert engine.run_until_complete(engine.process(body())) == "done"
    assert seen == [25, 25]
    assert engine.now == 25


def test_int_yield_orders_like_timeout():
    # An int yield and a Timeout yield scheduled at the same instant must
    # interleave in spawn order, exactly as two Timeout yields would.
    engine = Engine()
    order = []

    def int_waiter():
        yield 10
        order.append("int")

    def timeout_waiter():
        yield Timeout(engine, 10)
        order.append("timeout")

    engine.process(int_waiter())
    engine.process(timeout_waiter())
    engine.run()
    assert order == ["int", "timeout"]


def test_process_requires_generator():
    with pytest.raises(SimulationError):
        Process(Engine(), 42)  # type: ignore[arg-type]


def test_process_waits_on_other_process():
    engine = Engine()

    def worker():
        yield Timeout(engine, 30)
        return "payload"

    worker_process = engine.process(worker())

    def waiter():
        value = yield worker_process
        return value

    assert engine.run_until_complete(engine.process(waiter())) == "payload"


def test_interrupt_terminates_waiting_process():
    engine = Engine()
    progress = []

    def body():
        progress.append("start")
        yield Timeout(engine, 1_000_000)
        progress.append("never")

    process = engine.process(body())
    engine.run(until_fs=10)
    process.interrupt("stop")
    engine.run()
    assert progress == ["start"]
    assert not process.alive


def test_interrupt_can_be_handled():
    engine = Engine()

    def body():
        try:
            yield Timeout(engine, 1_000_000)
        except Interrupt as interrupt:
            return f"handled:{interrupt.cause}"
        return "unreachable"

    process = engine.process(body())
    engine.run(until_fs=1)
    process.interrupt("why")
    result = engine.run_until_complete(process)
    assert result == "handled:why"


def test_interrupt_dead_process_is_noop():
    engine = Engine()

    def body():
        return 1
        yield  # pragma: no cover

    process = engine.process(body())
    engine.run_until_complete(process)
    process.interrupt()  # must not raise
    engine.run()


def test_run_until_complete_deadlock_detection():
    engine = Engine()

    def body():
        yield engine.event()  # never triggered

    process = engine.process(body())
    with pytest.raises(DeadlockError):
        engine.run_until_complete(process)


def test_run_until_complete_limit():
    engine = Engine()

    def heartbeat():
        while True:
            yield Timeout(engine, 10)

    engine.process(heartbeat())
    target = engine.event()
    with pytest.raises(SimulationError):
        engine.run_until_complete(target, limit_fs=100)


def test_determinism_same_seedless_schedule():
    def build():
        engine = Engine()
        log = []

        def body(tag, delay):
            for _ in range(3):
                yield Timeout(engine, delay)
                log.append((tag, engine.now))

        engine.process(body("a", 7))
        engine.process(body("b", 11))
        engine.run()
        return log

    assert build() == build()


# ----------------------------------------------------------------------
# Interrupts vs. the integer-delay fast path


def test_interrupt_during_timed_wait_stale_wakeup_noop():
    engine = Engine()
    log = []

    def body():
        try:
            yield 100
            log.append("timed-done")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, engine.now))
        yield 100
        log.append(("resumed", engine.now))

    process = engine.process(body())
    engine.schedule(50, lambda: process.interrupt("preempt"))
    engine.run()
    # The abandoned resume at t=100 must not fire into the new wait.
    assert log == [("interrupted", "preempt", 50), ("resumed", 150)]


def test_equal_time_stale_and_live_timed_wakeups():
    # Interrupted at t=0, the process immediately re-enters a wait that
    # lands at the *same* instant the orphaned resume fires (t=100); the
    # orphan carries the lower sequence number, fires first, and must be
    # swallowed without consuming the live resume.
    engine = Engine()
    log = []

    def body():
        try:
            yield 100
        except Interrupt:
            pass
        yield 100 - engine.now
        log.append(engine.now)

    process = engine.process(body())
    engine.schedule(0, lambda: process.interrupt(None))
    engine.run()
    assert log == [100]


def test_queued_interrupts_deliver_fifo_without_double_resume():
    # Two interrupts issued back-to-back: the first handler re-enters a
    # timed wait, which the second delivery abandons in turn.  Both
    # orphaned resumes must stay no-ops.
    engine = Engine()

    def body():
        causes = []
        for _ in range(2):
            try:
                yield 1000
            except Interrupt as exc:
                causes.append(exc.cause)
        yield 1000
        causes.append(engine.now)
        return causes

    process = engine.process(body())

    def both():
        process.interrupt("a")
        process.interrupt("b")

    engine.schedule(1, both)
    assert engine.run_until_complete(process) == ["a", "b", 1001]
    assert engine.now == 1001


def test_interrupted_shared_event_wakeup_is_noop():
    # A process parked on a shared Event is interrupted, then enters a
    # timed wait; the shared event firing afterwards must not resume it
    # (the wakeup is stale) and must still reach other subscribers.
    engine = Engine()
    shared = Event(engine)
    log = []

    def victim():
        try:
            value = yield shared
            log.append(("value", value))
        except Interrupt:
            log.append(("interrupted", engine.now))
        yield 10
        log.append(("after", engine.now))

    def bystander():
        value = yield shared
        log.append(("bystander", value, engine.now))

    process = engine.process(victim())
    engine.process(bystander())
    engine.schedule(5, lambda: process.interrupt(None))
    engine.schedule(7, lambda: shared.succeed("payload"))
    engine.run()
    assert log == [
        ("interrupted", 5),
        ("bystander", "payload", 7),
        ("after", 15),
    ]


def test_interrupt_of_dead_process_is_noop():
    engine = Engine()

    def body():
        yield 5

    process = engine.process(body())
    engine.run()
    assert not process.alive
    process.interrupt("late")  # must not raise or schedule anything
    engine.run()
