"""Half-duplex bidirectional link over the LLC channel (§II-B)."""

import pytest

from repro.core.channel import ChannelDirection
from repro.core.llc_channel import LLCChannelConfig
from repro.core.llc_channel.bidirectional import (
    BidirectionalLink,
    ExchangeResult,
    ReliableExchange,
)


@pytest.fixture(scope="module")
def link():
    return BidirectionalLink(LLCChannelConfig(system_effects=False))


def test_exchange_bits_runs_both_legs(link):
    result = link.exchange_bits([1, 0, 1, 1] * 4, [0, 1, 1, 0] * 4, seed=3)
    assert isinstance(result, ExchangeResult)
    assert result.forward.direction is ChannelDirection.GPU_TO_CPU
    assert result.backward.direction is ChannelDirection.CPU_TO_GPU
    assert result.total_bits == 32
    assert result.mean_error_rate <= 0.15


def test_exchange_bits_quiet_system_mostly_clean(link):
    payload_a = [1, 1, 0, 0, 1, 0, 1, 0] * 3
    payload_b = [0, 0, 1, 1, 0, 1, 0, 1] * 3
    result = link.exchange_bits(payload_a, payload_b, seed=5)
    # GPU→CPU is glitch-free on a quiet system; the reverse leg keeps a
    # small error floor from SLM-counter glitches (device-internal, not an
    # environment effect — §V's CPU→GPU asymmetry).
    assert result.forward.received == payload_a
    assert result.backward.error_rate <= 0.1


def test_exchange_messages_reliable_delivery(link):
    exchange = link.exchange_messages(b"ping", b"pong", seed=7)
    assert isinstance(exchange, ReliableExchange)
    assert exchange.both_delivered
    assert exchange.gpu_to_cpu.payload == b"ping"
    assert exchange.cpu_to_gpu.payload == b"pong"


def test_exchange_messages_with_noise_retries():
    noisy = BidirectionalLink(LLCChannelConfig(n_sets_per_role=1))
    exchange = noisy.exchange_messages(b"up", b"dn", seed=9, max_attempts=5)
    # Delivery may need retransmissions but the reports must be coherent.
    if exchange.both_delivered:
        assert exchange.gpu_to_cpu.payload == b"up"
        assert exchange.cpu_to_gpu.payload == b"dn"
    else:
        assert not (
            exchange.gpu_to_cpu.crc_ok and exchange.cpu_to_gpu.crc_ok
        )
