"""SoC wiring: timed access paths, inclusion maintenance, noise models."""

import pytest

from repro.errors import SimulationError
from repro.sim import FS_PER_NS, FS_PER_US


def cpu_read(soc, core, paddr):
    return soc.engine.run_until_complete(
        soc.engine.process(soc.cpu_access(core, paddr))
    )


def gpu_read(soc, paddr):
    return soc.engine.run_until_complete(soc.engine.process(soc.gpu_access(paddr)))


@pytest.fixture
def lines(soc):
    space = soc.new_process("t")
    return space.mmap(64 * 1024).line_paddrs(64)


def test_cpu_cold_read_costs_dram(soc, lines):
    latency = cpu_read(soc, 0, lines[0])
    assert latency > 60 * FS_PER_NS  # DRAM territory


def test_cpu_l1_hit_after_fill(soc, lines):
    cpu_read(soc, 0, lines[0])
    latency = cpu_read(soc, 0, lines[0])
    assert latency == soc.cpu_cycles_fs(soc.config.cpu_cache.l1_hit_cycles)


def test_cpu_latency_ordering(soc, lines):
    """L1 < L2 < LLC < DRAM, measured end to end."""
    dram = cpu_read(soc, 0, lines[0])
    l1 = cpu_read(soc, 0, lines[0])
    soc.cpu_caches[0].l1.invalidate(lines[0])
    l2 = cpu_read(soc, 0, lines[0])
    soc.cpu_caches[0].invalidate(lines[0])
    llc = cpu_read(soc, 0, lines[0])
    assert l1 < l2 < llc < dram


def test_cpu_fill_populates_all_levels(soc, lines):
    cpu_read(soc, 0, lines[1])
    assert soc.cpu_caches[0].l1.contains(lines[1])
    assert soc.cpu_caches[0].l2.contains(lines[1])
    assert soc.llc.contains(lines[1])


def test_cpu_cores_have_private_caches(soc, lines):
    cpu_read(soc, 0, lines[2])
    assert not soc.cpu_caches[1].contains(lines[2])
    # Second core hits the shared LLC though.
    latency = cpu_read(soc, 1, lines[2])
    assert latency < 40 * FS_PER_NS


def test_gpu_cold_then_l3_hit(soc, lines):
    cold = gpu_read(soc, lines[3])
    warm = gpu_read(soc, lines[3])
    assert warm == soc.gpu_cycles_fs(soc.config.gpu_l3.hit_cycles)
    assert cold > warm


def test_gpu_fill_populates_l3_and_llc(soc, lines):
    gpu_read(soc, lines[4])
    assert soc.gpu_l3.contains(lines[4])
    assert soc.llc.contains(lines[4])


def test_gpu_llc_hit_after_l3_invalidate(soc, lines):
    gpu_read(soc, lines[5])
    soc.gpu_l3.invalidate(lines[5])
    latency = gpu_read(soc, lines[5])
    l3_hit = soc.gpu_cycles_fs(soc.config.gpu_l3.hit_cycles)
    assert latency > l3_hit
    assert latency < 60 * FS_PER_NS  # LLC-hit band, not DRAM


def test_clflush_scrubs_cpu_domain_not_gpu_l3(soc, lines):
    """The §III-D experiment in miniature."""
    paddr = lines[6]
    gpu_read(soc, paddr)
    cpu_read(soc, 0, paddr)
    soc.engine.run_until_complete(soc.engine.process(soc.clflush(0, paddr)))
    assert not soc.llc.contains(paddr)
    assert not soc.cpu_caches[0].contains(paddr)
    assert soc.gpu_l3.contains(paddr)  # non-inclusive: copy survives


def test_llc_eviction_back_invalidates_cpu_caches(soc):
    """Inclusive CPU side: losing the LLC line purges L1/L2 everywhere."""
    space = soc.new_process("strider")
    buffer = space.mmap_huge(1 << 30)
    base = buffer.paddr_of(0)
    target = base
    cpu_read(soc, 0, target)
    location = soc.llc.location_of(target)
    filled = 0
    offset = 1
    while filled < 16:
        candidate = base + offset * (1 << 17)
        offset += 1
        if soc.llc.location_of(candidate) == location:
            cpu_read(soc, 1, candidate)
            filled += 1
    assert not soc.llc.contains(target)
    assert not soc.cpu_caches[0].contains(target)


def test_llc_eviction_leaves_gpu_l3_alone(soc):
    space = soc.new_process("strider2")
    buffer = space.mmap_huge(1 << 30)
    target = buffer.paddr_of(64)
    gpu_read(soc, target)
    location = soc.llc.location_of(target)
    filled = 0
    offset = 1
    while filled < 16:
        candidate = buffer.paddr_of(64 + offset * (1 << 17))
        offset += 1
        if soc.llc.location_of(candidate) == location:
            cpu_read(soc, 1, candidate)
            filled += 1
    assert not soc.llc.contains(target)
    assert soc.gpu_l3.contains(target)  # the §III-D asymmetry


def test_partition_blocks_cross_domain_eviction(soc):
    soc.set_llc_partition(cpu_ways=range(8), gpu_ways=range(8, 16))
    space = soc.new_process("p")
    buffer = space.mmap_huge(1 << 30)
    target = buffer.paddr_of(0)
    cpu_read(soc, 0, target)
    location = soc.llc.location_of(target)
    filled = 0
    offset = 1
    while filled < 24:
        candidate = buffer.paddr_of(offset * (1 << 17))
        offset += 1
        if soc.llc.location_of(candidate) == location:
            gpu_read(soc, candidate)
            filled += 1
    assert soc.llc.contains(target)  # GPU fills can't touch CPU ways


def test_partition_overlap_rejected(soc):
    with pytest.raises(SimulationError):
        soc.set_llc_partition(cpu_ways=[0, 1], gpu_ways=[1, 2])


def test_clear_partition(soc):
    soc.set_llc_partition(cpu_ways=[0], gpu_ways=[1])
    soc.clear_llc_partition()
    assert soc.llc_partition is None


def test_ring_contention_inflates_cpu_latency(soc, lines):
    """Concurrent GPU streaming slows LLC-hit CPU reads (the §IV signal)."""
    paddr = lines[7]
    cpu_read(soc, 0, paddr)

    def measure(n=24):
        total = 0
        for _ in range(n):
            soc.cpu_caches[0].invalidate(paddr)
            total += cpu_read(soc, 0, paddr)
        return total / n

    quiet = measure()

    space = soc.new_process("gpu-traffic")
    traffic = space.mmap_huge(1 << 24)
    # Parallel streams over lines sharing one L3 set: constant L3 misses
    # hammering the ring, like the contention Trojan's lanes.
    streams = []
    for lane in range(16):
        gpu_lines = [
            traffic.paddr_of((k << soc.config.gpu_l3.placement_bits) + lane * 64)
            for k in range(16)
        ]

        def gpu_stream(addresses=tuple(gpu_lines)):
            while True:
                for line in addresses:
                    yield from soc.gpu_access(line)

        streams.append(soc.engine.process(gpu_stream()))
    soc.engine.run(until_fs=soc.engine.now + 3 * FS_PER_US)  # warm up

    contended = measure()
    for stream in streams:
        stream.interrupt("done")
    # A single access sees a modest queueing delay; the channel integrates
    # it over probe groups.  Direction and a real queue are what matter.
    assert contended > quiet * 1.02
    assert soc.ring.mean_wait_fs("cpu") > 0
    assert soc.ring.utilization() > 0.3


def test_os_tick_stalls_core(soc):
    soc.start_os_ticks()
    soc.engine.run(until_fs=soc.engine.now + 2000 * FS_PER_US)
    stalled = [u for u in soc._core_stall_until if u > 0]
    assert stalled  # some core got preempted at least once


def test_stall_delays_cpu_access(soc, lines):
    cpu_read(soc, 0, lines[8])
    soc._core_stall_until[0] = soc.engine.now + 5 * FS_PER_US
    latency = cpu_read(soc, 0, lines[8])
    assert latency >= 5 * FS_PER_US


def test_background_noise_generates_traffic(soc):
    soc.start_noise(rate_per_s=5e6)
    misses_before = soc.llc.misses
    soc.engine.run(until_fs=soc.engine.now + 100 * FS_PER_US)
    assert soc.llc.misses > misses_before
    soc.stop_noise()


def test_double_noise_start_rejected(soc):
    soc.start_noise()
    with pytest.raises(SimulationError):
        soc.start_noise()


def test_start_system_effects_idempotent(soc):
    soc.start_system_effects()
    soc.start_system_effects()  # must not raise


def test_noise_disabled_config(model_config):
    import dataclasses

    from repro.soc.machine import SoC

    quiet = SoC(
        model_config.replace(
            noise=dataclasses.replace(model_config.noise, enabled=False)
        )
    )
    quiet.start_system_effects()
    assert quiet._noise_process is None


def test_latency_profiles_are_ordered(soc):
    cpu = soc.cpu_latency_profile()
    assert cpu["l1_ns"] < cpu["l2_ns"] < cpu["llc_ns"] < cpu["dram_ns"]
    gpu = soc.gpu_latency_profile()
    assert gpu["l3_ns"] < gpu["llc_ns"] < gpu["dram_ns"]
