"""Regression + statistical tests for the named RNG stream contract.

Two historical bugs motivate this file (see DESIGN.md §9):

* ``stream(name)`` used to key substreams on the *first 8 bytes* of the
  name, so ``cpu-timer-spy-0`` and ``cpu-timer-trojan-1`` (both starting
  ``cpu-time``) were one generator — the Trojan's and Spy's timer jitter
  were perfectly correlated, silently biasing every error-rate figure.
* ``fork(salt)`` used to fold the salt into a 31-bit integer seed, which
  collides within a few thousand salts at useful salt spacings.

The tests below pin the fixed behaviour: full-name hashing, spawn-key
style forks, and measured statistical independence across every stream
name the simulated SoC actually uses.
"""

import itertools

import numpy as np
import pytest

from repro.sim.rng import RngStreams, _digest_words

#: Every named stream a fully loaded simulation draws from (machine,
#: agents, channels, fault injectors).  Keep in sync with grep over
#: ``.stream(`` — the correlation test below runs on all pairs.
SOC_STREAM_NAMES = [
    "mmu",
    "dram",
    "noise",
    "os-ticks",
    "payload",
    "chase",
    "cal-chase",
    "slice-re-pool",
    "slm-timer",
    "slm-timer-wg0",
    "slm-timer-wg1",
    "slm-timer-wg2",
    "slm-timer-wg3",
    "cpu-timer-spy-0",
    "cpu-timer-trojan-1",
    "bursty-noise-0",
    "bursty-noise-1",
    "bursty-noise-2",
    "bursty-noise-3",
    "fault-dram",
    "fault-ring",
    "fault-preempt",
    "fault-clock",
    "fault-probe",
]

#: The pairs the original bug collapsed: identical in their first 8
#: bytes, distinct beyond.
COLLIDING_PREFIX_PAIRS = [
    ("cpu-timer-spy-0", "cpu-timer-trojan-1"),
    ("slm-timer-wg0", "slm-timer-wg1"),
    ("bursty-noise-0", "bursty-noise-1"),
]


@pytest.mark.parametrize("left,right", COLLIDING_PREFIX_PAIRS)
def test_shared_prefix_streams_are_distinct(left, right):
    # Premise guard: the pair genuinely shares the 8-byte prefix the old
    # implementation keyed on — otherwise this regression test is vacuous.
    assert left.encode()[:8] == right.encode()[:8]
    streams = RngStreams(42)
    a = streams.stream(left).integers(0, 2**62, 64)
    b = streams.stream(right).integers(0, 2**62, 64)
    assert list(a) != list(b)


@pytest.mark.parametrize("left,right", COLLIDING_PREFIX_PAIRS)
def test_shared_prefix_streams_are_decorrelated(left, right):
    a = RngStreams(7).stream(left).standard_normal(4096)
    b = RngStreams(7).stream(right).standard_normal(4096)
    correlation = abs(float(np.corrcoef(a, b)[0, 1]))
    # Independent streams: |r| ~ N(0, 1/sqrt(n)); 5 sigma bound.
    assert correlation < 5.0 / np.sqrt(4096)


def test_stream_keying_uses_full_name_digest():
    words = _digest_words(b"cpu-timer-spy-0")
    assert len(words) == 4
    assert all(0 <= w < 2**32 for w in words)
    assert words != _digest_words(b"cpu-timer-trojan-1")


def test_stream_creation_order_never_changes_seeding():
    forward = RngStreams(3)
    backward = RngStreams(3)
    for name in SOC_STREAM_NAMES:
        forward.stream(name)
    for name in reversed(SOC_STREAM_NAMES):
        backward.stream(name)
    for name in SOC_STREAM_NAMES:
        assert (
            forward.stream(name).bit_generator.state
            == backward.stream(name).bit_generator.state
        )


def test_all_soc_streams_pairwise_decorrelated():
    """No two named streams of one machine may be statistically linked."""
    n = 2048
    bound = 5.0 / np.sqrt(n)
    streams = RngStreams(11)
    draws = {
        name: streams.stream(name).standard_normal(n)
        for name in SOC_STREAM_NAMES
    }
    worst = 0.0
    for left, right in itertools.combinations(SOC_STREAM_NAMES, 2):
        correlation = abs(float(np.corrcoef(draws[left], draws[right])[0, 1]))
        worst = max(worst, correlation)
        assert correlation < bound, f"{left} vs {right}: |r|={correlation:.4f}"
    assert worst > 0.0  # sanity: the statistic was actually computed


# ----------------------------------------------------------------------
# fork()


def test_fork_streams_differ_from_parent_and_siblings():
    base = RngStreams(5)
    children = [base.fork(salt) for salt in (0, 1, 2)]
    rows = [base.stream("dram").integers(0, 2**62, 32)]
    rows += [child.stream("dram").integers(0, 2**62, 32) for child in children]
    as_tuples = {tuple(row) for row in rows}
    assert len(as_tuples) == len(rows)


def test_fork_no_collisions_over_thousands_of_salts():
    """Regression: 31-bit salt folding collided within a few thousand
    salts; spawn-key hashing must keep every family distinct."""
    base = RngStreams(9)
    seen = {}
    for salt in range(4096):
        # Realistic salt spacing: sweeps use arithmetic salt progressions.
        key = tuple(base.fork(salt * 10_007).stream("n").integers(0, 2**62, 4))
        assert key not in seen, f"salt {salt * 10_007} collided with {seen[key]}"
        seen[key] = salt * 10_007


def test_fork_of_fork_independent_of_flat_fork():
    base = RngStreams(13)
    nested = base.fork(1).fork(2)
    flat_candidates = [base.fork(1), base.fork(2), base.fork(12), base.fork(21)]
    nested_draw = list(nested.stream("x").integers(0, 2**62, 16))
    for candidate in flat_candidates:
        assert list(candidate.stream("x").integers(0, 2**62, 16)) != nested_draw


def test_fork_is_deterministic():
    a = RngStreams(5).fork(77).stream("dram").integers(0, 2**62, 16)
    b = RngStreams(5).fork(77).stream("dram").integers(0, 2**62, 16)
    assert list(a) == list(b)


def test_fork_path_recorded():
    base = RngStreams(5)
    child = base.fork(3)
    assert base.fork_path == ()
    assert len(child.fork_path) == 4
    assert child.root_seed == base.root_seed
