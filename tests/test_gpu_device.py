"""GPU execution model: dispatch, launches, work-group context, timer."""

import pytest

from repro.errors import GpuModelError, KernelLaunchError
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelSpec
from repro.gpu.opencl import OpenClContext
from repro.gpu.timer import SlmTimer, counter_rate_per_cycle
from repro.gpu.workgroup import WorkGroupCtx
from repro.sim import FS_PER_US


@pytest.fixture
def device(soc):
    return GpuDevice(soc)


@pytest.fixture
def cl(soc, device):
    return OpenClContext(soc, device, soc.new_process("gpu-tests"))


def _noop_kernel(wg):
    yield from wg.wait_cycles(10)
    return wg.workgroup_id


def test_round_robin_dispatch(soc, device, cl):
    instance = cl.enqueue_nd_range(_noop_kernel, 7, 256)
    assert instance.assignments == [0, 1, 2, 0, 1, 2, 0]
    soc.engine.run_until_complete(instance.completion)


def test_dispatch_counter_continues_across_launches(soc, device, cl):
    first = cl.enqueue_nd_range(_noop_kernel, 2, 256)
    soc.engine.run_until_complete(first.completion)
    second = cl.enqueue_nd_range(_noop_kernel, 2, 256)
    soc.engine.run_until_complete(second.completion)
    assert first.assignments == [0, 1]
    assert second.assignments == [2, 0]


def test_kernel_results_per_workgroup(soc, cl):
    results = cl.run_kernel_to_completion(_noop_kernel, 5, 256)
    assert results == [0, 1, 2, 3, 4]


def test_single_resident_kernel_enforced(soc, cl):
    cl.enqueue_nd_range(_noop_kernel, 1, 256)
    with pytest.raises(KernelLaunchError):
        cl.enqueue_nd_range(_noop_kernel, 1, 256)


def test_kernel_finishes_then_device_idle(soc, device, cl):
    instance = cl.enqueue_nd_range(_noop_kernel, 1, 256)
    assert device.busy
    soc.engine.run_until_complete(instance.completion)
    assert not device.busy
    cl.require_idle()


def test_launch_geometry_validation(soc, device):
    with pytest.raises(KernelLaunchError):
        device.launch(KernelSpec(_noop_kernel, 0, 256))
    with pytest.raises(KernelLaunchError):
        device.launch(KernelSpec(_noop_kernel, 1, 512))
    with pytest.raises(KernelLaunchError):
        device.launch(KernelSpec(_noop_kernel, 1, 100))  # not wavefront multiple


def test_kernel_spec_wavefront_count():
    spec = KernelSpec(_noop_kernel, 1, 256)
    assert spec.wavefronts_per_workgroup(32) == 8


def test_subslice_capacity_limits_residency(soc, device, cl):
    """More work-groups than hardware threads allow must queue."""
    capacity = soc.config.gpu.workgroups_per_subslice(256)
    running = []

    def kernel(wg):
        running.append(wg.workgroup_id)
        yield from wg.wait_cycles(5000)
        return 0

    total = 3 * capacity + 2
    instance = cl.enqueue_nd_range(kernel, total, 256)
    soc.engine.run(until_fs=soc.engine.now + 1 * FS_PER_US)
    assert len(running) == 3 * capacity  # two had to wait for a slot
    soc.engine.run_until_complete(instance.completion)
    assert len(running) == total


def test_parallel_read_returns_latencies(soc, cl):
    space = cl.space
    lines = space.mmap(64 * 40).line_paddrs(64)

    def kernel(wg):
        latencies = yield from wg.parallel_read(lines)
        return latencies

    results = cl.run_kernel_to_completion(kernel, 1, 256)
    assert len(results[0]) == 40


def test_parallel_read_overlaps_misses(soc, cl):
    space = cl.space
    serial_lines = space.mmap(64 * 16).line_paddrs(64)
    batch_lines = space.mmap(64 * 16).line_paddrs(64)

    def kernel(wg):
        start = wg.soc.now_fs
        for paddr in serial_lines:
            yield from wg.read(paddr)
        serial_time = wg.soc.now_fs - start
        start = wg.soc.now_fs
        yield from wg.parallel_read(batch_lines)
        batch_time = wg.soc.now_fs - start
        return serial_time, batch_time

    serial_time, batch_time = cl.run_kernel_to_completion(kernel, 1, 256)[0]
    assert batch_time < serial_time / 2


def test_workgroup_barrier_and_wait(soc, cl):
    def kernel(wg):
        start = wg.soc.now_fs
        yield from wg.barrier()
        yield from wg.wait_cycles(100)
        return wg.soc.now_fs - start

    elapsed = cl.run_kernel_to_completion(kernel, 1, 256)[0]
    assert elapsed >= soc.gpu_cycles_fs(100)


def test_workgroup_slm_is_per_subslice(soc, cl):
    def kernel(wg):
        yield from wg.wait_cycles(1)
        return wg.slm.subslice

    results = cl.run_kernel_to_completion(kernel, 3, 256)
    assert results == [0, 1, 2]


def test_start_timer_default_threads(soc, cl):
    def kernel(wg):
        timer = wg.start_timer()
        yield from wg.wait_cycles(1)
        return timer.n_counter_threads

    assert cl.run_kernel_to_completion(kernel, 1, 256)[0] == 224


def test_start_timer_needs_second_wavefront(soc, cl):
    def kernel(wg):
        wg.start_timer()
        yield from wg.wait_cycles(1)
        return 0

    with pytest.raises(GpuModelError):
        cl.run_kernel_to_completion(kernel, 1, 32)


def test_read_timer_without_start_raises(soc, cl):
    def kernel(wg):
        value = yield from wg.read_timer()
        return value

    with pytest.raises(GpuModelError):
        cl.run_kernel_to_completion(kernel, 1, 256)


def test_launch_overhead_generator(soc, device):
    def host():
        instance = yield from device.launch_after_overhead(
            KernelSpec(_noop_kernel, 1, 256)
        )
        results = yield from instance.wait()
        return results

    results = soc.engine.run_until_complete(soc.engine.process(host()))
    assert results == [0]


# ----------------------------------------------------------------------
# SLM + timer model


def test_slm_alloc_and_atomics(soc):
    slm = soc.slm[0]
    offset = slm.alloc_word()
    assert slm.atomic_add(offset, 5) == 0
    assert slm.load(offset) == 5


def test_slm_unallocated_access_raises(soc):
    with pytest.raises(GpuModelError):
        soc.slm[0].load(4080)


def test_slm_capacity_enforced(soc):
    slm = soc.slm[1]
    with pytest.raises(GpuModelError):
        for _ in range(20000):
            slm.alloc_word()


def test_counter_rate_saturates():
    config = soc_config = None
    from repro.config import SlmConfig

    config = SlmConfig()
    few = counter_rate_per_cycle(config, 32)
    many = counter_rate_per_cycle(config, 224)
    assert few < many < config.saturated_rate_per_cycle


def test_counter_rate_needs_threads():
    from repro.config import SlmConfig

    with pytest.raises(GpuModelError):
        counter_rate_per_cycle(SlmConfig(), 0)


def test_timer_tracks_elapsed_time(soc):
    timer = SlmTimer(soc, 224)
    soc.engine.schedule(soc.gpu_cycles_fs(1000), lambda: None)
    soc.engine.run()
    value = timer._value_now()
    assert value == pytest.approx(timer.rate_per_cycle * 1000, rel=0.1)


def test_timer_monotonic_under_noise(soc):
    timer = SlmTimer(soc, 224)
    last = 0
    for step in range(200):
        soc.engine.schedule(soc.gpu_cycles_fs(3), lambda: None)
        soc.engine.run()
        value = timer._value_now()
        assert value >= last
        last = value


def test_timer_restart_zeroes(soc):
    timer = SlmTimer(soc, 224)
    soc.engine.schedule(soc.gpu_cycles_fs(500), lambda: None)
    soc.engine.run()
    timer._value_now()
    timer.restart()
    assert timer._value_now() <= timer.rate_per_cycle * 5


def test_timer_ticks_for_ns(soc):
    timer = SlmTimer(soc, 224)
    per_cycle_ns = soc.config.gpu_clock.cycle_fs / 1e6
    assert timer.ticks_for_ns(per_cycle_ns * 10) == pytest.approx(
        timer.rate_per_cycle * 10, rel=1e-6
    )


def test_timer_glitches_only_shrink_deltas(soc):
    """A stale read can hide time but never invent it."""
    import dataclasses

    from repro.soc.machine import SoC as SoCClass

    config = soc.config.replace(
        slm=dataclasses.replace(
            soc.config.slm, read_glitch_probability=0.5, read_noise_ticks=0.0
        )
    )
    fresh = SoCClass(config)
    timer = SlmTimer(fresh, 224)
    expected_rate = timer.rate_per_cycle
    for _ in range(100):
        fresh.engine.schedule(fresh.gpu_cycles_fs(100), lambda: None)
        fresh.engine.run()
        value = timer._value_now()
        clean = expected_rate * (fresh.now_fs / config.gpu_clock.cycle_fs)
        assert value <= clean + 1


def test_timer_extra_jitter_hook(soc):
    noisy = SlmTimer(soc, 224, extra_jitter_sigma=50.0)
    assert noisy.read_noise_ticks == pytest.approx(
        soc.config.slm.read_noise_ticks + 50.0
    )
