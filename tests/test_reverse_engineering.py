"""Reverse-engineering procedures recover the configured structures.

Every procedure here sees only timing (plus huge-page offsets); the tests
compare what it recovers against the simulator's hidden configuration.
"""

import numpy as np
import pytest

from repro.config import (
    SLICE_HASH_S0_MASK,
    SLICE_HASH_S1_MASK,
    kaby_lake,
    kaby_lake_model,
)
from repro.core.reverse_engineering import (
    characterize_timer,
    discover_l3_geometry,
    recover_slice_hash,
    check_l3_inclusiveness,
)
from repro.core.reverse_engineering.timer_char import resolution_sweep
from repro.soc.slice_hash import SliceHash


# ----------------------------------------------------------------------
# Fig. 4 — timer characterization


@pytest.fixture(scope="module")
def timer_char():
    return characterize_timer(samples=20, seed=2)


def test_timer_levels_ordered(timer_char):
    assert timer_char.l3.mean < timer_char.llc.mean < timer_char.memory.mean


def test_timer_levels_separated(timer_char):
    assert timer_char.levels_separated


def test_timer_uses_224_counter_threads_by_default(timer_char):
    assert timer_char.counter_threads == 224


def test_timer_rows_format(timer_char):
    rows = timer_char.rows()
    assert [row[0] for row in rows] == ["L3", "LLC", "memory"]


def test_timer_resolution_improves_with_threads():
    """§III-B: one extra wavefront is too coarse; a full WG separates."""
    sweep = resolution_sweep(thread_counts=(32, 224), samples=14, seed=5)
    coarse, fine = sweep
    assert fine.levels_separated
    # The coarse timer's absolute tick counts are much smaller (fewer
    # increments per access), squeezing the levels together.
    assert coarse.memory.mean < fine.memory.mean / 2


# ----------------------------------------------------------------------
# §III-D — inclusiveness


def test_l3_is_not_inclusive():
    report = check_l3_inclusiveness(n_lines=10, seed=1)
    assert report.inclusive is False
    assert report.mean_reaccess < (
        (report.l3_hit_level_ticks + report.miss_level_ticks) / 2
    )


def test_inclusiveness_references_ordered():
    report = check_l3_inclusiveness(n_lines=8, seed=2)
    assert report.l3_hit_level_ticks < report.miss_level_ticks


# ----------------------------------------------------------------------
# §III-D — L3 geometry


@pytest.mark.parametrize("seed", [0, 1])
def test_l3_geometry_recovered_full_scale(seed):
    report = discover_l3_geometry(seed=seed)
    config = kaby_lake().gpu_l3
    assert report.placement_bits == config.placement_bits  # 16
    assert report.ways == config.ways  # 8
    assert 1 <= report.eviction_rounds <= config.plru_rounds_for_eviction + 2


def test_l3_geometry_recovered_model_scale():
    config = kaby_lake_model(scale=16)
    report = discover_l3_geometry(config=config, seed=0)
    assert report.placement_bits == config.gpu_l3.placement_bits
    assert report.ways == config.gpu_l3.ways
    assert report.total_sets == config.gpu_l3.total_sets


def test_l3_geometry_conflict_map_monotone():
    report = discover_l3_geometry(seed=3)
    below = [
        hit for bits, hit in report.conflicts_by_stride_bits.items()
        if bits < report.placement_bits
    ]
    assert not any(below)
    assert report.conflicts_by_stride_bits[report.placement_bits]


# ----------------------------------------------------------------------
# §III-C — slice hash recovery


@pytest.fixture(scope="module")
def hash_report():
    return recover_slice_hash(seed=1, pool_size=120, verify_offsets=16)


def test_slice_hash_finds_four_slices(hash_report):
    assert hash_report.n_slices == 4


def test_slice_hash_self_verification(hash_report):
    assert hash_report.verification_accuracy >= 0.9


def test_slice_hash_partition_matches_ground_truth(hash_report):
    true_hash = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    config = kaby_lake()
    period = config.llc.line_bytes << config.llc.set_index_bits
    rng = np.random.default_rng(7)
    offsets = [int(u) * period for u in rng.integers(0, 8192, size=64)]
    assert hash_report.partition_matches(
        lambda offset: true_hash.slice_of(offset), offsets
    )


def test_slice_hash_probed_bits_above_set_index(hash_report):
    config = kaby_lake()
    first_probeable = config.llc.offset_bits + config.llc.set_index_bits
    assert min(hash_report.probed_bits) == first_probeable
    assert max(hash_report.probed_bits) <= 29


def test_slice_hash_mask_bits_match_equations(hash_report):
    """Within the probed window, the recovered masks must span the same
    partition as Eq. (1)/(2): check via linearity on single bits."""
    true_hash = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    offsets = [1 << bit for bit in hash_report.probed_bits]
    assert hash_report.partition_matches(
        lambda offset: true_hash.slice_of(offset), offsets
    )
