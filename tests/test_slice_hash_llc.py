"""Slice hash, sliced LLC, GPU L3 and CPU cache hierarchy state tests."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    GpuL3Config,
    LlcConfig,
    SLICE_HASH_S0_MASK,
    SLICE_HASH_S1_MASK,
    kaby_lake,
)
from repro.errors import ConfigError
from repro.soc.cpu_cache import CpuCoreCaches
from repro.soc.gpu_l3 import GpuL3
from repro.soc.llc import LlcLocation, SlicedLlc
from repro.soc.slice_hash import SliceHash

paddrs = st.integers(min_value=0, max_value=(1 << 38) - 1)


@pytest.fixture
def slice_hash():
    return SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)


def test_hash_is_deterministic(slice_hash):
    assert slice_hash.slice_of(0x12345678) == slice_hash.slice_of(0x12345678)


@given(paddrs)
def test_hash_in_range(paddr):
    slice_hash = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    assert 0 <= slice_hash.slice_of(paddr) < 4


@given(paddrs, paddrs)
def test_hash_linearity(a, b):
    """XOR linearity: H(a ^ b ^ 0) == H(a) ^ H(b) ^ H(0)."""
    slice_hash = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    assert slice_hash.slice_of(a ^ b) == (
        slice_hash.slice_of(a) ^ slice_hash.slice_of(b) ^ slice_hash.slice_of(0)
    )


def test_hash_ignores_offset_bits(slice_hash):
    assert slice_hash.slice_of(0x1000) == slice_hash.slice_of(0x1000 + 63)


def test_hash_balances_slices(slice_hash):
    counts = collections.Counter(
        slice_hash.slice_of(i << 17) for i in range(4096)
    )
    for count in counts.values():
        assert abs(count - 1024) < 200


def test_hash_mask_bits_roundtrip(slice_hash):
    from repro.config import SLICE_HASH_S0_BITS

    assert slice_hash.mask_bits(0) == SLICE_HASH_S0_BITS


def test_hash_needs_enough_masks():
    with pytest.raises(ConfigError):
        SliceHash([0b1], 4)


def test_hash_equality_semantics(slice_hash):
    same = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    assert slice_hash == same
    other = SliceHash([SLICE_HASH_S0_MASK ^ 1 << 20, SLICE_HASH_S1_MASK], 4)
    assert slice_hash != other


# ----------------------------------------------------------------------
# Sliced LLC


@pytest.fixture
def llc():
    return SlicedLlc(LlcConfig())


def test_llc_location_components(llc):
    location = llc.location_of(0x40)
    assert location.set_index == 1
    assert 0 <= location.slice_index < 4


def test_llc_global_set(llc):
    location = LlcLocation(2, 5)
    assert location.global_set(2048) == 2 * 2048 + 5


def test_llc_access_fills_correct_slice(llc):
    paddr = 0xABCDEF40
    llc.access(paddr)
    assert llc.contains(paddr)
    location = llc.location_of(paddr)
    assert paddr & ~63 in llc.lines_in_set(location)


def test_llc_same_set_predicate(llc):
    a = 0x1000
    # Same set bits, different high bits: same_set only if hash agrees.
    b = a + (1 << 17)
    expected = llc.location_of(a) == llc.location_of(b)
    assert llc.same_set(a, b) == expected


def test_llc_sixteen_fills_evict_original(llc):
    base = 0x2000
    llc.access(base)
    location = llc.location_of(base)
    inserted = 0
    offset = 1
    while inserted < 16:
        candidate = base + offset * (1 << 17)
        offset += 1
        if llc.location_of(candidate) == location:
            llc.access(candidate)
            inserted += 1
    assert not llc.contains(base)


def test_llc_invalidate(llc):
    llc.access(0x3000)
    assert llc.invalidate(0x3000)
    assert not llc.contains(0x3000)


def test_llc_flush_all(llc):
    for i in range(64):
        llc.access(i * 64)
    llc.flush_all()
    assert llc.hits + llc.misses == 64
    assert not llc.contains(0)


def test_llc_total_sets(llc):
    assert llc.total_sets == 4 * 2048


def test_llc_slice_cache_bounds(llc):
    from repro.errors import CacheGeometryError

    with pytest.raises(CacheGeometryError):
        llc.slice_cache(4)


# ----------------------------------------------------------------------
# GPU L3


@pytest.fixture
def l3():
    return GpuL3(GpuL3Config())


def test_l3_placement_decomposition(l3):
    paddr = (3 << 13) | (2 << 11) | (7 << 6)  # subbank=3? compute below
    placement = l3.placement_of(paddr)
    assert placement.set_in_bank == 7
    assert placement.bank == 2
    assert placement.subbank == 3
    assert placement.flat_index(GpuL3Config()) == l3.flat_index_of(paddr)


def test_l3_same_set_iff_low_bits_match(l3):
    a = 0x1240
    assert l3.same_set(a, a + (1 << 16))
    assert not l3.same_set(a, a + (1 << 10))


def test_l3_capacity(l3):
    assert l3.capacity_bytes == 512 * 1024


def test_l3_fill_and_evict_cycle(l3):
    base = 0x40
    conflicts = [base + (k + 1) * (1 << 16) for k in range(8)]
    l3.access(base)
    for _round in range(5):
        for paddr in conflicts:
            l3.access(paddr)
    assert not l3.contains(base)


def test_l3_non_inclusive_invalidate_independent(l3):
    l3.access(0x80)
    assert l3.invalidate(0x80)
    assert not l3.contains(0x80)


@settings(max_examples=20)
@given(st.lists(st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=200))
def test_l3_resident_lines_bounded(addresses):
    l3 = GpuL3(GpuL3Config())
    for paddr in addresses:
        l3.access(paddr)
    assert len(l3) <= l3.config.total_sets * l3.config.ways


# ----------------------------------------------------------------------
# CPU private caches


@pytest.fixture
def caches():
    return CpuCoreCaches(kaby_lake().cpu_cache, core_id=0)


def test_cpu_fill_after_llc_installs_both_levels(caches):
    caches.fill_after_llc(0x1000)
    assert caches.l1.contains(0x1000)
    assert caches.l2.contains(0x1000)


def test_cpu_l1_subset_of_l2_invariant(caches):
    # Hammer one L2 set hard enough to force L2 evictions.
    stride = 64 * 1024  # l2 sets(1024) * 64
    for k in range(12):
        caches.fill_after_llc(k * stride)
    for line in caches.l1.resident_lines():
        assert caches.l2.contains(line)


def test_cpu_invalidate_clears_both(caches):
    caches.fill_after_llc(0x2000)
    assert caches.invalidate(0x2000)
    assert not caches.contains(0x2000)


def test_cpu_flush_all(caches):
    caches.fill_after_llc(0x40)
    caches.flush_all()
    assert not caches.contains(0x40)
