"""Planner invariants for the LLC channel (§III-D/E constraints)."""

import pytest

from repro.core.channel import ChannelDirection
from repro.core.llc_channel import (
    EvictionStrategy,
    LLCChannel,
    LLCChannelConfig,
    Role,
)
from repro.errors import AttackError


@pytest.fixture(scope="module")
def session():
    channel = LLCChannel(LLCChannelConfig(system_effects=False))
    return channel.build_session(seed=11)


def test_roles_have_requested_redundancy(session):
    for role in Role:
        assert len(session.plan.locations[role]) == 2


def test_role_locations_are_disjoint(session):
    seen = set()
    for role in Role:
        for location in session.plan.locations[role]:
            assert location not in seen
            seen.add(location)


def test_roles_use_low_slices_only(session):
    for role in Role:
        for location in session.plan.locations[role]:
            assert location.slice_index in (0, 1)


def test_both_sides_agree_on_locations(session):
    for role in Role:
        assert session.plan.cpu.roles[role].locations == (
            session.plan.gpu.roles[role].locations
        )


def test_prime_addresses_land_in_their_set(session):
    soc = session.soc
    for endpoint in (session.plan.cpu, session.plan.gpu):
        for role in Role:
            role_plan = endpoint.roles[role]
            for location in role_plan.locations:
                addrs = role_plan.prime[location]
                assert len(addrs) == soc.config.llc.ways
                for paddr in addrs:
                    assert soc.llc.location_of(paddr) == location


def test_cpu_and_gpu_primes_are_distinct_lines(session):
    for role in Role:
        cpu_plan = session.plan.cpu.roles[role]
        gpu_plan = session.plan.gpu.roles[role]
        for location in cpu_plan.locations:
            assert not set(cpu_plan.prime[location]) & set(gpu_plan.prime[location])


def test_pollute_conflicts_in_l3_but_not_in_comm_sets(session):
    soc = session.soc
    all_locations = {
        location for locs in session.plan.locations.values() for location in locs
    }
    for role in Role:
        role_plan = session.plan.gpu.roles[role]
        for location in role_plan.locations:
            target = role_plan.prime[location][0]
            for paddr in role_plan.pollute[location]:
                assert soc.gpu_l3.same_set(paddr, target)
                assert soc.llc.location_of(paddr) not in all_locations


def test_cpu_side_has_no_pollute_sets(session):
    for role in Role:
        assert session.plan.cpu.roles[role].pollute == {}


def test_calibration_addresses_disjoint_from_comm_sets(session):
    soc = session.soc
    all_locations = {
        location for locs in session.plan.locations.values() for location in locs
    }
    for endpoint in (session.plan.cpu, session.plan.gpu):
        calib = endpoint.calibration
        for paddr in calib.scratch + calib.cold:
            assert soc.llc.location_of(paddr) not in all_locations


def test_calibration_sets_of_both_sides_disjoint(session):
    soc = session.soc
    cpu_locs = {
        soc.llc.location_of(p)
        for p in session.plan.cpu.calibration.scratch
        + session.plan.cpu.calibration.cold
    }
    gpu_locs = {
        soc.llc.location_of(p)
        for p in session.plan.gpu.calibration.scratch
        + session.plan.gpu.calibration.cold
    }
    assert not cpu_locs & gpu_locs


def test_pollute_rounds_by_strategy():
    for strategy, minimum in [
        (EvictionStrategy.PRECISE_L3, 5),
        (EvictionStrategy.LLC_ONLY, 7),
        (EvictionStrategy.FULL_L3_CLEAR, 2),
    ]:
        channel = LLCChannel(
            LLCChannelConfig(strategy=strategy, system_effects=False)
        )
        session = channel.build_session(seed=3)
        assert session.plan.gpu.pollute_rounds == minimum


def test_full_clear_strategy_covers_whole_l3():
    channel = LLCChannel(
        LLCChannelConfig(
            strategy=EvictionStrategy.FULL_L3_CLEAR, system_effects=False
        )
    )
    session = channel.build_session(seed=3)
    config = session.soc.config.gpu_l3
    role_plan = session.plan.gpu.roles[Role.DATA]
    pollute = role_plan.pollute[role_plan.locations[0]]
    assert len(pollute) == config.total_sets * (config.ways + 1)


def test_llc_only_strategy_uses_double_width_sets():
    channel = LLCChannel(
        LLCChannelConfig(strategy=EvictionStrategy.LLC_ONLY, system_effects=False)
    )
    session = channel.build_session(seed=3)
    config = session.soc.config.gpu_l3
    role_plan = session.plan.gpu.roles[Role.DATA]
    pollute = role_plan.pollute[role_plan.locations[0]]
    assert len(pollute) == 2 * config.ways


def test_t_data_positive_and_bounded(session):
    assert 0 < session.t_data_fs < 50_000_000_000  # under 50 us


def test_planner_needs_four_slices(model_config):
    import dataclasses

    from repro.core.llc_channel.plan import LlcChannelPlanner

    narrow = dataclasses.replace(
        model_config.llc, sets_per_slice=model_config.llc.sets_per_slice * 2,
        slices=2,
    )
    config = model_config.replace(llc=narrow)
    with pytest.raises(AttackError):
        LlcChannelPlanner(config, cpu_pool=None, gpu_pool=None)  # type: ignore[arg-type]


def test_one_set_per_role_plan():
    channel = LLCChannel(LLCChannelConfig(n_sets_per_role=1, system_effects=False))
    session = channel.build_session(seed=5)
    for role in Role:
        assert len(session.plan.locations[role]) == 1
