"""OpenCL-like veneer: buffers, SVM semantics, queue behaviour."""

import pytest

from repro.errors import KernelLaunchError
from repro.gpu.device import GpuDevice
from repro.gpu.opencl import OpenClContext


@pytest.fixture
def cl(soc):
    return OpenClContext(soc, GpuDevice(soc), soc.new_process("cl"))


def test_svm_alloc_default_pages(cl):
    buffer = cl.svm_alloc(8192)
    assert buffer.size == 8192
    assert not buffer.is_physically_contiguous or buffer.size <= 4096


def test_svm_alloc_huge(cl):
    buffer = cl.svm_alloc(1 << 20, huge=True)
    assert buffer.is_physically_contiguous


def test_svm_shares_process_space(soc, cl):
    """Zero-copy SVM: the kernel sees the CPU process's translations."""
    buffer = cl.svm_alloc(4096)
    vaddr = buffer.vaddr_of(128)
    assert cl.space.translate(vaddr) == buffer.paddr_of(128)


def test_finish_waits_for_all_kernels(soc, cl):
    finished = []

    def kernel(wg):
        yield from wg.wait_cycles(500)
        finished.append(wg.workgroup_id)
        return None

    cl.enqueue_nd_range(kernel, 2, 64)

    def host():
        yield from cl.finish()
        return list(finished)

    result = soc.engine.run_until_complete(soc.engine.process(host()))
    assert sorted(result) == [0, 1]


def test_require_idle_raises_while_busy(soc, cl):
    def kernel(wg):
        yield from wg.wait_cycles(10_000)
        return None

    cl.enqueue_nd_range(kernel, 1, 64)
    with pytest.raises(KernelLaunchError):
        cl.require_idle()


def test_kernel_args_passed_through(soc, cl):
    def kernel(wg, a, b):
        yield from wg.wait_cycles(1)
        return a + b + wg.workgroup_id

    results = cl.run_kernel_to_completion(kernel, 3, 64, 10, 20)
    assert results == [30, 31, 32]


def test_kernel_name_is_cosmetic(soc, cl):
    def kernel(wg):
        yield from wg.wait_cycles(1)
        return "done"

    instance = cl.enqueue_nd_range(kernel, 1, 64, name="custom-name")
    soc.engine.run_until_complete(instance.completion)
    assert instance.spec.name == "custom-name"
