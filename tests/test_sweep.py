"""Parameter-sweep driver tests."""

import pytest

from repro.analysis.sweep import SweepPoint, SweepResult, grid, run_sweep
from repro.core.channel import ChannelDirection, ChannelResult
from repro.errors import ChannelProtocolError


def _result(error_bits, elapsed_fs=10**12):
    sent = [1, 0] * 32
    received = list(sent)
    for index in range(error_bits):
        received[index * 7] ^= 1
    return ChannelResult(
        direction=ChannelDirection.GPU_TO_CPU,
        sent=sent,
        received=received,
        elapsed_fs=elapsed_fs,
    )


def test_grid_cartesian_product():
    points = grid(a=(1, 2), b=("x", "y", "z"))
    assert len(points) == 6
    assert {"a": 1, "b": "z"} in points
    assert all(sorted(p) == ["a", "b"] for p in points)


def test_run_sweep_aggregates_per_point():
    def run(params, seed):
        return _result(error_bits=params["errors"])

    result = run_sweep(run, grid(errors=(0, 2)), seeds=(1, 2))
    assert len(result.points) == 2
    clean, noisy = result.points
    assert clean.aggregate.error_percent == 0.0
    assert noisy.aggregate.error_percent > 0
    assert clean.aggregate.n_runs == 2


def test_run_sweep_tolerates_dead_points():
    def run(params, seed):
        if params["mode"] == "dead":
            raise ChannelProtocolError("starved")
        return _result(0)

    result = run_sweep(run, grid(mode=("ok", "dead")), seeds=(1, 2, 3))
    alive = {p.params["mode"]: p for p in result.points}
    assert alive["ok"].alive
    assert not alive["dead"].alive
    assert alive["dead"].failures == 3


def test_best_by_error():
    def run(params, seed):
        return _result(error_bits=params["errors"])

    result = run_sweep(run, grid(errors=(3, 1, 2)), seeds=(1,))
    assert result.best_by_error().params["errors"] == 1


def test_best_by_error_all_dead_raises():
    def run(params, seed):
        raise ChannelProtocolError("nope")

    result = run_sweep(run, grid(x=(1,)), seeds=(1,))
    with pytest.raises(ChannelProtocolError):
        result.best_by_error()


def test_rows_and_header_align():
    def run(params, seed):
        if params["n"] == 2:
            raise ChannelProtocolError("dead point")
        return _result(0)

    result = run_sweep(run, grid(n=(1, 2)), seeds=(1,))
    header = result.header()
    rows = result.rows()
    assert header == ["n", "kb/s", "err %"]
    assert all(len(row) == len(header) for row in rows)
    assert rows[1][1] == "dead"


def test_sweep_with_real_channel_smoke():
    """One tiny real point through the driver end to end."""
    from repro.core.llc_channel import LLCChannel, LLCChannelConfig

    def run(params, seed):
        config = LLCChannelConfig(
            n_sets_per_role=params["sets"], system_effects=False
        )
        return LLCChannel(config).transmit(n_bits=12, seed=seed)

    result = run_sweep(run, grid(sets=(2,)), seeds=(1,))
    assert result.points[0].alive
    assert result.points[0].aggregate.bandwidth_kbps > 0


def test_rows_column_order_stable_with_heterogeneous_params():
    """Regression: every row must use one sorted key-union, not a
    per-row ordering — points that lack a key get a blank in *that*
    column and nothing shifts."""
    result = SweepResult(
        points=[
            SweepPoint(params={"b": 2, "a": 1}, aggregate=None, failures=1),
            SweepPoint(params={"c": 3}, aggregate=None, failures=1),
        ]
    )
    assert result.param_keys() == ["a", "b", "c"]
    assert result.header() == ["a", "b", "c", "kb/s", "err %"]
    rows = result.rows()
    assert rows[0][:3] == (1, 2, "")
    assert rows[1][:3] == ("", "", 3)


def test_run_sweep_parallel_matches_serial():
    """The sweep's table is bit-identical at any worker count."""
    from repro.exec.demo import synthetic_trial

    points = grid(noise=(0.0, 0.2), n_bits=(16,))
    serial = run_sweep(synthetic_trial, points, seeds=(1, 2))
    parallel = run_sweep(synthetic_trial, points, seeds=(1, 2), workers=2)
    assert serial.rows() == parallel.rows()
    assert parallel.report is not None
    assert parallel.report.workers == 2


def test_run_sweep_with_cache_reuses_results(tmp_path):
    from repro.exec.demo import synthetic_trial

    points = grid(noise=(0.1,), n_bits=(16,))
    cold = run_sweep(synthetic_trial, points, seeds=(1, 2),
                     cache_dir=str(tmp_path))
    warm = run_sweep(synthetic_trial, points, seeds=(1, 2),
                     cache_dir=str(tmp_path))
    assert warm.rows() == cold.rows()
    assert warm.report.cache.hits == 2
    assert warm.report.sim["events_executed"] == 0
