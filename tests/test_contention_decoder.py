"""Offline run-length decoder on synthetic latency traces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contention_channel.decoder import (
    POSTAMBLE,
    PREAMBLE,
    DecodeResult,
    decode_samples,
    frame_bits,
    two_means_threshold,
)
from repro.errors import AttackError

SLOT = 1_000_000_000  # 1 us in fs
QUIET, LOUD = 450.0, 900.0


def synth_trace(
    payload,
    slot_fs=SLOT,
    samples_per_slot=12,
    lead_in_slots=4,
    tail_slots=6,
    quiet=QUIET,
    loud=LOUD,
):
    """Synthesize the receiver's (timestamp, cycles) trace for a payload."""
    frame = frame_bits(payload)
    states = [0] * lead_in_slots + list(frame) + [0] * tail_slots
    trace = []
    step = slot_fs // samples_per_slot
    t = 0
    for state in states:
        for _ in range(samples_per_slot):
            trace.append((t, int(loud if state else quiet)))
            t += step
    return trace


def test_frame_layout():
    framed = frame_bits([1, 1, 0])
    assert framed == list(PREAMBLE) + [1, 1, 0] + list(POSTAMBLE)


def test_two_means_on_clean_bimodal():
    values = [10.0] * 50 + [100.0] * 50
    threshold = two_means_threshold(values)
    assert 10 < threshold < 100


def test_two_means_initialization_is_percentile_based():
    """A single low/high outlier must not drag the initial centers."""
    values = [450.0] * 50 + [550.0] * 50 + [5.0]
    threshold = two_means_threshold(values)
    assert 450 < threshold < 550


def test_two_means_needs_the_decoders_cap_for_extreme_spikes():
    """Documents why decode_samples caps window means at p95 first: an
    un-capped extreme spike legitimately forms its own cluster."""
    values = [450.0] * 80 + [550.0] * 20 + [5000.0]
    hijacked = two_means_threshold(values)
    assert hijacked > 550
    capped = sorted(values)[int(0.95 * (len(values) - 1))]
    threshold = two_means_threshold([min(v, capped) for v in values])
    assert 450 < threshold < 560


def test_two_means_empty_raises():
    with pytest.raises(AttackError):
        two_means_threshold([])


def test_decode_simple_payload():
    payload = [1, 0, 1, 1, 0, 0, 1, 0]
    result = decode_samples(synth_trace(payload), SLOT, expected_bits=len(payload))
    assert result.bits == payload


def test_decode_long_runs():
    payload = [1] * 6 + [0] * 5 + [1] * 3
    result = decode_samples(synth_trace(payload), SLOT, expected_bits=len(payload))
    assert result.bits == payload


def test_decode_all_zero_payload():
    payload = [0] * 10
    result = decode_samples(synth_trace(payload), SLOT, expected_bits=len(payload))
    assert result.bits == payload


def test_decode_all_one_payload():
    payload = [1] * 10
    result = decode_samples(synth_trace(payload), SLOT, expected_bits=len(payload))
    assert result.bits == payload


def test_decode_survives_preemption_gap():
    payload = [1, 0, 0, 1, 1, 0, 1, 0, 1, 1]
    trace = synth_trace(payload)
    # Drop ~1.5 slots of samples mid-quiet-run (receiver preempted).
    hole_start = trace[len(trace) // 2][0]
    trace = [s for s in trace if not hole_start <= s[0] < hole_start + SLOT // 3]
    result = decode_samples(trace, SLOT, expected_bits=len(payload))
    errors = sum(1 for a, b in zip(payload, result.bits) if a != b)
    assert errors <= 1


def test_decode_survives_spike_outliers():
    payload = [1, 0, 1, 0, 0, 1, 1, 0]
    trace = synth_trace(payload)
    corrupted = [
        (t, v * 12 if i % 37 == 0 else v) for i, (t, v) in enumerate(trace)
    ]
    result = decode_samples(corrupted, SLOT, expected_bits=len(payload))
    assert result.bits == payload


def test_decode_warmup_contention_is_skipped():
    """Sender warm-up looks like contention before the lead-in gap."""
    payload = [0, 1, 1, 0, 1]
    trace = synth_trace(payload)
    warmup = [(t - 6 * SLOT, int(LOUD)) for t in range(0, 2 * SLOT, SLOT // 12)]
    rebased = [(t + 6 * SLOT, v) for t, v in warmup + trace]
    result = decode_samples(rebased, SLOT, expected_bits=len(payload))
    assert result.bits == payload


def test_decode_reports_span(synth=synth_trace):
    payload = [1, 0, 1]
    result = decode_samples(synth(payload), SLOT, expected_bits=len(payload))
    frame_slots = len(PREAMBLE) + len(payload) + len(POSTAMBLE)
    assert result.payload_span_fs == pytest.approx(frame_slots * SLOT, rel=0.35)


def test_decode_too_short_raises():
    with pytest.raises(AttackError):
        decode_samples([(0, 1), (1, 2)], SLOT)


def test_decode_bad_slot_raises():
    with pytest.raises(AttackError):
        decode_samples(synth_trace([1, 0]), 0)


def test_decode_result_fields():
    result = decode_samples(synth_trace([1, 0]), SLOT, expected_bits=2)
    assert isinstance(result, DecodeResult)
    assert result.n_samples > 0
    assert result.threshold_cycles > QUIET


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=40))
def test_decode_roundtrip_clean_traces(payload):
    result = decode_samples(synth_trace(payload), SLOT, expected_bits=len(payload))
    assert result.bits == payload
