"""Light-weight checks of the figure harness plumbing.

The full sweeps live in benchmarks/; these tests run tiny instances to
verify shapes, row formats and paper annotations.
"""

import pytest

from repro.analysis.figures import (
    Fig7Data,
    Fig8Data,
    Fig10Data,
    fig7_llc_strategies,
    fig8_llc_sets,
    fig10_contention_sweep,
)
from repro.core.channel import ChannelDirection
from repro.core.llc_channel import EvictionStrategy


@pytest.mark.slow
def test_fig7_small_instance():
    data = fig7_llc_strategies(
        n_bits=16,
        seeds=(1,),
        directions=(ChannelDirection.GPU_TO_CPU,),
    )
    assert isinstance(data, Fig7Data)
    strategies = {point.strategy for point in data.points}
    assert strategies == set(EvictionStrategy)
    for row in data.rows():
        assert len(row) == 4
    assert "precise-l3" in data.paper


@pytest.mark.slow
def test_fig8_small_instance():
    data = fig8_llc_sets(
        set_counts=(1, 2),
        n_bits=24,
        seeds=(1,),
        directions=(ChannelDirection.GPU_TO_CPU,),
    )
    assert isinstance(data, Fig8Data)
    assert {point.n_sets for point in data.points} == {1, 2}
    for point in data.points:
        assert point.aggregate.n_runs == 1


@pytest.mark.slow
def test_fig10_small_instance():
    data = fig10_contention_sweep(
        workgroup_counts=(2,),
        gpu_buffer_sizes=(2 * 1024 * 1024,),
        n_bits=32,
        seeds=(1,),
    )
    assert isinstance(data, Fig10Data)
    assert len(data.points) == 1
    best = data.best()
    assert best.n_workgroups == 2
    assert best.iteration_factor > 0
