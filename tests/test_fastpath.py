"""Fast-path equivalence suite (see DESIGN, "Fast-path contract").

Layer 1 of the fast path — integer-delay yields — is unconditionally
equivalent to ``Timeout`` yields.  Layers 2–3 (coalesced access paths,
the ring reservation ledger and the burst APIs) change how many engine
events a simulated access costs, so every scenario here runs twice —
``repro.sim.fastpath`` forced on and forced off — and the outcomes are
pinned to each other byte-for-byte: payloads, latencies, final
simulation time, metrics snapshots (including the order-sensitive
Welford histograms) and armed trace streams.  The only licensed
difference is ``engine.events_executed``, which the fast path must not
*increase*.
"""

import pytest

from repro.config import FaultsConfig, kaby_lake_model
from repro.core.channel import ChannelDirection
from repro.core.contention_channel import ContentionChannel, ContentionChannelConfig
from repro.core.llc_channel import LLCChannel, LLCChannelConfig
from repro.cpu.core import CpuProgram
from repro.gpu.workgroup import WorkGroupCtx
from repro.mitigations import llc_way_partition, ring_tdm
from repro.obs import DEFAULT_EVENT_ALLOWLIST, MemorySink, recorder
from repro.sim import fastpath
from repro.sim.engine import Engine
from repro.sim.resources import FifoResource
from repro.soc.machine import SoC


def _run(soc, generator):
    process = soc.engine.process(generator)
    return soc.engine.run_until_complete(process)


def _snapshot_without_event_count(soc):
    """Metrics snapshot with the events_executed carve-out applied.

    Returns ``(snapshot, events_executed)``; everything in the snapshot
    — including histogram summaries, whose float accumulation is
    order-dependent — must be bit-identical across modes.
    """
    snapshot = soc.metrics_snapshot()
    engine = dict(snapshot["engine"])
    events = engine.pop("events_executed")
    snapshot = dict(snapshot)
    snapshot["engine"] = engine
    return snapshot, events


def _sorted_trace(events):
    return sorted(
        (e for e in events if e[0] != "engine.step"),
        key=lambda e: (e[1], e[0], e[2], repr(e[3])),
    )


def _assert_equivalent(fast_outcome, slow_outcome):
    """Compare (result, snapshot, events_executed[, trace]) packs."""
    fast_result, fast_snapshot, fast_events = fast_outcome[:3]
    slow_result, slow_snapshot, slow_events = slow_outcome[:3]
    assert fast_result == slow_result
    assert fast_snapshot == slow_snapshot
    assert fast_events <= slow_events
    if len(fast_outcome) > 3:
        assert fast_outcome[3] == slow_outcome[3]


# ----------------------------------------------------------------------
# Machine-level workloads driven directly


def _cpu_workload(fast, seed, use_burst):
    with fastpath.forced(fast):
        soc = SoC(kaby_lake_model(seed=seed, scale=16))
        program = CpuProgram(soc, 0)
        lines = program.alloc_lines(96)

        def body():
            # Cold fills with MLP, then hot re-reads (the burst's bread
            # and butter), then a timed probe (rdtsc + read_series).
            filled = yield from program.read_batch(lines)
            if use_burst:
                hot = yield from soc.cpu_access_burst(0, lines * 3)
            else:
                hot = []
                for paddr in lines * 3:
                    latency = yield from soc.cpu_access(0, paddr)
                    hot.append(latency)
            cycles = yield from program.timed_probe(lines[:32])
            yield from program.clflush(lines[0])
            reread = yield from program.read(lines[0])
            return filled, hot, cycles, reread

        result = _run(soc, body())
        snapshot, events = _snapshot_without_event_count(soc)
        return (result, soc.engine.now), snapshot, events


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_cpu_workload_equivalence(seed):
    slow = _cpu_workload(False, seed, use_burst=False)
    fast = _cpu_workload(True, seed, use_burst=False)
    _assert_equivalent(fast, slow)


@pytest.mark.parametrize("seed", [1, 5])
def test_cpu_burst_matches_scalar_loop(seed):
    scalar = _cpu_workload(True, seed, use_burst=False)
    burst = _cpu_workload(True, seed, use_burst=True)
    slow = _cpu_workload(False, seed, use_burst=True)
    assert burst[0] == scalar[0]
    assert burst[1] == scalar[1]
    _assert_equivalent(burst, slow)


def _gpu_workload(fast, seed, use_burst):
    with fastpath.forced(fast):
        soc = SoC(kaby_lake_model(seed=seed, scale=16))
        program = CpuProgram(soc, 0)  # allocation convenience only
        lines = program.alloc_lines(64)
        wg = WorkGroupCtx(
            soc, workgroup_id=0, subslice=0,
            threads=soc.config.gpu.max_threads_per_workgroup,
        )

        def body():
            wg.start_timer()
            cold = yield from wg.parallel_read(lines)
            hot = yield from wg.parallel_read(lines)
            if use_burst:
                serial = yield from soc.gpu_access_burst(lines)
            else:
                serial = []
                for paddr in lines:
                    latency = yield from soc.gpu_access(paddr)
                    serial.append(latency)
            ticks = yield from wg.timed_parallel_read(lines[:16])
            yield from wg.barrier()
            return cold, hot, serial, ticks

        result = _run(soc, body())
        snapshot, events = _snapshot_without_event_count(soc)
        return (result, soc.engine.now), snapshot, events


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_gpu_workload_equivalence(seed):
    slow = _gpu_workload(False, seed, use_burst=False)
    fast = _gpu_workload(True, seed, use_burst=False)
    _assert_equivalent(fast, slow)


def test_gpu_burst_matches_scalar_loop():
    scalar = _gpu_workload(True, 4, use_burst=False)
    burst = _gpu_workload(True, 4, use_burst=True)
    slow = _gpu_workload(False, 4, use_burst=True)
    assert burst[0] == scalar[0]
    assert burst[1] == scalar[1]
    _assert_equivalent(burst, slow)


def _contended_workload(fast, seed):
    """CPU core and GPU streaming through the ring at the same time."""
    with fastpath.forced(fast):
        soc = SoC(kaby_lake_model(seed=seed, scale=16))
        program = CpuProgram(soc, 0)
        cpu_lines = program.alloc_lines(48)
        gpu_lines = program.alloc_lines(48)
        wg = WorkGroupCtx(soc, 0, 0, threads=soc.config.gpu.max_threads_per_workgroup)
        soc.start_system_effects()

        def gpu_side():
            total = []
            for _ in range(4):
                lats = yield from wg.parallel_read(gpu_lines)
                total.extend(lats)
            return total

        def cpu_side():
            total = []
            for _ in range(4):
                lats = yield from program.read_series(cpu_lines)
                total.extend(lats)
            return total

        gpu_process = soc.engine.process(gpu_side())
        cpu_result = _run(soc, cpu_side())
        gpu_result = soc.engine.run_until_complete(gpu_process)
        soc.stop_noise()
        soc.stop_os_ticks()
        snapshot, events = _snapshot_without_event_count(soc)
        return (cpu_result, gpu_result, soc.engine.now), snapshot, events


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_ring_contention_equivalence(seed):
    slow = _contended_workload(False, seed)
    fast = _contended_workload(True, seed)
    _assert_equivalent(fast, slow)


# ----------------------------------------------------------------------
# Full channel transmissions


def _llc_trial(fast, seed, direction, mitigation=None, intensity=None,
               armed=False, n_bits=16):
    with fastpath.forced(fast):
        soc_config = kaby_lake_model(scale=16)
        if intensity is not None:
            soc_config = soc_config.replace(faults=FaultsConfig().scaled(intensity))
        channel = LLCChannel(
            LLCChannelConfig(direction=direction, mitigation=mitigation),
            soc_config=soc_config,
        )
        trace = None
        if armed:
            sink = MemorySink()
            with recorder.recording(sink, DEFAULT_EVENT_ALLOWLIST):
                result = channel.transmit(n_bits=n_bits, seed=seed)
            trace = _sorted_trace(sink.events)
        else:
            result = channel.transmit(n_bits=n_bits, seed=seed)
        metrics = result.meta.pop("metrics", None)
        outcome = (result.sent, result.received, result.elapsed_fs, result.meta)
        events = None
        if metrics is not None:
            engine_metrics = dict(metrics["engine"])
            events = engine_metrics.pop("events_executed")
            metrics = dict(metrics)
            metrics["engine"] = engine_metrics
        return outcome, metrics, events, trace


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_llc_gpu_to_cpu_equivalence(seed):
    slow = _llc_trial(False, seed, ChannelDirection.GPU_TO_CPU)
    fast = _llc_trial(True, seed, ChannelDirection.GPU_TO_CPU)
    assert fast == slow


@pytest.mark.parametrize("seed", [21, 24])
def test_llc_cpu_to_gpu_equivalence(seed):
    slow = _llc_trial(False, seed, ChannelDirection.CPU_TO_GPU)
    fast = _llc_trial(True, seed, ChannelDirection.CPU_TO_GPU)
    assert fast == slow


def test_llc_mitigated_equivalence():
    slow = _llc_trial(False, 31, ChannelDirection.GPU_TO_CPU,
                      mitigation=llc_way_partition())
    fast = _llc_trial(True, 31, ChannelDirection.GPU_TO_CPU,
                      mitigation=llc_way_partition())
    assert fast == slow


@pytest.mark.parametrize("seed", [41, 42])
def test_llc_faulted_equivalence(seed):
    slow = _llc_trial(False, seed, ChannelDirection.GPU_TO_CPU, intensity=1.0)
    fast = _llc_trial(True, seed, ChannelDirection.GPU_TO_CPU, intensity=1.0)
    assert fast == slow


def test_llc_armed_trace_equivalence():
    slow = _llc_trial(False, 51, ChannelDirection.GPU_TO_CPU, armed=True,
                      n_bits=8)
    fast = _llc_trial(True, 51, ChannelDirection.GPU_TO_CPU, armed=True,
                      n_bits=8)
    assert fast[0] == slow[0]
    assert fast[1] == slow[1]          # metrics incl. histograms
    assert fast[2] <= slow[2]          # events_executed may only shrink
    assert fast[3] == slow[3]          # the sorted trace streams
    assert len(fast[3]) > 0


def _contention_trial(fast, seed, mitigation=None, intensity=None, n_bits=16):
    with fastpath.forced(fast):
        soc_config = kaby_lake_model(scale=16)
        if intensity is not None:
            soc_config = soc_config.replace(faults=FaultsConfig().scaled(intensity))
        channel = ContentionChannel(
            ContentionChannelConfig(mitigation=mitigation)
            if mitigation is not None
            else ContentionChannelConfig(),
            soc_config=soc_config,
        )
        calibration = channel.calibrate(seed=2)
        result = channel.transmit(n_bits=n_bits, seed=seed,
                                  calibration=calibration)
        return (
            calibration.iteration_factor,
            result.sent,
            result.received,
            result.elapsed_fs,
        )


@pytest.mark.parametrize("seed", [61, 62, 63])
def test_contention_channel_equivalence(seed):
    slow = _contention_trial(False, seed)
    fast = _contention_trial(True, seed)
    assert fast == slow


def test_contention_tdm_mitigated_equivalence():
    slow = _contention_trial(False, 71, mitigation=ring_tdm(period_us=1.0),
                             n_bits=8)
    fast = _contention_trial(True, 71, mitigation=ring_tdm(period_us=1.0),
                             n_bits=8)
    assert fast == slow


def test_contention_faulted_equivalence():
    slow = _contention_trial(False, 81, intensity=0.5, n_bits=8)
    fast = _contention_trial(True, 81, intensity=0.5, n_bits=8)
    assert fast == slow


# ----------------------------------------------------------------------
# The reservation ledger against the event-mode FIFO


ARRIVALS = [(0, 50), (10, 30), (10, 40), (95, 25), (200, 60), (205, 5)]


def test_fifo_ledger_matches_event_mode():
    # Event mode: one process per requester, arriving on schedule.
    engine = Engine()
    resource = FifoResource(engine, name="ring")
    waits = []

    def requester(at, hold):
        if at:
            yield at
        waited = yield from resource.occupy(hold)
        waits.append((at, waited))

    for at, hold in ARRIVALS:
        engine.process(requester(at, hold))
    engine.run()

    # Ledger mode: pure arithmetic, no events at all.
    ledger_engine = Engine()
    ledger = FifoResource(ledger_engine, name="ring")
    ledger_waits = [
        (at, ledger.reserve(hold, at_fs=at)) for at, hold in ARRIVALS
    ]

    assert sorted(waits) == sorted(ledger_waits)
    assert ledger.total_grants == resource.total_grants
    assert ledger.total_wait_fs == resource.total_wait_fs
    assert ledger.total_hold_fs == resource.total_hold_fs
    # The ledger's server frees up exactly when the last event-mode
    # holder released.
    assert ledger._busy_until == engine.now


def test_ledger_utilization_excludes_unexpired_overhang():
    engine = Engine()
    resource = FifoResource(engine)
    assert resource.reserve(100, at_fs=0) == 0
    engine.schedule(50, lambda: None)
    engine.run()
    assert resource.busy
    assert resource.utilization() == pytest.approx(1.0)
    engine.schedule(150, lambda: None)
    engine.run()
    assert not resource.busy
    assert resource.utilization() == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Construction-time sampling


def test_flag_is_sampled_at_construction():
    with fastpath.forced(False):
        soc = SoC(kaby_lake_model(seed=1, scale=16))
    assert not soc._fastpath
    assert not soc.ring._fast
    with fastpath.forced(True):
        soc = SoC(kaby_lake_model(seed=1, scale=16))
    assert soc._fastpath
    assert soc.ring._fast
