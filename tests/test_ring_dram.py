"""Ring interconnect (incl. TDM) and DRAM model tests."""

import pytest

from repro.config import ClockConfig, DramConfig, RingConfig
from repro.errors import ConfigError
from repro.sim import FS_PER_NS, FS_PER_US
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.soc.dram import Dram
from repro.soc.ring import Ring, TdmSchedule


@pytest.fixture
def ring():
    return Ring(Engine(), RingConfig(), ClockConfig(4.2e9))


def test_ring_hold_time(ring):
    # 3 slots x 2 cycles at 4.2 GHz.
    assert ring.hold_fs(3) == ClockConfig(4.2e9).cycles_fs(6)


def test_ring_slots_for_line(ring):
    assert ring.slots_for_line(64) == 3  # 1 request + 2 data


def test_ring_transfer_accounts_per_domain(ring):
    engine = ring.engine

    def sender(domain):
        waited = yield from ring.transfer(3, domain)
        return waited

    cpu = engine.process(sender("cpu"))
    gpu = engine.process(sender("gpu"))
    engine.run()
    assert ring.transfers == {"cpu": 1, "gpu": 1}
    assert cpu.value == 0
    assert gpu.value == ring.hold_fs(3)  # queued behind the CPU transfer
    assert ring.mean_wait_fs("gpu") > 0


def test_ring_utilization_grows_with_traffic(ring):
    engine = ring.engine

    def spam():
        for _ in range(100):
            yield from ring.transfer(3, "gpu")

    engine.process(spam())
    engine.run()
    assert ring.utilization() == pytest.approx(1.0)


def test_ring_reset_stats(ring):
    engine = ring.engine

    def one():
        yield from ring.transfer(1, "cpu")

    engine.process(one())
    engine.run()
    ring.reset_stats()
    assert ring.transfers == {"cpu": 0, "gpu": 0}


def test_ring_reset_stats_keeps_auxiliary_domains(ring):
    """Regression: resetting must zero — not drop — auxiliary domains.

    The fault back-pressure injector transfers under the ``"fault"``
    domain; a measurement-window reset used to reinstate only the wired
    cpu/gpu keys, so ``stats_dict()`` silently stopped reporting the
    injector's traffic after the first window.
    """
    engine = ring.engine

    def one(domain):
        yield from ring.transfer(1, domain)

    engine.process(one("cpu"))
    engine.process(one("fault"))
    engine.run()
    assert ring.transfers["fault"] == 1
    ring.reset_stats()
    assert ring.transfers == {"cpu": 0, "gpu": 0, "fault": 0}
    assert ring.waited_fs == {"cpu": 0, "gpu": 0, "fault": 0}
    assert ring.stats_dict()["fault"] == {
        "transfers": 0,
        "waited_fs": 0,
        "mean_wait_ns": 0.0,
    }


def test_tdm_schedule_windows():
    tdm = TdmSchedule(period_fs=1000, cpu_share=0.5)
    assert tdm.wait_fs("cpu", 100) == 0
    assert tdm.wait_fs("cpu", 600) == 400  # wait for next period
    assert tdm.wait_fs("gpu", 600) == 0
    assert tdm.wait_fs("gpu", 100) == 400  # wait for the GPU window


def test_tdm_rejects_bad_parameters():
    with pytest.raises(ConfigError):
        TdmSchedule(period_fs=0)
    with pytest.raises(ConfigError):
        TdmSchedule(period_fs=100, cpu_share=1.0)


def test_tdm_blocks_cross_window_transfer(ring):
    engine = ring.engine
    ring.tdm = TdmSchedule(period_fs=1000 * FS_PER_NS, cpu_share=0.5)

    def gpu_sender():
        start = engine.now
        yield from ring.transfer(1, "gpu")
        return engine.now - start

    process = engine.process(gpu_sender())
    engine.run()
    # Launched at t=0 (CPU window): had to wait ~500 ns for its window.
    assert process.value >= 500 * FS_PER_NS


def test_tdm_own_window_passes_through(ring):
    engine = ring.engine
    ring.tdm = TdmSchedule(period_fs=1000 * FS_PER_NS, cpu_share=0.5)

    def cpu_sender():
        waited = yield from ring.transfer(1, "cpu")
        return waited

    process = engine.process(cpu_sender())
    engine.run()
    assert process.value == 0


def test_dram_latency_in_configured_band():
    dram = Dram(DramConfig(), RngStreams(1).stream("dram"))
    config = DramConfig()
    for _ in range(200):
        latency_ns = dram.latency_fs() / FS_PER_NS
        assert config.base_ns - 1 <= latency_ns <= (
            config.base_ns + config.row_miss_extra_ns + 8 * config.jitter_sigma_ns
        )
    assert dram.accesses == 200


def test_dram_mean_latency_estimate():
    config = DramConfig()
    dram = Dram(config, RngStreams(2).stream("dram"))
    samples = [dram.latency_fs() / FS_PER_NS for _ in range(3000)]
    empirical = sum(samples) / len(samples)
    # Analytic mean ignores jitter (one-sided), so allow a few ns slack.
    assert empirical == pytest.approx(dram.mean_latency_ns(), abs=5.0)


def test_dram_row_hits_are_faster():
    config = DramConfig(jitter_sigma_ns=0.0)
    dram = Dram(config, RngStreams(3).stream("dram"))
    values = {dram.latency_fs() for _ in range(300)}
    assert len(values) == 2  # hit and miss populations only
    fast, slow = sorted(values)
    assert (slow - fast) / FS_PER_NS == pytest.approx(config.row_miss_extra_ns, rel=0.01)
